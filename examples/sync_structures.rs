//! The four synchronization/communication structures of the paper's
//! Fig. 3 — RPC, data-parallel, reactive, and a custom barrier built from
//! first-class stored continuations — each landing in a different
//! invocation schema.
//!
//! Run with: `cargo run --release --example sync_structures`

use hem::apps::sync;
use hem::{CostModel, ExecMode, InterfaceSet, Value};

fn main() {
    let ids = sync::build();
    let mut rt = hem::apps::make_runtime(
        ids.program.clone(),
        4,
        CostModel::cm5(),
        ExecMode::Hybrid,
        InterfaceSet::Full,
    );
    let inst = sync::setup(&mut rt, &ids, 8);

    println!("== Fig. 3: synchronization structures and their schemas ==\n");
    for (name, m) in [
        ("Cell.read   (leaf accessor)", ids.read),
        ("Cell.bump   (leaf mutator)", ids.bump),
        ("Driver.rpc  (synchronous call)", ids.rpc),
        ("Driver.fan  (data parallel)", ids.fan),
        ("Driver.scatter (reactive)", ids.scatter),
        ("Barrier.arrive (custom, stores continuations)", ids.arrive),
    ] {
        println!("  {:<48} schema = {}", name, rt.schemas().of(m));
    }

    println!("\n-- RPC: one synchronous remote read --");
    let cell = inst.cell_refs[1];
    rt.set_field(cell, ids.value, Value::Int(5));
    let r = rt
        .call(inst.drivers[0], ids.rpc, &[Value::Obj(cell)])
        .unwrap();
    println!("   read -> {r:?}");

    println!("\n-- Data parallel: bump all cells, one multi-way join --");
    rt.call(inst.drivers[0], ids.fan, &[]).unwrap();
    let vals: Vec<Value> = inst
        .cell_refs
        .iter()
        .map(|c| rt.get_field(*c, ids.value))
        .collect();
    println!("   cells -> {vals:?}");

    println!("\n-- Reactive: fire-and-forget, zero replies --");
    let before = rt.stats().totals().replies_sent;
    rt.call(inst.drivers[0], ids.scatter, &[]).unwrap();
    let after = rt.stats().totals().replies_sent;
    println!("   replies sent during scatter: {}", after - before);

    println!("\n-- Custom barrier: early arrivals park their continuations --");
    let r = sync::run_rendezvous(&mut rt, &inst).unwrap();
    println!("   final arrival released everyone -> {r:?}");
    println!("   leaked contexts: {}", rt.live_contexts());
}
