//! SOR on a simulated 64-node machine: sweep the block-cyclic block size
//! and watch the hybrid model adapt to data locality (the paper's Table 4
//! and Fig. 9 in miniature).
//!
//! Run with: `cargo run --release --example sor_locality`

use hem::apps::sor;
use hem::{CostModel, ExecMode, InterfaceSet};
use hem_machine::topology::ProcGrid;

fn main() {
    let n = 48u32; // grid side (paper: 512; scaled for a quick demo)
    let iters = 2u32;
    let procs = ProcGrid::square(64);

    println!("== SOR {n}x{n}, {iters} iterations, 64 nodes (CM-5 cost model) ==\n");
    println!(
        "{:>6} {:>12} {:>14} {:>14} {:>9} {:>14}",
        "block", "local:remote", "par-only (ms)", "hybrid (ms)", "speedup", "heap ctxs"
    );

    for block in [1u32, 2, 3, 6] {
        let mut times = Vec::new();
        let mut ratio = 0.0;
        let mut ctxs = 0;
        for mode in [ExecMode::ParallelOnly, ExecMode::Hybrid] {
            let ids = sor::build();
            let mut rt = hem::apps::make_runtime(
                ids.program.clone(),
                procs.len(),
                CostModel::cm5(),
                mode,
                InterfaceSet::Full,
            );
            let inst = sor::setup(&mut rt, &ids, sor::SorParams { n, block, procs });
            sor::run(&mut rt, &inst, iters).expect("sor");
            times.push(rt.cost.seconds(rt.makespan()) * 1e3);
            let t = rt.stats().totals();
            ratio = t.local_invokes as f64 / t.remote_invokes.max(1) as f64;
            if mode == ExecMode::Hybrid {
                ctxs = t.ctx_alloc;
            }
        }
        println!(
            "{:>6} {:>12.3} {:>14.2} {:>14.2} {:>8.2}x {:>14}",
            block,
            ratio,
            times[0],
            times[1],
            times[0] / times[1],
            ctxs
        );
    }
    println!(
        "\nLarger blocks => more interior points whose whole stencil runs on\n\
         the stack; heap contexts shrink toward the block perimeter (Fig. 9)\n\
         and the hybrid speedup grows with the local:remote ratio (Table 4)."
    );
}
