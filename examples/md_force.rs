//! MD-Force: the nonbonded force kernel under a random vs. a spatial
//! (orthogonal recursive bisection) atom layout — the paper's Table 5 in
//! miniature, including the remote-coordinate cache and force combining.
//!
//! Run with: `cargo run --release --example md_force`

use hem::apps::md::{self, Layout};
use hem::{CostModel, ExecMode, InterfaceSet};

fn main() {
    let n_atoms = 800u32;
    let cutoff = 1.1f64;
    let nodes = 16u32;

    println!("== MD-Force, {n_atoms} clustered atoms, cutoff {cutoff}, {nodes} nodes (CM-5) ==\n");
    println!(
        "{:>8} {:>10} {:>12} {:>14} {:>14} {:>9}",
        "layout", "pairs", "local frac", "par-only (ms)", "hybrid (ms)", "speedup"
    );

    for layout in [Layout::Random, Layout::Spatial] {
        let mut times = Vec::new();
        let mut frac = 0.0;
        let mut npairs = 0;
        for mode in [ExecMode::ParallelOnly, ExecMode::Hybrid] {
            let ids = md::build();
            let sys = md::generate(n_atoms, cutoff, nodes, layout, 97);
            npairs = sys.pairs.len();
            let mut rt = hem::apps::make_runtime(
                ids.program.clone(),
                nodes,
                CostModel::cm5(),
                mode,
                InterfaceSet::Full,
            );
            let inst = md::setup(&mut rt, &ids, &sys);
            md::run_iteration(&mut rt, &inst).expect("md");
            times.push(rt.cost.seconds(rt.makespan()) * 1e3);
            if mode == ExecMode::Hybrid {
                frac = rt.stats().totals().local_fraction();
                // Sanity: forces must match the plain-Rust reference.
                let f = md::forces(&rt, &inst);
                let nf = md::native_forces(&sys);
                for (a, b) in f.iter().zip(&nf) {
                    for c in 0..3 {
                        assert!((a[c] - b[c]).abs() / a[c].abs().max(1.0) < 1e-9);
                    }
                }
            }
        }
        println!(
            "{:>8} {:>10} {:>12.3} {:>14.2} {:>14.2} {:>8.2}x",
            layout.to_string(),
            npairs,
            frac,
            times[0],
            times[1],
            times[0] / times[1]
        );
    }
    println!(
        "\nThe spatial layout turns most cutoff pairs node-local: their whole\n\
         force computation (accessor reads + force writes) runs on the stack,\n\
         while the random layout stays communication-bound (Table 5)."
    );
}
