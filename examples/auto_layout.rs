//! Automatic data layout (the paper's future work, §6): take an EM3D
//! graph with real cluster structure, *hide* that structure by scrambling
//! the placement, and let the greedy edge-locality partitioner rediscover
//! it — then watch the hybrid runtime turn the recovered locality into
//! stack execution.
//!
//! Run with: `cargo run --release --example auto_layout`

use hem::apps::em3d::{self, Style};
use hem::apps::layout;
use hem::{CostModel, ExecMode, InterfaceSet, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn run(g: &em3d::Em3dGraph, nodes: u32) -> (f64, f64) {
    let mut out = [0.0f64; 2];
    for (i, mode) in [ExecMode::ParallelOnly, ExecMode::Hybrid]
        .into_iter()
        .enumerate()
    {
        let ids = em3d::build(8);
        let mut rt = hem::apps::make_runtime(
            ids.program.clone(),
            nodes,
            CostModel::cm5(),
            mode,
            InterfaceSet::Full,
        );
        let inst = em3d::setup(&mut rt, &ids, g);
        em3d::run(&mut rt, &inst, Style::Pull, 2).expect("em3d");
        out[i] = rt.cost.seconds(rt.makespan()) * 1e3;
    }
    (out[0], out[1])
}

fn main() {
    let nodes = 16u32;
    println!("== EM3D pull, 256x2 graph nodes of degree 8, {nodes} machine nodes ==\n");
    println!(
        "{:>22} {:>14} {:>14} {:>14} {:>9}",
        "placement", "edge locality", "par-only (ms)", "hybrid (ms)", "speedup"
    );

    // A graph with genuine cluster structure (edges mostly within the
    // generating placement's communities).
    let g_tuned = em3d::generate(256, 8, nodes, 0.9, 1234);

    // The same graph with the structure hidden: placements scrambled.
    let mut g_scrambled = g_tuned.clone();
    let mut rng = SmallRng::seed_from_u64(99);
    for o in g_scrambled
        .e_owner
        .iter_mut()
        .chain(g_scrambled.h_owner.iter_mut())
    {
        *o = NodeId(rng.gen_range(0..nodes));
    }

    // Automatic recovery by the greedy partitioner.
    let mut g_auto = g_scrambled.clone();
    layout::auto_layout_em3d(&mut g_auto, nodes, 1.2);

    for (name, g) in [
        ("hand-tuned", &g_tuned),
        ("scrambled (random)", &g_scrambled),
        ("auto (recovered)", &g_auto),
    ] {
        let (par, hyb) = run(g, nodes);
        println!(
            "{:>22} {:>14.3} {:>14.2} {:>14.2} {:>8.2}x",
            name,
            layout::em3d_locality(g),
            par,
            hyb,
            par / hyb
        );
    }

    println!(
        "\nThe greedy layout rediscovers most of the community structure a\n\
         random placement hides, and the hybrid execution model converts\n\
         the recovered locality into stack execution automatically — the\n\
         division of labour the paper's future-work section proposes."
    );
}
