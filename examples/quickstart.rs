//! Quickstart: build a fine-grained concurrent program, let the analysis
//! pick invocation schemas, and watch the hybrid model collapse thousands
//! of conceptual threads onto the stack.
//!
//! Run with: `cargo run --release --example quickstart`

use hem::{CostModel, ExecMode, InterfaceSet, NodeId, ProgramBuilder, Runtime, Value};
use hem_ir::BinOp;

fn main() {
    // A program in the paper's model: every `invoke` is conceptually a new
    // thread whose result is an implicit future; `touch` synchronizes on a
    // set of futures at once.
    let mut pb = ProgramBuilder::new();
    let math = pb.class("Math", false);
    let fib = pb.declare(math, "fib", 1);
    pb.define(fib, |mb| {
        let n = mb.arg(0);
        let small = mb.binl(BinOp::Lt, n, 2);
        mb.if_else(
            small,
            |mb| mb.reply(n),
            |mb| {
                let me = mb.self_ref();
                let a = mb.binl(BinOp::Sub, n, 1);
                let b = mb.binl(BinOp::Sub, n, 2);
                let s1 = mb.invoke_local(me, fib, &[a.into()]);
                let s2 = mb.invoke_local(me, fib, &[b.into()]);
                mb.touch(&[s1, s2]);
                let x = mb.get_slot(s1);
                let y = mb.get_slot(s2);
                let r = mb.binl(BinOp::Add, x, y);
                mb.reply(r);
            },
        );
    });
    let program = pb.finish();

    println!("== fib(24) as 92 735 fine-grained threads ==\n");
    let n = 24i64;

    for (label, mode) in [
        (
            "parallel-only (heap context per invocation, paper §3.1)",
            ExecMode::ParallelOnly,
        ),
        (
            "hybrid (stack execution with lazy fallback, paper §3.2)",
            ExecMode::Hybrid,
        ),
    ] {
        let mut rt = Runtime::new(
            program.clone(),
            1,
            CostModel::cm5(),
            mode,
            InterfaceSet::Full,
        )
        .expect("valid program");
        let obj = rt.alloc_object_by_name("Math", NodeId(0));
        let result = rt.call(obj, fib, &[Value::Int(n)]).expect("no traps");
        let t = rt.stats().totals();
        println!("{label}");
        println!("  result                = {result:?}");
        println!(
            "  simulated time        = {:.1} ms ({} cycles)",
            rt.cost.seconds(rt.makespan()) * 1e3,
            rt.makespan()
        );
        println!("  heap contexts         = {}", t.ctx_alloc);
        println!(
            "  stack completions     = {}",
            t.stack_nb + t.stack_mb + t.stack_cp
        );
        println!("  fallbacks             = {}\n", t.fallbacks);
    }

    // The "equivalent C program" price for the same computation.
    let mut rt = Runtime::new(
        program,
        1,
        CostModel::cm5(),
        ExecMode::Hybrid,
        InterfaceSet::Full,
    )
    .unwrap();
    let obj = rt.alloc_object_by_name("Math", NodeId(0));
    let (v, cycles) = rt.call_c_baseline(obj, fib, &[Value::Int(n)]).unwrap();
    println!("equivalent C program");
    println!("  result                = {v:?}");
    println!(
        "  simulated time        = {:.1} ms ({} cycles)",
        rt.cost.seconds(cycles) * 1e3,
        cycles
    );
    println!();
    println!("The hybrid model's claim (paper Table 3): C-like sequential cost");
    println!("for a model where every call could have been a parallel thread.");
}
