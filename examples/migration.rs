//! Object migration (the paper's future work, §6): move a heavily-used
//! object toward its callers between computation phases and watch the
//! hybrid runtime convert remote invocations into stack execution —
//! first through forwarding addresses (stale references keep working),
//! then fully local once references are snapped.
//!
//! Run with: `cargo run --release --example migration`

use hem::ir::BinOp;
use hem::{CostModel, ExecMode, InterfaceSet, NodeId, ProgramBuilder, Runtime, Value};

fn main() {
    let mut pb = ProgramBuilder::new();
    let c = pb.class("C", false);
    let n = pb.field(c, "n");
    let peer = pb.field(c, "peer");
    let bump = pb.method(c, "bump", 1, |mb| {
        let cur = mb.get_field(n);
        let nv = mb.binl(BinOp::Add, cur, mb.arg(0));
        mb.set_field(n, nv);
        mb.reply(nv);
    });
    let phase = pb.method(c, "phase", 1, |mb| {
        let p = mb.get_field(peer);
        let s = mb.slot();
        let last = mb.local();
        mb.mov(last, 0i64);
        mb.for_range(0i64, mb.arg(0), |mb, _| {
            mb.invoke(
                Some(s),
                p,
                bump,
                &[1i64.into()],
                hem::ir::LocalityHint::Unknown,
            );
            mb.touch(&[s]);
            let v = mb.get_slot(s);
            mb.mov(last, v);
        });
        mb.reply(last);
    });
    let program = pb.finish();

    let mut rt = Runtime::new(
        program,
        2,
        CostModel::cm5(),
        ExecMode::Hybrid,
        InterfaceSet::Full,
    )
    .unwrap();
    let driver = rt.alloc_object_by_name("C", NodeId(0));
    let hot = rt.alloc_object_by_name("C", NodeId(1));
    rt.set_field(hot, n, Value::Int(0));
    rt.set_field(driver, peer, Value::Obj(hot));

    let k = 200i64;
    let show = |rt: &mut Runtime, label: &str| {
        rt.reset_counters();
        let t0 = rt.makespan();
        rt.call(driver, phase, &[Value::Int(k)]).unwrap();
        let dt = rt.makespan() - t0;
        let t = rt.stats().totals();
        println!(
            "{label:<34} {:>9.3} ms   msgs={:<4} stack={:<4} ctxs={}",
            rt.cost.seconds(dt) * 1e3,
            t.msgs_sent,
            t.stack_nb + t.stack_mb + t.stack_cp,
            t.ctx_alloc
        );
    };

    println!("== {k} bumps of a hot object per phase, driver on node 0 ==\n");
    show(&mut rt, "phase 1: object remote (node 1)");

    let new_ref = rt.migrate_object(hot, NodeId(0));
    show(&mut rt, "phase 2: migrated, stale reference");

    rt.set_field(driver, peer, Value::Obj(new_ref));
    show(&mut rt, "phase 3: reference snapped");

    println!(
        "\nMigration leaves a forwarding address (phase 2 still pays the\n\
         round trip through the old home for name translation) and becomes\n\
         fully local once the reference is updated (phase 3) — the runtime\n\
         adapts its execution strategy at every step without program\n\
         changes, which is the division the paper's future work proposes."
    );
}
