//! Watch the hybrid model adapt: trace a single computation that starts
//! on the stack, hits a remote object, lazily grows a heap context, and
//! completes in the parallel version — the paper's Fig. 6 as an event log.
//!
//! Run with: `cargo run --release --example trace_adaptation`

use hem::core::TraceEvent;
use hem::ir::BinOp;
use hem::{CostModel, ExecMode, InterfaceSet, NodeId, ProgramBuilder, Runtime, Value};

fn main() {
    // sum(depth): recursive chain that crosses to the peer node once,
    // halfway down.
    let mut pb = ProgramBuilder::new();
    let c = pb.class("C", false);
    let peer = pb.field(c, "peer");
    let sum = pb.declare(c, "sum", 1);
    pb.define(sum, |mb| {
        let n = mb.arg(0);
        let done = mb.binl(BinOp::Le, n, 0);
        mb.if_else(
            done,
            |mb| mb.reply(0i64),
            |mb| {
                let n1 = mb.binl(BinOp::Sub, n, 1);
                let cross = mb.binl(BinOp::Eq, n, 3);
                let target = mb.local();
                let me = mb.self_ref();
                mb.mov(target, me);
                mb.if_(cross, |mb| {
                    let p = mb.get_field(peer);
                    mb.mov(target, p);
                });
                let s = mb.invoke_into(target, sum, &[n1.into()]);
                let v = mb.touch_get(s);
                let r = mb.binl(BinOp::Add, v, n);
                mb.reply(r);
            },
        );
    });
    let program = pb.finish();

    let mut rt = Runtime::new(
        program,
        2,
        CostModel::cm5(),
        ExecMode::Hybrid,
        InterfaceSet::Full,
    )
    .unwrap();
    let a = rt.alloc_object_by_name("C", NodeId(0));
    let b = rt.alloc_object_by_name("C", NodeId(1));
    rt.set_field(a, peer, Value::Obj(b));
    rt.set_field(b, peer, Value::Obj(a));

    rt.enable_trace();
    let r = rt.call(a, sum, &[Value::Int(6)]).unwrap();
    println!("sum(6) = {r:?}  (expected 21)\n");
    println!("{:<10} event", "time");
    for rec in rt.take_trace() {
        let desc = match rec.event {
            TraceEvent::StackComplete {
                node,
                method,
                schema,
            } => {
                format!(
                    "{node}: method #{} completed on the stack ({schema})",
                    method.0
                )
            }
            TraceEvent::Inlined { node, method } => {
                format!("{node}: method #{} speculatively inlined", method.0)
            }
            TraceEvent::Fallback { node, method, ctx } => format!(
                "{node}: method #{} FELL BACK into heap context {ctx} (lazy allocation)",
                method.0
            ),
            TraceEvent::ParInvoke { node, method, ctx } => {
                format!(
                    "{node}: parallel invocation of #{} as context {ctx}",
                    method.0
                )
            }
            TraceEvent::ShellAdopted { node, method, ctx } => {
                format!("{node}: method #{} adopted shell context {ctx}", method.0)
            }
            TraceEvent::ContMaterialized { node } => {
                format!("{node}: continuation lazily materialized")
            }
            TraceEvent::MsgSent { from, to, reply } => {
                format!(
                    "{from} -> {to}: {}",
                    if reply { "reply" } else { "request" }
                )
            }
            TraceEvent::Suspend { node, ctx } => {
                format!("{node}: context {ctx} suspended on touch")
            }
            TraceEvent::Resume { node, ctx } => format!("{node}: context {ctx} resumed"),
            TraceEvent::LockDeferred { node, obj } => {
                format!("{node}: invocation deferred on lock of object {obj}")
            }
            TraceEvent::MsgDropped {
                from,
                to,
                partitioned,
            } => format!(
                "{from} -> {to}: packet LOST ({})",
                if partitioned {
                    "partition"
                } else {
                    "random loss"
                }
            ),
            TraceEvent::MsgDuplicated { from, to } => {
                format!("{from} -> {to}: wire duplicated a packet")
            }
            TraceEvent::Retransmit { node, to, attempt } => {
                format!("{node} -> {to}: retransmit (attempt {attempt})")
            }
            TraceEvent::DupSuppressed { node, from } => {
                format!("{node}: duplicate frame from {from} suppressed")
            }
        };
        println!("{:<10} {desc}", rec.at);
    }
    println!("\nReading: frames above the remote hop completed later on the");
    println!("stackless path (fallback contexts), everything below it ran as");
    println!("plain stack calls — the model adapted to the data layout.");
}
