//! Watch the hybrid model adapt: trace a single computation that starts
//! on the stack, hits a remote object, lazily grows a heap context, and
//! completes in the parallel version — the paper's Fig. 6 as an event log,
//! rolled up by the observability layer.
//!
//! Run with: `cargo run --release --example trace_adaptation`

use hem::ir::BinOp;
use hem::obs::{describe, Report, Rollup};
use hem::{CostModel, ExecMode, InterfaceSet, NodeId, ProgramBuilder, Runtime, Value};

fn main() {
    // sum(depth): recursive chain that crosses to the peer node once,
    // halfway down.
    let mut pb = ProgramBuilder::new();
    let c = pb.class("C", false);
    let peer = pb.field(c, "peer");
    let sum = pb.declare(c, "sum", 1);
    pb.define(sum, |mb| {
        let n = mb.arg(0);
        let done = mb.binl(BinOp::Le, n, 0);
        mb.if_else(
            done,
            |mb| mb.reply(0i64),
            |mb| {
                let n1 = mb.binl(BinOp::Sub, n, 1);
                let cross = mb.binl(BinOp::Eq, n, 3);
                let target = mb.local();
                let me = mb.self_ref();
                mb.mov(target, me);
                mb.if_(cross, |mb| {
                    let p = mb.get_field(peer);
                    mb.mov(target, p);
                });
                let s = mb.invoke_into(target, sum, &[n1.into()]);
                let v = mb.touch_get(s);
                let r = mb.binl(BinOp::Add, v, n);
                mb.reply(r);
            },
        );
    });
    let program = pb.finish();

    let mut rt = Runtime::new(
        program,
        2,
        CostModel::cm5(),
        ExecMode::Hybrid,
        InterfaceSet::Full,
    )
    .unwrap();
    let a = rt.alloc_object_by_name("C", NodeId(0));
    let b = rt.alloc_object_by_name("C", NodeId(1));
    rt.set_field(a, peer, Value::Obj(b));
    rt.set_field(b, peer, Value::Obj(a));

    // Buffer the trace *and* roll it up online through the observer hook —
    // the two views are fed the identical record stream.
    rt.enable_trace();
    rt.attach_observer(Box::new(Rollup::new()));
    let r = rt.call(a, sum, &[Value::Int(6)]).unwrap();
    println!("sum(6) = {r:?}  (expected 21)\n");

    println!("{:<10} event", "time");
    let records = rt.take_trace();
    for rec in &records {
        println!("{:<10} {}", rec.at, describe(&rec.event, rt.program()));
    }

    println!("\nReading: frames above the remote hop completed later on the");
    println!("stackless path (fallback contexts), everything below it ran as");
    println!("plain stack calls — the model adapted to the data layout.\n");

    // The online rollup saw the same stream the buffer recorded.
    let any: Box<dyn std::any::Any> = rt.take_observer().expect("observer attached");
    let rollup = any.downcast::<Rollup>().expect("a Rollup");
    assert_eq!(rollup.records, records.len() as u64);
    let report = Report::new(
        "trace_adaptation sum(6), 2 nodes",
        &rollup,
        &rt.stats(),
        rt.program(),
        rt.schemas(),
    );
    print!("{}", report.text());
}
