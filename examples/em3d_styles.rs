//! EM3D under its three communication structures — pull, push and
//! forward — on CM-5- and T3D-flavoured machines (the paper's Table 6 in
//! miniature). Shows the reply-cost asymmetry that makes `forward` win on
//! the T3D at low locality.
//!
//! Run with: `cargo run --release --example em3d_styles`

use hem::apps::em3d::{self, Style};
use hem::{CostModel, ExecMode, InterfaceSet};

fn main() {
    let n_each = 256u32;
    let degree = 8u32;
    let nodes = 16u32;
    let iters = 2u32;

    for (mname, cost) in [("CM-5", CostModel::cm5()), ("T3D", CostModel::t3d())] {
        println!("== EM3D {n_each}x2 nodes, degree {degree}, {nodes} machine nodes, {mname} ==\n");
        println!(
            "{:>8} {:>9} {:>14} {:>14} {:>9} {:>9} {:>9}",
            "style", "locality", "par-only (ms)", "hybrid (ms)", "speedup", "msgs", "replies"
        );
        for p_local in [0.0, 0.95] {
            for style in [Style::Pull, Style::Push, Style::Forward] {
                let mut times = Vec::new();
                let mut msgs = 0;
                let mut replies = 0;
                for mode in [ExecMode::ParallelOnly, ExecMode::Hybrid] {
                    let ids = em3d::build(degree);
                    let g = em3d::generate(n_each, degree, nodes, p_local, 20260706);
                    let mut rt = hem::apps::make_runtime(
                        ids.program.clone(),
                        nodes,
                        cost.clone(),
                        mode,
                        InterfaceSet::Full,
                    );
                    let inst = em3d::setup(&mut rt, &ids, &g);
                    em3d::run(&mut rt, &inst, style, iters).expect("em3d");
                    times.push(rt.cost.seconds(rt.makespan()) * 1e3);
                    if mode == ExecMode::Hybrid {
                        let t = rt.stats().totals();
                        msgs = t.msgs_sent;
                        replies = t.replies_sent;
                    }
                }
                println!(
                    "{:>8} {:>9} {:>14.2} {:>14.2} {:>8.2}x {:>9} {:>9}",
                    style.to_string(),
                    if p_local == 0.0 { "low" } else { "high" },
                    times[0],
                    times[1],
                    times[0] / times[1],
                    msgs,
                    replies
                );
            }
        }
        println!();
    }
    println!(
        "forward trades longer (continuation-carrying) messages for fewer\n\
         replies — cheap replies favour push/pull on the CM-5, expensive\n\
         replies favour forward on the T3D (paper §4.3.3)."
    );
}
