//! `hemc` — command-line driver for `.hem` programs in the canonical text
//! format (see `hem::ir::text`).
//!
//! ```text
//! hemc disasm  <file>                       # pretty listing
//! hemc schemas <file>                       # schema selection per method
//! hemc run     <file> Class::method [ints...]
//!              [--nodes N] [--mode hybrid|parallel] [--machine cm5|t3d]
//!              [--interfaces 1|2|3] [--stats] [--trace]
//! hemc emit-kernel <name>                   # print a built-in kernel as text
//! ```
//!
//! `run` allocates one object of the method's class on node 0 (plus, with
//! `--nodes`, one peer object of the same class per extra node if the
//! class has a scalar field named `peer`, wired as a ring), invokes the
//! method with integer arguments, and prints the reply, simulated time
//! and counters.

use hem::analysis::InterfaceSet;
use hem::ir::text::{parse_program, print_program};
use hem::ir::Program;
use hem::{CostModel, ExecMode, NodeId, Runtime, Value};

fn usage() -> ! {
    eprintln!(
        "usage:\n  hemc disasm <file>\n  hemc schemas <file>\n  hemc run <file> Class::method [ints...] \\\n       [--nodes N] [--mode hybrid|parallel] [--machine cm5|t3d] [--interfaces 1|2|3] [--stats] [--trace]\n  hemc emit-kernel <calls|sor|md|em3d|sync>"
    );
    std::process::exit(2);
}

fn load(path: &str) -> Program {
    let src = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("hemc: cannot read {path}: {e}");
        std::process::exit(1);
    });
    parse_program(&src).unwrap_or_else(|e| {
        eprintln!("hemc: {path}: {e}");
        std::process::exit(1);
    })
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    match argv.get(1).map(String::as_str) {
        Some("disasm") => {
            let p = load(argv.get(2).map(String::as_str).unwrap_or_else(|| usage()));
            print!("{}", p.disassemble());
        }
        Some("schemas") => {
            let p = load(argv.get(2).map(String::as_str).unwrap_or_else(|| usage()));
            let a = hem::analysis::Analysis::analyze(&p);
            let schemas = a.schemas(InterfaceSet::Full);
            for (i, m) in p.methods.iter().enumerate() {
                let mid = hem::ir::MethodId(i as u32);
                println!(
                    "{:<32} {}  may-block={} needs-cont={}{}",
                    format!("{}::{}", p.classes[m.class.idx()].name, m.name),
                    schemas.of(mid),
                    a.facts.blocks(mid),
                    a.facts.needs_cont(mid),
                    if m.inlinable { "  inline" } else { "" },
                );
            }
        }
        Some("emit-kernel") => {
            let p = match argv
                .get(3)
                .map(String::as_str)
                .or(argv.get(2).map(String::as_str))
            {
                Some("calls") => hem::apps::callintensive::build().program,
                Some("sor") => hem::apps::sor::build().program,
                Some("md") => hem::apps::md::build().program,
                Some("em3d") => hem::apps::em3d::build(16).program,
                Some("sync") => hem::apps::sync::build().program,
                _ => usage(),
            };
            print!("{}", print_program(&p));
        }
        Some("run") => {
            let file = argv.get(2).map(String::as_str).unwrap_or_else(|| usage());
            let target = argv.get(3).map(String::as_str).unwrap_or_else(|| usage());
            let mut args_v = Vec::new();
            let mut nodes = 1u32;
            let mut mode = ExecMode::Hybrid;
            let mut cost = CostModel::cm5();
            let mut ifaces = InterfaceSet::Full;
            let mut show_stats = false;
            let mut show_trace = false;
            let mut it = argv[4..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--nodes" => {
                        nodes = it
                            .next()
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| usage())
                    }
                    "--mode" => {
                        mode = match it.next().map(String::as_str) {
                            Some("hybrid") => ExecMode::Hybrid,
                            Some("parallel") => ExecMode::ParallelOnly,
                            _ => usage(),
                        }
                    }
                    "--machine" => {
                        cost = match it.next().map(String::as_str) {
                            Some("cm5") => CostModel::cm5(),
                            Some("t3d") => CostModel::t3d(),
                            _ => usage(),
                        }
                    }
                    "--interfaces" => {
                        ifaces = match it.next().map(String::as_str) {
                            Some("1") => InterfaceSet::CpOnly,
                            Some("2") => InterfaceSet::MbCp,
                            Some("3") => InterfaceSet::Full,
                            _ => usage(),
                        }
                    }
                    "--stats" => show_stats = true,
                    "--trace" => show_trace = true,
                    v => match v.parse::<i64>() {
                        Ok(i) => args_v.push(Value::Int(i)),
                        Err(_) => usage(),
                    },
                }
            }
            let p = load(file);
            let (cname, mname) = target.split_once("::").unwrap_or_else(|| usage());
            let mut rt = match Runtime::new(p, nodes, cost, mode, ifaces) {
                Ok(rt) => rt,
                Err(errs) => {
                    for e in errs {
                        eprintln!("hemc: {e}");
                    }
                    std::process::exit(1);
                }
            };
            let method = rt.find_method(cname, mname).unwrap_or_else(|| {
                eprintln!("hemc: no method {target}");
                std::process::exit(1);
            });
            let root = rt.alloc_object_by_name(cname, NodeId(0));
            // Optional ring of peers for multi-node experiments.
            if let Some(peer_field) = rt
                .program()
                .classes
                .iter()
                .find(|c| c.name == cname)
                .and_then(|c| c.fields.iter().position(|f| f.name == "peer" && !f.array))
            {
                let f = hem::ir::FieldId(peer_field as u16);
                let mut ring = vec![root];
                for n in 1..nodes {
                    ring.push(rt.alloc_object_by_name(cname, NodeId(n)));
                }
                let len = ring.len();
                for (i, o) in ring.iter().enumerate() {
                    rt.set_field(*o, f, Value::Obj(ring[(i + 1) % len]));
                }
            }
            if show_trace {
                rt.enable_trace();
            }
            match rt.call(root, method, &args_v) {
                Ok(r) => {
                    println!("result    = {r:?}");
                    println!(
                        "time      = {:.3} ms ({} cycles, {} nodes, {mode}, {})",
                        rt.cost.seconds(rt.makespan()) * 1e3,
                        rt.makespan(),
                        nodes,
                        rt.cost.name
                    );
                    if show_stats {
                        let t = rt.stats().totals();
                        println!(
                            "stack     = nb {} / mb {} / cp {} (+{} inlined)",
                            t.stack_nb, t.stack_mb, t.stack_cp, t.inlined
                        );
                        println!(
                            "heap ctxs = {} ({} fallbacks, {} parallel)",
                            t.ctx_alloc, t.fallbacks, t.par_invokes
                        );
                        println!(
                            "messages  = {} requests, {} replies",
                            t.msgs_sent, t.replies_sent
                        );
                        println!("locality  = {:.3} local fraction", t.local_fraction());
                    }
                    if show_trace {
                        for rec in rt.take_trace() {
                            println!("{:>8}  {:?}", rec.at, rec.event);
                        }
                    }
                }
                Err(t) => {
                    eprintln!("hemc: {t}");
                    std::process::exit(1);
                }
            }
        }
        _ => usage(),
    }
}
