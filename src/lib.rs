//! # hem — a hybrid execution model for fine-grained languages
//!
//! Umbrella crate for the reproduction of *"A Hybrid Execution Model for
//! Fine-Grained Languages on Distributed Memory Multicomputers"*
//! (Plevyak, Karamcheti, Zhang & Chien, Supercomputing 1995). It
//! re-exports the whole workspace:
//!
//! * [`machine`] — the simulated multicomputer substrate (cost models for
//!   CM-5/T3D-flavoured machines, deterministic interconnect, counters,
//!   layout topologies);
//! * [`ir`] — the fine-grained concurrent object-oriented IR and builder;
//! * [`analysis`] — call-graph + may-block/requires-continuation analyses
//!   and invocation-schema selection;
//! * [`core`] — the hybrid runtime itself (sequential NB/MB/CP schemas
//!   with lazy contexts and continuations, the heap-context parallel
//!   version, wrappers and proxy contexts);
//! * [`apps`] — the paper's evaluation kernels (fib/tak/nqueens/qsort,
//!   SOR, MD-Force, EM3D, the Fig. 3 synchronization structures);
//! * [`obs`] — the observability layer (trace rollups, Perfetto timeline
//!   export, critical-path analysis; driven by the `hemprof` binary in
//!   `hem-bench`).
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory, and
//! `EXPERIMENTS.md` for the paper-vs-measured record. The binaries in
//! `hem-bench` regenerate every table and figure of the paper's
//! evaluation section.

#![warn(missing_docs)]

pub use hem_analysis as analysis;
pub use hem_apps as apps;
pub use hem_core as core;
pub use hem_ir as ir;
pub use hem_machine as machine;
pub use hem_obs as obs;

pub use hem_analysis::{InterfaceSet, Schema};
pub use hem_core::{ExecMode, Runtime, SchedImpl, Trap};
pub use hem_ir::{ProgramBuilder, Value};
pub use hem_machine::cost::CostModel;
pub use hem_machine::NodeId;
