//! Table 3 — sequential execution times of the function-call intensive
//! benchmarks under: parallel-only execution, the hybrid model restricted
//! to 1 / 2 / 3 interfaces, the Seq-opt variant (parallelization checks
//! compiled away), and the equivalent C program.
//!
//! `cargo run --release -p hem-bench --bin table3 [--full]`

use hem_analysis::InterfaceSet;
use hem_bench::report::{secs, Table};
use hem_bench::Args;
use hem_core::{ExecMode, Runtime};
use hem_ir::{MethodId, Value};
use hem_machine::cost::CostModel;
use hem_machine::NodeId;

struct Bench {
    name: &'static str,
    method: MethodId,
    args: Vec<Value>,
}

fn time_run(mode: ExecMode, ifaces: InterfaceSet, cost: CostModel, b: &Bench) -> f64 {
    let suite = hem_apps::callintensive::build();
    let mut rt = Runtime::new(suite.program.clone(), 1, cost, mode, ifaces).expect("valid");
    let o = rt.alloc_object_by_name("Math", NodeId(0));
    rt.call(o, b.method, &b.args).expect("no trap");
    rt.cost.seconds(rt.makespan())
}

fn time_c(b: &Bench) -> f64 {
    let suite = hem_apps::callintensive::build();
    let cost = CostModel::cm5();
    let mut rt = Runtime::new(
        suite.program.clone(),
        1,
        cost.clone(),
        ExecMode::Hybrid,
        InterfaceSet::Full,
    )
    .expect("valid");
    let o = rt.alloc_object_by_name("Math", NodeId(0));
    let (_, cycles) = rt.call_c_baseline(o, b.method, &b.args).expect("cref");
    cost.seconds(cycles)
}

fn main() {
    let args = Args::capture();
    let full = args.has("--full");
    let suite = hem_apps::callintensive::build();
    let (fib_n, tak, nq, qs, nrev_n, ackmn) = if full {
        (
            28i64,
            (22i64, 16i64, 8i64),
            10i64,
            16384i64,
            120i64,
            (3i64, 5i64),
        )
    } else {
        (22, (18, 12, 6), 8, 2048, 60, (3, 3))
    };
    let benches = vec![
        Bench {
            name: "fib",
            method: suite.fib,
            args: vec![Value::Int(fib_n)],
        },
        Bench {
            name: "tak",
            method: suite.tak,
            args: vec![Value::Int(tak.0), Value::Int(tak.1), Value::Int(tak.2)],
        },
        Bench {
            name: "nqueens",
            method: suite.nqueens,
            args: vec![Value::Int(nq)],
        },
        Bench {
            name: "qsort",
            method: suite.qsort_run,
            args: vec![Value::Int(qs), Value::Int(12345)],
        },
        Bench {
            name: "nrev",
            method: suite.nrev_run,
            args: vec![Value::Int(nrev_n)],
        },
        Bench {
            name: "ack",
            method: suite.ack,
            args: vec![Value::Int(ackmn.0), Value::Int(ackmn.1)],
        },
    ];

    println!(
        "Table 3: sequential times (simulated CM-5 seconds), one node.\n\
         workloads: fib({fib_n}), tak{tak:?}, nqueens({nq}), qsort({qs}),\n\
         nrev({nrev_n}), ack{ackmn:?}\n"
    );

    let mut t = Table::new(
        "sequential performance of the hybrid mechanisms",
        &[
            "program",
            "par-only",
            "1 iface(CP)",
            "2 ifaces",
            "3 ifaces",
            "seq-opt",
            "C",
            "hybrid/C",
        ],
    );
    for b in &benches {
        let par = time_run(
            ExecMode::ParallelOnly,
            InterfaceSet::Full,
            CostModel::cm5(),
            b,
        );
        let h1 = time_run(ExecMode::Hybrid, InterfaceSet::CpOnly, CostModel::cm5(), b);
        let h2 = time_run(ExecMode::Hybrid, InterfaceSet::MbCp, CostModel::cm5(), b);
        let h3 = time_run(ExecMode::Hybrid, InterfaceSet::Full, CostModel::cm5(), b);
        let so = time_run(
            ExecMode::Hybrid,
            InterfaceSet::Full,
            CostModel::cm5().seq_opt(),
            b,
        );
        let c = time_c(b);
        t.row(vec![
            b.name.into(),
            secs(par),
            secs(h1),
            secs(h2),
            secs(h3),
            secs(so),
            secs(c),
            format!("{:.2}", h3 / c),
        ]);
    }
    t.print();

    println!("expected shape (paper §4.2): every hybrid column beats the");
    println!("parallel-only column by a large factor; 3 interfaces improves on");
    println!("CP-only by up to ~30%; Seq-opt removes the remaining");
    println!("parallelization-check overhead, closing most of the gap to C.");
}
