//! `hemprof` — profile an app kernel on the simulated machine.
//!
//! Runs one of the four paper kernels (closed system, to quiescence) or
//! the open-system service mix (`serve`, to a virtual-time horizon) with
//! tracing on and prints a Table-style rollup report; optionally exports
//! a Perfetto timeline and the virtual-time critical path.
//!
//! ```text
//! hemprof <sor|md|em3d|fib> [options]
//!   --p N             machine size (default 16)
//!   --size N          problem size (kernel-specific default)
//!   --iters N         iterations (default 1)
//!   --seed S          generation seed (default 20260806)
//!   --layout L        spatial|random (MD) / high|low locality (EM3D)
//!   --style S         em3d style: pull|push|forward
//!
//! hemprof diff A.json B.json
//!   compare two `--report json` rollups: signed per-cause traffic
//!   deltas (requests/replies/acks/retransmits/multicasts/reduces/
//!   barriers), total wire words, makespan, scheduler-window occupancy,
//!   and — when both reports carry them — blame and series sections.
//!
//!   Exit codes: 0 — reports compared; 1 — an input is unreadable or
//!   not a rollup JSON; 2 — usage error; 3 — the reports profile
//!   different kernels or machine sizes (a configuration mismatch, not
//!   a breakage — CI can tell "regression signal is meaningless" apart
//!   from "the tool or its inputs are broken").
//!
//! hemprof serve [options]
//!   --p N             machine size (default 16)
//!   --backends N      backend population (default 32)
//!   --until H         virtual-time horizon (default 100000)
//!   --warmup W        steady-state cutoff (default 10000)
//!   --rate G          mean inter-arrival gap in cycles (default 500)
//!   --arrival A       poisson|bursty|diurnal (default poisson)
//!   --clients N       independent arrival streams (default 4)
//!   --deadline D      shed when infeasible at arrival (default 0 = off)
//!   --max-queue Q     shed when target queue >= Q (default 0 = off)
//!   --seed S          arrival seed (default 20260806)
//!   --series          windowed virtual-time series section (report +
//!                     Perfetto counter tracks)
//!   --series-window W series window in cycles (default horizon/50)
//!   --drop P          fault plan: drop P permille of messages
//!   --dup P           fault plan: duplicate P permille of deliveries
//!   --jitter J        fault plan: up to J cycles extra latency
//!   --fault-seed S    fault-plan seed (default: the arrival seed)
//!
//! hemprof blame [serve options]
//!   run the service mix with the per-request blame tracker attached:
//!   the report gains a blame section decomposing each request's sojourn
//!   into queue/exec/wire/lock/retx segments that tile it exactly, an
//!   aggregate p99-tail view, and the slowest requests. Takes every
//!   `serve` option (including --series and the fault-plan flags).
//!
//! common options
//!   --mode M          hybrid|parallel (default hybrid)
//!   --cost C          cm5|t3d|unit (default cm5)
//!   --threads N       host worker threads (sharded executor; default 1)
//!   --shard-map M     even|profile (default even): shard partition for
//!                     --threads > 1. "profile" first runs a cheap
//!                     single-threaded pilot of the same kernel, feeds
//!                     its per-node busy time back as shard weights, and
//!                     cuts shard boundaries by cumulative busy time —
//!                     host-time load balance only, observables stay
//!                     bit-identical (kernel subcommands only)
//!   --speculative     optimistic (Time-Warp) executor for --threads > 1
//!   --ring N          bound the trace ring to N records
//!   --report F        table|json (default table)
//!   --perfetto FILE   write a Perfetto trace_event JSON timeline
//!   --critical-path   print the longest virtual-time path
//!   --events          dump the raw event log (small runs only)
//! ```
//!
//! The rollup report streams through the observer hook, so it is exact
//! even when `--ring` truncates the buffered trace; only `--events`,
//! `--perfetto` and `--critical-path` read the (possibly truncated) ring.
//!
//! Example: `hemprof serve --p 32 --rate 200 --deadline 4000 --report json`

use hem_bench::profile::{Kernel, ProfileConfig};
use hem_bench::serve::ServeConfig;
use hem_bench::Args;
use hem_core::{ExecMode, Runtime};
use hem_machine::arrival::ArrivalDist;
use hem_machine::cost::CostModel;
use hem_machine::fault::FaultPlan;
use hem_machine::Cycles;
use hem_obs::json::Json;
use hem_obs::{critpath, perfetto, Blame, Fanout, Report, Rollup, SegClass, Series, Timeline};

fn usage() -> ! {
    eprintln!("usage: hemprof <sor|md|em3d|fib> [--p N] [--size N] [--iters N] [--seed S]");
    eprintln!("               [--layout spatial|random] [--style pull|push|forward]");
    eprintln!("       hemprof diff A.json B.json    (two `--report json` rollups)");
    eprintln!("       hemprof serve [--p N] [--backends N] [--until H] [--warmup W] [--rate G]");
    eprintln!("               [--arrival poisson|bursty|diurnal] [--clients N] [--deadline D]");
    eprintln!("               [--max-queue Q] [--seed S] [--series] [--series-window W]");
    eprintln!("               [--drop P] [--dup P] [--jitter J] [--fault-seed S]");
    eprintln!("       hemprof blame [serve options]  (per-request blame decomposition)");
    eprintln!("       common: [--mode hybrid|parallel] [--cost cm5|t3d|unit] [--threads N]");
    eprintln!("               [--shard-map even|profile] [--speculative] [--ring N]");
    eprintln!("               [--report table|json] [--perfetto FILE] [--critical-path]");
    eprintln!("               [--events]");
    std::process::exit(2);
}

fn parse_mode(args: &Args) -> ExecMode {
    match args.get::<String>("--mode").as_deref() {
        None | Some("hybrid") => ExecMode::Hybrid,
        Some("parallel") | Some("parallel-only") => ExecMode::ParallelOnly,
        Some(_) => usage(),
    }
}

fn parse_cost(args: &Args) -> CostModel {
    match args.get::<String>("--cost").as_deref() {
        None | Some("cm5") => CostModel::cm5(),
        Some("t3d") => CostModel::t3d(),
        // Every charge 1 cycle: the zero-lookahead regime, where the
        // conservative sharded executor serializes and only the
        // speculative one can form multi-event windows.
        Some("unit") => CostModel::unit(),
        Some(_) => usage(),
    }
}

fn main() {
    let args = Args::capture();
    let sub = match std::env::args().nth(1) {
        Some(name) if !name.starts_with('-') => name,
        _ => usage(),
    };

    // Validate the perfetto destination before the (potentially long) run,
    // so a typo'd path fails in milliseconds, not minutes.
    let perfetto_path = args.get::<String>("--perfetto");
    if let Some(path) = &perfetto_path {
        if let Err(e) = std::fs::OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
        {
            eprintln!("hemprof: cannot write {path}: {e}");
            std::process::exit(1);
        }
    }

    if sub == "diff" {
        run_diff();
    }

    if sub == "serve" || sub == "blame" {
        run_serve(&args, perfetto_path, sub == "blame");
        return;
    }

    let kernel = match Kernel::parse(&sub) {
        Some(k) => k,
        None => {
            eprintln!(
                "hemprof: unknown kernel '{sub}' (expected sor, md, em3d, fib, serve, or blame)"
            );
            std::process::exit(2);
        }
    };

    let mut cfg = ProfileConfig::new(kernel);
    if let Some(p) = args.get("--p") {
        cfg.p = p;
    }
    if let Some(s) = args.get("--size") {
        cfg.size = s;
    }
    if let Some(i) = args.get("--iters") {
        cfg.iters = i;
    }
    if let Some(s) = args.get("--seed") {
        cfg.seed = s;
    }
    if let Some(l) = args.get::<String>("--layout") {
        cfg.high_locality = match l.as_str() {
            "spatial" | "high" => true,
            "random" | "low" => false,
            _ => usage(),
        };
    }
    if let Some(s) = args.get::<String>("--style") {
        cfg.style = match s.as_str() {
            "pull" => hem_apps::em3d::Style::Pull,
            "push" => hem_apps::em3d::Style::Push,
            "forward" => hem_apps::em3d::Style::Forward,
            _ => usage(),
        };
    }
    cfg.mode = parse_mode(&args);
    cfg.cost = parse_cost(&args);
    cfg.ring = args.get("--ring");
    if let Some(t) = args.get("--threads") {
        cfg.threads = t;
    }
    cfg.speculative = args.has("--speculative");
    match args.get::<String>("--shard-map").as_deref() {
        None | Some("even") => {}
        Some("profile") => {
            if cfg.threads > 1 && !cfg.speculative {
                cfg.shard_weights = Some(pilot_weights(&cfg));
            }
        }
        Some(_) => usage(),
    }

    // The rollup observes the stream online — reports stay exact even
    // when a bounded ring evicts records.
    let mut rt = cfg.run_with_observer(Box::new(Rollup::new()));
    let spec = spec_summary(&rt, cfg.speculative, cfg.threads);
    let mut report = report_from(&mut rt, &cfg.title());
    if let Some(s) = &spec {
        report = report.with_speculative(s.clone());
    }
    emit(&args, report, &mut rt, perfetto_path, None, spec, None);
}

/// `hemprof diff A.json B.json` — compare two rollup JSON reports
/// (produced with `--report json`) and print signed per-cause traffic
/// deltas, total wire words, and the makespan change.
fn run_diff() -> ! {
    let a_path = std::env::args().nth(2).unwrap_or_else(|| usage());
    let b_path = std::env::args().nth(3).unwrap_or_else(|| usage());
    let a = load_rollup(&a_path);
    let b = load_rollup(&b_path);
    let title = |d: &Json| {
        d.get("title")
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string()
    };
    // Refuse to diff apples against oranges: the first two title tokens
    // are the kernel name and the machine size for every producer
    // (`<kernel|serve> p=N ...`), and a delta across different kernels or
    // machine sizes is noise, not signal.
    let (ta, tb) = (title(&a), title(&b));
    let head =
        |t: &str| -> Vec<String> { t.split_whitespace().take(2).map(String::from).collect() };
    let (ha, hb) = (head(&ta), head(&tb));
    if ha != hb {
        eprintln!(
            "hemprof: refusing to diff mismatched runs:\n  A profiles: {}\n  B profiles: {}\n\
             (kernel and machine size must match; re-run one side with the other's \
             configuration)",
            if ha.is_empty() { "?" } else { ta.as_str() },
            if hb.is_empty() { "?" } else { tb.as_str() },
        );
        // Dedicated exit code: a mismatch is a configuration problem,
        // not an I/O failure (1) or a usage error (2) — CI gates key on
        // the distinction.
        std::process::exit(3);
    }

    println!("rollup diff: {ta} -> {tb}");
    println!("  A: {a_path}");
    println!("  B: {b_path}");
    println!();

    let makespan = |d: &Json| d.get("makespan").and_then(Json::as_num).unwrap_or(0.0) as u64;
    let (ma, mb) = (makespan(&a), makespan(&b));
    println!(
        "{:<14} {:>12} -> {:>12}  {}",
        "makespan",
        ma,
        mb,
        delta(ma, mb)
    );
    println!();

    const CAUSES: [&str; 7] = [
        "requests",
        "replies",
        "acks",
        "retransmits",
        "multicasts",
        "reduces",
        "barriers",
    ];
    let cell = |d: &Json, cause: &str, key: &str| -> u64 {
        d.get("traffic")
            .and_then(|t| t.get(cause))
            .and_then(|c| c.get(key))
            .and_then(Json::as_num)
            .unwrap_or(0.0) as u64
    };
    if a.get("traffic").is_none() || b.get("traffic").is_none() {
        eprintln!(
            "hemprof: inputs lack a \"traffic\" object — expected the output of \
             `hemprof <kernel> --report json`"
        );
        std::process::exit(1);
    }

    println!("traffic (messages):");
    let (mut tma, mut tmb, mut twa, mut twb) = (0u64, 0u64, 0u64, 0u64);
    for cause in CAUSES {
        let (xa, xb) = (cell(&a, cause, "msgs"), cell(&b, cause, "msgs"));
        tma += xa;
        tmb += xb;
        twa += cell(&a, cause, "words");
        twb += cell(&b, cause, "words");
        if xa > 0 || xb > 0 {
            println!("  {cause:<12} {xa:>12} -> {xb:>12}  {}", delta(xa, xb));
        }
    }
    println!(
        "  {:<12} {tma:>12} -> {tmb:>12}  {}",
        "TOTAL",
        delta(tma, tmb)
    );
    println!();

    println!("traffic (wire words):");
    for cause in CAUSES {
        let (xa, xb) = (cell(&a, cause, "words"), cell(&b, cause, "words"));
        if xa > 0 || xb > 0 {
            println!("  {cause:<12} {xa:>12} -> {xb:>12}  {}", delta(xa, xb));
        }
    }
    println!(
        "  {:<12} {twa:>12} -> {twb:>12}  {}",
        "TOTAL",
        delta(twa, twb)
    );

    // Scheduler-window occupancy (host diagnostics; executor-dependent).
    let sched = |d: &Json, key: &str| -> u64 {
        d.get("sched")
            .and_then(|s| s.get(key))
            .and_then(Json::as_num)
            .unwrap_or(0.0) as u64
    };
    if a.get("sched").is_some() || b.get("sched").is_some() {
        println!();
        println!("scheduler (host diagnostics):");
        for key in [
            "events_dispatched",
            "windows",
            "serial_steps",
            "window_events",
            "max_window_events",
        ] {
            let (xa, xb) = (sched(&a, key), sched(&b, key));
            if xa > 0 || xb > 0 {
                println!("  {key:<18} {xa:>12} -> {xb:>12}  {}", delta(xa, xb));
            }
        }
    }

    // Blame decomposition, when both reports carry one (hemprof blame).
    let blame = |d: &Json, path: &[&str]| -> u64 {
        let mut cur = d.get("blame");
        for k in path {
            cur = cur.and_then(|c| c.get(k));
        }
        cur.and_then(Json::as_num).unwrap_or(0.0) as u64
    };
    match (a.get("blame").is_some(), b.get("blame").is_some()) {
        (true, true) => {
            println!();
            println!("blame (cycles per category over all completions):");
            for cat in ["queue", "exec", "wire", "lock", "retx"] {
                let (xa, xb) = (blame(&a, &["totals", cat]), blame(&b, &["totals", cat]));
                if xa > 0 || xb > 0 {
                    println!("  {cat:<12} {xa:>12} -> {xb:>12}  {}", delta(xa, xb));
                }
            }
            for (label, path) in [
                ("completed", &["completed"] as &[&str]),
                ("sojourn p50", &["sojourn", "p50"]),
                ("sojourn p99", &["sojourn", "p99"]),
            ] {
                let (xa, xb) = (blame(&a, path), blame(&b, path));
                println!("  {label:<12} {xa:>12} -> {xb:>12}  {}", delta(xa, xb));
            }
        }
        (true, false) | (false, true) => {
            println!();
            println!("blame: only one side has a blame section — skipped");
        }
        (false, false) => {}
    }

    // Series rollup, when both reports carry one (--series).
    let series_sum = |d: &Json, key: &str, peak: bool| -> u64 {
        let mut acc = 0u64;
        if let Some(buckets) = d
            .get("series")
            .and_then(|s| s.get("buckets"))
            .and_then(Json::as_arr)
        {
            for b in buckets {
                let v = b.get(key).and_then(Json::as_num).unwrap_or(0.0) as u64;
                acc = if peak { acc.max(v) } else { acc + v };
            }
        }
        acc
    };
    match (a.get("series").is_some(), b.get("series").is_some()) {
        (true, true) => {
            let win = |d: &Json| -> u64 {
                d.get("series")
                    .and_then(|s| s.get("window"))
                    .and_then(Json::as_num)
                    .unwrap_or(0.0) as u64
            };
            println!();
            if win(&a) != win(&b) {
                println!(
                    "series: window mismatch ({} vs {} cycles) — totals still comparable:",
                    win(&a),
                    win(&b)
                );
            } else {
                println!("series (window {} cycles):", win(&a));
            }
            for (label, key, peak) in [
                ("arrived", "arrived", false),
                ("done", "done", false),
                ("shed", "shed", false),
                ("peak in-flight", "in_flight", true),
                ("peak queue-wait", "queue_wait", true),
            ] {
                let (xa, xb) = (series_sum(&a, key, peak), series_sum(&b, key, peak));
                if xa > 0 || xb > 0 {
                    println!("  {label:<15} {xa:>12} -> {xb:>12}  {}", delta(xa, xb));
                }
            }
        }
        (true, false) | (false, true) => {
            println!();
            println!("series: only one side has a series section — skipped");
        }
        (false, false) => {}
    }
    std::process::exit(0);
}

/// Read and parse one rollup JSON file, aborting with a pointer at the
/// producing command on failure.
fn load_rollup(path: &str) -> Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("hemprof: cannot read {path}: {e}");
        std::process::exit(1);
    });
    Json::parse(text.trim()).unwrap_or_else(|e| {
        eprintln!(
            "hemprof: {path}: invalid JSON ({e}) — expected the output of \
             `hemprof <kernel> --report json`"
        );
        std::process::exit(1);
    })
}

/// Signed A->B change with a percentage (against A when non-zero).
fn delta(a: u64, b: u64) -> String {
    let d = b as i128 - a as i128;
    if a == 0 {
        format!("({d:+})")
    } else {
        format!("({:+}, {:+.1}%)", d, 100.0 * d as f64 / a as f64)
    }
}

fn run_serve(args: &Args, perfetto_path: Option<String>, blame: bool) {
    let mut cfg = ServeConfig::new();
    if let Some(p) = args.get("--p") {
        cfg.p = p;
    }
    if let Some(b) = args.get("--backends") {
        cfg.backends = b;
    }
    if let Some(h) = args.get("--until") {
        cfg.horizon = h;
    }
    if let Some(w) = args.get("--warmup") {
        cfg.warmup = w;
    }
    let rate: f64 = args.get("--rate").unwrap_or(500.0);
    if rate < 1.0 || rate.is_nan() {
        eprintln!("hemprof: --rate must be >= 1 (mean inter-arrival gap in cycles)");
        std::process::exit(2);
    }
    let arrival = args
        .get::<String>("--arrival")
        .unwrap_or_else(|| "poisson".into());
    cfg.dist = match ArrivalDist::named(&arrival, rate) {
        Some(d) => d,
        None => usage(),
    };
    if let Some(c) = args.get("--clients") {
        cfg.clients = c;
    }
    if let Some(d) = args.get("--deadline") {
        cfg.deadline = d;
    }
    if let Some(q) = args.get("--max-queue") {
        cfg.max_queue = q;
    }
    if let Some(s) = args.get("--seed") {
        cfg.seed = s;
    }
    cfg.mode = parse_mode(args);
    cfg.cost = parse_cost(args);
    cfg.ring = args.get("--ring");
    if let Some(t) = args.get("--threads") {
        cfg.threads = t;
    }
    cfg.speculative = args.has("--speculative");
    if cfg.warmup >= cfg.horizon {
        eprintln!("hemprof: --warmup must be below --until");
        std::process::exit(2);
    }

    let drop: u16 = args.get("--drop").unwrap_or(0);
    let dup: u16 = args.get("--dup").unwrap_or(0);
    let jitter: Cycles = args.get("--jitter").unwrap_or(0);
    let fault_seed: Option<u64> = args.get("--fault-seed");
    if drop > 0 || dup > 0 || jitter > 0 || fault_seed.is_some() {
        let mut plan = FaultPlan::seeded(fault_seed.unwrap_or(cfg.seed));
        plan.drop_permille = drop;
        plan.dup_permille = dup;
        plan.jitter_max = jitter;
        cfg.fault = Some(plan);
    }

    let series_window: Option<Cycles> =
        if args.has("--series") || args.get::<Cycles>("--series-window").is_some() {
            Some(
                args.get("--series-window")
                    .unwrap_or((cfg.horizon / 50).max(1)),
            )
        } else {
            None
        };

    // One observer slot on the runtime, several consumers of the stream:
    // tee the rollup (always), the blame tracker (`blame` subcommand),
    // and the series collector (`--series`) over the same records.
    let mut fan = Fanout::new().with(Box::new(Rollup::new()));
    if blame {
        fan = fan.with(Box::new(Blame::new()));
    }
    if let Some(w) = series_window {
        fan = fan.with(Box::new(Series::new(w)));
    }
    let (mut rt, out) = cfg.run_with_observer(Box::new(fan));

    let spec = spec_summary(&rt, cfg.speculative, cfg.threads);
    let any: Box<dyn std::any::Any> = rt.take_observer().expect("fanout attached");
    let fan = any.downcast::<Fanout>().expect("a Fanout");
    let mut rollup = None;
    let mut blame_summary = None;
    let mut series_summary = None;
    for part in fan.into_parts() {
        let part: Box<dyn std::any::Any> = part;
        let part = match part.downcast::<Rollup>() {
            Ok(r) => {
                rollup = Some(r);
                continue;
            }
            Err(p) => p,
        };
        let part = match part.downcast::<Blame>() {
            Ok(b) => {
                blame_summary = Some(b.summary(0.99, 10));
                continue;
            }
            Err(p) => p,
        };
        if let Ok(s) = part.downcast::<Series>() {
            series_summary = Some(s.summary());
        }
    }
    let rollup = rollup.expect("a Rollup in the fanout");

    let stats = rt.stats();
    let mut report = Report::new(&cfg.title(), &rollup, &stats, rt.program(), rt.schemas())
        .with_sched(hem_obs::SchedSummary::from_stats(&stats.sched))
        .with_service(cfg.summary(&out));
    if let Some(b) = blame_summary {
        report = report.with_blame(b);
    }
    if let Some(s) = &series_summary {
        report = report.with_series(s.clone());
    }
    if let Some(s) = &spec {
        report = report.with_speculative(s.clone());
    }
    emit(
        args,
        report,
        &mut rt,
        perfetto_path,
        Some(cfg.horizon),
        spec,
        series_summary,
    );
}

/// `--shard-map profile`: run a cheap single-threaded pilot of the same
/// kernel and return its per-node busy time as shard weights. The pilot
/// uses a tiny trace ring (the rollup streams past it, so the weights
/// are exact) and no report is printed for it.
fn pilot_weights(cfg: &ProfileConfig) -> Vec<u64> {
    let mut pilot = cfg.clone();
    pilot.threads = 1;
    pilot.speculative = false;
    pilot.ring = Some(64);
    let mut rt = pilot.run_with_observer(Box::new(Rollup::new()));
    let any: Box<dyn std::any::Any> = rt.take_observer().expect("pilot rollup attached");
    let rollup = any.downcast::<Rollup>().expect("a Rollup");
    let w = rollup.node_busy_weights(cfg.p);
    eprintln!(
        "hemprof: profile-guided shard map from pilot run (busy-time total {} cycles over {} nodes)",
        w.iter().sum::<u64>(),
        w.len()
    );
    w
}

/// Host-side speculation diagnostics for the report and the Perfetto
/// counter track. `None` when the run wasn't speculative (the simulated
/// stats are executor-invariant, so there is nothing to add).
fn spec_summary(rt: &Runtime, speculative: bool, threads: usize) -> Option<hem_obs::SpecSummary> {
    if !speculative || threads <= 1 {
        return None;
    }
    let s = rt.spec_stats();
    Some(hem_obs::SpecSummary {
        threads,
        windows: s.windows,
        serial_steps: s.serial_steps,
        rollbacks: s.rollbacks,
        anti_messages: s.anti_messages,
        ckpt_nodes: s.ckpt_nodes,
        max_window: s.max_window,
    })
}

/// Build the report from the *streamed* rollup (exact under ring
/// truncation), not from the drained ring.
fn report_from(rt: &mut Runtime, title: &str) -> Report {
    let any: Box<dyn std::any::Any> = rt.take_observer().expect("rollup attached");
    let rollup = any.downcast::<Rollup>().expect("a Rollup");
    let stats = rt.stats();
    Report::new(title, &rollup, &stats, rt.program(), rt.schemas())
        .with_sched(hem_obs::SchedSummary::from_stats(&stats.sched))
}

/// Print the report, then serve the ring-dependent extras (`--events`,
/// `--perfetto`, `--critical-path`). `horizon` clamps the critical path
/// for horizon-bounded runs.
fn emit(
    args: &Args,
    report: Report,
    rt: &mut Runtime,
    perfetto_path: Option<String>,
    horizon: Option<Cycles>,
    spec: Option<hem_obs::SpecSummary>,
    series: Option<hem_obs::SeriesSummary>,
) {
    let stats = rt.stats();
    if stats.sched.dropped_events > 0 {
        eprintln!(
            "hemprof: WARNING: the trace ring evicted {} records; the rollup \
             report below streamed past the ring and is exact, but --events, \
             --perfetto and --critical-path read a TRUNCATED event stream \
             (raise --ring or drop it for an unbounded trace)",
            stats.sched.dropped_events
        );
    }

    match args.get::<String>("--report").as_deref() {
        None | Some("table") => print!("{}", report.text()),
        Some("json") => println!("{}", report.json()),
        Some(_) => usage(),
    }

    let need_records =
        args.has("--events") || args.has("--critical-path") || perfetto_path.is_some();
    if !need_records {
        return;
    }
    let records = rt.take_trace();

    if args.has("--events") {
        for rec in &records {
            println!(
                "{:<12} {}",
                rec.at,
                hem_obs::describe(&rec.event, rt.program())
            );
        }
        println!();
    }

    let need_timeline = args.has("--critical-path") || perfetto_path.is_some();
    if !need_timeline {
        return;
    }
    let tl = Timeline::build(&records, stats.per_node.len());

    if let Some(path) = perfetto_path {
        let json =
            perfetto::to_json_full(&records, &tl, rt.program(), spec.as_ref(), series.as_ref());
        std::fs::write(&path, &json).unwrap_or_else(|e| {
            eprintln!("hemprof: cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!(
            "hemprof: wrote {path} ({} bytes; open at ui.perfetto.dev)",
            json.len()
        );
    }

    if args.has("--critical-path") {
        let cp = match horizon {
            Some(h) => critpath::critical_path_until(&tl, h),
            None => critpath::critical_path(&tl),
        };
        println!(
            "\ncritical path ({} segments, {} cycles == {}):",
            cp.segments.len(),
            cp.total,
            if horizon.is_some() {
                "min(makespan, horizon)"
            } else {
                "makespan"
            }
        );
        for cls in [
            SegClass::Compute,
            SegClass::Dispatch,
            SegClass::Network,
            SegClass::Blocked,
            SegClass::Idle,
        ] {
            let t = cp.time_in(cls);
            if t > 0 {
                println!(
                    "  {:<9} {:>12} cycles ({:>5.1}%)",
                    cls.to_string(),
                    t,
                    100.0 * t as f64 / cp.total.max(1) as f64
                );
            }
        }
        let show = 12.min(cp.segments.len());
        println!("  longest segments:");
        let mut by_len: Vec<_> = cp.segments.iter().collect();
        by_len.sort_by_key(|s| std::cmp::Reverse(s.dur()));
        for s in by_len.iter().take(show) {
            match s.from_node {
                Some(f) => println!(
                    "    [{:>10}..{:>10}] n{} <- n{} {} ({} cycles)",
                    s.start,
                    s.end,
                    s.node,
                    f,
                    s.class,
                    s.dur()
                ),
                None => println!(
                    "    [{:>10}..{:>10}] n{} {} ({} cycles)",
                    s.start,
                    s.end,
                    s.node,
                    s.class,
                    s.dur()
                ),
            }
        }

        println!("\nper-node breakdown (cycles; every row sums to the makespan):");
        println!(
            "  {:>5} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}",
            "node", "compute", "dispatch", "network", "blocked", "idle", "slack"
        );
        let bds = critpath::node_breakdowns(&tl);
        let shown = bds.len().min(16);
        for b in bds.iter().take(shown) {
            println!(
                "  {:>5} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}",
                b.node, b.compute, b.dispatch, b.network, b.blocked, b.idle, b.slack
            );
        }
        if bds.len() > shown {
            println!("  ... ({} more nodes)", bds.len() - shown);
        }
    }
}
