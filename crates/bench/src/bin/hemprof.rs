//! `hemprof` — profile an app kernel on the simulated machine.
//!
//! Runs one of the four paper kernels with tracing on and prints a
//! Table-style rollup report; optionally exports a Perfetto timeline and
//! the virtual-time critical path.
//!
//! ```text
//! hemprof <sor|md|em3d|fib> [options]
//!   --p N             machine size (default 16)
//!   --size N          problem size (kernel-specific default)
//!   --iters N         iterations (default 1)
//!   --seed S          generation seed (default 20260806)
//!   --layout L        spatial|random (MD) / high|low locality (EM3D)
//!   --style S         em3d style: pull|push|forward
//!   --mode M          hybrid|parallel (default hybrid)
//!   --cost C          cm5|t3d (default cm5)
//!   --threads N       host worker threads (sharded executor; default 1)
//!   --ring N          bound the trace ring to N records
//!   --report F        table|json (default table)
//!   --perfetto FILE   write a Perfetto trace_event JSON timeline
//!   --critical-path   print the longest virtual-time path
//!   --events          dump the raw event log (small runs only)
//! ```
//!
//! Example: `hemprof sor --p 64 --perfetto sor.json --critical-path`

use hem_bench::profile::{Kernel, ProfileConfig};
use hem_bench::Args;
use hem_core::ExecMode;
use hem_machine::cost::CostModel;
use hem_obs::{critpath, perfetto, Report, Rollup, SegClass, Timeline};

fn usage() -> ! {
    eprintln!("usage: hemprof <sor|md|em3d|fib> [--p N] [--size N] [--iters N] [--seed S]");
    eprintln!("               [--layout spatial|random] [--style pull|push|forward]");
    eprintln!("               [--mode hybrid|parallel] [--cost cm5|t3d] [--threads N] [--ring N]");
    eprintln!("               [--report table|json] [--perfetto FILE] [--critical-path]");
    eprintln!("               [--events]");
    std::process::exit(2);
}

fn main() {
    let args = Args::capture();
    let kernel = match std::env::args().nth(1) {
        Some(name) if !name.starts_with('-') => match Kernel::parse(&name) {
            Some(k) => k,
            None => {
                eprintln!("hemprof: unknown kernel '{name}' (expected sor, md, em3d, or fib)");
                std::process::exit(2);
            }
        },
        _ => usage(),
    };

    let mut cfg = ProfileConfig::new(kernel);
    if let Some(p) = args.get("--p") {
        cfg.p = p;
    }
    if let Some(s) = args.get("--size") {
        cfg.size = s;
    }
    if let Some(i) = args.get("--iters") {
        cfg.iters = i;
    }
    if let Some(s) = args.get("--seed") {
        cfg.seed = s;
    }
    if let Some(l) = args.get::<String>("--layout") {
        cfg.high_locality = match l.as_str() {
            "spatial" | "high" => true,
            "random" | "low" => false,
            _ => usage(),
        };
    }
    if let Some(s) = args.get::<String>("--style") {
        cfg.style = match s.as_str() {
            "pull" => hem_apps::em3d::Style::Pull,
            "push" => hem_apps::em3d::Style::Push,
            "forward" => hem_apps::em3d::Style::Forward,
            _ => usage(),
        };
    }
    if let Some(m) = args.get::<String>("--mode") {
        cfg.mode = match m.as_str() {
            "hybrid" => ExecMode::Hybrid,
            "parallel" | "parallel-only" => ExecMode::ParallelOnly,
            _ => usage(),
        };
    }
    if let Some(c) = args.get::<String>("--cost") {
        cfg.cost = match c.as_str() {
            "cm5" => CostModel::cm5(),
            "t3d" => CostModel::t3d(),
            _ => usage(),
        };
    }
    cfg.ring = args.get("--ring");
    if let Some(t) = args.get("--threads") {
        cfg.threads = t;
    }

    // Validate the perfetto destination before the (potentially long) run,
    // so a typo'd path fails in milliseconds, not minutes.
    let perfetto_path = args.get::<String>("--perfetto");
    if let Some(path) = &perfetto_path {
        if let Err(e) = std::fs::OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
        {
            eprintln!("hemprof: cannot write {path}: {e}");
            std::process::exit(1);
        }
    }

    let mut rt = cfg.run();
    let records = rt.take_trace();
    let stats = rt.stats();

    if stats.sched.dropped_events > 0 {
        eprintln!(
            "hemprof: WARNING: the trace ring evicted {} records; every report \
             below is computed from a TRUNCATED event stream (raise --ring or \
             drop it for an unbounded trace)",
            stats.sched.dropped_events
        );
    }

    if args.has("--events") {
        for rec in &records {
            println!(
                "{:<12} {}",
                rec.at,
                hem_obs::describe(&rec.event, rt.program())
            );
        }
        println!();
    }

    let rollup = Rollup::from_records(&records);
    let report = Report::new(&cfg.title(), &rollup, &stats, rt.program(), rt.schemas());
    match args.get::<String>("--report").as_deref() {
        None | Some("table") => print!("{}", report.text()),
        Some("json") => println!("{}", report.json()),
        Some(_) => usage(),
    }

    let need_timeline = args.has("--critical-path") || perfetto_path.is_some();
    if !need_timeline {
        return;
    }
    let tl = Timeline::build(&records, stats.per_node.len());

    if let Some(path) = perfetto_path {
        let json = perfetto::to_json(&records, &tl, rt.program());
        std::fs::write(&path, &json).unwrap_or_else(|e| {
            eprintln!("hemprof: cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!(
            "hemprof: wrote {path} ({} bytes; open at ui.perfetto.dev)",
            json.len()
        );
    }

    if args.has("--critical-path") {
        let cp = critpath::critical_path(&tl);
        println!(
            "\ncritical path ({} segments, {} cycles == makespan):",
            cp.segments.len(),
            cp.total
        );
        for cls in [
            SegClass::Compute,
            SegClass::Dispatch,
            SegClass::Network,
            SegClass::Blocked,
            SegClass::Idle,
        ] {
            let t = cp.time_in(cls);
            if t > 0 {
                println!(
                    "  {:<9} {:>12} cycles ({:>5.1}%)",
                    cls.to_string(),
                    t,
                    100.0 * t as f64 / cp.total.max(1) as f64
                );
            }
        }
        let show = 12.min(cp.segments.len());
        println!("  longest segments:");
        let mut by_len: Vec<_> = cp.segments.iter().collect();
        by_len.sort_by_key(|s| std::cmp::Reverse(s.dur()));
        for s in by_len.iter().take(show) {
            match s.from_node {
                Some(f) => println!(
                    "    [{:>10}..{:>10}] n{} <- n{} {} ({} cycles)",
                    s.start,
                    s.end,
                    s.node,
                    f,
                    s.class,
                    s.dur()
                ),
                None => println!(
                    "    [{:>10}..{:>10}] n{} {} ({} cycles)",
                    s.start,
                    s.end,
                    s.node,
                    s.class,
                    s.dur()
                ),
            }
        }

        println!("\nper-node breakdown (cycles; every row sums to the makespan):");
        println!(
            "  {:>5} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}",
            "node", "compute", "dispatch", "network", "blocked", "idle", "slack"
        );
        let bds = critpath::node_breakdowns(&tl);
        let shown = bds.len().min(16);
        for b in bds.iter().take(shown) {
            println!(
                "  {:>5} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}",
                b.node, b.compute, b.dispatch, b.network, b.blocked, b.idle, b.slack
            );
        }
        if bds.len() > shown {
            println!("  ... ({} more nodes)", bds.len() - shown);
        }
    }
}
