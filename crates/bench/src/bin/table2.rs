//! Table 2 — call and fallback overheads (dynamic instructions beyond a C
//! function call) for every caller-schema × callee-schema combination,
//! measured on the CM-5 cost model.
//!
//! `cargo run --release -p hem-bench --bin table2`

use hem_bench::micro::{self, CalleeKind, CallerKind};
use hem_bench::report::Table;
use hem_machine::cost::CostModel;

fn main() {
    let cost = CostModel::cm5();
    let suite = micro::build();

    println!("Table 2: overheads at the caller, in instructions beyond a basic");
    println!(
        "C function call (C call = {} on this machine).\n",
        cost.plain_call
    );

    let mut left = Table::new(
        "sequential invocation completes on the stack",
        &["caller \\ callee", "NB", "MB", "CP"],
    );
    for caller in CallerKind::ALL {
        let mut row = vec![caller.label().to_string()];
        for callee in CalleeKind::DONE {
            if caller == CallerKind::Nb && callee != CalleeKind::Nb {
                row.push("-".into());
                continue;
            }
            let cell = micro::measure(&suite, caller, callee, &cost);
            row.push(format!("{:.0}", cell.overhead()));
        }
        left.row(row);
    }
    left.print();

    let mut right = Table::new(
        "additional cost when the invocation falls back into the heap",
        &["caller \\ callee", "MB", "CP"],
    );
    for caller in CallerKind::ALL {
        if caller == CallerKind::Nb {
            continue; // NB callers cannot absorb a fallback.
        }
        let mut row = vec![caller.label().to_string()];
        for (blocked, done) in [
            (CalleeKind::MbBlock, CalleeKind::Mb),
            (CalleeKind::CpBlock, CalleeKind::Cp),
        ] {
            let b = micro::measure(&suite, caller, blocked, &cost).overhead();
            let d = micro::measure(&suite, caller, done, &cost).overhead();
            row.push(format!("{:.0}", b - d));
        }
        right.row(row);
    }
    right.print();

    let par = micro::parallel_invoke_cost(&cost);
    println!("heap-based (parallel) invocation for comparison: {par:.0} instructions");
    println!("(paper: ~130; sequential calls are an order of magnitude cheaper,");
    println!(" and the worst fallback is comparable to one heap invocation, so");
    println!(" speculative sequential execution wins unless a method blocks");
    println!(" repeatedly — hence: revert to the parallel version after the");
    println!(" first fallback.)");
    println!();
    println!("note: our fallback figures include the message handling the");
    println!("blocked callee's remote round trip performs on the caller node,");
    println!("which the paper's caller-side accounting excludes.");
}
