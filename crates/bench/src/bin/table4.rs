//! Table 4 — SOR on 64-node configurations of the CM-5 and T3D cost
//! models: hybrid vs parallel-only across block-cyclic block sizes (i.e.
//! across data-locality levels).
//!
//! `cargo run --release -p hem-bench --bin table4 [--full] [--n N] [--iters I]`

use hem_analysis::InterfaceSet;
use hem_apps::sor;
use hem_bench::report::{secs, speedup, Table};
use hem_bench::Args;
use hem_core::ExecMode;
use hem_machine::cost::CostModel;
use hem_machine::topology::ProcGrid;

fn main() {
    let args = Args::capture();
    let full = args.has("--full");
    let n: u32 = args.get("--n").unwrap_or(if full { 512 } else { 192 });
    let iters: u32 = args.get("--iters").unwrap_or(if full { 100 } else { 2 });
    let procs = ProcGrid::square(64);
    // Block sizes from fully cyclic to pure block (n / 8 per processor).
    let mut blocks = vec![1u32, 2, 4, n / 16, n / 8];
    blocks.dedup();

    println!(
        "Table 4: SOR ({n}x{n} grid, {iters} iterations) on 64-node machines.\n\
         Block Size = block-cyclic distribution parameter; Local:Remote is the\n\
         measured method-invocation ratio for that layout.\n"
    );

    for cost in [CostModel::cm5(), CostModel::t3d()] {
        let mut t = Table::new(
            &format!("SOR on {} (64 nodes)", cost.name),
            &[
                "block",
                "local:remote",
                "local frac",
                "par-only",
                "hybrid",
                "speedup",
                "heap ctxs",
            ],
        );
        for &block in &blocks {
            let mut times = [0.0f64; 2];
            let mut ratio = 0.0;
            let mut frac = 0.0;
            let mut ctxs = 0;
            for (i, mode) in [ExecMode::ParallelOnly, ExecMode::Hybrid]
                .into_iter()
                .enumerate()
            {
                let ids = sor::build();
                let mut rt = hem_bench::rt(
                    ids.program.clone(),
                    procs.len(),
                    cost.clone(),
                    mode,
                    InterfaceSet::Full,
                );
                let inst = sor::setup(&mut rt, &ids, sor::SorParams { n, block, procs });
                sor::run(&mut rt, &inst, iters).expect("sor");
                times[i] = rt.cost.seconds(rt.makespan());
                let tot = rt.stats().totals();
                ratio = tot.local_invokes as f64 / tot.remote_invokes.max(1) as f64;
                frac = tot.local_fraction();
                if mode == ExecMode::Hybrid {
                    ctxs = tot.ctx_alloc;
                }
            }
            t.row(vec![
                block.to_string(),
                format!("{ratio:.2}:1"),
                format!("{frac:.3}"),
                secs(times[0]),
                secs(times[1]),
                speedup(times[0], times[1]),
                ctxs.to_string(),
            ]);
        }
        t.print();
    }

    println!("expected shape (paper §4.3.1): hybrid speedup grows with the");
    println!("block size from ~1x (fully cyclic, locality ~0.08) toward ~2.3x");
    println!("(pure block, locality ~0.94); at very low locality on the CM-5");
    println!("the hybrid can dip slightly below 1x due to fallback volume.");
}
