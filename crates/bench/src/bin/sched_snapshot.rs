//! `sched_snapshot` — write a machine-readable scheduler-throughput
//! snapshot (`BENCH_sched_throughput.json`) for CI to archive.
//!
//! The criterion-shim benches in `benches/sched_throughput.rs` guard
//! bit-identity and print human-readable numbers; this binary distills
//! the same runs into one small JSON artifact per commit — per kernel ×
//! machine size × executor: the (deterministic) makespan and dispatched
//! event count, plus the median host wall time over a handful of
//! repetitions — so a perf regression shows up as a diffable number in
//! the CI artifact trail rather than a vibe in a log.
//!
//! ```text
//! sched_snapshot [--out FILE] [--reps N] [--procs P,P,...]
//! ```
//!
//! Defaults: `BENCH_sched_throughput.json` in the working directory, 5
//! repetitions, machine sizes 1,16,64. Host times vary run to run — only
//! the virtual-time columns are comparable across machines.

use std::time::Instant;

use hem_analysis::InterfaceSet;
use hem_apps::{em3d, sor};
use hem_bench::Args;
use hem_core::{ExecMode, Runtime, SchedImpl};
use hem_machine::cost::CostModel;
use hem_machine::topology::ProcGrid;

const SCHEDS: [(&str, SchedImpl); 4] = [
    ("event-index", SchedImpl::EventIndex),
    ("linear-scan", SchedImpl::LinearScan),
    ("sharded-2", SchedImpl::Sharded { threads: 2 }),
    ("speculative-2", SchedImpl::Speculative { threads: 2 }),
];

/// One SOR run (64x64 grid, 4x4 blocks) on `p` nodes.
fn run_sor(p: u32, sched: SchedImpl) -> Runtime {
    let ids = sor::build();
    let mut rt = hem_apps::make_runtime(
        ids.program.clone(),
        p,
        CostModel::cm5(),
        ExecMode::Hybrid,
        InterfaceSet::Full,
    );
    rt.sched_impl = sched;
    let inst = sor::setup(
        &mut rt,
        &ids,
        sor::SorParams {
            n: 64,
            block: 4,
            procs: ProcGrid::square(p),
        },
    );
    sor::run(&mut rt, &inst, 1).unwrap();
    rt
}

/// One EM3D run (4 nodes' worth of E/H objects per processor).
fn run_em3d(p: u32, sched: SchedImpl) -> Runtime {
    let ids = em3d::build(4);
    let graph = em3d::generate(4 * p, 4, p, 0.5, 7);
    let mut rt = hem_apps::make_runtime(
        ids.program.clone(),
        p,
        CostModel::cm5(),
        ExecMode::Hybrid,
        InterfaceSet::Full,
    );
    rt.sched_impl = sched;
    let inst = em3d::setup(&mut rt, &ids, &graph);
    em3d::run(&mut rt, &inst, em3d::Style::Pull, 1).unwrap();
    rt
}

struct Row {
    kernel: &'static str,
    p: u32,
    sched: &'static str,
    makespan: u64,
    events: u64,
    host_us_median: u128,
}

fn measure(
    kernel: &'static str,
    run: fn(u32, SchedImpl) -> Runtime,
    p: u32,
    label: &'static str,
    sched: SchedImpl,
    reps: usize,
) -> Row {
    let mut times: Vec<u128> = Vec::with_capacity(reps);
    let mut makespan = 0;
    let mut events = 0;
    for _ in 0..reps {
        let t0 = Instant::now();
        let rt = run(p, sched);
        times.push(t0.elapsed().as_micros());
        makespan = rt.makespan();
        events = rt.stats().sched.events_dispatched;
    }
    times.sort_unstable();
    Row {
        kernel,
        p,
        sched: label,
        makespan,
        events,
        host_us_median: times[times.len() / 2],
    }
}

fn main() {
    let args = Args::capture();
    let out = args
        .get::<String>("--out")
        .unwrap_or_else(|| "BENCH_sched_throughput.json".into());
    let reps: usize = args.get("--reps").unwrap_or(5).max(1);
    let procs: Vec<u32> = match args.get::<String>("--procs") {
        Some(s) => s
            .split(',')
            .map(|t| t.trim().parse().expect("--procs takes a,b,c"))
            .collect(),
        None => vec![1, 16, 64],
    };

    let mut rows: Vec<Row> = Vec::new();
    for &(kernel, run) in &[
        ("sor64", run_sor as fn(u32, SchedImpl) -> Runtime),
        ("em3d_4xP", run_em3d),
    ] {
        for &p in &procs {
            for (label, sched) in SCHEDS {
                // The parallel executors only engage above one node.
                if p == 1 && !matches!(sched, SchedImpl::EventIndex | SchedImpl::LinearScan) {
                    continue;
                }
                let row = measure(kernel, run, p, label, sched, reps);
                eprintln!(
                    "{:<10} P{:<4} {:<14} makespan {:>10}  events {:>9}  host median {:>8} us",
                    row.kernel, row.p, row.sched, row.makespan, row.events, row.host_us_median
                );
                rows.push(row);
            }
        }
    }

    // Sanity: the virtual-time columns are executor-invariant — refuse to
    // write a snapshot that disagrees with itself.
    for w in rows.chunk_by(|a, b| a.kernel == b.kernel && a.p == b.p) {
        for r in &w[1..] {
            assert_eq!(
                (r.makespan, r.events),
                (w[0].makespan, w[0].events),
                "{}/P{}: {} and {} disagree on the simulated run",
                r.kernel,
                r.p,
                r.sched,
                w[0].sched
            );
        }
    }

    let mut o = String::from("{\"reps\":");
    o.push_str(&reps.to_string());
    o.push_str(",\"rows\":[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            o.push(',');
        }
        o.push_str(&format!(
            "{{\"kernel\":\"{}\",\"p\":{},\"sched\":\"{}\",\"makespan\":{},\
             \"events_dispatched\":{},\"host_us_median\":{}}}",
            r.kernel, r.p, r.sched, r.makespan, r.events, r.host_us_median
        ));
    }
    o.push_str("]}");
    std::fs::write(&out, &o).unwrap_or_else(|e| {
        eprintln!("sched_snapshot: cannot write {out}: {e}");
        std::process::exit(1);
    });
    eprintln!("sched_snapshot: wrote {out} ({} rows)", rows.len());
}
