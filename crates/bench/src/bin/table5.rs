//! Table 5 — MD-Force on 64-node configurations of the CM-5 and T3D cost
//! models: hybrid vs parallel-only under a low-locality random layout and
//! a high-locality spatial (orthogonal recursive bisection) layout.
//!
//! `cargo run --release -p hem-bench --bin table5 [--full] [--atoms N]`

use hem_analysis::InterfaceSet;
use hem_apps::md::{self, Layout};
use hem_bench::report::{secs, speedup, Table};
use hem_bench::Args;
use hem_core::ExecMode;
use hem_machine::cost::CostModel;

fn main() {
    let args = Args::capture();
    let full = args.has("--full");
    // Paper: 10503 atoms, 1 iteration.
    let n_atoms: u32 = args
        .get("--atoms")
        .unwrap_or(if full { 10503 } else { 2000 });
    let cutoff = 1.1f64;
    let nodes = 64u32;

    println!(
        "Table 5: MD-Force kernel ({n_atoms} synthetic clustered atoms,\n\
         cutoff {cutoff}, 1 iteration) on 64-node machines. The paper's\n\
         protein input is substituted by Gaussian clusters with the same\n\
         pair-list locality structure (see DESIGN.md).\n"
    );

    for cost in [CostModel::cm5(), CostModel::t3d()] {
        let mut t = Table::new(
            &format!("MD-Force on {} (64 nodes)", cost.name),
            &[
                "layout",
                "pairs",
                "local frac",
                "par-only",
                "hybrid",
                "speedup",
            ],
        );
        for layout in [Layout::Random, Layout::Spatial] {
            let mut times = [0.0f64; 2];
            let mut frac = 0.0;
            let mut pairs = 0usize;
            for (i, mode) in [ExecMode::ParallelOnly, ExecMode::Hybrid]
                .into_iter()
                .enumerate()
            {
                let ids = md::build();
                let sys = md::generate(n_atoms, cutoff, nodes, layout, 20260706);
                pairs = sys.pairs.len();
                let mut rt = hem_bench::rt(
                    ids.program.clone(),
                    nodes,
                    cost.clone(),
                    mode,
                    InterfaceSet::Full,
                );
                let inst = md::setup(&mut rt, &ids, &sys);
                md::run_iteration(&mut rt, &inst).expect("md");
                times[i] = rt.cost.seconds(rt.makespan());
                if mode == ExecMode::Hybrid {
                    frac = rt.stats().totals().local_fraction();
                }
            }
            t.row(vec![
                layout.to_string(),
                pairs.to_string(),
                format!("{frac:.3}"),
                secs(times[0]),
                secs(times[1]),
                speedup(times[0], times[1]),
            ]);
        }
        t.print();
    }

    println!("expected shape (paper §4.3.2): ~1.0x for the random layout");
    println!("(communication-bound; invocation mechanisms don't change the");
    println!("message cost) and ~1.4-1.5x for the spatial layout, where most");
    println!("pair computations run entirely on the stack.");
}
