//! Table 1 — the invocation schema taxonomy, demonstrated by the schemas
//! the global flow analysis actually selects for every method of the
//! evaluation programs.
//!
//! `cargo run -p hem-bench --bin table1`

use hem_analysis::{Analysis, InterfaceSet};
use hem_bench::report::Table;
use hem_ir::Program;

fn dump(name: &str, program: &Program, t: &mut Table) {
    let a = Analysis::analyze(program);
    let schemas = a.schemas(InterfaceSet::Full);
    for (i, m) in program.methods.iter().enumerate() {
        let mid = hem_ir::MethodId(i as u32);
        t.row(vec![
            name.to_string(),
            format!("{}::{}", program.classes[m.class.idx()].name, m.name),
            schemas.of(mid).to_string(),
            if a.facts.blocks(mid) { "yes" } else { "no" }.into(),
            if a.facts.needs_cont(mid) { "yes" } else { "no" }.into(),
            if m.inlinable { "yes" } else { "" }.into(),
        ]);
    }
}

fn main() {
    println!("Table 1: invocation schemas (parallel version always exists;");
    println!("the sequential interface below is selected per method by the");
    println!("may-block / requires-continuation analyses)\n");
    println!("  schema | context    | continuation | reclamation");
    println!("  -------+------------+--------------+------------------");
    println!("  par    | heap       | eager        | on reply/forward");
    println!("  NB     | stack      | none         | C call return");
    println!("  MB     | stack,lazy | linked late  | return or heap");
    println!("  CP     | stack,lazy | lazy         | return or heap");
    println!();

    let mut t = Table::new(
        "schema selection over the evaluation programs",
        &[
            "program",
            "method",
            "schema",
            "may-block",
            "needs-cont",
            "inlinable",
        ],
    );
    dump(
        "call-intensive",
        &hem_apps::callintensive::build().program,
        &mut t,
    );
    dump("sor", &hem_apps::sor::build().program, &mut t);
    dump("md-force", &hem_apps::md::build().program, &mut t);
    dump("em3d", &hem_apps::em3d::build(16).program, &mut t);
    dump("sync-structures", &hem_apps::sync::build().program, &mut t);
    t.print();

    // Histogram summary.
    let mut h = Table::new("schema histogram", &["program", "NB", "MB", "CP"]);
    for (name, p) in [
        ("call-intensive", hem_apps::callintensive::build().program),
        ("sor", hem_apps::sor::build().program),
        ("md-force", hem_apps::md::build().program),
        ("em3d", hem_apps::em3d::build(16).program),
        ("sync-structures", hem_apps::sync::build().program),
    ] {
        let a = Analysis::analyze(&p);
        let (nb, mb, cp) = a.schemas(InterfaceSet::Full).histogram();
        h.row(vec![
            name.into(),
            nb.to_string(),
            mb.to_string(),
            cp.to_string(),
        ]);
    }
    h.print();
}
