//! Table 6 — EM3D in its three communication styles (pull / push /
//! forward) under low- and high-locality placements, on a 64-node CM-5
//! and a 16-node T3D (the paper's configurations).
//!
//! `cargo run --release -p hem-bench --bin table6 [--full] [--nodes-each N] [--iters I]`

use hem_analysis::InterfaceSet;
use hem_apps::em3d::{self, Style};
use hem_bench::report::{secs, speedup, Table};
use hem_bench::Args;
use hem_core::ExecMode;
use hem_machine::cost::CostModel;

fn main() {
    let args = Args::capture();
    let full = args.has("--full");
    // Paper: 8192 graph nodes of degree 16, 100 iterations.
    let n_each: u32 = args
        .get("--nodes-each")
        .unwrap_or(if full { 4096 } else { 512 });
    let degree = 16u32;
    let iters: u32 = args.get("--iters").unwrap_or(if full { 100 } else { 2 });

    println!(
        "Table 6: EM3D ({} graph nodes of degree {degree}, {iters} iterations)\n\
         on a 64-node CM-5 and a 16-node T3D. Locality = probability an\n\
         in-neighbour is co-located (low = random placement, high = 99%).\n",
        2 * n_each
    );

    for (cost, machine_nodes) in [(CostModel::cm5(), 64u32), (CostModel::t3d(), 16u32)] {
        let mut t = Table::new(
            &format!("EM3D on {} ({} nodes)", cost.name, machine_nodes),
            &[
                "locality",
                "version",
                "local:remote",
                "par-only",
                "hybrid",
                "speedup",
            ],
        );
        for (lname, p_local) in [("low", 0.0f64), ("high", 0.99f64)] {
            for style in [Style::Pull, Style::Push, Style::Forward] {
                let mut times = [0.0f64; 2];
                let mut ratio = 0.0;
                for (i, mode) in [ExecMode::ParallelOnly, ExecMode::Hybrid]
                    .into_iter()
                    .enumerate()
                {
                    let ids = em3d::build(degree);
                    let g = em3d::generate(n_each, degree, machine_nodes, p_local, 424242);
                    let mut rt = hem_bench::rt(
                        ids.program.clone(),
                        machine_nodes,
                        cost.clone(),
                        mode,
                        InterfaceSet::Full,
                    );
                    let inst = em3d::setup(&mut rt, &ids, &g);
                    em3d::run(&mut rt, &inst, style, iters).expect("em3d");
                    times[i] = rt.cost.seconds(rt.makespan());
                    let tot = rt.stats().totals();
                    ratio = tot.local_invokes as f64 / tot.remote_invokes.max(1) as f64;
                }
                t.row(vec![
                    lname.into(),
                    style.to_string(),
                    format!("{ratio:.3}:1"),
                    secs(times[0]),
                    secs(times[1]),
                    speedup(times[0], times[1]),
                ]);
            }
        }
        t.print();
    }

    println!("expected shape (paper §4.3.3): hybrid speedups from ~1x to ~4x;");
    println!("pull gives the best absolute times (no intermediate storage);");
    println!("push beats forward on the CM-5 (cheap single-packet replies),");
    println!("forward beats push on the T3D at low locality (fewer messages");
    println!("despite carrying continuations); at high locality the hybrid");
    println!("mechanisms win by running local updates entirely on the stack.");
}
