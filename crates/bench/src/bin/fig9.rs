//! Fig. 9 — the reason SOR benefits from the hybrid mechanisms: heap
//! contexts are only created for grid points on the *perimeter* of each
//! processor's blocks, while all interior points execute on the stack.
//!
//! This harness counts, per block size, the interior points whose whole
//! 5-point stencil is node-local (analytically) and compares against the
//! heap contexts the hybrid run actually allocated.
//!
//! `cargo run --release -p hem-bench --bin fig9 [--n N]`

use hem_analysis::InterfaceSet;
use hem_apps::sor;
use hem_bench::report::Table;
use hem_bench::Args;
use hem_core::ExecMode;
use hem_machine::cost::CostModel;
use hem_machine::topology::{BlockCyclic, ProcGrid};

fn main() {
    let args = Args::capture();
    let n: u32 = args.get("--n").unwrap_or(96);
    let procs = ProcGrid::square(64);
    let iters = 1u32;

    println!(
        "Fig. 9: SOR {n}x{n} on 64 nodes, one iteration. 'perimeter' counts\n\
         interior grid points with at least one off-node stencil neighbour\n\
         (these must suspend awaiting a remote get and fall back to a heap\n\
         context); 'stack points' ran entirely on the stack.\n"
    );

    let mut t = Table::new(
        "heap contexts vs block perimeter (hybrid, CM-5)",
        &[
            "block",
            "interior pts",
            "perimeter pts",
            "stack pts",
            "heap ctxs",
            "ctxs/perim",
        ],
    );
    for block in [1u32, 2, 4, 6, 12] {
        // Analytic perimeter count for this layout.
        let bc = BlockCyclic { procs, block };
        let mut perim = 0u64;
        for i in 1..n - 1 {
            for j in 1..n - 1 {
                let me = bc.owner(i, j);
                let remote = [(i - 1, j), (i + 1, j), (i, j - 1), (i, j + 1)]
                    .into_iter()
                    .any(|(a, b)| bc.owner(a, b) != me);
                if remote {
                    perim += 1;
                }
            }
        }
        let interior = (n as u64 - 2) * (n as u64 - 2);

        let ids = sor::build();
        let mut rt = hem_bench::rt(
            ids.program.clone(),
            procs.len(),
            CostModel::cm5(),
            ExecMode::Hybrid,
            InterfaceSet::Full,
        );
        let inst = sor::setup(&mut rt, &ids, sor::SorParams { n, block, procs });
        sor::run(&mut rt, &inst, iters).expect("sor");
        let ctxs = rt.stats().totals().ctx_alloc;
        t.row(vec![
            block.to_string(),
            interior.to_string(),
            perim.to_string(),
            (interior - perim).to_string(),
            ctxs.to_string(),
            format!("{:.2}", ctxs as f64 / perim.max(1) as f64),
        ]);
    }
    t.print();

    println!("expected shape: heap contexts track the perimeter count (plus a");
    println!("small constant for the per-node workers and the driver), so the");
    println!("ratio stays near 1 while block size varies the perimeter by an");
    println!("order of magnitude — exactly the paper's picture of contexts");
    println!("only on the shaded block boundary.");
}
