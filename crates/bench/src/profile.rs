//! Shared kernel runner for the `hemprof` profiler and the observability
//! integration tests: builds one of the four app kernels at a given
//! machine size / layout / seed, runs it with tracing on, and hands back
//! the runtime for analysis. Keeping this in the library (rather than in
//! the `hemprof` binary) means the CLI and the tests profile *the same*
//! runs.

use hem_analysis::InterfaceSet;
use hem_apps::md::Layout;
use hem_apps::{em3d, md, sor};
use hem_core::{ExecMode, Runtime};
use hem_machine::cost::CostModel;

/// Which kernel to profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Red-black successive over-relaxation (Table 4).
    Sor,
    /// MD-Force pair interactions (Table 5).
    Md,
    /// EM3D bipartite graph relaxation (Table 6).
    Em3d,
    /// Call-intensive `fib` (Table 3).
    Fib,
}

impl Kernel {
    /// All four, in paper order.
    pub const ALL: [Kernel; 4] = [Kernel::Fib, Kernel::Sor, Kernel::Md, Kernel::Em3d];

    /// CLI name.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Sor => "sor",
            Kernel::Md => "md",
            Kernel::Em3d => "em3d",
            Kernel::Fib => "fib",
        }
    }

    /// Parse a CLI name.
    pub fn parse(s: &str) -> Option<Kernel> {
        match s {
            "sor" => Some(Kernel::Sor),
            "md" => Some(Kernel::Md),
            "em3d" => Some(Kernel::Em3d),
            "fib" => Some(Kernel::Fib),
            _ => None,
        }
    }

    /// Default problem size (SOR grid side / MD atoms / EM3D nodes per
    /// side / fib argument) — small enough to profile quickly, large
    /// enough that every node does work at the default machine size.
    pub fn default_size(self) -> u32 {
        match self {
            Kernel::Sor => 16,
            Kernel::Md => 96,
            Kernel::Em3d => 48,
            Kernel::Fib => 14,
        }
    }
}

/// A profiling run's configuration.
#[derive(Debug, Clone)]
pub struct ProfileConfig {
    /// The kernel.
    pub kernel: Kernel,
    /// Machine size.
    pub p: u32,
    /// Problem size ([`Kernel::default_size`] when unset).
    pub size: u32,
    /// Iterations (SOR sweeps / MD iterations / EM3D relaxation steps).
    pub iters: u32,
    /// Layout/generation seed (MD clusters, EM3D graph).
    pub seed: u64,
    /// High locality (spatial MD layout, mostly-local EM3D edges) vs low
    /// (random layout, mostly-remote edges).
    pub high_locality: bool,
    /// EM3D communication style.
    pub style: em3d::Style,
    /// Execution mode.
    pub mode: ExecMode,
    /// Machine cost model.
    pub cost: CostModel,
    /// Bound the trace to a ring of this many records (`None`:
    /// unbounded).
    pub ring: Option<usize>,
    /// Host worker threads for the sharded executor; `1` (the default)
    /// runs the single-threaded event index. Every thread count yields a
    /// bit-identical trace and report.
    pub threads: usize,
    /// Use the optimistic (Time-Warp) executor instead of the
    /// conservative sharded one when `threads > 1` — checkpoints,
    /// speculative windows past the lookahead bound, rollback on
    /// stragglers. Still bit-identical; the speculation diagnostics land
    /// in the report's speculative section.
    pub speculative: bool,
    /// Per-node busy-time weights steering the sharded executor's
    /// contiguous partition (`Runtime::set_shard_weights`); `None` keeps
    /// the equal-slice map. Host-time tuning only — every weighting
    /// yields a bit-identical trace and report. Typically filled from a
    /// pilot run's `Rollup::node_busy_weights`.
    pub shard_weights: Option<Vec<u64>>,
}

impl ProfileConfig {
    /// Defaults: hybrid mode, CM-5 costs, high locality, 16 nodes.
    pub fn new(kernel: Kernel) -> ProfileConfig {
        ProfileConfig {
            kernel,
            p: 16,
            size: kernel.default_size(),
            iters: 1,
            seed: 20260806,
            high_locality: true,
            style: em3d::Style::Pull,
            mode: ExecMode::Hybrid,
            cost: CostModel::cm5(),
            ring: None,
            threads: 1,
            speculative: false,
            shard_weights: None,
        }
    }

    /// One-line caption for reports.
    pub fn title(&self) -> String {
        format!(
            "{} p={} size={} iters={} seed={} {} {}",
            self.kernel.name(),
            self.p,
            self.size,
            self.iters,
            self.seed,
            if self.high_locality {
                "high-loc"
            } else {
                "low-loc"
            },
            self.mode,
        )
    }

    /// Build the kernel, enable tracing, run it, and return the runtime
    /// (trace still buffered inside). Panics on a trap — the profiled
    /// kernels are deadlock-free by construction.
    pub fn run(&self) -> Runtime {
        self.run_impl(None)
    }

    /// Same as [`ProfileConfig::run`], with a zero-virtual-time observer
    /// attached before the kernel starts, so it sees the full stream.
    pub fn run_with_observer(&self, obs: Box<dyn hem_core::Observer>) -> Runtime {
        self.run_impl(Some(obs))
    }

    fn run_impl(&self, obs: Option<Box<dyn hem_core::Observer>>) -> Runtime {
        match self.kernel {
            Kernel::Sor => {
                let ids = sor::build();
                let mut rt = crate::rt(
                    ids.program.clone(),
                    self.p,
                    self.cost.clone(),
                    self.mode,
                    InterfaceSet::Full,
                );
                self.arm(&mut rt, obs);
                let params = sor::SorParams {
                    n: self.size,
                    block: 4,
                    procs: hem_machine::topology::ProcGrid::square(self.p),
                };
                let inst = sor::setup(&mut rt, &ids, params);
                sor::run(&mut rt, &inst, self.iters).expect("sor run");
                rt
            }
            Kernel::Md => {
                let ids = md::build();
                let layout = if self.high_locality {
                    Layout::Spatial
                } else {
                    Layout::Random
                };
                let sys = md::generate(self.size, 1.1, self.p, layout, self.seed);
                let mut rt = crate::rt(
                    ids.program.clone(),
                    self.p,
                    self.cost.clone(),
                    self.mode,
                    InterfaceSet::Full,
                );
                self.arm(&mut rt, obs);
                let inst = md::setup(&mut rt, &ids, &sys);
                for _ in 0..self.iters {
                    md::run_iteration(&mut rt, &inst).expect("md iteration");
                }
                rt
            }
            Kernel::Em3d => {
                let ids = em3d::build(4);
                let p_local = if self.high_locality { 0.9 } else { 0.2 };
                let g = em3d::generate(self.size, 4, self.p, p_local, self.seed);
                let mut rt = crate::rt(
                    ids.program.clone(),
                    self.p,
                    self.cost.clone(),
                    self.mode,
                    InterfaceSet::Full,
                );
                self.arm(&mut rt, obs);
                let inst = em3d::setup(&mut rt, &ids, &g);
                em3d::run(&mut rt, &inst, self.style, self.iters).expect("em3d run");
                rt
            }
            Kernel::Fib => {
                let suite = hem_apps::callintensive::build();
                let mut rt = crate::rt(
                    suite.program.clone(),
                    self.p,
                    self.cost.clone(),
                    self.mode,
                    InterfaceSet::Full,
                );
                self.arm(&mut rt, obs);
                let o = rt.alloc_object_by_name("Math", hem_machine::NodeId(0));
                rt.call(o, suite.fib, &[hem_ir::Value::Int(self.size as i64)])
                    .expect("fib run");
                rt
            }
        }
    }

    fn arm(&self, rt: &mut Runtime, obs: Option<Box<dyn hem_core::Observer>>) {
        if self.shard_weights.is_some() {
            rt.set_shard_weights(self.shard_weights.clone());
        }
        if self.threads > 1 {
            rt.sched_impl = if self.speculative {
                hem_core::SchedImpl::Speculative {
                    threads: self.threads,
                }
            } else {
                hem_core::SchedImpl::Sharded {
                    threads: self.threads,
                }
            };
        }
        match self.ring {
            Some(cap) => rt.enable_trace_ring(cap),
            None => rt.enable_trace(),
        }
        if let Some(o) = obs {
            rt.attach_observer(o);
        }
    }
}
