//! Small fixed-width table printer for the harness binaries, so every
//! table binary emits the same visual shape as the paper's tables.

/// A fixed-width table accumulated row by row and printed to stdout.
pub struct Table {
    title: String,
    headers: Vec<String>,
    widths: Vec<usize>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            widths: headers.iter().map(|s| s.len()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity");
        for (w, c) in self.widths.iter_mut().zip(&cells) {
            *w = (*w).max(c.len());
        }
        self.rows.push(cells);
    }

    /// Print to stdout.
    pub fn print(&self) {
        println!("== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| {
            let cols: Vec<String> = cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect();
            println!("  {}", cols.join("  "));
        };
        line(&self.headers, &self.widths);
        let total: usize = self.widths.iter().sum::<usize>() + 2 * self.widths.len();
        println!("  {}", "-".repeat(total));
        for r in &self.rows {
            line(r, &self.widths);
        }
        println!();
    }
}

/// Format seconds adaptively (s / ms / µs).
pub fn secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.1}us", s * 1e6)
    }
}

/// Format a speedup.
pub fn speedup(base: f64, new: f64) -> String {
    format!("{:.2}x", base / new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_widths_accumulate() {
        let mut t = Table::new("t", &["a", "bb"]);
        t.row(vec!["12345".into(), "1".into()]);
        assert_eq!(t.widths, vec![5, 2]);
        t.print(); // must not panic
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = Table::new("t", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn formatting() {
        assert_eq!(secs(2.5), "2.50s");
        assert_eq!(secs(0.0025), "2.50ms");
        assert_eq!(secs(0.0000025), "2.5us");
        assert_eq!(speedup(10.0, 5.0), "2.00x");
    }
}
