//! # hem-bench — harnesses regenerating the paper's evaluation
//!
//! One binary per table/figure of the SC'95 paper:
//!
//! | binary | regenerates |
//! |---|---|
//! | `table1` | Table 1 — invocation schemas selected per method |
//! | `table2` | Table 2 — call + fallback overheads per caller×callee schema |
//! | `table3` | Table 3 — sequential times: hybrid (1/2/3 interfaces), parallel-only, Seq-opt, C |
//! | `table4` | Table 4 — SOR on 64 nodes, block-size sweep, CM-5 + T3D |
//! | `table5` | Table 5 — MD-Force, random vs spatial layout, CM-5 + T3D |
//! | `table6` | Table 6 — EM3D pull/push/forward, low/high locality, CM-5 + T3D |
//! | `fig9`   | Fig. 9 — SOR heap contexts vs block perimeter |
//!
//! All binaries take `--full` to run at paper scale (slow) and print the
//! scaled defaults otherwise. The `benches/` directory adds criterion
//! wall-clock benchmarks of the runtime itself and an ablation harness.

#![warn(missing_docs)]

pub mod micro;
pub mod profile;
pub mod report;
pub mod serve;

use hem_analysis::InterfaceSet;
use hem_core::{ExecMode, Runtime};
use hem_ir::Program;
use hem_machine::cost::CostModel;

/// Construct a runtime or abort with the validation errors.
pub fn rt(
    program: Program,
    nodes: u32,
    cost: CostModel,
    mode: ExecMode,
    ifaces: InterfaceSet,
) -> Runtime {
    hem_apps::make_runtime(program, nodes, cost, mode, ifaces)
}

/// Trivial flag scanner for the harness binaries: `has("--full")`,
/// `get("--n")`.
pub struct Args {
    argv: Vec<String>,
}

impl Args {
    /// Capture the process arguments.
    pub fn capture() -> Self {
        Args {
            argv: std::env::args().collect(),
        }
    }

    /// Is a bare flag present?
    pub fn has(&self, flag: &str) -> bool {
        self.argv.iter().any(|a| a == flag)
    }

    /// Value of `--key <v>`, parsed.
    pub fn get<T: std::str::FromStr>(&self, key: &str) -> Option<T> {
        self.argv
            .iter()
            .position(|a| a == key)
            .and_then(|i| self.argv.get(i + 1))
            .and_then(|v| v.parse().ok())
    }
}

impl Default for Args {
    fn default() -> Self {
        Self::capture()
    }
}
