//! Table 2 micro-benchmarks: dynamic instruction overhead of every
//! caller-schema × callee-schema combination, for calls that complete on
//! the stack and for calls that fall back into the heap.
//!
//! Method: for each combination we build a caller that invokes the callee
//! `k` times in a loop, run it at two different `k`, and take the
//! caller-node instruction delta per iteration. The same loop evaluated by
//! the C-baseline evaluator prices what plain C would pay (loop body +
//! callee body + one `plain_call`); the difference of the two deltas is
//! the paper's *overhead beyond a basic C function call*. Bodies, loop
//! control and any dead schema-forcing code cancel exactly because they
//! appear in both.
//!
//! Schema forcing uses dead code, mirroring how a real program's *static*
//! properties pick the schema regardless of the dynamic path: a dead
//! `Invoke` with unknown locality makes a method may-block; a dead
//! `Forward` makes it continuation-passing. A "heap" caller is produced by
//! a prelude that blocks on a remote gate once, forcing the caller into
//! its parallel version before the measured loop runs.

use hem_analysis::InterfaceSet;
use hem_core::{ExecMode, Runtime};
use hem_ir::{BinOp, LocalityHint, MethodId, Program, ProgramBuilder, Value};
use hem_machine::cost::CostModel;
use hem_machine::NodeId;

/// Caller schema variants (rows of Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallerKind {
    /// Caller executing its heap-based parallel version.
    Heap,
    /// Non-blocking stack caller.
    Nb,
    /// May-block stack caller.
    Mb,
    /// Continuation-passing stack caller.
    Cp,
}

impl CallerKind {
    /// All rows.
    pub const ALL: [CallerKind; 4] = [
        CallerKind::Heap,
        CallerKind::Nb,
        CallerKind::Mb,
        CallerKind::Cp,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            CallerKind::Heap => "heap",
            CallerKind::Nb => "NB",
            CallerKind::Mb => "MB",
            CallerKind::Cp => "CP",
        }
    }
}

/// Callee variants (columns; `*Block` are the fallback table's columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CalleeKind {
    /// Non-blocking, completes.
    Nb,
    /// May-block schema, dynamically completes.
    Mb,
    /// CP schema, dynamically completes (replies).
    Cp,
    /// May-block schema, blocks on a remote future every call.
    MbBlock,
    /// CP schema, forwards off-node every call.
    CpBlock,
}

impl CalleeKind {
    /// The completed-call columns.
    pub const DONE: [CalleeKind; 3] = [CalleeKind::Nb, CalleeKind::Mb, CalleeKind::Cp];
    /// The fallback columns.
    pub const BLOCK: [CalleeKind; 2] = [CalleeKind::MbBlock, CalleeKind::CpBlock];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            CalleeKind::Nb => "NB",
            CalleeKind::Mb => "MB",
            CalleeKind::Cp => "CP",
            CalleeKind::MbBlock => "MB",
            CalleeKind::CpBlock => "CP",
        }
    }
}

/// The generated micro program: one caller loop per (caller, callee)
/// combination, all on a `M` object on node 0 with a `Gate` on node 1.
pub struct MicroSuite {
    /// The program.
    pub program: Program,
    /// Loop methods indexed by (caller, callee).
    pub loops: Vec<((CallerKind, CalleeKind), MethodId)>,
}

/// All measured combinations.
pub fn all_combos() -> Vec<(CallerKind, CalleeKind)> {
    let mut v = Vec::new();
    for caller in CallerKind::ALL {
        for callee in [
            CalleeKind::Nb,
            CalleeKind::Mb,
            CalleeKind::Cp,
            CalleeKind::MbBlock,
            CalleeKind::CpBlock,
        ] {
            // NB callers may only call NB callees (analysis guarantees a
            // caller of an MB/CP callee is itself at least MB).
            if caller == CallerKind::Nb && callee != CalleeKind::Nb {
                continue;
            }
            v.push((caller, callee));
        }
    }
    v
}

/// Build the suite.
pub fn build() -> MicroSuite {
    let mut pb = ProgramBuilder::new();
    let gate_c = pb.class("Gate", false);
    let zero = pb.method(gate_c, "zero", 0, |mb| mb.reply(0i64));

    let m = pb.class("M", false);
    let gate = pb.field(m, "gate");

    // Callees. Each takes one argument and (when completing) replies x+1.
    let cal_nb = pb.method(m, "cal_nb", 1, |mb| {
        let r = mb.binl(BinOp::Add, mb.arg(0), 1);
        mb.reply(r);
    });
    let cal_mb = pb.method(m, "cal_mb", 1, |mb| {
        let x = mb.arg(0);
        let dead = mb.binl(BinOp::Lt, x, -1_000_000i64);
        mb.if_(dead, |mb| {
            // Dead: unknown-locality invoke forces the MB schema.
            let me = mb.self_ref();
            let s = mb.invoke_into(me, cal_nb, &[x.into()]);
            mb.touch(&[s]);
        });
        let r = mb.binl(BinOp::Add, x, 1);
        mb.reply(r);
    });
    let cal_cp = pb.method(m, "cal_cp", 1, |mb| {
        let x = mb.arg(0);
        let dead = mb.binl(BinOp::Lt, x, -1_000_000i64);
        mb.if_(dead, |mb| {
            let me = mb.self_ref();
            mb.forward(me, cal_nb, &[x.into()], LocalityHint::AlwaysLocal);
        });
        let r = mb.binl(BinOp::Add, x, 1);
        mb.reply(r);
    });
    let blk_mb = pb.method(m, "blk_mb", 1, |mb| {
        let g = mb.get_field(gate);
        let s = mb.invoke_into(g, zero, &[]);
        let v = mb.touch_get(s);
        let r1 = mb.binl(BinOp::Add, mb.arg(0), v);
        let r = mb.binl(BinOp::Add, r1, 1);
        mb.reply(r);
    });
    let blk_cp = pb.method(m, "blk_cp", 1, |mb| {
        // Forward off-node: the continuation must be materialized; the
        // gate replies 0 directly to the caller's future. (The +1 shape
        // differs from the others; deltas subtract it out.)
        let g = mb.get_field(gate);
        mb.forward(g, zero, &[], LocalityHint::Unknown);
    });

    let callee_of = |k: CalleeKind| match k {
        CalleeKind::Nb => cal_nb,
        CalleeKind::Mb => cal_mb,
        CalleeKind::Cp => cal_cp,
        CalleeKind::MbBlock => blk_mb,
        CalleeKind::CpBlock => blk_cp,
    };

    // Caller loops.
    let mut loops = Vec::new();
    for (caller, callee) in all_combos() {
        let target = callee_of(callee);
        let name = format!("loop_{}_{}_{:?}", caller.label(), callee.label(), callee);
        let mid = pb.method(m, &name, 1, |mb| {
            let k = mb.arg(0);
            // Schema forcing for the caller.
            match caller {
                CallerKind::Nb => {}
                CallerKind::Mb | CallerKind::Heap => {
                    let dead = mb.binl(BinOp::Lt, k, -1_000_000i64);
                    mb.if_(dead, |mb| {
                        let me = mb.self_ref();
                        let s = mb.invoke_into(me, cal_nb, &[k.into()]);
                        mb.touch(&[s]);
                    });
                }
                CallerKind::Cp => {
                    let dead = mb.binl(BinOp::Lt, k, -1_000_000i64);
                    mb.if_(dead, |mb| {
                        let me = mb.self_ref();
                        mb.forward(me, cal_nb, &[k.into()], LocalityHint::AlwaysLocal);
                    });
                }
            }
            // Heap callers block once on the remote gate before the loop,
            // reverting to the parallel version for the measured calls.
            if caller == CallerKind::Heap {
                let g = mb.get_field(gate);
                let s0 = mb.invoke_into(g, zero, &[]);
                mb.touch(&[s0]);
            }
            let me = mb.self_ref();
            let acc = mb.local();
            mb.mov(acc, 0i64);
            let s = mb.slot();
            mb.for_range(0i64, k, |mb, i| {
                mb.invoke(Some(s), me, target, &[i.into()], LocalityHint::AlwaysLocal);
                mb.touch(&[s]);
                let v = mb.get_slot(s);
                mb.bin(acc, BinOp::Add, acc, v);
            });
            mb.reply(acc);
        });
        loops.push(((caller, callee), mid));
    }

    MicroSuite {
        program: pb.finish(),
        loops,
    }
}

/// One measured cell.
#[derive(Debug, Clone, Copy)]
pub struct Cell {
    /// Caller-node instructions per call under the hybrid runtime.
    pub hybrid_per_call: f64,
    /// Instructions per call the C baseline pays for the same loop.
    pub c_per_call: f64,
}

impl Cell {
    /// Paper-style overhead: instructions beyond the full C execution
    /// (which already contains one `plain_call` and both bodies).
    pub fn overhead(&self) -> f64 {
        self.hybrid_per_call - self.c_per_call
    }
}

fn run_counting(
    suite: &MicroSuite,
    method: MethodId,
    k: i64,
    cost: &CostModel,
) -> (
    u64, /* caller-node instructions */
    i64, /* result */
) {
    let mut rt = Runtime::new(
        suite.program.clone(),
        2,
        cost.clone(),
        ExecMode::Hybrid,
        InterfaceSet::Full,
    )
    .expect("valid micro program");
    let g = rt.alloc_object_by_name("Gate", NodeId(1));
    let o = rt.alloc_object_by_name("M", NodeId(0));
    rt.set_field(o, hem_ir::FieldId(0), Value::Obj(g));
    let r = rt.call(o, method, &[Value::Int(k)]).expect("no trap");
    let instr = rt.stats().per_node[0].instructions;
    let v = match r {
        Some(Value::Int(i)) => i,
        other => panic!("unexpected result {other:?}"),
    };
    (instr, v)
}

fn run_cref(suite: &MicroSuite, method: MethodId, k: i64, cost: &CostModel) -> u64 {
    let mut rt = Runtime::new(
        suite.program.clone(),
        2,
        cost.clone(),
        ExecMode::Hybrid,
        InterfaceSet::Full,
    )
    .expect("valid micro program");
    let g = rt.alloc_object_by_name("Gate", NodeId(1));
    let o = rt.alloc_object_by_name("M", NodeId(0));
    rt.set_field(o, hem_ir::FieldId(0), Value::Obj(g));
    let (_, cycles) = rt
        .call_c_baseline(o, method, &[Value::Int(k)])
        .expect("cref");
    cycles
}

/// Measure one combination. Completed-call combinations use a long-loop
/// delta (per-iteration asymptote); blocking combinations use a k=1 vs
/// k=0 delta, because a stack caller reverts to its parallel version
/// after the first fallback and would otherwise measure the heap row.
pub fn measure(
    suite: &MicroSuite,
    caller: CallerKind,
    callee: CalleeKind,
    cost: &CostModel,
) -> Cell {
    let method = suite
        .loops
        .iter()
        .find(|(k, _)| *k == (caller, callee))
        .map(|(_, m)| *m)
        .expect("combination built");
    let blocking = matches!(callee, CalleeKind::MbBlock | CalleeKind::CpBlock);
    let (k_lo, k_hi) = if blocking && caller != CallerKind::Heap {
        (0i64, 1i64)
    } else {
        (16i64, 80i64)
    };
    let (i_lo, _) = run_counting(suite, method, k_lo, cost);
    let (i_hi, _) = run_counting(suite, method, k_hi, cost);
    let c_lo = run_cref(suite, method, k_lo, cost);
    let c_hi = run_cref(suite, method, k_hi, cost);
    let n = (k_hi - k_lo) as f64;
    Cell {
        hybrid_per_call: (i_hi - i_lo) as f64 / n,
        c_per_call: (c_hi - c_lo) as f64 / n,
    }
}

/// Dynamic-instruction cost of one heap-based (parallel) invocation,
/// measured the same way under `ParallelOnly` — the paper's ~130 figure.
pub fn parallel_invoke_cost(cost: &CostModel) -> f64 {
    let suite = build();
    let method = suite
        .loops
        .iter()
        .find(|(k, _)| *k == (CallerKind::Nb, CalleeKind::Nb))
        .map(|(_, m)| *m)
        .unwrap();
    let run = |k: i64| -> u64 {
        let mut rt = Runtime::new(
            suite.program.clone(),
            2,
            cost.clone(),
            ExecMode::ParallelOnly,
            InterfaceSet::Full,
        )
        .unwrap();
        let g = rt.alloc_object_by_name("Gate", NodeId(1));
        let o = rt.alloc_object_by_name("M", NodeId(0));
        rt.set_field(o, hem_ir::FieldId(0), Value::Obj(g));
        rt.call(o, method, &[Value::Int(k)]).unwrap();
        rt.stats().per_node[0].instructions
    };
    let c = |k: i64| run_cref(&suite, method, k, cost);
    ((run(80) - run(16)) as f64 - (c(80) - c(16)) as f64) / 64.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_builds_and_all_loops_complete() {
        let suite = build();
        let cost = CostModel::cm5();
        for &((caller, callee), m) in &suite.loops {
            let (_, v) = run_counting(&suite, m, 5, &cost);
            // Σ (i+1) for i in 0..5 = 15 for completing callees; the
            // CP-blocking callee replies 0 per call (gate), so Σ = 0.
            let expect = if callee == CalleeKind::CpBlock { 0 } else { 15 };
            assert_eq!(v, expect, "{caller:?}/{callee:?}");
        }
    }

    #[test]
    fn nb_overheads_are_single_digit_and_ordered() {
        let suite = build();
        let cost = CostModel::cm5();
        let nb = measure(&suite, CallerKind::Nb, CalleeKind::Nb, &cost).overhead();
        let mb = measure(&suite, CallerKind::Mb, CalleeKind::Mb, &cost).overhead();
        let cp = measure(&suite, CallerKind::Cp, CalleeKind::Cp, &cost).overhead();
        assert!(nb > 0.0 && nb < 25.0, "NB overhead {nb}");
        assert!(nb <= mb && mb <= cp, "hierarchy ordering: {nb} {mb} {cp}");
    }

    #[test]
    fn fallback_costs_exceed_completed_costs() {
        let suite = build();
        let cost = CostModel::cm5();
        let done = measure(&suite, CallerKind::Mb, CalleeKind::Mb, &cost).overhead();
        let blocked = measure(&suite, CallerKind::Mb, CalleeKind::MbBlock, &cost).overhead();
        assert!(
            blocked > done + 20.0,
            "fallback {blocked} vs completed {done}"
        );
    }

    #[test]
    fn parallel_invoke_is_an_order_of_magnitude_heavier() {
        let cost = CostModel::cm5();
        let par = parallel_invoke_cost(&cost);
        let suite = build();
        let nb = measure(&suite, CallerKind::Nb, CalleeKind::Nb, &cost).overhead();
        assert!(par > 90.0, "parallel invoke {par}");
        assert!(
            par > 8.0 * nb,
            "paper: order of magnitude over sequential ({par} vs {nb})"
        );
    }
}
