//! Shared open-system runner for `hemprof serve` and the open-system
//! integration tests: builds the [`hem_apps::service`] front-end/back-end
//! world, plays a seeded arrival stream against it up to a virtual-time
//! horizon, and aggregates the per-request dispositions into the
//! steady-state [`ServiceSummary`] the reports print. Living in the
//! library (like [`crate::profile`]) means the CLI and the tests measure
//! *the same* runs.

use hem_analysis::InterfaceSet;
use hem_apps::service::{self, Disposition, ServeOutcome, ServeParams};
use hem_core::{ExecMode, Runtime};
use hem_machine::arrival::ArrivalDist;
use hem_machine::cost::CostModel;
use hem_machine::fault::FaultPlan;
use hem_machine::Cycles;
use hem_obs::{Log2Hist, ServiceSummary};

/// An open-system run's configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Machine size.
    pub p: u32,
    /// Backend population.
    pub backends: u32,
    /// Virtual-time horizon (exclusive).
    pub horizon: Cycles,
    /// Warm-up cutoff: completions of requests arriving before it are
    /// excluded from the steady-state latency histogram.
    pub warmup: Cycles,
    /// Arrival process.
    pub dist: ArrivalDist,
    /// Independent arrival streams.
    pub clients: u32,
    /// Admission deadline (0 = none).
    pub deadline: Cycles,
    /// Admission queue cap (0 = unbounded).
    pub max_queue: usize,
    /// Arrival-process seed.
    pub seed: u64,
    /// Execution mode.
    pub mode: ExecMode,
    /// Machine cost model.
    pub cost: CostModel,
    /// Host worker threads (sharded executor above 1); every thread count
    /// yields a bit-identical trace and summary.
    pub threads: usize,
    /// Use the optimistic (Time-Warp) executor instead of the
    /// conservative sharded one when `threads > 1`; still bit-identical.
    pub speculative: bool,
    /// Bound the trace to a ring of this many records (`None`:
    /// unbounded). The rollup-backed report does not depend on ring
    /// completeness — it streams through the observer hook.
    pub ring: Option<usize>,
    /// Deterministic interconnect fault schedule; installing one engages
    /// the reliable transport (retransmission keeps lost work alive, and
    /// the recovered time shows up in the blame report's `retx` bucket).
    pub fault: Option<FaultPlan>,
}

impl ServeConfig {
    /// Defaults: 16 nodes, 32 backends, Poisson arrivals at one request
    /// per 500 cycles over 4 clients, 100k-cycle horizon with a 10k
    /// warm-up, no admission limits, hybrid mode on CM-5 costs.
    pub fn new() -> ServeConfig {
        ServeConfig {
            p: 16,
            backends: 32,
            horizon: 100_000,
            warmup: 10_000,
            dist: ArrivalDist::Poisson { mean_gap: 500.0 },
            clients: 4,
            deadline: 0,
            max_queue: 0,
            seed: 20260806,
            mode: ExecMode::Hybrid,
            cost: CostModel::cm5(),
            threads: 1,
            speculative: false,
            ring: None,
            fault: None,
        }
    }

    /// One-line caption for reports.
    pub fn title(&self) -> String {
        let fault = match &self.fault {
            Some(f) => format!(
                " fault[drop={} dup={} jitter={} seed={}]",
                f.drop_permille, f.dup_permille, f.jitter_max, f.seed
            ),
            None => String::new(),
        };
        format!(
            "serve p={} horizon={} warmup={} {:?} clients={} seed={} {}{}",
            self.p, self.horizon, self.warmup, self.dist, self.clients, self.seed, self.mode, fault,
        )
    }

    /// Build the service world, enable tracing plus a streaming rollup
    /// observer, and play the arrival stream. Returns the runtime (trace
    /// still buffered, observer still attached) and the raw outcome.
    ///
    /// # Panics
    /// On a trap — the service kernel is deadlock-free by construction.
    pub fn run(&self) -> (Runtime, ServeOutcome) {
        self.run_with_observer(Box::new(hem_obs::Rollup::new()))
    }

    /// [`ServeConfig::run`] with a caller-supplied observer in place of
    /// the plain rollup — e.g. a [`hem_obs::Fanout`] teeing a rollup, a
    /// blame tracker, and a series collector over the same stream.
    pub fn run_with_observer(&self, obs: Box<dyn hem_core::Observer>) -> (Runtime, ServeOutcome) {
        let ids = service::build();
        let mut rt = crate::rt(
            ids.program.clone(),
            self.p,
            self.cost.clone(),
            self.mode,
            InterfaceSet::Full,
        );
        if self.threads > 1 {
            rt.sched_impl = if self.speculative {
                hem_core::SchedImpl::Speculative {
                    threads: self.threads,
                }
            } else {
                hem_core::SchedImpl::Sharded {
                    threads: self.threads,
                }
            };
        }
        match self.ring {
            Some(cap) => rt.enable_trace_ring(cap),
            None => rt.enable_trace(),
        }
        if let Some(plan) = &self.fault {
            rt.set_fault_plan(plan.clone());
        }
        rt.attach_observer(obs);
        let inst = service::setup(&mut rt, &ids, self.backends);
        let params = ServeParams {
            horizon: self.horizon,
            dist: self.dist,
            clients: self.clients,
            seed: self.seed,
            deadline: self.deadline,
            max_queue: self.max_queue,
        };
        let out = service::run_service(&mut rt, &inst, &params).expect("service run");
        (rt, out)
    }

    /// Aggregate the raw outcome into the report's steady-state summary:
    /// counters over the whole horizon, latency histogram over
    /// completions whose *arrival* fell at or after the warm-up cutoff.
    pub fn summary(&self, out: &ServeOutcome) -> ServiceSummary {
        let mut s = ServiceSummary {
            horizon: self.horizon,
            warmup: self.warmup,
            offered: out.records.len() as u64,
            ..ServiceSummary::default()
        };
        let mut latency = Log2Hist::default();
        for r in &out.records {
            match r.disposition {
                Disposition::ShedQueue => s.shed_queue += 1,
                Disposition::ShedDeadline => s.shed_deadline += 1,
                Disposition::Pending => {
                    s.admitted += 1;
                    s.pending += 1;
                }
                Disposition::Completed(done) => {
                    s.admitted += 1;
                    s.completed += 1;
                    let sojourn = done.saturating_sub(r.arrived);
                    if self.deadline > 0 && sojourn > self.deadline {
                        s.missed_deadline += 1;
                    }
                    if r.arrived < self.warmup {
                        s.trimmed += 1;
                    } else {
                        latency.add(sojourn);
                    }
                }
            }
        }
        s.latency = latency;
        s
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self::new()
    }
}
