//! Criterion wall-clock benchmarks of the runtime itself: how fast does
//! the simulator execute one fine-grained invocation under each
//! execution regime? (These measure the *reproduction's* performance;
//! the paper-relevant numbers are the simulated-cycle tables.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hem_analysis::InterfaceSet;
use hem_core::{ExecMode, Runtime};
use hem_ir::Value;
use hem_machine::cost::CostModel;
use hem_machine::NodeId;

fn bench_fib(c: &mut Criterion) {
    let n = 18i64; // 8361 invocations
    let invocations = 8361u64;
    let mut g = c.benchmark_group("fib18");
    g.throughput(Throughput::Elements(invocations));
    g.sample_size(20);
    g.measurement_time(std::time::Duration::from_secs(3));
    for (label, mode, ifaces) in [
        ("hybrid-full", ExecMode::Hybrid, InterfaceSet::Full),
        ("hybrid-cp-only", ExecMode::Hybrid, InterfaceSet::CpOnly),
        ("parallel-only", ExecMode::ParallelOnly, InterfaceSet::Full),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &n, |b, &n| {
            let suite = hem_apps::callintensive::build();
            b.iter(|| {
                let mut rt =
                    Runtime::new(suite.program.clone(), 1, CostModel::cm5(), mode, ifaces).unwrap();
                let o = rt.alloc_object_by_name("Math", NodeId(0));
                rt.call(o, suite.fib, &[Value::Int(n)]).unwrap()
            });
        });
    }
    g.finish();
}

fn bench_c_baseline(c: &mut Criterion) {
    let mut c = c.benchmark_group("cref");
    c.sample_size(20);
    c.bench_function("fib18_c_baseline_eval", |b| {
        let suite = hem_apps::callintensive::build();
        let mut rt = Runtime::new(
            suite.program.clone(),
            1,
            CostModel::cm5(),
            ExecMode::Hybrid,
            InterfaceSet::Full,
        )
        .unwrap();
        let o = rt.alloc_object_by_name("Math", NodeId(0));
        b.iter(|| rt.call_c_baseline(o, suite.fib, &[Value::Int(18)]).unwrap());
    });
    c.finish();
}

fn bench_remote_roundtrip(c: &mut Criterion) {
    let mut c = c.benchmark_group("roundtrip");
    c.sample_size(20);
    // One remote invocation + fallback + reply, end to end.
    let suite = hem_bench::micro::build();
    let method = suite
        .loops
        .iter()
        .find(|(k, _)| {
            *k == (
                hem_bench::micro::CallerKind::Mb,
                hem_bench::micro::CalleeKind::MbBlock,
            )
        })
        .map(|(_, m)| *m)
        .unwrap();
    c.bench_function("remote_roundtrip_with_fallback", |b| {
        b.iter(|| {
            let mut rt = Runtime::new(
                suite.program.clone(),
                2,
                CostModel::cm5(),
                ExecMode::Hybrid,
                InterfaceSet::Full,
            )
            .unwrap();
            let g = rt.alloc_object_by_name("Gate", NodeId(1));
            let o = rt.alloc_object_by_name("M", NodeId(0));
            rt.set_field(o, hem_ir::FieldId(0), Value::Obj(g));
            rt.call(o, method, &[Value::Int(1)]).unwrap()
        });
    });
    c.finish();
}

criterion_group!(benches, bench_fib, bench_c_baseline, bench_remote_roundtrip);
criterion_main!(benches);
