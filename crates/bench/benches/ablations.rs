//! Ablation harness (plain binary under `cargo bench`, harness = false):
//! quantifies, in *simulated cycles*, the design decisions DESIGN.md
//! calls out.
//!
//! 1. **Futures inside contexts** vs StackThreads-style separate future
//!    allocation (an extra memory reference per touch and a per-future
//!    allocation) — paper §5 claims the embedded layout wins.
//! 2. **Speculative inlining** on vs off (§4.2 includes it everywhere).
//! 3. **Interface hierarchy**: all three sequential interfaces vs CP-only
//!    (Table 3's 1-interface column, on a parallel workload).
//! 4. **Poll-on-send**: what the tables would look like if long stack
//!    sweeps starved the network is shown indirectly by the heap-context
//!    ratio; here we report the hybrid/parallel instruction ratio as the
//!    latency-free bound.

use hem_analysis::InterfaceSet;
use hem_apps::{callintensive, sor};
use hem_core::{ExecMode, Runtime};
use hem_ir::Value;
use hem_machine::cost::CostModel;
use hem_machine::topology::ProcGrid;
use hem_machine::NodeId;

fn sor_cycles(cost: CostModel, mode: ExecMode, ifaces: InterfaceSet, inline: bool) -> u64 {
    let ids = sor::build();
    let procs = ProcGrid::square(16);
    let mut rt = hem_apps::make_runtime(ids.program.clone(), 16, cost, mode, ifaces);
    rt.enable_inlining = inline;
    let inst = sor::setup(
        &mut rt,
        &ids,
        sor::SorParams {
            n: 48,
            block: 6,
            procs,
        },
    );
    sor::run(&mut rt, &inst, 2).unwrap();
    rt.makespan()
}

fn fib_cycles(cost: CostModel, ifaces: InterfaceSet, inline: bool) -> u64 {
    let suite = callintensive::build();
    let mut rt = Runtime::new(suite.program.clone(), 1, cost, ExecMode::Hybrid, ifaces).unwrap();
    rt.enable_inlining = inline;
    let o = rt.alloc_object_by_name("Math", NodeId(0));
    rt.call(o, suite.fib, &[Value::Int(20)]).unwrap();
    rt.makespan()
}

/// StackThreads-style cost model: futures allocated separately from the
/// context — an extra memory reference on every touch and store, plus a
/// per-invocation future allocation folded into the invoke fixed cost.
fn stackthreads_costs() -> CostModel {
    let mut c = CostModel::cm5();
    c.name = "stackthreads-style";
    c.future_touch += 2;
    c.future_store += 2;
    c.join_dec += 2;
    c.par_invoke_fixed += 10; // separate future allocation
    c
}

fn main() {
    println!("== ablations (simulated CM-5 cycles; lower is better) ==\n");

    // 1. futures embedded in contexts vs separate.
    let emb = sor_cycles(CostModel::cm5(), ExecMode::Hybrid, InterfaceSet::Full, true);
    let sep = sor_cycles(
        stackthreads_costs(),
        ExecMode::Hybrid,
        InterfaceSet::Full,
        true,
    );
    println!("futures-in-context (SOR 48x48/16n):");
    println!("  embedded  = {emb}");
    println!(
        "  separate  = {sep}  (+{:.1}%)\n",
        (sep as f64 / emb as f64 - 1.0) * 100.0
    );

    // 2. speculative inlining.
    let on = sor_cycles(CostModel::cm5(), ExecMode::Hybrid, InterfaceSet::Full, true);
    let off = sor_cycles(
        CostModel::cm5(),
        ExecMode::Hybrid,
        InterfaceSet::Full,
        false,
    );
    println!("speculative inlining (SOR 48x48/16n, hybrid):");
    println!("  on  = {on}");
    println!(
        "  off = {off}  (+{:.1}%)\n",
        (off as f64 / on as f64 - 1.0) * 100.0
    );

    // 3. interface hierarchy on a parallel workload.
    let full = sor_cycles(CostModel::cm5(), ExecMode::Hybrid, InterfaceSet::Full, true);
    let cp = sor_cycles(
        CostModel::cm5(),
        ExecMode::Hybrid,
        InterfaceSet::CpOnly,
        true,
    );
    println!("interface hierarchy (SOR 48x48/16n, hybrid):");
    println!("  NB+MB+CP = {full}");
    println!(
        "  CP only  = {cp}  (+{:.1}%)\n",
        (cp as f64 / full as f64 - 1.0) * 100.0
    );

    // ... and on the sequential suite (fib).
    let f_full = fib_cycles(CostModel::cm5(), InterfaceSet::Full, true);
    let f_cp = fib_cycles(CostModel::cm5(), InterfaceSet::CpOnly, true);
    println!("interface hierarchy (fib 20, 1 node):");
    println!("  NB+MB+CP = {f_full}");
    println!(
        "  CP only  = {f_cp}  (+{:.1}%)\n",
        (f_cp as f64 / f_full as f64 - 1.0) * 100.0
    );

    // 4. latency-free bound: instruction ratio vs makespan ratio.
    let ids = sor::build();
    let procs = ProcGrid::square(16);
    let mut ratios = Vec::new();
    for mode in [ExecMode::ParallelOnly, ExecMode::Hybrid] {
        let mut rt = hem_apps::make_runtime(
            ids.program.clone(),
            16,
            CostModel::cm5(),
            mode,
            InterfaceSet::Full,
        );
        let inst = sor::setup(
            &mut rt,
            &ids,
            sor::SorParams {
                n: 48,
                block: 6,
                procs,
            },
        );
        sor::run(&mut rt, &inst, 2).unwrap();
        ratios.push((rt.makespan(), rt.stats().totals().instructions));
    }
    println!("latency exposure (SOR 48x48/16n):");
    println!(
        "  makespan speedup     = {:.2}x",
        ratios[0].0 as f64 / ratios[1].0 as f64
    );
    println!(
        "  instruction speedup  = {:.2}x (latency-free bound)",
        ratios[0].1 as f64 / ratios[1].1 as f64
    );
}
