//! Criterion wall-clock benchmarks of the three parallel kernels at demo
//! scale, hybrid vs parallel-only. Useful for tracking simulator
//! performance regressions; the paper-shape numbers come from the table
//! binaries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hem_analysis::InterfaceSet;
use hem_apps::{em3d, md, sor};
use hem_core::ExecMode;
use hem_machine::cost::CostModel;
use hem_machine::topology::ProcGrid;

const MODES: [(&str, ExecMode); 2] = [
    ("hybrid", ExecMode::Hybrid),
    ("parallel-only", ExecMode::ParallelOnly),
];

fn bench_sor(c: &mut Criterion) {
    let mut g = c.benchmark_group("sor32x32_16n");
    g.sample_size(15);
    g.measurement_time(std::time::Duration::from_secs(3));
    for (label, mode) in MODES {
        g.bench_with_input(BenchmarkId::from_parameter(label), &mode, |b, &mode| {
            b.iter(|| {
                let ids = sor::build();
                let procs = ProcGrid::square(16);
                let mut rt = hem_apps::make_runtime(
                    ids.program.clone(),
                    16,
                    CostModel::cm5(),
                    mode,
                    InterfaceSet::Full,
                );
                let inst = sor::setup(
                    &mut rt,
                    &ids,
                    sor::SorParams {
                        n: 32,
                        block: 4,
                        procs,
                    },
                );
                sor::run(&mut rt, &inst, 1).unwrap();
                rt.makespan()
            });
        });
    }
    g.finish();
}

fn bench_em3d(c: &mut Criterion) {
    let mut g = c.benchmark_group("em3d128_deg8_8n");
    g.sample_size(15);
    g.measurement_time(std::time::Duration::from_secs(3));
    for (label, mode) in MODES {
        for style in [em3d::Style::Pull, em3d::Style::Push, em3d::Style::Forward] {
            g.bench_with_input(
                BenchmarkId::new(label, style),
                &(mode, style),
                |b, &(mode, style)| {
                    b.iter(|| {
                        let ids = em3d::build(8);
                        let graph = em3d::generate(128, 8, 8, 0.5, 7);
                        let mut rt = hem_apps::make_runtime(
                            ids.program.clone(),
                            8,
                            CostModel::cm5(),
                            mode,
                            InterfaceSet::Full,
                        );
                        let inst = em3d::setup(&mut rt, &ids, &graph);
                        em3d::run(&mut rt, &inst, style, 1).unwrap();
                        rt.makespan()
                    });
                },
            );
        }
    }
    g.finish();
}

fn bench_md(c: &mut Criterion) {
    let mut g = c.benchmark_group("md400_8n");
    g.sample_size(15);
    g.measurement_time(std::time::Duration::from_secs(3));
    for (label, mode) in MODES {
        g.bench_with_input(BenchmarkId::from_parameter(label), &mode, |b, &mode| {
            b.iter(|| {
                let ids = md::build();
                let sys = md::generate(400, 1.2, 8, md::Layout::Spatial, 11);
                let mut rt = hem_apps::make_runtime(
                    ids.program.clone(),
                    8,
                    CostModel::cm5(),
                    mode,
                    InterfaceSet::Full,
                );
                let inst = md::setup(&mut rt, &ids, &sys);
                md::run_iteration(&mut rt, &inst).unwrap();
                rt.makespan()
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sor, bench_em3d, bench_md);
criterion_main!(benches);
