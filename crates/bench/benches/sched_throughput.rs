//! Scheduler throughput: events dispatched per second of host time, event
//! index vs linear scan, as the machine grows.
//!
//! The dispatch loop selects the next actionable `(time, kind, node)`
//! event; the linear scan pays O(P) per event where the event index pays
//! O(log P). Both run the same kernels bit-identically (the determinism
//! tests prove it), so the throughput ratio isolates pure scheduler
//! overhead. Expect parity at P = 1 and a widening gap from P = 64 up.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hem_analysis::InterfaceSet;
use hem_apps::{em3d, sor};
use hem_core::{ExecMode, Runtime, SchedImpl};
use hem_machine::cost::CostModel;
use hem_machine::topology::ProcGrid;

const PROCS: [u32; 4] = [1, 16, 64, 256];
const SCHEDS: [(&str, SchedImpl); 2] = [
    ("event-index", SchedImpl::EventIndex),
    ("linear-scan", SchedImpl::LinearScan),
];

/// One SOR run (64x64 grid, 4x4 blocks = 256 block objects) on `p` nodes.
fn run_sor(p: u32, sched: SchedImpl) -> Runtime {
    let ids = sor::build();
    let mut rt = hem_apps::make_runtime(
        ids.program.clone(),
        p,
        CostModel::cm5(),
        ExecMode::Hybrid,
        InterfaceSet::Full,
    );
    rt.sched_impl = sched;
    let inst = sor::setup(
        &mut rt,
        &ids,
        sor::SorParams {
            n: 64,
            block: 4,
            procs: ProcGrid::square(p),
        },
    );
    sor::run(&mut rt, &inst, 1).unwrap();
    rt
}

/// One EM3D run (graph scaled with the machine: 4 nodes' worth of E/H
/// objects per processor) on `p` nodes.
fn run_em3d(p: u32, sched: SchedImpl) -> Runtime {
    let ids = em3d::build(4);
    let graph = em3d::generate(4 * p, 4, p, 0.5, 7);
    let mut rt = hem_apps::make_runtime(
        ids.program.clone(),
        p,
        CostModel::cm5(),
        ExecMode::Hybrid,
        InterfaceSet::Full,
    );
    rt.sched_impl = sched;
    let inst = em3d::setup(&mut rt, &ids, &graph);
    em3d::run(&mut rt, &inst, em3d::Style::Pull, 1).unwrap();
    rt
}

fn bench_kernel(c: &mut Criterion, name: &str, run: fn(u32, SchedImpl) -> Runtime) {
    let mut g = c.benchmark_group(format!("sched_throughput/{name}"));
    g.sample_size(10);
    for p in PROCS {
        for (label, sched) in SCHEDS {
            // The event count is a property of the (deterministic) run, not
            // of the scheduler implementation; report events/sec.
            let events = run(p, sched).stats().sched.events_dispatched;
            g.throughput(Throughput::Elements(events));
            g.bench_with_input(
                BenchmarkId::new(label, format!("P{p}")),
                &(p, sched),
                |b, &(p, sched)| b.iter(|| run(p, sched).makespan()),
            );
        }
    }
    g.finish();
}

fn bench_sor_sched(c: &mut Criterion) {
    bench_kernel(c, "sor64", run_sor);
}

fn bench_em3d_sched(c: &mut Criterion) {
    bench_kernel(c, "em3d_4xP", run_em3d);
}

/// One SOR run with the reliable transport armed on a fault-free wire:
/// every remote message gains a sequence-number word, an ack frame, and a
/// retransmit timer that is always cancelled in time.
fn run_sor_reliable(p: u32, sched: SchedImpl) -> Runtime {
    let ids = sor::build();
    let mut rt = hem_apps::make_runtime(
        ids.program.clone(),
        p,
        CostModel::cm5(),
        ExecMode::Hybrid,
        InterfaceSet::Full,
    );
    rt.sched_impl = sched;
    rt.enable_reliable_transport();
    let inst = sor::setup(
        &mut rt,
        &ids,
        sor::SorParams {
            n: 64,
            block: 4,
            procs: ProcGrid::square(p),
        },
    );
    sor::run(&mut rt, &inst, 1).unwrap();
    rt
}

/// Ack-protocol overhead: the same SOR run with the transport off (raw
/// frames) vs on (data/ack envelope, zero faults). The on/off host-time
/// ratio is the protocol's dispatch cost; the makespan delta (printed by
/// the experiment script, see EXPERIMENTS.md) is its simulated cost. The
/// budget is ≤2% at P = 256.
fn bench_ack_protocol(c: &mut Criterion) {
    let mut g = c.benchmark_group("ack_protocol/sor64");
    g.sample_size(10);
    for p in PROCS {
        for (label, run) in [
            ("raw", run_sor as fn(u32, SchedImpl) -> Runtime),
            ("reliable", run_sor_reliable),
        ] {
            let events = run(p, SchedImpl::EventIndex)
                .stats()
                .sched
                .events_dispatched;
            g.throughput(Throughput::Elements(events));
            g.bench_with_input(BenchmarkId::new(label, format!("P{p}")), &p, |b, &p| {
                b.iter(|| run(p, SchedImpl::EventIndex).makespan())
            });
        }
    }
    g.finish();
}

/// One SOR run with tracing on and the sanitizer optionally armed,
/// returning the full trace and makespan.
fn run_sor_traced(p: u32, sanitize: bool) -> (Vec<hem_core::trace::TraceRecord>, u64) {
    let ids = sor::build();
    let mut rt = hem_apps::make_runtime(
        ids.program.clone(),
        p,
        CostModel::cm5(),
        ExecMode::Hybrid,
        InterfaceSet::Full,
    );
    rt.enable_trace();
    if sanitize {
        rt.enable_sanitizer();
    }
    let inst = sor::setup(
        &mut rt,
        &ids,
        sor::SorParams {
            n: 64,
            block: 4,
            procs: ProcGrid::square(p),
        },
    );
    sor::run(&mut rt, &inst, 1).unwrap();
    assert!(
        rt.sanitizer_violations().is_empty(),
        "sanitizer violations on a correct run: {:?}",
        rt.sanitizer_violations()
    );
    let mk = rt.makespan();
    (rt.take_trace(), mk)
}

/// One plain SOR run with the sanitizer armed (no tracing), for the
/// host-time overhead comparison.
fn run_sor_sanitized(p: u32, sched: SchedImpl) -> Runtime {
    let ids = sor::build();
    let mut rt = hem_apps::make_runtime(
        ids.program.clone(),
        p,
        CostModel::cm5(),
        ExecMode::Hybrid,
        InterfaceSet::Full,
    );
    rt.sched_impl = sched;
    rt.enable_sanitizer();
    let inst = sor::setup(
        &mut rt,
        &ids,
        sor::SorParams {
            n: 64,
            block: 4,
            procs: ProcGrid::square(p),
        },
    );
    sor::run(&mut rt, &inst, 1).unwrap();
    rt
}

/// Sanitizer cost: the online invariant sanitizer must be *semantically*
/// free — at P = 256 the trace and makespan are bit-identical with the
/// sanitizer on or off (its hooks never charge virtual time or emit
/// events; this guard runs before the benchmark and fails it loudly) —
/// and its host-time overhead is what the off/on ratio reports.
fn bench_sanitizer(c: &mut Criterion) {
    let (trace_off, mk_off) = run_sor_traced(256, false);
    let (trace_on, mk_on) = run_sor_traced(256, true);
    assert_eq!(
        mk_off, mk_on,
        "sanitizer changed the makespan at P=256 ({mk_off} vs {mk_on})"
    );
    assert_eq!(
        trace_off.len(),
        trace_on.len(),
        "sanitizer changed the trace length at P=256"
    );
    assert!(
        trace_off == trace_on,
        "sanitizer changed the trace contents at P=256"
    );

    let mut g = c.benchmark_group("sanitizer/sor64");
    g.sample_size(10);
    for p in PROCS {
        for (label, run) in [
            ("off", run_sor as fn(u32, SchedImpl) -> Runtime),
            ("on", run_sor_sanitized),
        ] {
            let events = run(p, SchedImpl::EventIndex)
                .stats()
                .sched
                .events_dispatched;
            g.throughput(Throughput::Elements(events));
            g.bench_with_input(BenchmarkId::new(label, format!("P{p}")), &p, |b, &p| {
                b.iter(|| run(p, SchedImpl::EventIndex).makespan())
            });
        }
    }
    g.finish();
}

/// One SOR run with tracing on and a [`hem_obs::Rollup`] observer
/// optionally attached, returning the full trace and makespan.
fn run_sor_observed(p: u32, observe: bool) -> (Vec<hem_core::trace::TraceRecord>, u64) {
    let ids = sor::build();
    let mut rt = hem_apps::make_runtime(
        ids.program.clone(),
        p,
        CostModel::cm5(),
        ExecMode::Hybrid,
        InterfaceSet::Full,
    );
    rt.enable_trace();
    if observe {
        rt.attach_observer(Box::new(hem_obs::Rollup::new()));
    }
    let inst = sor::setup(
        &mut rt,
        &ids,
        sor::SorParams {
            n: 64,
            block: 4,
            procs: ProcGrid::square(p),
        },
    );
    sor::run(&mut rt, &inst, 1).unwrap();
    let mk = rt.makespan();
    (rt.take_trace(), mk)
}

/// One plain SOR run (no trace buffer) with the rollup observer attached,
/// for the host-time overhead comparison — the observation-on
/// configuration `hemprof`-style profiling of machine-sized runs uses.
fn run_sor_rollup(p: u32, sched: SchedImpl) -> Runtime {
    let ids = sor::build();
    let mut rt = hem_apps::make_runtime(
        ids.program.clone(),
        p,
        CostModel::cm5(),
        ExecMode::Hybrid,
        InterfaceSet::Full,
    );
    rt.sched_impl = sched;
    rt.attach_observer(Box::new(hem_obs::Rollup::new()));
    let inst = sor::setup(
        &mut rt,
        &ids,
        sor::SorParams {
            n: 64,
            block: 4,
            procs: ProcGrid::square(p),
        },
    );
    sor::run(&mut rt, &inst, 1).unwrap();
    rt
}

/// Observer cost: attaching the metrics rollup must be *semantically*
/// free — at P = 256 the trace and makespan are bit-identical with
/// observation on or off (the hook sees each record as it is generated
/// but can never charge virtual time or alter the stream; this guard runs
/// before the benchmark and fails it loudly) — and its host-time overhead
/// is what the off/on ratio reports. The hook itself (a no-op observer)
/// costs ≤1%; the full rollup lands around 8–10% at P = 256 — see the
/// "Observer overhead" section of EXPERIMENTS.md for the decomposition
/// and the `obs_timing` probe in `crates/bench/tests/` for a quick
/// interleaved re-measurement.
fn bench_observer(c: &mut Criterion) {
    let (trace_off, mk_off) = run_sor_observed(256, false);
    let (trace_on, mk_on) = run_sor_observed(256, true);
    assert_eq!(
        mk_off, mk_on,
        "observer changed the makespan at P=256 ({mk_off} vs {mk_on})"
    );
    assert!(
        trace_off == trace_on,
        "observer changed the trace contents at P=256"
    );

    let mut g = c.benchmark_group("observer/sor64");
    g.sample_size(10);
    for p in PROCS {
        for (label, run) in [
            ("off", run_sor as fn(u32, SchedImpl) -> Runtime),
            ("on", run_sor_rollup),
        ] {
            let events = run(p, SchedImpl::EventIndex)
                .stats()
                .sched
                .events_dispatched;
            g.throughput(Throughput::Elements(events));
            g.bench_with_input(BenchmarkId::new(label, format!("P{p}")), &p, |b, &p| {
                b.iter(|| run(p, SchedImpl::EventIndex).makespan())
            });
        }
    }
    g.finish();
}

/// One SOR run with tracing on under an arbitrary scheduler, returning
/// the full trace and makespan.
fn run_sor_traced_sched(p: u32, sched: SchedImpl) -> (Vec<hem_core::trace::TraceRecord>, u64) {
    let ids = sor::build();
    let mut rt = hem_apps::make_runtime(
        ids.program.clone(),
        p,
        CostModel::cm5(),
        ExecMode::Hybrid,
        InterfaceSet::Full,
    );
    rt.sched_impl = sched;
    rt.enable_trace();
    let inst = sor::setup(
        &mut rt,
        &ids,
        sor::SorParams {
            n: 64,
            block: 4,
            procs: ProcGrid::square(p),
        },
    );
    sor::run(&mut rt, &inst, 1).unwrap();
    let mk = rt.makespan();
    (rt.take_trace(), mk)
}

/// Host-parallel speedup: the sharded executor must be *semantically*
/// free — at P = 256 the trace and makespan are bit-identical at every
/// thread count (this guard runs before the benchmark and fails it
/// loudly) — and its host wall-clock win is what the threads-1/threads-N
/// ratio reports. `threads1` falls back to the plain event index, so it
/// doubles as the baseline. EXPERIMENTS.md records the P = 256 table;
/// the budget there is ≥1.3× with 4 threads.
fn bench_sharded(c: &mut Criterion) {
    let (trace_one, mk_one) = run_sor_traced_sched(256, SchedImpl::EventIndex);
    for threads in [2usize, 4] {
        let (trace_n, mk_n) = run_sor_traced_sched(256, SchedImpl::Sharded { threads });
        assert_eq!(
            mk_one, mk_n,
            "sharded ({threads} threads) changed the makespan at P=256"
        );
        assert!(
            trace_one == trace_n,
            "sharded ({threads} threads) changed the trace contents at P=256"
        );
    }

    let mut g = c.benchmark_group("sharded/sor64");
    g.sample_size(10);
    for p in [64u32, 256] {
        for threads in [1usize, 2, 4] {
            let sched = SchedImpl::Sharded { threads };
            let events = run_sor(p, sched).stats().sched.events_dispatched;
            g.throughput(Throughput::Elements(events));
            g.bench_with_input(
                BenchmarkId::new(format!("threads{threads}"), format!("P{p}")),
                &(p, sched),
                |b, &(p, sched)| b.iter(|| run_sor(p, sched).makespan()),
            );
        }
    }
    g.finish();
}

/// One SOR run under an arbitrary scheduler *and* cost model — the
/// zero-lookahead comparison needs [`CostModel::unit`].
fn run_sor_cost(p: u32, sched: SchedImpl, cost: CostModel) -> Runtime {
    let ids = sor::build();
    let mut rt = hem_apps::make_runtime(
        ids.program.clone(),
        p,
        cost,
        ExecMode::Hybrid,
        InterfaceSet::Full,
    );
    rt.sched_impl = sched;
    let inst = sor::setup(
        &mut rt,
        &ids,
        sor::SorParams {
            n: 64,
            block: 4,
            procs: ProcGrid::square(p),
        },
    );
    sor::run(&mut rt, &inst, 1).unwrap();
    rt
}

/// Optimistic (Time-Warp) executor: like [`bench_sharded`], the
/// speculative executor must be *semantically* free — at P = 256 the
/// trace and makespan are bit-identical to the event index at every
/// thread count (guarded loudly before the benchmark) — and its host
/// wall-clock ratio against `threads1` (the event-index fallback) is the
/// payoff net of checkpointing and rollbacks. The second group runs the
/// zero-lookahead regime ([`CostModel::unit`]): there the conservative
/// window executor degenerates to one event per window while the
/// optimistic one still forms multi-event windows, which is the regime
/// speculation exists for (see DESIGN.md §5.17 and EXPERIMENTS.md).
fn bench_speculative(c: &mut Criterion) {
    let (trace_one, mk_one) = run_sor_traced_sched(256, SchedImpl::EventIndex);
    for threads in [2usize, 4] {
        let (trace_n, mk_n) = run_sor_traced_sched(256, SchedImpl::Speculative { threads });
        assert_eq!(
            mk_one, mk_n,
            "speculative ({threads} threads) changed the makespan at P=256"
        );
        assert!(
            trace_one == trace_n,
            "speculative ({threads} threads) changed the trace contents at P=256"
        );
    }

    let mut g = c.benchmark_group("speculative/sor64");
    g.sample_size(10);
    for p in [64u32, 256] {
        for threads in [1usize, 2, 4] {
            let sched = SchedImpl::Speculative { threads };
            let events = run_sor(p, sched).stats().sched.events_dispatched;
            g.throughput(Throughput::Elements(events));
            g.bench_with_input(
                BenchmarkId::new(format!("threads{threads}"), format!("P{p}")),
                &(p, sched),
                |b, &(p, sched)| b.iter(|| run_sor(p, sched).makespan()),
            );
        }
    }
    g.finish();

    // Zero lookahead: conservative windows hold one event each, so the
    // sharded executor serializes (plus barrier overhead); the optimistic
    // executor is the only parallel option. Same run, bit-identical
    // results — the interesting number is the host-time ordering.
    let mut g = c.benchmark_group("speculative_zero_lookahead/sor64");
    g.sample_size(10);
    let p = 64u32;
    for (label, sched) in [
        ("event-index", SchedImpl::EventIndex),
        ("sharded4", SchedImpl::Sharded { threads: 4 }),
        ("speculative4", SchedImpl::Speculative { threads: 4 }),
    ] {
        let events = run_sor_cost(p, sched, CostModel::unit())
            .stats()
            .sched
            .events_dispatched;
        g.throughput(Throughput::Elements(events));
        g.bench_with_input(
            BenchmarkId::new(label, format!("P{p}")),
            &sched,
            |b, &sched| b.iter(|| run_sor_cost(p, sched, CostModel::unit()).makespan()),
        );
    }
    g.finish();
}

/// Persistent-pool serve mode: the open-system driver calls `run_until`
/// once per arrival chunk, so this is the workload the coordinator-free
/// pool exists for. Guards (loud, before the benchmark): the steady
/// state moves zero worker `Runtime`s through channels, performs zero
/// coordinator rendezvous, reuses one pool across all chunks, and the
/// request dispositions are bit-identical to the single-threaded run.
/// The benchmark then reports host time per offered request across
/// thread counts — on a single-CPU container expect overhead, not
/// speedup (EXPERIMENTS.md records the honest numbers).
fn bench_pool_chunks(c: &mut Criterion) {
    let serve_cfg = |threads: usize| {
        let mut cfg = hem_bench::serve::ServeConfig::new();
        cfg.p = 16;
        cfg.backends = 16;
        cfg.horizon = 40_000;
        cfg.warmup = 4_000;
        cfg.threads = threads;
        cfg
    };
    let outcome = |threads: usize| {
        let (rt, out) = serve_cfg(threads).run();
        (rt.stats(), out.records.len(), rt.makespan())
    };
    let (_, base_reqs, base_mk) = outcome(1);
    for threads in [2usize, 4] {
        let (st, reqs, mk) = outcome(threads);
        assert_eq!(base_reqs, reqs, "serve({threads}) changed the offered load");
        assert_eq!(base_mk, mk, "serve({threads}) changed the makespan");
        assert!(st.sched.windows > 0, "serve({threads}) never windowed");
        assert_eq!(
            st.sched.runtime_moves, 0,
            "serve({threads}) moved a worker Runtime through a channel"
        );
        assert_eq!(
            st.sched.coord_roundtrips, 0,
            "serve({threads}) paid a coordinator rendezvous"
        );
        assert!(
            st.sched.pool_reuses > 0,
            "serve({threads}) rebuilt the pool between run_until chunks"
        );
    }

    let mut g = c.benchmark_group("sharded_pool/serve");
    g.sample_size(10);
    g.throughput(Throughput::Elements(base_reqs as u64));
    for threads in [1usize, 2, 4] {
        g.bench_with_input(
            BenchmarkId::new(format!("threads{threads}"), "P16"),
            &threads,
            |b, &threads| b.iter(|| serve_cfg(threads).run().1.records.len()),
        );
    }
    g.finish();
}

criterion_group!(
    sched,
    bench_sor_sched,
    bench_em3d_sched,
    bench_sharded,
    bench_pool_chunks,
    bench_speculative,
    bench_ack_protocol,
    bench_sanitizer,
    bench_observer
);
criterion_main!(sched);
