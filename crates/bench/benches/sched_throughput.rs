//! Scheduler throughput: events dispatched per second of host time, event
//! index vs linear scan, as the machine grows.
//!
//! The dispatch loop selects the next actionable `(time, kind, node)`
//! event; the linear scan pays O(P) per event where the event index pays
//! O(log P). Both run the same kernels bit-identically (the determinism
//! tests prove it), so the throughput ratio isolates pure scheduler
//! overhead. Expect parity at P = 1 and a widening gap from P = 64 up.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hem_analysis::InterfaceSet;
use hem_apps::{em3d, sor};
use hem_core::{ExecMode, Runtime, SchedImpl};
use hem_machine::cost::CostModel;
use hem_machine::topology::ProcGrid;

const PROCS: [u32; 4] = [1, 16, 64, 256];
const SCHEDS: [(&str, SchedImpl); 2] = [
    ("event-index", SchedImpl::EventIndex),
    ("linear-scan", SchedImpl::LinearScan),
];

/// One SOR run (64x64 grid, 4x4 blocks = 256 block objects) on `p` nodes.
fn run_sor(p: u32, sched: SchedImpl) -> Runtime {
    let ids = sor::build();
    let mut rt = hem_apps::make_runtime(
        ids.program.clone(),
        p,
        CostModel::cm5(),
        ExecMode::Hybrid,
        InterfaceSet::Full,
    );
    rt.sched_impl = sched;
    let inst = sor::setup(
        &mut rt,
        &ids,
        sor::SorParams {
            n: 64,
            block: 4,
            procs: ProcGrid::square(p),
        },
    );
    sor::run(&mut rt, &inst, 1).unwrap();
    rt
}

/// One EM3D run (graph scaled with the machine: 4 nodes' worth of E/H
/// objects per processor) on `p` nodes.
fn run_em3d(p: u32, sched: SchedImpl) -> Runtime {
    let ids = em3d::build(4);
    let graph = em3d::generate(4 * p, 4, p, 0.5, 7);
    let mut rt = hem_apps::make_runtime(
        ids.program.clone(),
        p,
        CostModel::cm5(),
        ExecMode::Hybrid,
        InterfaceSet::Full,
    );
    rt.sched_impl = sched;
    let inst = em3d::setup(&mut rt, &ids, &graph);
    em3d::run(&mut rt, &inst, em3d::Style::Pull, 1).unwrap();
    rt
}

fn bench_kernel(c: &mut Criterion, name: &str, run: fn(u32, SchedImpl) -> Runtime) {
    let mut g = c.benchmark_group(format!("sched_throughput/{name}"));
    g.sample_size(10);
    for p in PROCS {
        for (label, sched) in SCHEDS {
            // The event count is a property of the (deterministic) run, not
            // of the scheduler implementation; report events/sec.
            let events = run(p, sched).stats().sched.events_dispatched;
            g.throughput(Throughput::Elements(events));
            g.bench_with_input(
                BenchmarkId::new(label, format!("P{p}")),
                &(p, sched),
                |b, &(p, sched)| b.iter(|| run(p, sched).makespan()),
            );
        }
    }
    g.finish();
}

fn bench_sor_sched(c: &mut Criterion) {
    bench_kernel(c, "sor64", run_sor);
}

fn bench_em3d_sched(c: &mut Criterion) {
    bench_kernel(c, "em3d_4xP", run_em3d);
}

/// One SOR run with the reliable transport armed on a fault-free wire:
/// every remote message gains a sequence-number word, an ack frame, and a
/// retransmit timer that is always cancelled in time.
fn run_sor_reliable(p: u32, sched: SchedImpl) -> Runtime {
    let ids = sor::build();
    let mut rt = hem_apps::make_runtime(
        ids.program.clone(),
        p,
        CostModel::cm5(),
        ExecMode::Hybrid,
        InterfaceSet::Full,
    );
    rt.sched_impl = sched;
    rt.enable_reliable_transport();
    let inst = sor::setup(
        &mut rt,
        &ids,
        sor::SorParams {
            n: 64,
            block: 4,
            procs: ProcGrid::square(p),
        },
    );
    sor::run(&mut rt, &inst, 1).unwrap();
    rt
}

/// Ack-protocol overhead: the same SOR run with the transport off (raw
/// frames) vs on (data/ack envelope, zero faults). The on/off host-time
/// ratio is the protocol's dispatch cost; the makespan delta (printed by
/// the experiment script, see EXPERIMENTS.md) is its simulated cost. The
/// budget is ≤2% at P = 256.
fn bench_ack_protocol(c: &mut Criterion) {
    let mut g = c.benchmark_group("ack_protocol/sor64");
    g.sample_size(10);
    for p in PROCS {
        for (label, run) in [
            ("raw", run_sor as fn(u32, SchedImpl) -> Runtime),
            ("reliable", run_sor_reliable),
        ] {
            let events = run(p, SchedImpl::EventIndex)
                .stats()
                .sched
                .events_dispatched;
            g.throughput(Throughput::Elements(events));
            g.bench_with_input(BenchmarkId::new(label, format!("P{p}")), &p, |b, &p| {
                b.iter(|| run(p, SchedImpl::EventIndex).makespan())
            });
        }
    }
    g.finish();
}

criterion_group!(sched, bench_sor_sched, bench_em3d_sched, bench_ack_protocol);
criterion_main!(sched);
