//! Manual probe for the observer's host-time overhead at P = 256 (the
//! `observer/sor64` budget discussion in EXPERIMENTS.md). Interleaves
//! off / rollup / nop configurations and takes the per-configuration
//! minimum over many trials, which rejects scheduling noise far better
//! than criterion's mean on a shared single-core box.
//!
//! Ignored by default (it is a measurement, not a correctness check):
//!
//! ```text
//! cargo test --release -p hem-bench --test obs_timing -- --ignored --nocapture
//! ```

use hem_analysis::InterfaceSet;
use hem_apps::sor;
use hem_core::{ExecMode, Runtime};
use hem_machine::cost::CostModel;
use hem_machine::topology::ProcGrid;

struct Nop;
impl hem_core::Observer for Nop {
    fn on_record(&mut self, _rec: &hem_core::trace::TraceRecord) {}
}

fn run(p: u32, obs: u8) -> Runtime {
    let ids = sor::build();
    let mut rt = hem_apps::make_runtime(
        ids.program.clone(),
        p,
        CostModel::cm5(),
        ExecMode::Hybrid,
        InterfaceSet::Full,
    );
    match obs {
        1 => rt.attach_observer(Box::new(hem_obs::Rollup::new())),
        2 => rt.attach_observer(Box::new(Nop)),
        _ => {}
    }
    let inst = sor::setup(
        &mut rt,
        &ids,
        sor::SorParams {
            n: 64,
            block: 4,
            procs: ProcGrid::square(p),
        },
    );
    sor::run(&mut rt, &inst, 1).unwrap();
    rt
}

#[test]
#[ignore = "manual timing probe; run with --ignored --nocapture in release"]
fn timing() {
    let mut mins = [f64::MAX; 3];
    for _ in 0..30 {
        for (i, obs) in [0u8, 1, 2].into_iter().enumerate() {
            let t0 = std::time::Instant::now();
            std::hint::black_box(run(256, obs).makespan());
            let t = t0.elapsed().as_secs_f64();
            if t < mins[i] {
                mins[i] = t;
            }
        }
    }
    println!("off:    {:.3}ms", mins[0] * 1e3);
    println!(
        "rollup: {:.3}ms ({:+.1}%)",
        mins[1] * 1e3,
        100.0 * (mins[1] / mins[0] - 1.0)
    );
    println!(
        "nop:    {:.3}ms ({:+.1}%)",
        mins[2] * 1e3,
        100.0 * (mins[2] / mins[0] - 1.0)
    );
}
