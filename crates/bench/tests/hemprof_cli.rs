//! CLI contract tests for the `hemprof` binary — in particular the
//! documented exit codes of `hemprof diff`:
//!
//! * 0 — reports compared (even when the numbers differ);
//! * 1 — an input is unreadable or not a rollup JSON;
//! * 2 — usage error (missing operands, unknown flags values);
//! * 3 — the reports profile different kernels or machine sizes.
//!
//! CI keys on 3 vs 1: a mismatch means "this delta is meaningless",
//! while 1 means the tool or its inputs are broken.

use std::path::PathBuf;
use std::process::{Command, Output};

fn hemprof(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_hemprof"))
        .args(args)
        .output()
        .expect("spawn hemprof")
}

/// Run a kernel with `--report json` and park the report in a temp file.
fn report_to_file(args: &[&str], name: &str) -> PathBuf {
    let out = hemprof(args);
    assert!(
        out.status.success(),
        "kernel run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let path = std::env::temp_dir().join(format!("hemprof_cli_{}_{name}", std::process::id()));
    std::fs::write(&path, &out.stdout).expect("write report");
    path
}

#[test]
fn diff_exit_codes_distinguish_mismatch_from_breakage() {
    let a = report_to_file(
        &["sor", "--p", "4", "--size", "8", "--report", "json"],
        "a.json",
    );
    let a2 = report_to_file(
        &["sor", "--p", "4", "--size", "8", "--report", "json"],
        "a2.json",
    );
    let b = report_to_file(
        &["sor", "--p", "16", "--size", "8", "--report", "json"],
        "b.json",
    );

    // Same configuration: a zero-delta diff, exit 0.
    let out = hemprof(&["diff", a.to_str().unwrap(), a2.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "identical configs diff cleanly");

    // Different machine size: documented mismatch code 3, with the
    // refusal explained on stderr.
    let out = hemprof(&["diff", a.to_str().unwrap(), b.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(3), "p=4 vs p=16 is a mismatch");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("refusing to diff mismatched runs"),
        "stderr explains the refusal"
    );

    // Unreadable input: I/O failure, exit 1 — not 3.
    let missing = std::env::temp_dir().join("hemprof_cli_definitely_missing.json");
    let out = hemprof(&["diff", a.to_str().unwrap(), missing.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "missing file is breakage");

    // Invalid JSON: also breakage, exit 1.
    let garbage = std::env::temp_dir().join(format!("hemprof_cli_{}_garbage", std::process::id()));
    std::fs::write(&garbage, "not json at all").expect("write garbage");
    let out = hemprof(&["diff", a.to_str().unwrap(), garbage.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "unparsable input is breakage");

    // Missing operand: usage error, exit 2.
    let out = hemprof(&["diff", a.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "missing operand is usage");

    for p in [a, a2, b, garbage] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn unknown_kernel_is_a_usage_error() {
    let out = hemprof(&["nosuchkernel"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn profile_shard_map_is_observationally_invisible() {
    // `--shard-map profile` re-cuts the shard boundaries by pilot busy
    // time; the JSON report (makespan, traffic, every rollup cell) must
    // be byte-identical to the default even map.
    let base = &["sor", "--p", "4", "--size", "8", "--threads", "2"];
    let even = hemprof(&[base, &["--report", "json"] as &[&str]].concat());
    let prof = hemprof(
        &[
            base,
            &["--shard-map", "profile", "--report", "json"] as &[&str],
        ]
        .concat(),
    );
    assert!(even.status.success() && prof.status.success());
    assert_eq!(
        String::from_utf8_lossy(&even.stdout),
        String::from_utf8_lossy(&prof.stdout),
        "profile-guided map changed an observable"
    );
    assert!(
        String::from_utf8_lossy(&prof.stderr).contains("profile-guided shard map"),
        "pilot run announced on stderr"
    );
}
