use hem_analysis::InterfaceSet;
use hem_apps::sor;
use hem_core::{ExecMode, Runtime, SchedImpl};
use hem_machine::cost::CostModel;
use hem_machine::topology::ProcGrid;

fn run(p: u32, reliable: bool) -> Runtime {
    let ids = sor::build();
    let mut rt = hem_apps::make_runtime(
        ids.program.clone(),
        p,
        CostModel::cm5(),
        ExecMode::Hybrid,
        InterfaceSet::Full,
    );
    rt.sched_impl = SchedImpl::EventIndex;
    if reliable {
        rt.enable_reliable_transport();
    }
    let inst = sor::setup(
        &mut rt,
        &ids,
        sor::SorParams {
            n: 64,
            block: 4,
            procs: ProcGrid::square(p),
        },
    );
    sor::run(&mut rt, &inst, 1).unwrap();
    rt
}

fn main() {
    println!(
        "{:>4} {:>12} {:>12} {:>7} {:>10} {:>10} {:>8} {:>8}",
        "P", "raw_mk", "rel_mk", "mk_ovh%", "raw_ev", "rel_ev", "acks", "retx"
    );
    for p in [1u32, 16, 64, 256] {
        let a = run(p, false);
        let b = run(p, true);
        let (ma, mb) = (a.makespan(), b.makespan());
        let sa = a.stats();
        let sb = b.stats();
        let ta = sa.totals();
        let tb = sb.totals();
        assert_eq!(ta.msgs_handled, tb.msgs_handled, "exactly-once at P={p}");
        println!(
            "{:>4} {:>12} {:>12} {:>7.3} {:>10} {:>10} {:>8} {:>8}",
            p,
            ma,
            mb,
            100.0 * (mb as f64 - ma as f64) / ma as f64,
            sa.sched.events_dispatched,
            sb.sched.events_dispatched,
            tb.acks_sent,
            tb.retransmits
        );
    }
}
