//! Heap activation frames (contexts) and the per-node context table.
//!
//! A context is the paper's heap-allocated activation record: program
//! counter, locals, and — crucially — the **future slots embedded in the
//! frame itself**. (StackThreads allocates futures separately and pays an
//! extra memory reference per touch; the paper calls this out as a design
//! difference, and the `ablation_futures` bench quantifies it.)
//!
//! Contexts are recycled through a free list with a generation counter;
//! every [`ContRef`](hem_ir::ContRef) carries the generation it was minted
//! against, so a stale continuation reaching a recycled context is caught
//! as a trap instead of corrupting an unrelated activation.

use crate::cont::Continuation;
use hem_ir::{MethodId, ObjRef, Value};

/// The state of one future slot inside an activation frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SlotState {
    /// Untouched.
    Empty,
    /// An invocation will reply here.
    Pending,
    /// Resolved.
    Full(Value),
    /// A join counter awaiting `n` more completions; `Join(0)` is resolved.
    Join(u32),
}

impl SlotState {
    /// Is the slot resolved (a touch of it would not block)?
    pub fn satisfied(&self) -> bool {
        matches!(self, SlotState::Full(_) | SlotState::Join(0))
    }

    /// The value a `GetSlot` reads: the payload for `Full`, `Nil` for a
    /// completed join.
    pub fn value(&self) -> Option<Value> {
        match self {
            SlotState::Full(v) => Some(*v),
            SlotState::Join(0) => Some(Value::Nil),
            _ => None,
        }
    }
}

/// The mutable core of an activation: identical for stack frames (the
/// sequential interpreter keeps one on the host stack) and heap contexts
/// (which wrap one in scheduling state). Falling back from stack to heap
/// is *moving* an `ActFrame` into a [`Context`] — the mechanical heart of
/// the paper's lazy context allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct ActFrame {
    /// Executing method.
    pub method: MethodId,
    /// Receiver (`self`); always local to the executing node.
    pub obj: ObjRef,
    /// Next instruction index.
    pub pc: u32,
    /// Registers (`0..params` are the arguments).
    pub locals: Vec<Value>,
    /// Embedded future slots.
    pub slots: Vec<SlotState>,
}

impl ActFrame {
    /// Fresh frame for invoking `method` on `obj` with `args`.
    pub fn new(method: MethodId, obj: ObjRef, nlocals: u16, nslots: u16, args: &[Value]) -> Self {
        let mut locals = vec![Value::Nil; nlocals as usize];
        locals[..args.len()].copy_from_slice(args);
        ActFrame {
            method,
            obj,
            pc: 0,
            locals,
            slots: vec![SlotState::Empty; nslots as usize],
        }
    }

    /// Words of live state (locals + slots): the save/restore cost basis.
    pub fn words(&self) -> u64 {
        (self.locals.len() + self.slots.len()) as u64
    }
}

/// Scheduling status of a heap context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitState {
    /// On the ready queue (or about to be).
    Ready,
    /// Currently being stepped by the scheduler.
    Running,
    /// Suspended on a touch: `mask` bits are the awaited slots, `missing`
    /// of them are still unresolved.
    Waiting {
        /// Bitmask of awaited slot indices.
        mask: u64,
        /// Number of awaited slots still unresolved.
        missing: u16,
    },
    /// A lazily created shell awaiting population by its unwinding caller
    /// (paper §3.2.3 case 3).
    Shell,
    /// Free-list entry.
    Free,
}

/// A heap activation record: frame + scheduling metadata.
#[derive(Debug, Clone)]
pub struct Context {
    /// The activation state.
    pub frame: ActFrame,
    /// Reply capability (set at creation for parallel invocations, linked
    /// lazily on fallback for sequential ones — paper Fig. 6).
    pub cont: Continuation,
    /// Scheduling status.
    pub wait: WaitState,
    /// Generation (stale-continuation guard).
    pub gen: u32,
    /// Whether this context holds its receiver's lock.
    pub holds_lock: bool,
    /// True if this context's continuation has been consumed (forwarded or
    /// stored); a subsequent `Reply` is a trap.
    pub cont_consumed: bool,
    /// Blame tag (originating external request id + 1; 0 = untagged) of
    /// the step that created this context; dispatching the context later
    /// re-establishes the tag. Rides the node-checkpoint `Clone` so
    /// Time-Warp rollback rewinds it with the rest of the table.
    pub req: u64,
}

/// Per-node context table: slab with free list and generations. `Clone`
/// (used by the speculative executor's node checkpoints) captures the
/// slab, free list, and generation counters exactly, so a restored table
/// re-allocates the same indices and generations on re-execution.
#[derive(Debug, Default, Clone)]
pub struct CtxTable {
    entries: Vec<Context>,
    free: Vec<u32>,
    /// Contexts currently allocated (for leak checks).
    pub live: u64,
    /// High-water mark of simultaneously live contexts.
    pub peak: u64,
}

impl CtxTable {
    /// Allocate a context; returns its index.
    pub fn alloc(&mut self, frame: ActFrame, cont: Continuation, wait: WaitState) -> u32 {
        self.live += 1;
        self.peak = self.peak.max(self.live);
        if let Some(i) = self.free.pop() {
            let e = &mut self.entries[i as usize];
            debug_assert_eq!(e.wait, WaitState::Free);
            e.frame = frame;
            e.cont = cont;
            e.wait = wait;
            e.holds_lock = false;
            e.cont_consumed = false;
            e.req = 0;
            // gen was bumped at free time.
            i
        } else {
            self.entries.push(Context {
                frame,
                cont,
                wait,
                gen: 0,
                holds_lock: false,
                cont_consumed: false,
                req: 0,
            });
            (self.entries.len() - 1) as u32
        }
    }

    /// Free a context, bumping its generation.
    pub fn release(&mut self, i: u32) {
        let e = &mut self.entries[i as usize];
        debug_assert_ne!(e.wait, WaitState::Free, "double free of context {i}");
        e.wait = WaitState::Free;
        e.gen = e.gen.wrapping_add(1);
        e.frame.locals.clear();
        e.frame.slots.clear();
        self.free.push(i);
        self.live -= 1;
    }

    /// Borrow a context.
    pub fn get(&self, i: u32) -> &Context {
        &self.entries[i as usize]
    }

    /// Borrow a context mutably.
    pub fn get_mut(&mut self, i: u32) -> &mut Context {
        &mut self.entries[i as usize]
    }

    /// Current generation of slot `i` (for minting continuations).
    pub fn gen(&self, i: u32) -> u32 {
        self.entries[i as usize].gen
    }

    /// Indices of live (non-free) contexts — diagnostics for stuck runs.
    pub fn live_indices(&self) -> Vec<u32> {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.wait != WaitState::Free)
            .map(|(i, _)| i as u32)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hem_machine::NodeId;

    fn frame() -> ActFrame {
        ActFrame::new(
            MethodId(0),
            ObjRef {
                node: NodeId(0),
                index: 0,
            },
            4,
            2,
            &[Value::Int(7)],
        )
    }

    #[test]
    fn frame_initialization() {
        let f = frame();
        assert_eq!(f.locals[0], Value::Int(7));
        assert_eq!(f.locals[1], Value::Nil);
        assert_eq!(f.slots, vec![SlotState::Empty; 2]);
        assert_eq!(f.words(), 6);
        assert_eq!(f.pc, 0);
    }

    #[test]
    fn slot_states() {
        assert!(!SlotState::Empty.satisfied());
        assert!(!SlotState::Pending.satisfied());
        assert!(SlotState::Full(Value::Nil).satisfied());
        assert!(SlotState::Join(0).satisfied());
        assert!(!SlotState::Join(3).satisfied());
        assert_eq!(SlotState::Full(Value::Int(1)).value(), Some(Value::Int(1)));
        assert_eq!(SlotState::Join(0).value(), Some(Value::Nil));
        assert_eq!(SlotState::Pending.value(), None);
    }

    #[test]
    fn table_allocates_and_recycles_with_generation() {
        let mut t = CtxTable::default();
        let a = t.alloc(frame(), Continuation::Unset, WaitState::Ready);
        assert_eq!(t.live, 1);
        assert_eq!(t.gen(a), 0);
        t.release(a);
        assert_eq!(t.live, 0);
        let b = t.alloc(frame(), Continuation::Root, WaitState::Shell);
        assert_eq!(b, a, "free list reuses the slot");
        assert_eq!(t.gen(b), 1, "generation bumped");
        assert_eq!(t.get(b).wait, WaitState::Shell);
        assert_eq!(t.peak, 1);
    }

    #[test]
    fn live_indices_reports_leaks() {
        let mut t = CtxTable::default();
        let a = t.alloc(frame(), Continuation::Unset, WaitState::Ready);
        let b = t.alloc(frame(), Continuation::Unset, WaitState::Ready);
        t.release(a);
        assert_eq!(t.live_indices(), vec![b]);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "double free")]
    fn double_free_caught() {
        let mut t = CtxTable::default();
        let a = t.alloc(frame(), Continuation::Unset, WaitState::Ready);
        t.release(a);
        t.release(a);
    }
}
