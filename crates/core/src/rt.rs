//! The runtime: simulated machine state, the deterministic event loop, and
//! the low-level operations (slot filling, continuation delivery, locks,
//! context fallback) shared by the two interpreters.

use crate::cont::{CallerInfo, Continuation};
use crate::context::{ActFrame, CtxTable, SlotState, WaitState};
use crate::error::Trap;
use crate::explore::{Mutant, TieBreak, TieChoice};
use crate::msg::{Msg, Packet};
use crate::object::{ClassLayout, DeferredInvoke, FieldKind, LockHolder, Object};
use crate::{ExecMode, InterfaceSet, SchemaMap};
use hem_analysis::Analysis;
use hem_ir::{ClassId, ContRef, FieldId, MethodId, ObjRef, Program, ValidationError, Value};
use hem_machine::cost::CostModel;
use hem_machine::fault::FaultPlan;
use hem_machine::net::Network;
use hem_machine::stats::{Counters, MachineStats, SchedStats};
use hem_machine::{Cycles, NodeId};
use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap, VecDeque};
use std::sync::Arc;

/// A packet sitting in a node's inbox awaiting its delivery time.
#[derive(Debug, Clone)]
pub(crate) struct InboxEntry {
    pub deliver: Cycles,
    pub seq: u64,
    pub src: NodeId,
    pub msg: Packet,
    /// Blame tag of the step that injected the packet (request id + 1;
    /// 0 = untagged). Not part of the ordering key: delivery order is
    /// still exactly `(deliver, seq)`.
    pub req: u64,
    /// Whether this wire copy was a retransmission (blame attributes its
    /// transit to the retransmit penalty).
    pub retx: bool,
}

impl PartialEq for InboxEntry {
    fn eq(&self, other: &Self) -> bool {
        (self.deliver, self.seq) == (other.deliver, other.seq)
    }
}
impl Eq for InboxEntry {}
impl PartialOrd for InboxEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for InboxEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap by (deliver, seq).
        (other.deliver, other.seq).cmp(&(self.deliver, self.seq))
    }
}

/// Which dispatch-loop implementation `run_to_quiescence` uses.
///
/// All implementations are bit-identical in observable behavior (selection
/// order, costs, counters, traces); the event index is O(log P) per event
/// where the scan is O(P), and the sharded executor spreads the event
/// index across host threads. The linear scan is kept as the executable
/// specification — the determinism tests diff full traces across the
/// implementations, and the `sched_throughput` bench measures the gaps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedImpl {
    /// Global `BinaryHeap` of `(time, kind, node)` candidates with lazy
    /// invalidation (the default).
    #[default]
    EventIndex,
    /// Reference implementation: re-scan every node per dispatched event.
    LinearScan,
    /// Host-parallel conservative-window executor: nodes are partitioned
    /// into `threads` shards, each advanced by its own OS thread inside
    /// lookahead-bounded virtual-time windows, with traces and stats
    /// merged deterministically so every observable is bit-identical to
    /// [`SchedImpl::EventIndex`] at any thread count (see [`crate::shard`]).
    ///
    /// One departure: the heap-diagnostic fields of
    /// `MachineStats.sched` (`heap_pushes`, `stale_pops`,
    /// `max_heap_depth`) report 0, as under [`SchedImpl::LinearScan`] —
    /// per-shard heap shapes depend on the thread count, so they cannot
    /// be both meaningful and thread-count-invariant.
    Sharded {
        /// Worker thread count; `0` and `1` both mean "run the plain
        /// event index" (as does a cost model with zero wire latency,
        /// which admits no lookahead).
        threads: usize,
    },
    /// Host-parallel optimistic (Time-Warp) executor: like
    /// [`SchedImpl::Sharded`], but windows extend *past* the conservative
    /// lookahead bound. Shards checkpoint dirty nodes copy-on-write,
    /// advance speculatively, and the coordinator validates every
    /// cross-shard message at the window barrier: a message due inside
    /// the window (a *straggler*) rolls all shards back to the window
    /// edge, cancels speculatively sent traffic (anti-messages), and
    /// re-runs a shrunken window (see [`crate::timewarp`]). Observables
    /// are bit-identical to [`SchedImpl::EventIndex`] at every thread
    /// count — including under zero-lookahead cost models, where
    /// [`SchedImpl::Sharded`] degrades to serial stepping.
    ///
    /// The heap-diagnostic fields of `MachineStats.sched` report 0, as
    /// under [`SchedImpl::Sharded`]; speculation diagnostics (rollback
    /// and anti-message counts) live in [`crate::timewarp::SpecStats`],
    /// off to the side, because they *are* thread-count-dependent.
    Speculative {
        /// Worker thread count; `0` and `1` both mean "run the plain
        /// event index". Zero lookahead does **not** fall back — that
        /// regime is the whole point of speculating.
        threads: usize,
    },
}

/// A candidate next-event in the global event index: node `node` believes
/// it can act at `time` (`kind` 0 = handle a message, 1 = run local work).
///
/// Entries are *lower bounds*: a node's clock only advances after an entry
/// is pushed, so a popped entry is re-validated against the node's current
/// state and re-keyed (or dropped) when stale — the same generation-style
/// lazy-invalidation discipline `ContRef` uses for continuations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SchedEntry {
    pub time: Cycles,
    pub kind: u8,
    pub node: u32,
}

impl SchedEntry {
    #[inline]
    fn key(&self) -> (Cycles, u8, u32) {
        (self.time, self.kind, self.node)
    }
}

impl PartialOrd for SchedEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for SchedEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap: the earliest (time, message-before-compute, node id)
        // candidate is the greatest heap element.
        other.key().cmp(&self.key())
    }
}

/// An unacknowledged data frame retained by its sender for retransmission
/// (reliable transport only).
#[derive(Debug, Clone)]
pub(crate) struct Pending {
    /// The payload, re-framed verbatim on every retransmission.
    pub msg: Msg,
    /// Wire size charged per copy.
    pub words: u64,
    /// Wire latency of the original send (requests and replies differ).
    pub latency: Cycles,
    /// Sender-side compose cost re-charged per retransmission.
    pub send_cost: Cycles,
    /// Virtual time at which the frame times out (keys `tx_timers`).
    pub deadline: Cycles,
    /// Retransmissions so far (drives the exponential backoff).
    pub attempt: u32,
    /// Blame tag of the original send (request id + 1; 0 = untagged);
    /// retransmitted copies re-carry it.
    pub req: u64,
}

/// One simulated processor. `Clone` is the speculative executor's
/// checkpoint primitive: a cloned `Node` captures the complete per-node
/// state — objects, contexts, inbox, transport maps, and the wire
/// sequence counter — so restoring it rewinds everything a rolled-back
/// window could have touched (see [`crate::timewarp`]).
#[derive(Clone)]
pub(crate) struct Node {
    pub id: NodeId,
    pub time: Cycles,
    pub objects: Vec<Object>,
    pub ctxs: CtxTable,
    pub ready: VecDeque<u32>,
    /// Lock grants awaiting execution (drained before `ready`).
    pub granted: VecDeque<(u32, DeferredInvoke)>,
    pub inbox: BinaryHeap<InboxEntry>,
    pub counters: Counters,
    /// Smallest `(time, kind)` key this node currently has in the event
    /// index, if any — pushes that would not improve it are suppressed, so
    /// a node keeps O(1) live entries however long its queues get.
    pub sched_noted: Option<(Cycles, u8)>,
    /// Transport sender state: next per-destination sequence number.
    pub tx_next: BTreeMap<u32, u64>,
    /// Transport sender state: unacked frames keyed by `(dest, seq)`.
    pub tx_pending: BTreeMap<(u32, u64), Pending>,
    /// Retransmit timer index over `tx_pending`: `(deadline, dest, seq)`,
    /// minimum first. BTree (not heap) so ack-time removal is exact.
    pub tx_timers: BTreeSet<(Cycles, u32, u64)>,
    /// Transport receiver state: per-source floor — every seq below it has
    /// been delivered to the application exactly once.
    pub rx_floor: BTreeMap<u32, u64>,
    /// Transport receiver state: out-of-order seqs at/above the floor.
    pub rx_seen: BTreeMap<u32, BTreeSet<u64>>,
    /// Next wire sequence counter for packets *sent* by this node. The
    /// injected sequence number is `(wire_seq << 20) | id`, a pure
    /// function of the sender's own execution history — so fault fates
    /// and same-cycle delivery order are identical across every
    /// [`SchedImpl`] and thread count, which a network-global counter
    /// (dependent on the global interleaving of sends) could not be.
    pub wire_seq: u64,
    /// In-flight modeled-collective fold state hosted on this node, keyed
    /// `(initiator node, initiator-local id, tree position)` — position 0
    /// is the initiator's root record, member rank r sits at r + 1.
    /// Multiple members of one collective can share a node (and the
    /// initiator can be a member of its own group), hence the position in
    /// the key. Lives in `Node` so the speculative executor's
    /// copy-on-dirty checkpoint rewinds it for free.
    pub coll: BTreeMap<(u32, u64, u32), CollState>,
    /// Contributions that beat their position's down leg here (jitter and
    /// retransmission reorder legs): stashed in arrival order, drained
    /// into the fold state the moment the down leg creates it.
    pub coll_early: BTreeMap<(u32, u64, u32), Vec<(u8, Value)>>,
    /// Next initiator-local collective id — per-node, so ids are a pure
    /// function of the initiating node's own execution history (the same
    /// argument as `wire_seq`).
    pub coll_next: u64,
}

/// Fold state for one tree position of one in-flight modeled collective
/// (see [`Runtime::issue_collective`]). `acc` slot 0 is the position's own
/// contribution, slots 1 and 2 its left and right tree children's folded
/// sub-trees; contributions arrive in any order but are always *folded* in
/// slot order, so reduction results are arrival-order independent.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct CollState {
    /// Which collective this record belongs to.
    pub kind: crate::msg::CollKind,
    /// Contributions received so far.
    pub acc: [Option<Value>; 3],
    /// Bitmask of `acc` slots that must fill before the fold completes.
    pub need: u8,
    /// Bitmask of `acc` slots filled so far.
    pub filled: u8,
    /// Node hosting the tree parent (up-leg destination; unused at pos 0).
    pub parent: NodeId,
    /// Tree position of the parent (unused at pos 0).
    pub parent_pos: u32,
    /// Fold slot this position fills at its parent (unused at pos 0).
    pub child_ix: u8,
    /// Root record only: where the folded result is delivered.
    pub cont: Option<Continuation>,
}

impl Node {
    pub(crate) fn new(id: NodeId) -> Self {
        Node {
            id,
            time: 0,
            objects: Vec::new(),
            ctxs: CtxTable::default(),
            ready: VecDeque::new(),
            granted: VecDeque::new(),
            inbox: BinaryHeap::new(),
            counters: Counters::default(),
            sched_noted: None,
            tx_next: BTreeMap::new(),
            tx_pending: BTreeMap::new(),
            tx_timers: BTreeSet::new(),
            rx_floor: BTreeMap::new(),
            rx_seen: BTreeMap::new(),
            wire_seq: 0,
            coll: BTreeMap::new(),
            coll_early: BTreeMap::new(),
            coll_next: 0,
        }
    }

    pub(crate) fn has_local_work(&self) -> bool {
        !self.granted.is_empty() || !self.ready.is_empty()
    }

    /// Record receipt of transport seq `seq` from `src`; returns true when
    /// it was already delivered (i.e. this copy is a duplicate). The floor
    /// compacts the seen-set so memory stays proportional to reordering,
    /// not traffic.
    fn rx_mark(&mut self, src: u32, seq: u64) -> bool {
        let floor = self.rx_floor.entry(src).or_insert(0);
        if seq < *floor {
            return true;
        }
        let seen = self.rx_seen.entry(src).or_default();
        if !seen.insert(seq) {
            return true;
        }
        while seen.remove(floor) {
            *floor += 1;
        }
        false
    }
}

/// Buffered slot fills targeting the context currently being stepped (the
/// stepper holds its frame out of the table, so fills are applied when the
/// stepper next drains).
pub(crate) struct ActiveCtx {
    pub node: usize,
    pub id: u32,
    pub gen: u32,
    pub fills: Vec<(u16, Value)>,
}

/// One node's object snapshot — `(class, scalar fields, array fields)` in
/// allocation order; see [`Runtime::object_state`].
pub type NodeObjectState = Vec<(u32, Vec<Value>, Vec<Vec<Value>>)>;

/// The hybrid-execution-model runtime over a simulated multicomputer.
///
/// See the [crate docs](crate) for the model and an example.
pub struct Runtime {
    pub(crate) program: Arc<Program>,
    pub(crate) layouts: Vec<ClassLayout>,
    pub(crate) schemas: SchemaMap,
    /// The cost model in force.
    pub cost: CostModel,
    /// The execution mode in force.
    pub mode: ExecMode,
    pub(crate) nodes: Vec<Node>,
    pub(crate) net: Network<Packet>,
    pub(crate) next_task: u64,
    pub(crate) current_task: u64,
    /// Blame tag of the work currently executing (request id + 1; 0 =
    /// untagged). Step-transient like `current_task`: set when a
    /// dispatched event (or nested poll handling) begins, read when the
    /// step sends messages, defers on locks, or allocates contexts —
    /// never consulted across steps, so Time-Warp rollback needs no
    /// checkpointing for it (all durable tag state lives inside `Node`-
    /// contained structures, which node checkpoints already rewind).
    pub(crate) current_req: u64,
    pub(crate) result: Option<Value>,
    pub(crate) active: Option<ActiveCtx>,
    pub(crate) seq_depth: u32,
    /// Maximum sequential (host-stack) nesting before forcing a fallback
    /// (the analogue of a stack-overflow check; Olden and Stacklets do
    /// stack checks, the paper's C implementation relies on large stacks).
    pub max_seq_depth: u32,
    /// Speculative inlining of local, unlocked, non-blocking leaf calls
    /// (§4.2 includes it in all measurements; ablation benches turn it
    /// off).
    pub enable_inlining: bool,
    /// Dispatch-loop implementation. Set before the first `call` and do not
    /// switch mid-run: the event index is only maintained while selected.
    pub sched_impl: SchedImpl,
    /// Global event index (see [`SchedEntry`]); maintained only under
    /// [`SchedImpl::EventIndex`].
    pub(crate) sched: BinaryHeap<SchedEntry>,
    pub(crate) sched_stats: SchedStats,
    pub(crate) trace_buf: crate::trace::Trace,
    /// Zero-virtual-time streaming trace consumer (see
    /// [`crate::trace::Observer`]); when attached, records are generated
    /// and forwarded even if the buffering trace is off.
    pub(crate) observer: Option<Box<dyn crate::trace::Observer>>,
    /// Online invariant sanitizer (see [`crate::sanitize`]); off by
    /// default, where every hook is one `Option` discriminant test.
    pub(crate) sanitizer: Option<Box<crate::sanitize::Sanitizer>>,
    /// Same-timestamp tie-break policy (see [`crate::explore`]). The
    /// default [`TieBreak::Det`] routes through the production dispatch
    /// loops unchanged.
    pub(crate) tie_break: TieBreak,
    /// SplitMix64 state for [`TieBreak::Seeded`].
    pub(crate) tie_rng: u64,
    /// Next index into a [`TieBreak::Replay`] vector.
    pub(crate) tie_cursor: usize,
    /// Log of non-forced tie decisions taken by the exploring loop.
    pub(crate) tie_log: Vec<TieChoice>,
    /// Seeded protocol mutant under test (`HEM_MUTANT`); see
    /// [`Mutant`]. Test/mutants builds only.
    #[cfg(any(test, feature = "mutants"))]
    pub(crate) mutant: Option<Mutant>,
    /// Reliable transport (seq/ack/retransmit framing) engaged? Off by
    /// default: the raw framing is bit-identical to the pre-transport
    /// runtime and correct on a fault-free wire.
    pub(crate) reliable: bool,
    /// Base retransmission timeout in virtual cycles (attempt 0 waits this
    /// long; each retry doubles it up to [`Self::retx_cap`]). Zero means
    /// "derive from the cost model" at [`Self::enable_reliable_transport`].
    pub retx_base: Cycles,
    /// Upper bound on the retransmission backoff.
    pub retx_cap: Cycles,
    /// Arrival cutoff for send-time network polls: the start time of the
    /// event currently being dispatched ([`Cycles::MAX`] outside the
    /// dispatch loop, e.g. during a root invocation). A poll services only
    /// messages that had arrived by the time the current event began —
    /// without the cutoff, a node whose clock ran ahead mid-event could
    /// observe a message sent *during the same scheduler step window*,
    /// making nested handling depend on host execution order and breaking
    /// the sharded executor's bit-identity (see [`crate::shard`]).
    pub(crate) poll_floor: Cycles,
    /// `(time, kind, node)` key of the event currently being dispatched,
    /// or [`Self::SAN_ROOT_STEP`] outside the dispatch loop (during a
    /// root invocation). The sanitizer's root-double-reply check uses it
    /// as the "same event step" identity: unlike a dispatch *count*, the
    /// key is invariant across scheduler implementations (shard workers
    /// count events per window, so counters collide across windows).
    pub(crate) san_step: (Cycles, u8, u32),
    /// Present iff this runtime is a shard worker inside
    /// [`SchedImpl::Sharded`] execution: trace capture, the cross-shard
    /// outbox, and the node-ownership map (see [`crate::shard`]). `None`
    /// on every user-constructed runtime, including the sharded
    /// coordinator itself.
    pub(crate) shard: Option<Box<crate::shard::ShardCtx>>,
    /// Sequence counter for externally injected requests (open-system
    /// service mode). External arrivals order *after* wire traffic at the
    /// same delivery cycle: their inbox sequence is `(1 << 63) | ext_seq`,
    /// above any wire sequence (`(wire_seq << 20) | node`, which stays
    /// below `2^63` until a single node sends `2^43` messages).
    pub(crate) ext_seq: u64,
    /// Completion log for [`Continuation::Request`] replies: request id →
    /// serving node's clock at reply delivery. A `BTreeMap` so iteration
    /// order is the id order, independent of completion order (and of
    /// which shard worker logged it).
    pub(crate) completions: std::collections::BTreeMap<u64, Cycles>,
    /// Speculation diagnostics for [`SchedImpl::Speculative`] runs
    /// (windows, rollbacks, anti-messages, checkpointed nodes); all zero
    /// under every other scheduler. Deliberately *not* part of
    /// [`MachineStats`]: the counts depend on the thread count, like the
    /// heap diagnostics. See [`crate::timewarp::SpecStats`].
    pub(crate) spec: crate::timewarp::SpecStats,
    /// Optional per-node busy-time weights for the sharded partition (see
    /// [`Self::set_shard_weights`]); `None` partitions into equal
    /// contiguous slices. Host-time tuning only — any contiguous
    /// partition yields bit-identical observables.
    pub(crate) shard_weights: Option<Vec<u64>>,
    /// Persistent shard pool: worker threads with nodes pinned to shards,
    /// kept alive across windows *and* across `run_until` chunks so the
    /// steady-state window edge is an atomic epoch publication with zero
    /// runtime moves and zero coordinator channel round-trips (see
    /// [`crate::shard`]). Built lazily on the first windowed run, rebuilt
    /// when [`Self::pool_gen`] or the pool key changes.
    pub(crate) pool: Option<crate::shard::ShardPool>,
    /// Generation counter for pool-invalidating configuration changes
    /// (fault plan, reliable-transport parameters, shard weights). Worker
    /// runtimes snapshot that configuration when the pool is built, so
    /// any later change must force a rebuild.
    pub(crate) pool_gen: u64,
}

impl Runtime {
    /// Build a runtime: validates the program, runs the schema-selection
    /// analysis under `interfaces`, and sets up `n_nodes` empty nodes.
    pub fn new(
        program: Program,
        n_nodes: u32,
        cost: CostModel,
        mode: ExecMode,
        interfaces: InterfaceSet,
    ) -> Result<Runtime, Vec<ValidationError>> {
        program.validate()?;
        // Wire sequence numbers pack the sender id into their low 20 bits
        // (see `Node::wire_seq`).
        assert!(
            n_nodes < (1 << 20),
            "node count {n_nodes} exceeds the 2^20 wire-sequence id space"
        );
        for (i, m) in program.methods.iter().enumerate() {
            if m.slots > 64 {
                return Err(vec![ValidationError {
                    method: Some(MethodId(i as u32)),
                    at: None,
                    what: format!("{} slots exceed the 64-slot touch mask", m.slots),
                }]);
            }
        }
        let analysis = Analysis::analyze(&program);
        let schemas = analysis.schemas(interfaces);
        let layouts = program.classes.iter().map(ClassLayout::of).collect();
        Ok(Runtime {
            program: Arc::new(program),
            layouts,
            schemas,
            cost,
            mode,
            nodes: (0..n_nodes).map(|i| Node::new(NodeId(i))).collect(),
            net: Network::new(),
            next_task: 0,
            current_task: 0,
            current_req: 0,
            result: None,
            active: None,
            seq_depth: 0,
            max_seq_depth: 1200,
            enable_inlining: true,
            sched_impl: SchedImpl::default(),
            sched: BinaryHeap::new(),
            sched_stats: SchedStats::default(),
            trace_buf: crate::trace::Trace::default(),
            observer: None,
            sanitizer: None,
            tie_break: TieBreak::Det,
            tie_rng: 0,
            tie_cursor: 0,
            tie_log: Vec::new(),
            #[cfg(any(test, feature = "mutants"))]
            mutant: Mutant::from_env(),
            reliable: false,
            retx_base: 0,
            retx_cap: 0,
            poll_floor: Cycles::MAX,
            san_step: Self::SAN_ROOT_STEP,
            shard: None,
            ext_seq: 0,
            completions: std::collections::BTreeMap::new(),
            spec: crate::timewarp::SpecStats::default(),
            shard_weights: None,
            pool: None,
            pool_gen: 0,
        })
    }

    /// Sentinel [`Self::san_step`] for "not inside a dispatched event"
    /// (the root-invocation phase of [`Self::call`]). No real event can
    /// carry this key.
    pub(crate) const SAN_ROOT_STEP: (Cycles, u8, u32) = (Cycles::MAX, u8::MAX, u32::MAX);

    /// Engage the reliable transport: every request and reply travels as a
    /// sequenced data frame, is acknowledged by the receiver, retransmitted
    /// on a capped exponential backoff (in virtual time) until acked, and
    /// duplicate-suppressed at the receiver. Call before the first `call`;
    /// idempotent. Unless already set, the timeout base is derived as 4×
    /// the cost model's round trip and capped at 64× that.
    pub fn enable_reliable_transport(&mut self) {
        if !self.reliable {
            // Worker runtimes in a live shard pool snapshot the transport
            // configuration; force a rebuild on the next windowed run.
            self.pool_gen += 1;
        }
        self.reliable = true;
        if self.retx_base == 0 {
            let rtt = self.cost.msg_latency
                + self.cost.handler
                + self.cost.ack_overhead
                + self.cost.reply_latency
                + self.cost.msg_send;
            self.retx_base = 4 * rtt.max(1);
            self.retx_cap = 64 * self.retx_base;
        }
    }

    /// Install a deterministic fault schedule on the interconnect and
    /// engage the reliable transport (a lossy wire without retransmission
    /// would wedge the machine or silently corrupt the run).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.net.set_plan(Some(plan));
        self.pool_gen += 1; // worker networks hold a plan copy
        self.enable_reliable_transport();
    }

    /// Install (or clear, with `None`) per-node busy-time weights for the
    /// sharded executor's partition. The partition stays contiguous but
    /// cuts shard boundaries by cumulative weight instead of node count,
    /// so a placement whose hot nodes sit in one contiguous slice no
    /// longer idles most workers. Feed this from a profile —
    /// `hem_obs::Rollup::node_busy_weights` exports exactly this vector.
    ///
    /// Host-time tuning only: the window protocol and the merge-by-key
    /// rule are partition-independent, so traces, makespan, stats, and
    /// rollups stay bit-identical under any weighting.
    pub fn set_shard_weights(&mut self, weights: Option<Vec<u64>>) {
        self.shard_weights = weights;
        self.pool_gen += 1; // the pool pins the node→shard map
    }

    /// The contiguous node→shard map the sharded executor would use at
    /// this thread count, honoring any installed
    /// [`Self::set_shard_weights`]. Diagnostic: lets callers and tests
    /// inspect how a profile-guided weighting splits the machine.
    pub fn shard_plan(&self, threads: usize) -> Vec<usize> {
        crate::shard::shard_partition(self.nodes.len(), threads, self.shard_weights.as_deref())
    }

    /// Is the reliable transport engaged?
    pub fn reliable_transport(&self) -> bool {
        self.reliable
    }

    /// Select how the dispatch loop breaks same-timestamp ties (see
    /// [`crate::explore`]). Resets the decision log and, for
    /// [`TieBreak::Seeded`], the RNG stream. [`TieBreak::Det`] (the
    /// default) uses the production dispatch loops unchanged; any other
    /// policy routes [`Self::run_to_quiescence`] through the exploring
    /// loop, which logs every non-forced decision for replay.
    pub fn set_tie_break(&mut self, tb: TieBreak) {
        self.tie_rng = match tb {
            TieBreak::Seeded(seed) => seed,
            _ => 0,
        };
        self.tie_cursor = 0;
        self.tie_log.clear();
        self.tie_break = tb;
    }

    /// The non-forced tie decisions taken since the last
    /// [`Self::set_tie_break`], in order.
    pub fn tie_log(&self) -> &[TieChoice] {
        &self.tie_log
    }

    /// The decision vector alone — feed to [`TieBreak::Replay`] to rerun
    /// this exact schedule.
    pub fn tie_choices(&self) -> Vec<u32> {
        self.tie_log.iter().map(|t| t.choice).collect()
    }

    /// Is the named protocol mutant active? Always false outside
    /// test/mutants builds — the optimizer removes the mutation sites.
    #[inline]
    pub(crate) fn mutant_is(&self, m: Mutant) -> bool {
        #[cfg(any(test, feature = "mutants"))]
        {
            self.mutant == Some(m)
        }
        #[cfg(not(any(test, feature = "mutants")))]
        {
            let _ = m;
            false
        }
    }

    // ================= setup / inspection API =================

    /// The program being executed.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The selected sequential schemas.
    pub fn schemas(&self) -> &SchemaMap {
        &self.schemas
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Look up a method id by class and method name.
    pub fn find_method(&self, class: &str, name: &str) -> Option<MethodId> {
        self.program.find_method(class, name)
    }

    /// Allocate an object of `class` on `node` (harness-side placement —
    /// data layout is an input to the execution model).
    pub fn alloc_object(&mut self, class: ClassId, node: NodeId) -> ObjRef {
        let o = self.layouts[class.idx()].instantiate(class);
        let objs = &mut self.nodes[node.idx()].objects;
        objs.push(o);
        ObjRef {
            node,
            index: (objs.len() - 1) as u32,
        }
    }

    /// Allocate by class name; panics on unknown class (harness error).
    pub fn alloc_object_by_name(&mut self, class: &str, node: NodeId) -> ObjRef {
        let cid = self
            .program
            .classes
            .iter()
            .position(|c| c.name == class)
            .unwrap_or_else(|| panic!("unknown class {class}"));
        self.alloc_object(ClassId(cid as u32), node)
    }

    /// Follow forwarding addresses to an object's current location
    /// (harness-side: free, global view).
    pub fn resolve_ref(&self, mut o: ObjRef) -> ObjRef {
        let mut hops = 0;
        while let Some(n) = self.nodes[o.node.idx()].objects[o.index as usize].moved_to {
            o = n;
            hops += 1;
            assert!(hops < 1_000_000, "forwarding cycle");
        }
        o
    }

    /// Runtime-side name translation: chase forwarding addresses while the
    /// stale location is on the executing node (each hop costs one name
    /// translation). A hop to a remote old location stops here — the
    /// message goes there and that node's wrapper continues the chase.
    pub(crate) fn resolve_local(&mut self, node: usize, mut o: ObjRef) -> ObjRef {
        while o.node.idx() == node {
            match self.nodes[node].objects[o.index as usize].moved_to {
                Some(n) => {
                    self.charge(node, self.cost.locality_check);
                    o = n;
                }
                None => break,
            }
        }
        o
    }

    /// Migrate an object to `dest`, leaving a forwarding address behind
    /// (the paper's future-work direction: data migration under the same
    /// adaptive execution model). Existing references keep working: an
    /// invocation through a stale reference is forwarded during name
    /// translation. Returns the object's new reference.
    ///
    /// # Panics
    /// If the machine is not quiescent, or the object's lock is held
    /// (migration is a between-phases operation, like placement).
    pub fn migrate_object(&mut self, obj: ObjRef, dest: NodeId) -> ObjRef {
        assert!(self.is_quiescent(), "migration requires quiescence");
        let src = self.resolve_ref(obj);
        if src.node == dest {
            return src;
        }
        // Most specific guard first: queued invocations name the waiters
        // that would be stranded, a held lock names the object busy.
        if let Some(l) = &self.nodes[src.node.idx()].objects[src.index as usize].lock {
            assert!(
                l.waiters.is_empty(),
                "cannot migrate with queued invocations"
            );
            assert!(l.holder.is_none(), "cannot migrate a locked object");
        }
        // A suspended activation's `self` must not move out from under it.
        for n in &self.nodes {
            for i in n.ctxs.live_indices() {
                assert!(
                    n.ctxs.get(i).frame.obj != src,
                    "cannot migrate an object with live activations"
                );
            }
        }
        let (class, scalars, arrays, lock) = {
            let o = &mut self.nodes[src.node.idx()].objects[src.index as usize];
            (
                o.class,
                std::mem::take(&mut o.scalars),
                std::mem::take(&mut o.arrays),
                o.lock.clone(),
            )
        };
        let objs = &mut self.nodes[dest.idx()].objects;
        objs.push(Object {
            class,
            scalars,
            arrays,
            lock,
            moved_to: None,
        });
        let new_ref = ObjRef {
            node: dest,
            index: (objs.len() - 1) as u32,
        };
        self.nodes[src.node.idx()].objects[src.index as usize].moved_to = Some(new_ref);
        new_ref
    }

    fn field_slot(&self, obj: ObjRef, field: FieldId) -> FieldKind {
        let obj = self.resolve_ref(obj);
        let o = &self.nodes[obj.node.idx()].objects[obj.index as usize];
        self.layouts[o.class.idx()].kinds[field.idx()]
    }

    /// Harness-side scalar field write (follows forwarding addresses).
    pub fn set_field(&mut self, obj: ObjRef, field: FieldId, v: Value) {
        let obj = self.resolve_ref(obj);
        match self.field_slot(obj, field) {
            FieldKind::Scalar(i) => {
                self.nodes[obj.node.idx()].objects[obj.index as usize].scalars[i as usize] = v;
            }
            FieldKind::Array(_) => panic!("set_field on array field"),
        }
    }

    /// Harness-side scalar field read (follows forwarding addresses).
    pub fn get_field(&self, obj: ObjRef, field: FieldId) -> Value {
        let obj = self.resolve_ref(obj);
        match self.field_slot(obj, field) {
            FieldKind::Scalar(i) => {
                self.nodes[obj.node.idx()].objects[obj.index as usize].scalars[i as usize]
            }
            FieldKind::Array(_) => panic!("get_field on array field"),
        }
    }

    /// Harness-side array field write (follows forwarding addresses).
    pub fn set_array(&mut self, obj: ObjRef, field: FieldId, vs: Vec<Value>) {
        let obj = self.resolve_ref(obj);
        match self.field_slot(obj, field) {
            FieldKind::Array(i) => {
                self.nodes[obj.node.idx()].objects[obj.index as usize].arrays[i as usize] = vs;
            }
            FieldKind::Scalar(_) => panic!("set_array on scalar field"),
        }
    }

    /// Harness-side array field read (follows forwarding addresses).
    pub fn get_array(&self, obj: ObjRef, field: FieldId) -> &[Value] {
        let obj = self.resolve_ref(obj);
        match self.field_slot(obj, field) {
            FieldKind::Array(i) => {
                &self.nodes[obj.node.idx()].objects[obj.index as usize].arrays[i as usize]
            }
            FieldKind::Scalar(_) => panic!("get_array on scalar field"),
        }
    }

    /// Current virtual time of a node.
    pub fn node_time(&self, node: NodeId) -> Cycles {
        self.nodes[node.idx()].time
    }

    /// Makespan: the latest node time.
    pub fn makespan(&self) -> Cycles {
        self.nodes.iter().map(|n| n.time).max().unwrap_or(0)
    }

    /// Snapshot the per-node counters and times.
    pub fn stats(&self) -> MachineStats {
        let mut sched = self.sched_stats.clone();
        sched.dropped_events = self.trace_buf.dropped_total();
        MachineStats {
            per_node: self.nodes.iter().map(|n| n.counters.clone()).collect(),
            node_time: self.nodes.iter().map(|n| n.time).collect(),
            sched,
            net: self.net.stats(),
        }
    }

    /// Snapshot of every object's contents — `(class, scalars, arrays)`,
    /// node by node, in allocation order — for final-state equivalence
    /// checks across execution modes, scheduler implementations, and fault
    /// schedules.
    pub fn object_state(&self) -> Vec<NodeObjectState> {
        self.nodes
            .iter()
            .map(|n| {
                n.objects
                    .iter()
                    .map(|o| (o.class.0, o.scalars.clone(), o.arrays.clone()))
                    .collect()
            })
            .collect()
    }

    /// Zero all event counters (virtual clocks keep running). Lets a
    /// harness measure one phase in isolation (Table 2 deltas).
    pub fn reset_counters(&mut self) {
        for n in &mut self.nodes {
            n.counters = Counters::default();
        }
    }

    /// Number of live (allocated) heap contexts across the machine.
    pub fn live_contexts(&self) -> u64 {
        self.nodes.iter().map(|n| n.ctxs.live).sum()
    }

    /// Contexts still alive after quiescence — a non-empty result means the
    /// program is stuck (deadlock) or intentionally reactive.
    pub fn stuck_contexts(&self) -> Vec<(NodeId, u32)> {
        let mut v = Vec::new();
        for n in &self.nodes {
            for i in n.ctxs.live_indices() {
                v.push((n.id, i));
            }
        }
        v
    }

    /// True when no runnable work, grants, messages, or unacknowledged
    /// transport frames remain anywhere (a pending frame means a
    /// retransmission timer will fire).
    pub fn is_quiescent(&self) -> bool {
        self.net.is_empty()
            && self
                .nodes
                .iter()
                .all(|n| !n.has_local_work() && n.inbox.is_empty() && n.tx_pending.is_empty())
    }

    // ================= cost & counter helpers =================

    #[inline]
    pub(crate) fn charge(&mut self, node: usize, c: Cycles) {
        let n = &mut self.nodes[node];
        n.time += c;
        n.counters.instructions += c;
    }

    #[inline]
    pub(crate) fn ctr(&mut self, node: usize) -> &mut Counters {
        &mut self.nodes[node].counters
    }

    /// Allocate a fresh task token (lock-holder identity for one top-level
    /// execution unit).
    pub(crate) fn new_task(&mut self) -> u64 {
        self.next_task += 1;
        self.current_task = self.next_task;
        self.current_task
    }

    // ================= messaging =================

    /// Push a candidate onto the event index (no-op under the linear scan).
    /// Suppressed when the node already has an entry at or below this key:
    /// that entry is a sufficient lower bound, and validation on pop
    /// recomputes the true candidate anyway.
    #[inline]
    pub(crate) fn sched_note(&mut self, time: Cycles, kind: u8, node: usize) {
        if self.sched_impl != SchedImpl::EventIndex {
            return;
        }
        if self.nodes[node]
            .sched_noted
            .is_some_and(|k| k <= (time, kind))
        {
            return;
        }
        self.nodes[node].sched_noted = Some((time, kind));
        self.sched.push(SchedEntry {
            time,
            kind,
            node: node as u32,
        });
        self.sched_stats.heap_pushes += 1;
        let depth = self.sched.len() as u64;
        if depth > self.sched_stats.max_heap_depth {
            self.sched_stats.max_heap_depth = depth;
        }
    }

    /// Note that `node` gained runnable local work (ready context or lock
    /// grant) at its current virtual time.
    #[inline]
    pub(crate) fn sched_note_local(&mut self, node: usize) {
        self.sched_note(self.nodes[node].time, 1, node);
    }

    /// Inject a packet into the interconnect and drain it straight into
    /// the destination inbox. The wire is drained once per injection — the
    /// `Network` heap assigns the global sequence number, applies the fault
    /// plan, and keeps traffic stats, but packets never sit in it across
    /// scheduler iterations, so the dispatch loop does not need to re-drain
    /// it per event.
    fn inject(
        &mut self,
        from: usize,
        dest: NodeId,
        deliver: Cycles,
        words: u64,
        class: hem_machine::net::WireClass,
        pkt: Packet,
    ) {
        let src = self.nodes[from].id;
        // Per-source wire sequence (see `Node::wire_seq`): deterministic
        // under any scheduler implementation, unlike the network-global
        // counter, so fault fates and same-cycle tie-breaks never depend
        // on how sends from different nodes interleave.
        let wseq = self.nodes[from].wire_seq;
        self.nodes[from].wire_seq += 1;
        let seq = (wseq << 20) | src.0 as u64;
        let fate = self
            .net
            .send_tagged(seq, src, dest, deliver, words, class, pkt);
        if fate.dropped {
            self.emit(
                from,
                crate::trace::TraceEvent::MsgDropped {
                    from: src,
                    to: dest,
                    partitioned: fate.partitioned,
                },
            );
        } else if fate.duplicated {
            self.emit(
                from,
                crate::trace::TraceEvent::MsgDuplicated {
                    from: src,
                    to: dest,
                },
            );
        }
        // The wire is drained synchronously within this injection, so the
        // sending step's blame tag is still current — stamp it (and the
        // retransmission class) onto each inbox entry so the receiving
        // step can pick the tag up without widening the wire format.
        let retx = class == hem_machine::net::WireClass::Retx;
        while let Some(m) = self.net.pop() {
            let d = m.dest.idx();
            let entry = InboxEntry {
                deliver: m.deliver_at,
                seq: m.seq,
                src: m.src,
                msg: m.msg,
                req: self.current_req,
                retx,
            };
            // In a shard worker, a packet for a node another shard owns is
            // parked in the outbox; the coordinator routes it at the next
            // window barrier. The window protocol guarantees it cannot be
            // due before the barrier (its delivery time is at least the
            // window end; see `crate::shard`).
            if let Some(sh) = &mut self.shard {
                if !sh.owns[d] {
                    sh.outbox.push((d as u32, entry));
                    continue;
                }
            }
            // Intra-shard delivery mutates a node other than the one being
            // dispatched: checkpoint it first (cross-node state only ever
            // changes through messages, so this hook plus the
            // dispatch-time one cover every mutation a rollback undoes).
            self.tw_save(d);
            self.nodes[d].inbox.push(entry);
            let at = self.nodes[d].time.max(m.deliver_at);
            self.sched_note(at, 0, d);
        }
    }

    /// Frame `msg` for the wire and inject it: raw when the reliable
    /// transport is off (bit-identical to the pre-transport runtime), else
    /// as a sequenced data frame retained for retransmission until acked.
    /// `latency` and `send_cost` are recorded so a retransmission re-prices
    /// exactly like the original.
    #[allow(clippy::too_many_arguments)]
    fn transmit(
        &mut self,
        from: usize,
        dest: NodeId,
        deliver: Cycles,
        words: u64,
        latency: Cycles,
        send_cost: Cycles,
        class: hem_machine::net::WireClass,
        msg: Msg,
    ) {
        if !self.reliable {
            self.inject(from, dest, deliver, words, class, Packet::Raw(msg));
            return;
        }
        let d = dest.0;
        let deadline = self.nodes[from].time + self.retx_base;
        if let Some(sh) = &mut self.shard {
            if sh.ckpt.is_some() {
                // Speculative window: a timer armed mid-window may come
                // due *before* the window edge (conservative windows
                // cannot outrun `retx_base`, optimistic ones can), and
                // workers never fire timers. Record the earliest such
                // deadline so validation can shrink the window below it.
                sh.min_timer = sh.min_timer.min(deadline);
            }
        }
        let n = &mut self.nodes[from];
        let seq_ref = n.tx_next.entry(d).or_insert(0);
        let seq = *seq_ref;
        *seq_ref += 1;
        n.tx_pending.insert(
            (d, seq),
            Pending {
                msg: msg.clone(),
                words,
                latency,
                send_cost,
                deadline,
                attempt: 0,
                req: self.current_req,
            },
        );
        n.tx_timers.insert((deadline, d, seq));
        self.sched_note(deadline, 2, from);
        self.inject(from, dest, deliver, words, class, Packet::Data { seq, msg });
    }

    /// Send a request message, charging sender-side costs and wire latency.
    /// Sending also polls the network (below); a trap raised by a handler
    /// that runs during that poll propagates promptly to the sender's
    /// execution rather than being parked for the next scheduler iteration.
    pub(crate) fn send_invoke(&mut self, from: usize, dest: NodeId, msg: Msg) -> Result<(), Trap> {
        // The transport's sequence number rides in the active-message
        // header word the wire format already reserves, so reliable mode
        // adds no payload words to data frames.
        let words = msg.words();
        let c = self.cost.msg_send + self.cost.msg_word * words;
        self.charge(from, c);
        let ctr = self.ctr(from);
        ctr.msgs_sent += 1;
        ctr.req_words_sent += words;
        self.emit(
            from,
            crate::trace::TraceEvent::MsgSent {
                from: self.nodes[from].id,
                to: dest,
                words,
                cause: crate::trace::MsgCause::Request,
                req: self.current_req,
            },
        );
        let deliver = self.nodes[from].time + self.cost.msg_latency;
        self.transmit(
            from,
            dest,
            deliver,
            words,
            self.cost.msg_latency,
            c,
            hem_machine::net::WireClass::Data,
            msg,
        );
        self.poll_network(from)
    }

    /// Send a reply message. Trap propagation as for [`Self::send_invoke`].
    pub(crate) fn send_reply(
        &mut self,
        from: usize,
        dest: NodeId,
        cont: ContRef,
        value: Value,
    ) -> Result<(), Trap> {
        let msg = Msg::Reply { cont, value };
        let words = msg.words();
        let c = self.cost.reply_send + self.cost.reply_word * words;
        self.charge(from, c);
        let ctr = self.ctr(from);
        ctr.replies_sent += 1;
        ctr.reply_words_sent += words;
        self.emit(
            from,
            crate::trace::TraceEvent::MsgSent {
                from: self.nodes[from].id,
                to: dest,
                words,
                cause: crate::trace::MsgCause::Reply,
                req: self.current_req,
            },
        );
        let deliver = self.nodes[from].time + self.cost.reply_latency;
        self.transmit(
            from,
            dest,
            deliver,
            words,
            self.cost.reply_latency,
            c,
            hem_machine::net::WireClass::Data,
            msg,
        );
        self.poll_network(from)
    }

    /// Poll the network from code running on `node` — the Concert/CM-5
    /// active-message discipline: every communication operation services
    /// arrived messages, so a long stack sweep cannot starve incoming
    /// requests (which would serialize the machine and hide exactly the
    /// latency-tolerance the hybrid model is supposed to show). Handled
    /// invocations run as nested tasks; the current task's lock identity
    /// is restored afterwards. (Arrived messages already sit in per-node
    /// inboxes — injection drains the wire — so only this node's due
    /// entries are examined.) A poll services only messages that had
    /// arrived by the current event's start (`poll_floor`): a message
    /// delivered later — even if the node's clock ran ahead of its
    /// delivery time mid-event — waits for its own scheduler step, so
    /// nested handling is independent of host execution order and of the
    /// sharded executor's node partition.
    pub(crate) fn poll_network(&mut self, node: usize) -> Result<(), Trap> {
        loop {
            let due = self.nodes[node].inbox.peek().is_some_and(|e| {
                e.deliver <= self.nodes[node].time && e.deliver <= self.poll_floor
            });
            if !due {
                return Ok(());
            }
            let e = self.nodes[node].inbox.pop().expect("peeked entry");
            let saved = self.current_task;
            let saved_req = self.current_req;
            let r = self.handle_packet(node, e.src, e.msg, e.req, e.deliver, e.retx);
            self.current_task = saved;
            self.current_req = saved_req;
            r?;
        }
    }

    /// Transport-level receive processing on `node` for a packet from
    /// `src`: charges handler entry, acknowledges and duplicate-suppresses
    /// data frames, retires pending state on acks, and runs any payload
    /// through [`Self::handle_msg`]. Raw packets take the legacy path
    /// unchanged. `req`/`deliver`/`retx` come from the consumed
    /// [`InboxEntry`]: the originating request's blame tag (which becomes
    /// the current tag for all work this handling triggers), the wire
    /// delivery time, and whether the consumed copy was a retransmission.
    fn handle_packet(
        &mut self,
        node: usize,
        src: NodeId,
        pkt: Packet,
        req: u64,
        deliver: Cycles,
        retx: bool,
    ) -> Result<(), Trap> {
        self.current_req = req;
        match pkt {
            Packet::Raw(msg) => {
                self.charge(node, self.cost.handler);
                self.ctr(node).msgs_handled += 1;
                self.emit_handled(node, src, &msg, req, deliver, retx);
                self.handle_msg(node, msg)
            }
            Packet::Data { seq, msg } => {
                self.charge(node, self.cost.handler);
                // Ack every copy, duplicate or not: acks confirm *receipt*,
                // and a duplicate often means the original's ack was lost.
                self.charge(node, self.cost.ack_overhead);
                self.ctr(node).acks_sent += 1;
                self.emit(
                    node,
                    crate::trace::TraceEvent::MsgSent {
                        from: NodeId(node as u32),
                        to: src,
                        words: 1,
                        cause: crate::trace::MsgCause::Ack,
                        req,
                    },
                );
                let deliver_ack = self.nodes[node].time + self.cost.reply_latency;
                self.inject(
                    node,
                    src,
                    deliver_ack,
                    1,
                    hem_machine::net::WireClass::Ack,
                    Packet::Ack { seq },
                );
                if self.nodes[node].rx_mark(src.0, seq) {
                    self.ctr(node).dups_suppressed += 1;
                    self.emit(
                        node,
                        crate::trace::TraceEvent::DupSuppressed {
                            node: NodeId(node as u32),
                            from: src,
                        },
                    );
                    return Ok(());
                }
                self.ctr(node).msgs_handled += 1;
                self.emit_handled(node, src, &msg, req, deliver, retx);
                self.handle_msg(node, msg)
            }
            Packet::Ack { seq } => {
                self.charge(node, self.cost.ack_overhead);
                self.ctr(node).acks_handled += 1;
                self.emit(
                    node,
                    crate::trace::TraceEvent::MsgHandled {
                        node: NodeId(node as u32),
                        from: src,
                        words: 1,
                        cause: crate::trace::MsgCause::Ack,
                        req,
                        deliver,
                        retx,
                    },
                );
                let n = &mut self.nodes[node];
                // A stale ack (retransmit raced the first ack) finds no
                // pending entry; that is fine.
                if let Some(p) = n.tx_pending.remove(&(src.0, seq)) {
                    n.tx_timers.remove(&(p.deadline, src.0, seq));
                }
                Ok(())
            }
        }
    }

    /// Emit the [`crate::trace::TraceEvent::MsgHandled`] record for a
    /// delivered application payload.
    #[inline]
    fn emit_handled(
        &mut self,
        node: usize,
        src: NodeId,
        msg: &Msg,
        req: u64,
        deliver: Cycles,
        retx: bool,
    ) {
        if !self.tracing_active() {
            return;
        }
        self.emit(
            node,
            crate::trace::TraceEvent::MsgHandled {
                node: NodeId(node as u32),
                from: src,
                words: msg.words(),
                cause: msg.cause(),
                req,
                deliver,
                retx,
            },
        );
    }

    /// Is a copy of frame `(node → dest, seq)` still in flight — the data
    /// frame queued in `dest`'s inbox, or its ack queued in `node`'s? While
    /// one is, a timeout is premature: the simulator's retransmission timer
    /// is clairvoyant where a real sender would run an adaptive RTO
    /// estimator, so the zero-fault path never retransmits into a merely
    /// slow receiver. Losses leave no copy anywhere and do time out.
    fn frame_in_flight(&self, node: usize, dest: usize, seq: u64) -> bool {
        let me = self.nodes[node].id;
        let data_queued = self.nodes[dest]
            .inbox
            .iter()
            .any(|e| e.src == me && matches!(e.msg, Packet::Data { seq: s, .. } if s == seq));
        data_queued
            || self.nodes[node].inbox.iter().any(|e| {
                e.src.0 == dest as u32 && matches!(e.msg, Packet::Ack { seq: s } if s == seq)
            })
    }

    /// Retransmit every pending frame on `node` whose deadline has arrived
    /// (the caller has advanced the node's clock to the selected event
    /// time), re-arming each with doubled, capped backoff. A frame with a
    /// copy still in flight (see [`Self::frame_in_flight`]) is re-armed
    /// silently — no charge, no injection. The retransmit is a fresh wire
    /// injection: it takes a new *global* sequence number, so the fault
    /// plan rolls a fresh fate and the frame eventually gets through with
    /// probability 1.
    fn run_retransmits(&mut self, node: usize) {
        loop {
            let now = self.nodes[node].time;
            let Some(&(dl, dest, seq)) = self.nodes[node].tx_timers.first() else {
                return;
            };
            if dl > now {
                return;
            }
            self.nodes[node].tx_timers.remove(&(dl, dest, seq));
            let live = self.frame_in_flight(node, dest as usize, seq);
            let (send_cost, words, latency, msg, attempt, req) = {
                let p = self.nodes[node]
                    .tx_pending
                    .get_mut(&(dest, seq))
                    .expect("timer without pending frame");
                p.attempt += 1;
                (
                    p.send_cost,
                    p.words,
                    p.latency,
                    p.msg.clone(),
                    p.attempt,
                    p.req,
                )
            };
            // Re-carry the original send's blame tag on the fresh copy
            // (the timer step itself is untagged work).
            self.current_req = req;
            if !live {
                self.charge(node, send_cost);
                self.ctr(node).retransmits += 1;
                self.emit(
                    node,
                    crate::trace::TraceEvent::Retransmit {
                        node: NodeId(node as u32),
                        to: NodeId(dest),
                        attempt,
                    },
                );
                // The wire-accounting record for the fresh copy (one
                // `MsgSent` per injection; the `Retransmit` event above is
                // the protocol-level record).
                self.emit(
                    node,
                    crate::trace::TraceEvent::MsgSent {
                        from: NodeId(node as u32),
                        to: NodeId(dest),
                        words,
                        cause: crate::trace::MsgCause::Retransmit,
                        req,
                    },
                );
            }
            let now = self.nodes[node].time;
            let backoff = self
                .retx_base
                .saturating_mul(1u64 << attempt.min(20))
                .min(self.retx_cap)
                .max(1);
            let deadline = now + backoff;
            let n = &mut self.nodes[node];
            let p = n
                .tx_pending
                .get_mut(&(dest, seq))
                .expect("pending frame vanished");
            p.deadline = deadline;
            n.tx_timers.insert((deadline, dest, seq));
            if !live {
                self.inject(
                    node,
                    NodeId(dest),
                    now + latency,
                    words,
                    hem_machine::net::WireClass::Retx,
                    Packet::Data { seq, msg },
                );
            }
        }
    }

    // ================= modeled collectives =================

    /// Issue a modeled collective (multicast / reduce / barrier) from code
    /// running on `node`, one invocation of `method(args)` per `members`
    /// entry, completion (or the folded reduction) delivered through
    /// `cont`.
    ///
    /// The interconnect models the group operation as a virtual binary
    /// fan-out tree over the member ranks (see
    /// [`hem_machine::net::Network::multicast`]): every down leg still
    /// *originates* at the initiator — so transport framing, fault fates,
    /// and per-sender wire sequencing apply to collectives exactly as to
    /// point-to-point sends — but a leg to tree depth `d` is delivered
    /// `d` wire hops later, and the initiator's clock is charged one
    /// message-compose plus per-word injection costs rather than P full
    /// sends (the tree's interior forwarding runs on the interconnect,
    /// not on any node's clock, like transport acks). Contributions fold
    /// up the same tree: each member combines its own result with its
    /// tree children's sub-trees *in slot order* — so reduction results
    /// are independent of arrival order — and sends one compact up leg to
    /// its parent.
    pub(crate) fn issue_collective(
        &mut self,
        node: usize,
        kind: crate::msg::CollKind,
        members: &[ObjRef],
        method: MethodId,
        args: Vec<Value>,
        cont: Continuation,
    ) -> Result<(), Trap> {
        use crate::msg::CollKind;
        let src = self.nodes[node].id;
        let dests: Vec<NodeId> = members.iter().map(|o| o.node).collect();
        let leg_words = match kind {
            CollKind::Barrier => 1,
            _ => 2 + args.len() as u64,
        };
        let plan = match kind {
            CollKind::Cast | CollKind::CastAcked => self.net.multicast(src, &dests, leg_words),
            CollKind::Reduce(_) => self.net.reduce(&dests, src, leg_words, self.cost.op),
            CollKind::Barrier => self.net.barrier(src, &dests),
        };
        self.ctr(node).coll_initiated += 1;
        if members.is_empty() {
            // Degenerate group: nothing to deliver, nothing to wait for.
            return self.deliver_cont(node, cont, Value::Nil);
        }
        let id = self.nodes[node].coll_next;
        self.nodes[node].coll_next += 1;
        if kind.has_up_phase() {
            // Root fold state: awaits the initiator's direct tree children
            // (positions 1 and, for groups of two or more, 2).
            let mut need = 1u8 << 1;
            if members.len() >= 2 {
                need |= 1 << 2;
            }
            self.nodes[node].coll.insert(
                (src.0, id, 0),
                CollState {
                    kind,
                    acc: [None, None, None],
                    need,
                    filled: 0,
                    parent: src,
                    parent_pos: 0,
                    child_ix: 0,
                    cont: Some(cont),
                },
            );
        }
        // One compose charge for the whole collective; each leg then
        // charges only word-injection cost.
        self.charge(node, self.cost.msg_send);
        // Mutant: price every leg at one hop, ignoring its tree depth.
        let skip_hops = self.mutant_is(Mutant::CollectiveSkipsHopCost);
        for leg in &plan.legs {
            let msg = Msg::CollDown {
                obj: members[leg.rank as usize].index,
                method,
                args: args.clone(),
                init: src,
                id,
                pos: leg.pos,
                parent: leg.parent,
                parent_pos: leg.parent_pos,
                child_ix: leg.child_ix,
                children: leg.children,
                kind,
            };
            let words = msg.words();
            let c = self.cost.msg_word * words;
            self.charge(node, c);
            let ctr = self.ctr(node);
            ctr.msgs_sent += 1;
            ctr.coll_legs_sent += 1;
            ctr.coll_words_sent += words;
            self.emit(
                node,
                crate::trace::TraceEvent::MsgSent {
                    from: src,
                    to: leg.dest,
                    words,
                    cause: kind.cause(),
                    req: self.current_req,
                },
            );
            let hops = if skip_hops { 1 } else { leg.depth } as Cycles;
            let latency = self.cost.msg_latency * hops;
            let deliver = self.nodes[node].time + latency;
            self.transmit(
                node,
                leg.dest,
                deliver,
                words,
                latency,
                c,
                hem_machine::net::WireClass::Coll,
                msg,
            );
        }
        self.poll_network(node)
    }

    /// Deposit a contribution into fold slot `ix` of the collective state
    /// `(init, id, pos)` hosted on `node`; when the state's last expected
    /// slot fills, fold in slot order and either deliver the result (root)
    /// or send the up leg to the tree parent.
    pub(crate) fn coll_fill(
        &mut self,
        node: usize,
        init: NodeId,
        id: u64,
        pos: u32,
        ix: u8,
        v: Value,
    ) -> Result<(), Trap> {
        let key = (init.0, id, pos);
        let Some(st) = self.nodes[node].coll.get_mut(&key) else {
            // The position's own down leg hasn't arrived yet (jitter or a
            // lost-and-retransmitted frame reordered the legs): stash the
            // contribution; the down-leg handler drains it into the fold
            // state it creates. Root state (pos 0) is created before any
            // leg is sent, so it can never be early.
            self.nodes[node]
                .coll_early
                .entry(key)
                .or_default()
                .push((ix, v));
            return Ok(());
        };
        if st.filled & (1 << ix) != 0 {
            return Err(Trap::new(format!(
                "double collective contribution (init {} id {id} pos {pos} slot {ix})",
                init.0
            )));
        }
        st.acc[ix as usize] = Some(v);
        st.filled |= 1 << ix;
        let done = st.filled == st.need;
        self.charge(node, self.cost.future_store);
        self.ctr(node).coll_contribs += 1;
        if !done {
            return Ok(());
        }
        let st = self.nodes[node]
            .coll
            .remove(&key)
            .expect("completed collective state vanished");
        let result = match st.kind {
            crate::msg::CollKind::Reduce(op) => {
                // Fold in slot order (own, left sub-tree, right sub-tree),
                // never in arrival order.
                let mut acc: Option<Value> = None;
                for slot in st.acc.iter() {
                    let Some(v) = slot else { continue };
                    acc = Some(match acc {
                        None => *v,
                        Some(a) => {
                            self.charge(node, self.cost.op);
                            hem_ir::value::bin_op(op, a, *v).map_err(|e| {
                                Trap::new(format!("collective reduce combine: {e:?}"))
                            })?
                        }
                    });
                }
                acc.unwrap_or(Value::Nil)
            }
            _ => Value::Nil,
        };
        if pos == 0 {
            let cont = st.cont.expect("root collective state without continuation");
            self.deliver_cont(node, cont, result)
        } else {
            self.send_coll_up(
                node,
                st.parent,
                Msg::CollUp {
                    init,
                    id,
                    parent_pos: st.parent_pos,
                    child_ix: st.child_ix,
                    value: result,
                    kind: st.kind,
                },
            )
        }
    }

    /// Send an up-tree collective leg. Priced like a reply (up legs are
    /// the collective's answer traffic) but classed and attributed as
    /// collective wire words.
    fn send_coll_up(&mut self, from: usize, dest: NodeId, msg: Msg) -> Result<(), Trap> {
        let words = msg.words();
        let cause = msg.cause();
        let c = self.cost.reply_send + self.cost.reply_word * words;
        self.charge(from, c);
        let ctr = self.ctr(from);
        ctr.msgs_sent += 1;
        ctr.coll_legs_sent += 1;
        ctr.coll_words_sent += words;
        self.emit(
            from,
            crate::trace::TraceEvent::MsgSent {
                from: self.nodes[from].id,
                to: dest,
                words,
                cause,
                req: self.current_req,
            },
        );
        let deliver = self.nodes[from].time + self.cost.reply_latency;
        self.transmit(
            from,
            dest,
            deliver,
            words,
            self.cost.reply_latency,
            c,
            hem_machine::net::WireClass::Coll,
            msg,
        );
        self.poll_network(from)
    }

    // ================= futures & continuations =================

    /// Apply a fill to a slot array. Returns whether the slot became
    /// satisfied, or an error message for protocol violations.
    pub(crate) fn apply_fill(slots: &mut [SlotState], slot: u16, v: Value) -> Result<bool, String> {
        let s = slots
            .get_mut(slot as usize)
            .ok_or_else(|| format!("fill of out-of-range slot {slot}"))?;
        let was = s.satisfied();
        match s {
            SlotState::Join(0) => return Err("reply to completed join".into()),
            SlotState::Join(k) => *k -= 1,
            SlotState::Full(_) => return Err("double reply to future".into()),
            SlotState::Empty | SlotState::Pending => *s = SlotState::Full(v),
        }
        Ok(!was && s.satisfied())
    }

    /// Determine the future at `slot` of context `ctx` on `tnode`,
    /// waking the context if this resolves its touch.
    pub(crate) fn fill_slot(
        &mut self,
        tnode: usize,
        ctx: u32,
        gen: u32,
        slot: u16,
        v: Value,
    ) -> Result<(), Trap> {
        // Route fills for the context currently being stepped through the
        // active buffer (its frame is out of the table).
        if let Some(a) = &mut self.active {
            if a.node == tnode && a.id == ctx {
                if a.gen != gen {
                    return Err(Trap::new("stale continuation (active context)"));
                }
                a.fills.push((slot, v));
                self.charge(tnode, self.cost.future_store);
                return Ok(());
            }
        }
        let cost_store = self.cost.future_store;
        let cost_enqueue = self.cost.enqueue;
        let eager_wake = self.mutant_is(Mutant::EagerWake);
        let drop_join = self.mutant_is(Mutant::DropJoinDecrement);
        let n = &mut self.nodes[tnode];
        let c = n.ctxs.get_mut(ctx);
        if c.gen != gen || c.wait == WaitState::Free {
            return Err(Trap::new(format!(
                "stale continuation: ctx {ctx} gen {gen} (now {})",
                c.gen
            )));
        }
        debug_assert_ne!(c.wait, WaitState::Shell, "fill into unpopulated shell");
        // Mutant: swallow this fill's join decrement (the join never
        // completes and its awaiter leaks).
        if drop_join
            && matches!(c.frame.slots.get(slot as usize), Some(SlotState::Join(k)) if *k >= 2)
        {
            n.time += cost_store;
            n.counters.instructions += cost_store;
            return Ok(());
        }
        let became = Self::apply_fill(&mut c.frame.slots, slot, v)
            .map_err(|e| Trap::at(c.frame.method, c.frame.pc, e))?;
        let mut wake = false;
        let mut wake_mask = 0u64;
        if became {
            if let WaitState::Waiting { mask, missing } = c.wait {
                if mask & (1u64 << slot) != 0 {
                    let missing = missing - 1;
                    // Mutant: wake one fill early, while a touched slot
                    // is still unresolved.
                    if missing == 0 || (eager_wake && missing == 1) {
                        c.wait = WaitState::Ready;
                        wake = true;
                        wake_mask = mask;
                    } else {
                        c.wait = WaitState::Waiting { mask, missing };
                    }
                }
            }
        }
        n.time += cost_store;
        n.counters.instructions += cost_store;
        if wake {
            n.ready.push_back(ctx);
            n.counters.resumes += 1;
            n.time += cost_enqueue;
            n.counters.instructions += cost_enqueue;
            self.san_wake_check(tnode, ctx, wake_mask);
            self.sched_note_local(tnode);
            self.emit(
                tnode,
                crate::trace::TraceEvent::Resume {
                    node: NodeId(tnode as u32),
                    ctx,
                },
            );
        }
        Ok(())
    }

    /// Deliver a value through a continuation, from code running on `node`.
    pub(crate) fn deliver_cont(
        &mut self,
        node: usize,
        cont: Continuation,
        v: Value,
    ) -> Result<(), Trap> {
        match cont {
            Continuation::Unset => Err(Trap::new("reply through unset continuation")),
            Continuation::Discard => Ok(()),
            Continuation::Root => {
                // Mutant: deliver the root reply twice; the overwrite is
                // value-identical, so only the one-shot check sees it.
                if self.mutant_is(Mutant::DoubleRootReply) {
                    self.san_root_delivered();
                    self.result = Some(v);
                }
                self.san_root_delivered();
                self.result = Some(v);
                Ok(())
            }
            Continuation::Into(cr) => {
                if cr.node.idx() == node {
                    self.fill_slot(node, cr.ctx, cr.gen, cr.slot, v)
                } else {
                    self.send_reply(node, cr.node, cr, v)
                }
            }
            Continuation::Coll {
                node: cn,
                init,
                id,
                pos,
                kind,
            } => {
                if cn.idx() == node {
                    // The member completed on its own node (the common
                    // case): the contribution lands in the local fold
                    // state for zero wire words.
                    self.coll_fill(node, init, id, pos, 0, v)
                } else {
                    // The member's method forwarded its continuation
                    // off-node: the contribution degrades to a wire leg
                    // aimed at the fold state's own-contribution slot.
                    self.send_coll_up(
                        node,
                        cn,
                        Msg::CollUp {
                            init,
                            id,
                            parent_pos: pos,
                            child_ix: 0,
                            value: v,
                            kind,
                        },
                    )
                }
            }
            Continuation::Request(req) => {
                // Open-system completion: log the serving node's clock
                // under the request id. The reply value itself is not
                // retained — service-mode experiments measure sojourn
                // time, not payloads.
                let done = self.nodes[node].time;
                self.completions.insert(req, done);
                self.emit(
                    node,
                    crate::trace::TraceEvent::RequestDone {
                        node: NodeId(node as u32),
                        req,
                    },
                );
                Ok(())
            }
        }
    }

    /// Lazily materialize a continuation from `caller_info` (paper §3.2.3's
    /// three cases). Returns the continuation and, when the caller's
    /// context had to be created, the shell context index.
    pub(crate) fn materialize_cont(
        &mut self,
        node: usize,
        info: CallerInfo,
    ) -> Result<(Continuation, Option<u32>), Trap> {
        self.charge(node, self.cost.cont_create);
        self.ctr(node).conts_created += 1;
        self.emit(
            node,
            crate::trace::TraceEvent::ContMaterialized {
                node: NodeId(node as u32),
            },
        );
        match info {
            CallerInfo::Proxy { cont } => Ok((cont, None)),
            CallerInfo::Created {
                node: cn,
                ctx,
                gen,
                ret_slot,
            } => Ok((
                Continuation::Into(ContRef {
                    node: cn,
                    ctx,
                    gen,
                    slot: ret_slot,
                }),
                None,
            )),
            CallerInfo::NotCreated {
                method,
                obj,
                ret_slot,
            } => {
                debug_assert_eq!(obj.node.idx(), node, "shell off-node");
                let m = self.program.method(method);
                let mut frame = ActFrame::new(method, obj, m.locals, m.slots, &[]);
                // Mutant: mark slot 0 instead of the caller's declared
                // return slot; adoption discards shell slots, so only the
                // structural offset check sees it.
                let mark = if self.mutant_is(Mutant::ShellSlotZero) {
                    0
                } else {
                    ret_slot as usize
                };
                frame.slots[mark] = SlotState::Pending;
                let id = self.new_ctx(node, frame, Continuation::Unset, WaitState::Shell, true);
                self.san_shell_check(node, id, ret_slot);
                let gen = self.nodes[node].ctxs.gen(id);
                Ok((
                    Continuation::Into(ContRef {
                        node: NodeId(node as u32),
                        ctx: id,
                        gen,
                        slot: ret_slot,
                    }),
                    Some(id),
                ))
            }
        }
    }

    // ================= contexts =================

    /// Allocate a heap context, charging allocation + state-save costs.
    /// `fallback` distinguishes lazy (stack-unwinding) creations from
    /// eager parallel invocations in the counters.
    pub(crate) fn new_ctx(
        &mut self,
        node: usize,
        frame: ActFrame,
        cont: Continuation,
        wait: WaitState,
        fallback: bool,
    ) -> u32 {
        let words = frame.words();
        let c = self.cost.ctx_alloc + self.cost.ctx_word * words;
        self.charge(node, c);
        let method = frame.method;
        let n = &mut self.nodes[node];
        n.counters.ctx_alloc += 1;
        if fallback {
            n.counters.fallbacks += 1;
        }
        let id = n.ctxs.alloc(frame, cont, wait);
        // The context inherits the creating step's blame tag, so a later
        // resume of it (a kind-1 ready dispatch) re-establishes the tag.
        n.ctxs.get_mut(id).req = self.current_req;
        self.san_ctx_alloc(node, id, fallback);
        self.emit(
            node,
            if fallback {
                crate::trace::TraceEvent::Fallback {
                    node: NodeId(node as u32),
                    method,
                    ctx: id,
                }
            } else {
                crate::trace::TraceEvent::ParInvoke {
                    node: NodeId(node as u32),
                    method,
                    ctx: id,
                }
            },
        );
        id
    }

    /// Put a context on its node's ready queue.
    pub(crate) fn enqueue_ready(&mut self, node: usize, ctx: u32) {
        self.charge(node, self.cost.enqueue);
        let n = &mut self.nodes[node];
        debug_assert_eq!(n.ctxs.get(ctx).wait, WaitState::Ready);
        n.ready.push_back(ctx);
        self.sched_note_local(node);
    }

    /// Finish a context: release its lock if held, free it.
    pub(crate) fn finish_ctx(&mut self, node: usize, ctx: u32) {
        let holds = self.nodes[node].ctxs.get(ctx).holds_lock;
        if holds {
            let obj = self.nodes[node].ctxs.get(ctx).frame.obj.index;
            self.lock_release(node, obj);
        }
        self.charge(node, self.cost.ctx_free);
        self.emit(
            node,
            crate::trace::TraceEvent::CtxFreed {
                node: NodeId(node as u32),
                ctx,
            },
        );
        let n = &mut self.nodes[node];
        n.counters.ctx_free += 1;
        n.ctxs.release(ctx);
        self.san_ctx_free();
    }

    /// Move a stack frame into a lazily allocated heap context: the
    /// mechanical core of the paper's fallback (Fig. 6). The frame is left
    /// empty; `next_pc` is where the parallel version resumes.
    pub(crate) fn fallback_ctx(
        &mut self,
        node: usize,
        fr: &mut ActFrame,
        next_pc: u32,
        wait: WaitState,
    ) -> u32 {
        let mut frame = std::mem::replace(
            fr,
            ActFrame {
                method: fr.method,
                obj: fr.obj,
                pc: 0,
                locals: Vec::new(),
                slots: Vec::new(),
            },
        );
        frame.pc = next_pc;
        let id = self.new_ctx(node, frame, Continuation::Unset, wait, true);
        if wait == WaitState::Ready {
            self.enqueue_ready(node, id);
        } else {
            self.charge(node, self.cost.suspend);
            self.ctr(node).suspends += 1;
        }
        id
    }

    /// Populate a shell context created on our behalf by a CP callee
    /// (paper §3.2.3: "passing the continuation's future's context back to
    /// its caller") and schedule it.
    pub(crate) fn adopt_shell(&mut self, node: usize, shell: u32, fr: &mut ActFrame, next_pc: u32) {
        let words = fr.words();
        self.charge(node, self.cost.ctx_word * words);
        self.ctr(node).fallbacks += 1;
        let n = &mut self.nodes[node];
        let c = n.ctxs.get_mut(shell);
        debug_assert_eq!(c.wait, WaitState::Shell);
        debug_assert_eq!(c.frame.method, fr.method);
        // Keep the shell's slot states where the callee marked the return
        // future pending; the stack frame has the same marking plus any
        // earlier resolved slots, so the stack frame's view wins.
        c.frame.locals = std::mem::take(&mut fr.locals);
        let shell_slots = std::mem::replace(&mut c.frame.slots, std::mem::take(&mut fr.slots));
        debug_assert_eq!(shell_slots.len(), c.frame.slots.len());
        c.frame.pc = next_pc;
        let method = c.frame.method;
        c.wait = WaitState::Ready;
        drop(shell_slots);
        self.emit(
            node,
            crate::trace::TraceEvent::ShellAdopted {
                node: NodeId(node as u32),
                method,
                ctx: shell,
            },
        );
        self.enqueue_ready(node, shell);
    }

    // ================= locks =================

    pub(crate) fn obj_locked_class(&self, node: usize, obj: u32) -> bool {
        self.nodes[node].objects[obj as usize].lock.is_some()
    }

    /// Try to acquire `obj`'s lock for `who`. Unlocked classes always
    /// succeed at no cost; the *check* cost is charged at the invoke site.
    pub(crate) fn lock_try(&mut self, node: usize, obj: u32, who: LockHolder) -> bool {
        let cost = self.cost.lock_acquire;
        let n = &mut self.nodes[node];
        match &mut n.objects[obj as usize].lock {
            None => true,
            Some(l) => {
                if l.acquire(who) {
                    n.time += cost;
                    n.counters.instructions += cost;
                    true
                } else {
                    n.counters.lock_conflicts += 1;
                    false
                }
            }
        }
    }

    /// Release one level of `obj`'s lock; if it becomes free and waiters
    /// exist, schedule a grant.
    pub(crate) fn lock_release(&mut self, node: usize, obj: u32) {
        let cost = self.cost.lock_release;
        let n = &mut self.nodes[node];
        let Some(l) = &mut n.objects[obj as usize].lock else {
            return;
        };
        n.time += cost;
        n.counters.instructions += cost;
        let mut granted = false;
        if l.release() {
            if let Some(d) = l.waiters.pop_front() {
                n.granted.push_back((obj, d));
                granted = true;
            }
        }
        if granted {
            self.sched_note_local(node);
        }
    }

    /// Defer an invocation on a held lock.
    pub(crate) fn lock_defer(&mut self, node: usize, obj: u32, mut d: DeferredInvoke) {
        self.charge(node, self.cost.lock_enqueue);
        self.emit(
            node,
            crate::trace::TraceEvent::LockDeferred {
                node: NodeId(node as u32),
                obj,
                req: self.current_req,
            },
        );
        // The deferred invocation carries the waiter's blame tag: when the
        // lock is granted, the kind-1 dispatch re-establishes it.
        d.req = self.current_req;
        let n = &mut self.nodes[node];
        let l = n.objects[obj as usize]
            .lock
            .as_mut()
            .expect("defer on unlocked class");
        l.waiters.push_back(d);
    }

    /// Transfer a lock held by the current stack task to a fallen-back
    /// context.
    pub(crate) fn lock_transfer(&mut self, node: usize, obj: u32, to: LockHolder) {
        if let Some(l) = &mut self.nodes[node].objects[obj as usize].lock {
            l.transfer(to);
        }
    }

    // ================= open-system service mode =================

    /// Inject an external client request: a root invocation of `method`
    /// on `obj` whose message arrives at the target node at virtual time
    /// `at`, delivering its reply into the completion log under `req`
    /// (drain with [`Self::take_completed_requests`]).
    ///
    /// External arrivals enter through the node's inbox like any other
    /// message — one `MsgHandled` and one handler charge each — but they
    /// bypass the interconnect and the fault plan: they model clients at
    /// the machine's front door, not inter-node traffic. At the same
    /// delivery cycle they order after all wire messages (their inbox
    /// sequence sits above the wire-sequence space) and among themselves
    /// in injection order, so the schedule stays a pure function of the
    /// arrival schedule regardless of scheduler implementation.
    ///
    /// Only call between runs (never from inside a dispatched event);
    /// the typical open-loop driver alternates `run_until(next_arrival)`
    /// with `inject_request(next_arrival, ..)`.
    pub fn inject_request(
        &mut self,
        at: Cycles,
        req: u64,
        obj: ObjRef,
        method: MethodId,
        args: &[Value],
    ) {
        debug_assert!(self.shard.is_none(), "inject_request inside a shard worker");
        self.flush_record(crate::trace::TraceRecord {
            at,
            event: crate::trace::TraceEvent::RequestArrived {
                node: obj.node,
                req,
            },
        });
        let seq = (1u64 << 63) | self.ext_seq;
        self.ext_seq += 1;
        let d = obj.node.idx();
        self.nodes[d].inbox.push(InboxEntry {
            deliver: at,
            seq,
            src: obj.node,
            msg: Packet::Raw(Msg::Invoke {
                obj: obj.index,
                method,
                args: args.to_vec(),
                cont: Continuation::Request(req),
                forwarded: false,
            }),
            // The blame tag is the request id shifted into the "+1, 0 =
            // untagged" encoding; everything this request causes inherits
            // it through the inbox/context/lock-waiter chain.
            req: req + 1,
            retx: false,
        });
        let t = self.nodes[d].time.max(at);
        self.sched_note(t, 0, d);
    }

    /// Record that the admission controller shed request `req` bound for
    /// `node` at time `at` (it never entered the machine). Trace-only:
    /// machine state is untouched.
    pub fn note_request_shed(&mut self, at: Cycles, node: NodeId, req: u64) {
        self.flush_record(crate::trace::TraceRecord {
            at,
            event: crate::trace::TraceEvent::RequestShed { node, req },
        });
    }

    /// The admission controller's congestion signal: everything queued on
    /// a node — undelivered inbox messages, ready contexts, and granted
    /// lock invocations.
    pub fn queue_depth(&self, node: NodeId) -> usize {
        let n = &self.nodes[node.idx()];
        n.inbox.len() + n.ready.len() + n.granted.len()
    }

    /// Drain the completion log: `(request id, completion time)` pairs in
    /// request-id order, where the completion time is the serving node's
    /// clock when the request's reply was delivered.
    pub fn take_completed_requests(&mut self) -> Vec<(u64, Cycles)> {
        std::mem::take(&mut self.completions).into_iter().collect()
    }

    // ================= event loop =================

    /// Root invocation: run `method` on `obj` with `args` to quiescence and
    /// return the reply (if the program replied).
    pub fn call(
        &mut self,
        obj: ObjRef,
        method: MethodId,
        args: &[Value],
    ) -> Result<Option<Value>, Trap> {
        self.result = None;
        self.san_root_reset();
        self.poll_floor = Cycles::MAX;
        self.san_step = Self::SAN_ROOT_STEP;
        self.current_req = 0;
        crate::wrapper::run_invocation(
            self,
            obj.node.idx(),
            obj.index,
            method,
            args.to_vec(),
            Continuation::Root,
            false,
        )?;
        self.run_to_quiescence()?;
        Ok(self.result.take())
    }

    /// Drive the machine until no work remains anywhere. Deterministic:
    /// the next event is always the minimum `(virtual time,
    /// message-before-compute, node id)` candidate, with message order
    /// within a node fixed by `(delivery time, sequence number)` — the
    /// tie-break is a specification both implementations satisfy
    /// bit-identically (see [`SchedImpl`]).
    pub fn run_to_quiescence(&mut self) -> Result<(), Trap> {
        self.run_until(Cycles::MAX)
    }

    /// Drive the machine until every candidate event is at or past
    /// `horizon` (exclusive: an event whose selected time is exactly
    /// `horizon` is *not* dispatched), then return with the machine
    /// **resumable** — a later `run_until` with a larger horizon, or
    /// [`Self::run_to_quiescence`], continues exactly where this left
    /// off. Work injected between calls (e.g. [`Self::inject_request`])
    /// is picked up on the next call.
    ///
    /// The event selected is always the global minimum `(time, kind,
    /// node)` candidate, exactly as under [`Self::run_to_quiescence`]
    /// (which is this with `horizon = Cycles::MAX`), so a horizon-bounded
    /// run is a *prefix* of the unbounded run: traces, stats, clocks, and
    /// rollups are bit-identical across all [`SchedImpl`]s at every
    /// thread count for the same horizon. Note that node clocks may
    /// stand past `horizon` afterwards — a step *starting* before the
    /// horizon charges all of its work.
    pub fn run_until(&mut self, horizon: Cycles) -> Result<(), Trap> {
        if !matches!(self.tie_break, TieBreak::Det) {
            return self.run_explore(horizon);
        }
        match self.sched_impl {
            SchedImpl::EventIndex => self.run_event_index(horizon),
            SchedImpl::LinearScan => self.run_linear_scan(horizon),
            SchedImpl::Sharded { threads } => self.run_sharded(threads, horizon),
            SchedImpl::Speculative { threads } => self.run_speculative(threads, horizon),
        }
    }

    /// Exploring dispatch loop: like the linear scan, but where the
    /// deterministic rule picks the minimum `(time, kind, node)`, this
    /// loop collects *every* candidate tied at the minimum time — all of
    /// them causally enabled now — and lets the [`TieBreak`] policy pick
    /// which to dispatch, logging each non-forced decision. Choice 0 in
    /// canonical `(kind, node)` order is the deterministic selection, so
    /// an empty replay vector reproduces the default schedule.
    fn run_explore(&mut self, horizon: Cycles) -> Result<(), Trap> {
        let mut cands: Vec<(Cycles, u8, u32)> = Vec::new();
        loop {
            cands.clear();
            for i in 0..self.nodes.len() {
                let n = &self.nodes[i];
                if let Some(e) = n.inbox.peek() {
                    cands.push((n.time.max(e.deliver), 0, i as u32));
                }
                if n.has_local_work() {
                    cands.push((n.time, 1, i as u32));
                }
                if let Some(&(dl, _, _)) = n.tx_timers.first() {
                    cands.push((n.time.max(dl), 2, i as u32));
                }
            }
            let Some(min_t) = cands.iter().map(|c| c.0).min() else {
                return Ok(());
            };
            if min_t >= horizon {
                return Ok(());
            }
            cands.retain(|c| c.0 == min_t);
            cands.sort_unstable_by_key(|c| (c.1, c.2));
            let arity = cands.len() as u32;
            let pick = if arity == 1 {
                0
            } else {
                let pick = match self.tie_break {
                    TieBreak::Det => 0,
                    TieBreak::Seeded(_) => {
                        (crate::explore::splitmix64(&mut self.tie_rng) % arity as u64) as u32
                    }
                    TieBreak::Replay(ref v) => {
                        let c = v.get(self.tie_cursor).copied().unwrap_or(0);
                        self.tie_cursor += 1;
                        c.min(arity - 1)
                    }
                };
                self.tie_log.push(TieChoice {
                    choice: pick,
                    arity,
                });
                pick
            };
            let (t, kind, node) = cands[pick as usize];
            self.dispatch_event(t, kind, node as usize)?;
        }
    }

    /// A node's current best candidate, under the same selection rule the
    /// linear scan applies: an inbox head is actionable at
    /// `max(node time, delivery time)` (kind 0); any ready context or lock
    /// grant at the node's current time (kind 1); the earliest pending
    /// retransmission timer at `max(node time, deadline)` (kind 2).
    #[inline]
    pub(crate) fn node_candidate(&self, i: usize) -> Option<(Cycles, u8)> {
        let n = &self.nodes[i];
        let mut best: Option<(Cycles, u8)> = None;
        if let Some(e) = n.inbox.peek() {
            best = Some((n.time.max(e.deliver), 0u8));
        }
        if n.has_local_work() {
            let cand = (n.time, 1u8);
            if best.is_none_or(|b| cand < b) {
                best = Some(cand);
            }
        }
        if let Some(&(dl, _, _)) = n.tx_timers.first() {
            let cand = (n.time.max(dl), 2u8);
            if best.is_none_or(|b| cand < b) {
                best = Some(cand);
            }
        }
        best
    }

    /// The node's earliest retransmission-timer candidate time (the kind-2
    /// component of [`Self::node_candidate`]), used by the sharded
    /// executor to cap windows below the first timer fire.
    #[inline]
    pub(crate) fn node_timer_candidate(&self, i: usize) -> Option<Cycles> {
        let n = &self.nodes[i];
        n.tx_timers.first().map(|&(dl, _, _)| n.time.max(dl))
    }

    /// Dispatch the selected event on node `i`. `t` is the (validated)
    /// candidate time; `kind` 0 handles the inbox head, 1 runs a grant or
    /// ready context, 2 fires due retransmission timers.
    pub(crate) fn dispatch_event(&mut self, t: Cycles, kind: u8, i: usize) -> Result<(), Trap> {
        if let Some(sh) = &mut self.shard {
            // Every record emitted during this step is captured under the
            // event's (time, kind, node) key for the deterministic merge.
            // The per-shard ordinal marks event boundaries within equal
            // keys (zero-cost steps can repeat a key) and carries the
            // shard-local dispatch order the speculative commit merge
            // replays (see `crate::timewarp`).
            sh.cur = (t, kind, i as u32);
            sh.ord += 1;
            if sh.ckpt.is_some() {
                // Speculative window: log the dispatch order so the
                // commit merge can reconstruct the serial schedule (and
                // pick the serial-first trap) even when tracing is off.
                sh.dispatched.push(sh.cur);
            }
        }
        self.tw_save(i);
        self.poll_floor = t;
        self.san_step = (t, kind, i as u32);
        self.sched_stats.events_dispatched += 1;
        let r = if kind == 0 {
            let e = self.nodes[i].inbox.pop().expect("selected inbox entry");
            self.nodes[i].time = t;
            self.current_req = e.req;
            self.emit_event_start(i, kind, e.req);
            self.handle_packet(i, e.src, e.msg, e.req, e.deliver, e.retx)
        } else if kind == 2 {
            self.nodes[i].time = t;
            self.current_req = 0;
            self.emit_event_start(i, kind, 0);
            self.run_retransmits(i);
            Ok(())
        } else if let Some((obj, d)) = self.nodes[i].granted.pop_front() {
            self.current_req = d.req;
            self.emit_event_start(i, kind, d.req);
            self.run_granted(i, obj, d)
        } else {
            let c = self.nodes[i].ready.pop_front().expect("selected ready ctx");
            let req = self.nodes[i].ctxs.get(c).req;
            self.current_req = req;
            self.emit_event_start(i, kind, req);
            crate::par::dispatch(self, i, c)
        };
        if r.is_ok() {
            self.emit(
                i,
                crate::trace::TraceEvent::EventEnd {
                    node: NodeId(i as u32),
                },
            );
        }
        r
    }

    /// Emit the step-start marker for a dispatched event (the node's clock
    /// already stands at the event's start time). `req` is the step's
    /// blame tag (the caller has just set `current_req` to it).
    #[inline]
    fn emit_event_start(&mut self, i: usize, kind: u8, req: u64) {
        self.emit(
            i,
            crate::trace::TraceEvent::EventStart {
                node: NodeId(i as u32),
                kind,
                req,
            },
        );
    }

    /// O(log P)-per-event dispatch: pop the minimum candidate from the
    /// event index, re-validate it against the node's live state (lazy
    /// invalidation), execute it, and re-arm the node's next candidate.
    ///
    /// Every heap entry is a lower bound on its node's true candidate key
    /// (clocks only advance), and every inbox/ready/granted insertion notes
    /// a candidate — so whenever a node is actionable the heap holds an
    /// entry at or below its true key, and the first entry that validates
    /// exactly equal to its node's recomputed candidate is the global
    /// minimum: the same event the linear scan selects.
    pub(crate) fn run_event_index(&mut self, horizon: Cycles) -> Result<(), Trap> {
        loop {
            // Heap entries are lower bounds on their nodes' true
            // candidate keys, and every actionable node keeps one in the
            // heap — so a minimum at or past the horizon means the whole
            // machine is. Stop *before* popping: the intact index (plus
            // re-keys pushed below for stale pops past the horizon) is
            // what makes the run resumable.
            match self.sched.peek() {
                None => break,
                Some(e) if e.time >= horizon => return Ok(()),
                Some(_) => {}
            }
            let e = self.sched.pop().expect("peeked entry");
            let i = e.node as usize;
            // A node's entries pop in key order, so the first pop carries
            // the tracked minimum; consuming it clears the suppression
            // marker (an equal-key duplicate left behind is harmless).
            if self.nodes[i].sched_noted == Some((e.time, e.kind)) {
                self.nodes[i].sched_noted = None;
            }
            let Some((t, kind)) = self.node_candidate(i) else {
                // Dangling entry: the work it announced was consumed by an
                // earlier event (e.g. a send-time poll).
                self.sched_stats.stale_pops += 1;
                continue;
            };
            if (t, kind) != (e.time, e.kind) {
                // Stale lower bound: re-key with the node's live candidate.
                self.sched_stats.stale_pops += 1;
                self.sched_note(t, kind, i);
                continue;
            }
            self.dispatch_event(t, kind, i)?;
            if let Some((t, kind)) = self.node_candidate(i) {
                self.sched_note(t, kind, i);
            }
        }
        debug_assert!(
            (0..self.nodes.len()).all(|i| self.node_candidate(i).is_none()),
            "event index drained while work remains"
        );
        Ok(())
    }

    /// Reference dispatch: re-scan every node per event, O(P) per event.
    fn run_linear_scan(&mut self, horizon: Cycles) -> Result<(), Trap> {
        loop {
            // Select the earliest actionable (time, kind, node).
            let mut best: Option<(Cycles, u8, usize)> = None;
            for i in 0..self.nodes.len() {
                if let Some((t, kind)) = self.node_candidate(i) {
                    let cand = (t, kind, i);
                    if best.is_none_or(|b| cand < b) {
                        best = Some(cand);
                    }
                }
            }
            let Some((t, kind, i)) = best else {
                return Ok(());
            };
            if t >= horizon {
                return Ok(());
            }
            self.dispatch_event(t, kind, i)?;
        }
    }

    fn handle_msg(&mut self, node: usize, msg: Msg) -> Result<(), Trap> {
        match msg {
            Msg::Invoke {
                obj,
                method,
                args,
                cont,
                forwarded,
            } => {
                self.ctr(node).wrapper_runs += 1;
                crate::wrapper::run_invocation(self, node, obj, method, args, cont, forwarded)
            }
            Msg::Reply { cont, value } => {
                debug_assert_eq!(cont.node.idx(), node);
                self.fill_slot(node, cont.ctx, cont.gen, cont.slot, value)
            }
            Msg::CollDown {
                obj,
                method,
                args,
                init,
                id,
                pos,
                parent,
                parent_pos,
                child_ix,
                children,
                kind,
            } => {
                self.ctr(node).coll_legs_handled += 1;
                if kind == crate::msg::CollKind::Cast {
                    // Fire-and-forget: no fold state, nothing flows back.
                    self.ctr(node).wrapper_runs += 1;
                    return crate::wrapper::run_invocation(
                        self,
                        node,
                        obj,
                        method,
                        args,
                        Continuation::Discard,
                        false,
                    );
                }
                let mut need = 1u8;
                if children >= 1 {
                    need |= 1 << 1;
                }
                if children >= 2 {
                    need |= 1 << 2;
                }
                let prev = self.nodes[node].coll.insert(
                    (init.0, id, pos),
                    CollState {
                        kind,
                        acc: [None, None, None],
                        need,
                        filled: 0,
                        parent,
                        parent_pos,
                        child_ix,
                        cont: None,
                    },
                );
                if prev.is_some() {
                    return Err(Trap::new(format!(
                        "duplicate collective leg (init {} id {id} pos {pos})",
                        init.0
                    )));
                }
                // Child contributions that raced ahead of this leg were
                // stashed; fold them in now that the state exists.
                if let Some(early) = self.nodes[node].coll_early.remove(&(init.0, id, pos)) {
                    for (ix, v) in early {
                        self.coll_fill(node, init, id, pos, ix, v)?;
                    }
                }
                if kind == crate::msg::CollKind::Barrier {
                    // Arrival *is* the member's contribution; no method runs.
                    return self.coll_fill(node, init, id, pos, 0, Value::Nil);
                }
                self.ctr(node).wrapper_runs += 1;
                let cont = Continuation::Coll {
                    node: NodeId(node as u32),
                    init,
                    id,
                    pos,
                    kind,
                };
                crate::wrapper::run_invocation(self, node, obj, method, args, cont, false)
            }
            Msg::CollUp {
                init,
                id,
                parent_pos,
                child_ix,
                value,
                kind: _,
            } => {
                self.ctr(node).coll_legs_handled += 1;
                self.coll_fill(node, init, id, parent_pos, child_ix, value)
            }
        }
    }

    /// Run a lock grant: the lock was released with this invocation queued.
    /// The lock may have been re-taken in the meantime (a later stack task
    /// can sneak in); in that case the invocation goes back on the queue.
    fn run_granted(&mut self, node: usize, obj: u32, d: DeferredInvoke) -> Result<(), Trap> {
        let held = self.nodes[node].objects[obj as usize]
            .lock
            .as_ref()
            .is_some_and(|l| l.holder.is_some());
        if held {
            self.nodes[node].objects[obj as usize]
                .lock
                .as_mut()
                .expect("granted on unlocked class")
                .waiters
                .push_front(d);
            return Ok(());
        }
        crate::wrapper::run_invocation(self, node, obj, d.method, d.args, d.cont, d.forwarded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_runtime(n_nodes: u32) -> Runtime {
        let mut pb = hem_ir::ProgramBuilder::new();
        let c = pb.class("C", false);
        pb.method(c, "id", 1, |mb| mb.reply(mb.arg(0)));
        Runtime::new(
            pb.finish(),
            n_nodes,
            CostModel::unit(),
            ExecMode::Hybrid,
            InterfaceSet::Full,
        )
        .unwrap()
    }

    #[test]
    fn setup_and_field_access() {
        let mut pb = hem_ir::ProgramBuilder::new();
        let c = pb.class("C", false);
        let x = pb.field(c, "x");
        let xs = pb.array_field(c, "xs");
        pb.method(c, "id", 0, |mb| mb.reply_nil());
        let mut rt = Runtime::new(
            pb.finish(),
            2,
            CostModel::unit(),
            ExecMode::Hybrid,
            InterfaceSet::Full,
        )
        .unwrap();
        let o = rt.alloc_object_by_name("C", NodeId(1));
        assert_eq!(o.node, NodeId(1));
        rt.set_field(o, x, Value::Int(9));
        assert_eq!(rt.get_field(o, x), Value::Int(9));
        rt.set_array(o, xs, vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(rt.get_array(o, xs).len(), 2);
    }

    #[test]
    fn apply_fill_state_machine() {
        let mut slots = vec![
            SlotState::Pending,
            SlotState::Join(2),
            SlotState::Full(Value::Nil),
        ];
        assert_eq!(Runtime::apply_fill(&mut slots, 0, Value::Int(1)), Ok(true));
        assert_eq!(slots[0], SlotState::Full(Value::Int(1)));
        assert_eq!(Runtime::apply_fill(&mut slots, 1, Value::Nil), Ok(false));
        assert_eq!(Runtime::apply_fill(&mut slots, 1, Value::Nil), Ok(true));
        assert_eq!(slots[1], SlotState::Join(0));
        assert!(Runtime::apply_fill(&mut slots, 1, Value::Nil).is_err());
        assert!(Runtime::apply_fill(&mut slots, 2, Value::Nil).is_err());
        assert!(Runtime::apply_fill(&mut slots, 9, Value::Nil).is_err());
    }

    #[test]
    fn quiescent_when_empty() {
        let rt = tiny_runtime(2);
        assert!(rt.is_quiescent());
        assert_eq!(rt.live_contexts(), 0);
        assert_eq!(rt.makespan(), 0);
    }

    #[test]
    fn slot_cap_enforced() {
        let mut pb = hem_ir::ProgramBuilder::new();
        let c = pb.class("C", false);
        pb.method(c, "many", 0, |mb| {
            for _ in 0..70 {
                mb.slot();
            }
            mb.reply_nil();
        });
        let err = Runtime::new(
            pb.finish(),
            1,
            CostModel::unit(),
            ExecMode::Hybrid,
            InterfaceSet::Full,
        )
        .err()
        .expect("should reject >64 slots");
        assert!(err[0].what.contains("64-slot"));
    }
}
