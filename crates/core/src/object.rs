//! Objects with implicit per-object locks.
//!
//! Locking in the source model is dictated by class definitions: a method
//! invocation on a locked class holds the object for the method's entire
//! duration — including across suspensions — and invocations arriving at a
//! held object are deferred, not refused. The runtime's concurrency check
//! ("is the target unlocked?") is one of the two parallelization checks
//! whose cost Table 3's Seq-opt column removes.

use crate::cont::Continuation;
use hem_ir::{ClassId, MethodId, Value};
use std::collections::VecDeque;

/// Who holds an object lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockHolder {
    /// A stack task (one top-level scheduler dispatch). Reentrant within
    /// the same task, so local synchronous call chains through the same
    /// object do not self-deadlock.
    Task(u64),
    /// A heap context (a method that fell back while holding its lock).
    Ctx(u32),
}

/// An invocation deferred on a held lock.
#[derive(Debug, Clone)]
pub struct DeferredInvoke {
    /// Method to run once granted.
    pub method: MethodId,
    /// Arguments (already evaluated).
    pub args: Vec<Value>,
    /// Reply capability.
    pub cont: Continuation,
    /// Whether the continuation was forwarded to this invocation.
    pub forwarded: bool,
    /// Blame tag of the deferred invocation (request id + 1; 0 =
    /// untagged). Constructors leave it 0; `Runtime::lock_defer` stamps
    /// the deferring step's tag before queueing the waiter.
    pub req: u64,
}

/// Lock state for instances of locked classes.
#[derive(Debug, Clone, Default)]
pub struct LockState {
    /// Current holder, if held.
    pub holder: Option<LockHolder>,
    /// Reentrancy depth.
    pub depth: u32,
    /// FIFO of deferred invocations.
    pub waiters: VecDeque<DeferredInvoke>,
}

impl LockState {
    /// Try to acquire for `who`. Returns true on success (including
    /// reentrant re-acquisition by the same holder).
    pub fn acquire(&mut self, who: LockHolder) -> bool {
        match self.holder {
            None => {
                self.holder = Some(who);
                self.depth = 1;
                true
            }
            Some(h) if h == who => {
                self.depth += 1;
                true
            }
            Some(_) => false,
        }
    }

    /// Release one level; returns true when the lock became free.
    pub fn release(&mut self) -> bool {
        debug_assert!(self.holder.is_some(), "release of unheld lock");
        self.depth -= 1;
        if self.depth == 0 {
            self.holder = None;
            true
        } else {
            false
        }
    }

    /// Transfer ownership (stack task falling back into a heap context).
    pub fn transfer(&mut self, to: LockHolder) {
        debug_assert!(self.holder.is_some(), "transfer of unheld lock");
        self.holder = Some(to);
    }
}

/// An object: class tag, scalar fields, array fields, optional lock.
///
/// Field storage is split by kind; the per-class
/// [`ClassLayout`] maps declared field ids to the right vector.
#[derive(Debug, Clone)]
pub struct Object {
    /// The object's class.
    pub class: ClassId,
    /// Scalar field values, in class declaration order of scalar fields.
    pub scalars: Vec<Value>,
    /// Array field contents, in class declaration order of array fields.
    pub arrays: Vec<Vec<Value>>,
    /// Lock (present iff the class is locked).
    pub lock: Option<LockState>,
    /// Forwarding address left behind by migration: invocations (and
    /// harness field access) through a stale reference chase this chain
    /// during name translation.
    pub moved_to: Option<hem_ir::ObjRef>,
}

/// Where a declared field lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldKind {
    /// Index into [`Object::scalars`].
    Scalar(u16),
    /// Index into [`Object::arrays`].
    Array(u16),
}

/// Precomputed per-class field mapping.
#[derive(Debug, Clone, Default)]
pub struct ClassLayout {
    /// Field id → storage location.
    pub kinds: Vec<FieldKind>,
    /// Number of scalar fields.
    pub n_scalars: u16,
    /// Number of array fields.
    pub n_arrays: u16,
    /// Whether instances carry a lock.
    pub locked: bool,
}

impl ClassLayout {
    /// Compute the layout of a class.
    pub fn of(class: &hem_ir::Class) -> Self {
        let mut kinds = Vec::with_capacity(class.fields.len());
        let (mut ns, mut na) = (0u16, 0u16);
        for f in &class.fields {
            if f.array {
                kinds.push(FieldKind::Array(na));
                na += 1;
            } else {
                kinds.push(FieldKind::Scalar(ns));
                ns += 1;
            }
        }
        ClassLayout {
            kinds,
            n_scalars: ns,
            n_arrays: na,
            locked: class.locked,
        }
    }

    /// Instantiate a nil-initialized object of this class.
    pub fn instantiate(&self, class: ClassId) -> Object {
        Object {
            class,
            scalars: vec![Value::Nil; self.n_scalars as usize],
            arrays: vec![Vec::new(); self.n_arrays as usize],
            lock: if self.locked {
                Some(LockState::default())
            } else {
                None
            },
            moved_to: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hem_ir::{Class, FieldDecl};

    fn layout(locked: bool) -> ClassLayout {
        ClassLayout::of(&Class {
            name: "C".into(),
            fields: vec![
                FieldDecl {
                    name: "a".into(),
                    array: false,
                },
                FieldDecl {
                    name: "xs".into(),
                    array: true,
                },
                FieldDecl {
                    name: "b".into(),
                    array: false,
                },
            ],
            locked,
        })
    }

    #[test]
    fn layout_maps_fields() {
        let l = layout(false);
        assert_eq!(
            l.kinds,
            vec![
                FieldKind::Scalar(0),
                FieldKind::Array(0),
                FieldKind::Scalar(1)
            ]
        );
        assert_eq!(l.n_scalars, 2);
        assert_eq!(l.n_arrays, 1);
        let o = l.instantiate(ClassId(0));
        assert_eq!(o.scalars.len(), 2);
        assert_eq!(o.arrays.len(), 1);
        assert!(o.lock.is_none());
    }

    #[test]
    fn locked_class_gets_lock() {
        let o = layout(true).instantiate(ClassId(0));
        assert!(o.lock.is_some());
    }

    #[test]
    fn lock_reentrancy_and_conflict() {
        let mut l = LockState::default();
        assert!(l.acquire(LockHolder::Task(1)));
        assert!(l.acquire(LockHolder::Task(1)), "reentrant");
        assert!(!l.acquire(LockHolder::Task(2)), "conflict");
        assert!(!l.acquire(LockHolder::Ctx(0)), "conflict");
        assert!(!l.release(), "still held (depth)");
        assert!(l.release(), "now free");
        assert!(l.acquire(LockHolder::Task(2)));
    }

    #[test]
    fn lock_transfer() {
        let mut l = LockState::default();
        assert!(l.acquire(LockHolder::Task(1)));
        l.transfer(LockHolder::Ctx(9));
        assert!(!l.acquire(LockHolder::Task(1)), "task no longer owns");
        assert!(l.acquire(LockHolder::Ctx(9)), "context owns reentrantly");
    }
}
