//! The "equivalent C program" baseline (Table 3's last column).
//!
//! The paper compares the hybrid model's sequential performance against
//! the same algorithms written in plain C. The analogue here is a direct
//! recursive evaluator over the same IR that prices only what C would pay:
//! one `op` unit per instruction and one `plain_call` per invocation —
//! no locality or concurrency checks, no futures, no contexts, no locks.
//! Touch is free (every call completed synchronously), forwarding is a
//! tail call. Cycles are accumulated separately and do **not** advance the
//! simulated node clocks, so a baseline run can share a `Runtime` (and its
//! object graph) with instrumented runs.
//!
//! Continuation manipulation (`StoreCont`) has no C equivalent and traps.

use crate::context::SlotState;
use crate::error::Trap;
use crate::object::FieldKind;
use crate::rt::Runtime;
use hem_ir::value::{bin_op, un_op};
use hem_ir::{Instr, MethodId, ObjRef, Operand, Value};
use hem_machine::Cycles;

/// Run `method` on `obj` as the C baseline. Returns the reply (if the
/// method replied) and the cycle count charged.
pub fn call_c(
    rt: &mut Runtime,
    obj: ObjRef,
    method: MethodId,
    args: &[Value],
) -> Result<(Option<Value>, Cycles), Trap> {
    let mut cycles = 0u64;
    let v = eval(rt, &mut cycles, obj, method, args.to_vec(), 0)?;
    Ok((v, cycles))
}

impl Runtime {
    /// See [`call_c`].
    pub fn call_c_baseline(
        &mut self,
        obj: ObjRef,
        method: MethodId,
        args: &[Value],
    ) -> Result<(Option<Value>, Cycles), Trap> {
        call_c(self, obj, method, args)
    }
}

fn eval(
    rt: &mut Runtime,
    cycles: &mut Cycles,
    obj: ObjRef,
    method: MethodId,
    args: Vec<Value>,
    depth: u32,
) -> Result<Option<Value>, Trap> {
    if depth > 200_000 {
        return Err(Trap::new("C-baseline recursion too deep"));
    }
    let prog = rt.program.clone();
    let m = prog.method(method);
    let mut locals = vec![Value::Nil; m.locals as usize];
    locals[..args.len()].copy_from_slice(&args);
    let mut slots = vec![SlotState::Empty; m.slots as usize];
    let mut pc = 0usize;

    let read = |locals: &[Value], op: &Operand| -> Value {
        match op {
            Operand::L(l) => locals[l.idx()],
            Operand::K(v) => *v,
        }
    };

    loop {
        let ins = m
            .body
            .get(pc)
            .ok_or_else(|| Trap::at(method, pc as u32, "pc past end of body"))?;
        *cycles += rt.cost.op;
        let tv = |e| Trap::from_value(method, pc as u32, e);
        match ins {
            Instr::Mov { dst, src } => locals[dst.idx()] = read(&locals, src),
            Instr::Bin { dst, op, a, b } => {
                locals[dst.idx()] = bin_op(*op, read(&locals, a), read(&locals, b)).map_err(tv)?;
            }
            Instr::Un { dst, op, a } => {
                locals[dst.idx()] = un_op(*op, read(&locals, a)).map_err(tv)?;
            }
            Instr::SelfRef { dst } => locals[dst.idx()] = Value::Obj(obj),
            Instr::MyNode { dst } => locals[dst.idx()] = Value::Int(obj.node.0 as i64),
            Instr::NodeOf { dst, obj: o } => {
                let r = read(&locals, o).as_obj().map_err(tv)?;
                locals[dst.idx()] = Value::Int(r.node.0 as i64);
            }
            Instr::NewLocal { dst, class } => {
                *cycles += rt.cost.ctx_alloc;
                let o = rt.layouts[class.idx()].instantiate(*class);
                let objs = &mut rt.nodes[obj.node.idx()].objects;
                objs.push(o);
                locals[dst.idx()] = Value::Obj(ObjRef {
                    node: obj.node,
                    index: (objs.len() - 1) as u32,
                });
            }
            Instr::GetField { dst, field } => {
                locals[dst.idx()] = field_get(rt, obj, *field)?;
            }
            Instr::SetField { field, src } => {
                let v = read(&locals, src);
                field_set(rt, obj, *field, v)?;
            }
            Instr::GetElem { dst, field, idx } => {
                let i = read(&locals, idx).as_int().map_err(tv)?;
                locals[dst.idx()] = elem_get(rt, obj, *field, i, method, pc as u32)?;
            }
            Instr::SetElem { field, idx, src } => {
                let i = read(&locals, idx).as_int().map_err(tv)?;
                let v = read(&locals, src);
                elem_set(rt, obj, *field, i, v, method, pc as u32)?;
            }
            Instr::ArrNew { field, len } => {
                let l = read(&locals, len).as_int().map_err(tv)?;
                *cycles += rt.cost.ctx_alloc;
                arr_new(rt, obj, *field, l as usize)?;
            }
            Instr::ArrLen { dst, field } => {
                locals[dst.idx()] = Value::Int(arr_len(rt, obj, *field)? as i64);
            }
            Instr::Invoke {
                slot,
                target,
                method: callee,
                args,
                hint: _,
            } => {
                *cycles += rt.cost.plain_call;
                let t = rt.resolve_ref(read(&locals, target).as_obj().map_err(tv)?);
                let a: Vec<Value> = args.iter().map(|o| read(&locals, o)).collect();
                let v = eval(rt, cycles, t, *callee, a, depth + 1)?;
                if let Some(s) = slot {
                    match &mut slots[s.idx()] {
                        SlotState::Join(k) if *k > 0 => *k -= 1,
                        st => *st = SlotState::Full(v.unwrap_or(Value::Nil)),
                    }
                }
            }
            Instr::Forward {
                target,
                method: callee,
                args,
                hint: _,
            } => {
                *cycles += rt.cost.plain_call;
                let t = rt.resolve_ref(read(&locals, target).as_obj().map_err(tv)?);
                let a: Vec<Value> = args.iter().map(|o| read(&locals, o)).collect();
                return eval(rt, cycles, t, *callee, a, depth + 1);
            }
            Instr::Touch { slots: ss } => {
                for s in ss {
                    if !slots[s.idx()].satisfied() {
                        return Err(Trap::at(
                            method,
                            pc as u32,
                            "C baseline touched an unresolved future (program is not synchronous)",
                        ));
                    }
                }
            }
            Instr::GetSlot { dst, slot } => {
                locals[dst.idx()] = slots[slot.idx()].value().ok_or_else(|| {
                    Trap::at(method, pc as u32, "get of unresolved slot in C baseline")
                })?;
            }
            Instr::JoinInit { slot, count } => {
                let c = read(&locals, count).as_int().map_err(tv)?;
                slots[slot.idx()] = SlotState::Join(c.max(0) as u32);
            }
            Instr::Multicast {
                slot,
                group,
                method: callee,
                args,
            } => {
                // The C equivalent of a multicast is a plain for-loop of
                // calls; the interconnect's fan-out tree has no analogue.
                let a: Vec<Value> = args.iter().map(|o| read(&locals, o)).collect();
                for mref in group_refs(rt, obj, *group)? {
                    *cycles += rt.cost.plain_call;
                    let t = rt.resolve_ref(mref);
                    eval(rt, cycles, t, *callee, a.clone(), depth + 1)?;
                }
                if let Some(s) = slot {
                    fill_slot(&mut slots, *s, Value::Nil);
                }
            }
            Instr::Reduce {
                slot,
                group,
                method: callee,
                args,
                op,
            } => {
                let a: Vec<Value> = args.iter().map(|o| read(&locals, o)).collect();
                let mut acc: Option<Value> = None;
                for mref in group_refs(rt, obj, *group)? {
                    *cycles += rt.cost.plain_call;
                    let t = rt.resolve_ref(mref);
                    let v =
                        eval(rt, cycles, t, *callee, a.clone(), depth + 1)?.unwrap_or(Value::Nil);
                    acc = Some(match acc {
                        None => v,
                        Some(prev) => {
                            *cycles += rt.cost.op;
                            bin_op(*op, prev, v).map_err(tv)?
                        }
                    });
                }
                fill_slot(&mut slots, *slot, acc.unwrap_or(Value::Nil));
            }
            Instr::Barrier { slot, .. } => {
                // Synchronous execution is already barrier-ordered.
                fill_slot(&mut slots, *slot, Value::Nil);
            }
            Instr::Reply { src } => return Ok(Some(read(&locals, src))),
            Instr::Halt => return Ok(None),
            Instr::StoreCont { .. } | Instr::SendToCont { .. } => {
                return Err(Trap::at(
                    method,
                    pc as u32,
                    "continuation manipulation has no C equivalent",
                ));
            }
            Instr::Jmp { to } => {
                pc = *to as usize;
                continue;
            }
            Instr::Br { cond, t, f } => {
                let c = read(&locals, cond).as_bool().map_err(tv)?;
                pc = if c { *t as usize } else { *f as usize };
                continue;
            }
        }
        pc += 1;
    }
}

fn fill_slot(slots: &mut [SlotState], s: hem_ir::Slot, v: Value) {
    match &mut slots[s.idx()] {
        SlotState::Join(k) if *k > 0 => *k -= 1,
        st => *st = SlotState::Full(v),
    }
}

fn group_refs(rt: &Runtime, obj: ObjRef, field: hem_ir::FieldId) -> Result<Vec<ObjRef>, Trap> {
    match kind(rt, obj, field) {
        FieldKind::Array(a) => rt.nodes[obj.node.idx()].objects[obj.index as usize].arrays
            [a as usize]
            .iter()
            .map(|v| {
                v.as_obj()
                    .map_err(|_| Trap::new("collective group member is not an object"))
            })
            .collect(),
        FieldKind::Scalar(_) => Err(Trap::new("array access to scalar field")),
    }
}

fn kind(rt: &Runtime, obj: ObjRef, field: hem_ir::FieldId) -> FieldKind {
    let class = rt.nodes[obj.node.idx()].objects[obj.index as usize].class;
    rt.layouts[class.idx()].kinds[field.idx()]
}

fn field_get(rt: &Runtime, obj: ObjRef, field: hem_ir::FieldId) -> Result<Value, Trap> {
    match kind(rt, obj, field) {
        FieldKind::Scalar(i) => {
            Ok(rt.nodes[obj.node.idx()].objects[obj.index as usize].scalars[i as usize])
        }
        FieldKind::Array(_) => Err(Trap::new("scalar access to array field")),
    }
}

fn field_set(rt: &mut Runtime, obj: ObjRef, field: hem_ir::FieldId, v: Value) -> Result<(), Trap> {
    match kind(rt, obj, field) {
        FieldKind::Scalar(i) => {
            rt.nodes[obj.node.idx()].objects[obj.index as usize].scalars[i as usize] = v;
            Ok(())
        }
        FieldKind::Array(_) => Err(Trap::new("scalar access to array field")),
    }
}

fn elem_get(
    rt: &Runtime,
    obj: ObjRef,
    field: hem_ir::FieldId,
    i: i64,
    m: MethodId,
    pc: u32,
) -> Result<Value, Trap> {
    match kind(rt, obj, field) {
        FieldKind::Array(a) => {
            let arr = &rt.nodes[obj.node.idx()].objects[obj.index as usize].arrays[a as usize];
            arr.get(i as usize)
                .copied()
                .ok_or_else(|| Trap::at(m, pc, format!("array index {i} out of range")))
        }
        FieldKind::Scalar(_) => Err(Trap::new("array access to scalar field")),
    }
}

fn elem_set(
    rt: &mut Runtime,
    obj: ObjRef,
    field: hem_ir::FieldId,
    i: i64,
    v: Value,
    m: MethodId,
    pc: u32,
) -> Result<(), Trap> {
    match kind(rt, obj, field) {
        FieldKind::Array(a) => {
            let arr = &mut rt.nodes[obj.node.idx()].objects[obj.index as usize].arrays[a as usize];
            let len = arr.len();
            *arr.get_mut(i as usize).ok_or_else(|| {
                Trap::at(m, pc, format!("array index {i} out of range ({len})"))
            })? = v;
            Ok(())
        }
        FieldKind::Scalar(_) => Err(Trap::new("array access to scalar field")),
    }
}

fn arr_new(rt: &mut Runtime, obj: ObjRef, field: hem_ir::FieldId, len: usize) -> Result<(), Trap> {
    match kind(rt, obj, field) {
        FieldKind::Array(a) => {
            rt.nodes[obj.node.idx()].objects[obj.index as usize].arrays[a as usize] =
                vec![Value::Nil; len];
            Ok(())
        }
        FieldKind::Scalar(_) => Err(Trap::new("array access to scalar field")),
    }
}

fn arr_len(rt: &Runtime, obj: ObjRef, field: hem_ir::FieldId) -> Result<usize, Trap> {
    match kind(rt, obj, field) {
        FieldKind::Array(a) => {
            Ok(rt.nodes[obj.node.idx()].objects[obj.index as usize].arrays[a as usize].len())
        }
        FieldKind::Scalar(_) => Err(Trap::new("array access to scalar field")),
    }
}
