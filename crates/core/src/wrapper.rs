//! Wrapper functions and proxy contexts (paper §3.3, Fig. 8).
//!
//! When an invocation arrives by message (or a deferred invocation is
//! granted a lock, or the harness issues a root call), it carries a real
//! continuation. Under the hybrid mode the wrapper runs the target's
//! *sequential* version directly from the message handler:
//!
//! * **non-blocking** callee: the returned value (if any — reactive
//!   computations return none) is passed to the waiting future through the
//!   continuation;
//! * **may-block** callee: on suspension the continuation is placed into
//!   the callee's lazily created context;
//! * **continuation-passing** callee: a *proxy* caller descriptor carries
//!   the message's continuation, so if the callee needs its continuation
//!   it is extracted rather than created.
//!
//! A remote message can thus be processed entirely on the stack — and a
//! forwarded continuation can pass through several nodes and finally reply
//! to the initial caller without a single heap context being allocated.
//!
//! Under `ParallelOnly` this module implements the paper's baseline
//! instead: every arriving invocation conservatively allocates a context.

use crate::cont::{CallerInfo, Continuation};
use crate::context::{ActFrame, WaitState};
use crate::error::Trap;
use crate::object::{DeferredInvoke, LockHolder};
use crate::rt::Runtime;
use crate::seq::{self, SeqOutcome};
use crate::ExecMode;
use hem_analysis::Schema;
use hem_ir::{MethodId, ObjRef, Value};
use hem_machine::NodeId;

/// Run an invocation that arrived with a real continuation (message
/// arrival, lock grant, or root call).
pub(crate) fn run_invocation(
    rt: &mut Runtime,
    node: usize,
    obj: u32,
    method: MethodId,
    args: Vec<Value>,
    cont: Continuation,
    forwarded: bool,
) -> Result<(), Trap> {
    let target = rt.resolve_local(
        node,
        ObjRef {
            node: NodeId(node as u32),
            index: obj,
        },
    );
    if target.node.idx() != node {
        // The object moved away: forward the request to its new home.
        rt.ctr(node).remote_invokes += 1;
        rt.send_invoke(
            node,
            target.node,
            crate::msg::Msg::Invoke {
                obj: target.index,
                method,
                args,
                cont,
                forwarded,
            },
        )?;
        return Ok(());
    }
    let obj = target.index;
    let locked = rt.obj_locked_class(node, obj);
    if locked {
        rt.charge(node, rt.cost.concurrency_check);
    }

    match rt.mode {
        ExecMode::ParallelOnly => {
            par_invoke_ctx(rt, node, target, method, args, cont, forwarded)?;
            Ok(())
        }
        ExecMode::Hybrid => {
            let task = rt.new_task();
            if locked && !rt.lock_try(node, obj, LockHolder::Task(task)) {
                rt.lock_defer(
                    node,
                    obj,
                    DeferredInvoke {
                        method,
                        args,
                        cont,
                        forwarded,
                        req: 0,
                    },
                );
                return Ok(());
            }
            if rt.schemas.of(method) == Schema::ContPassing {
                // Fig. 8: CP callees get a proxy context carrying the
                // message's continuation, marked as forwarded.
                rt.ctr(node).proxy_conts += 1;
            }
            let out =
                seq::call_seq_schema(rt, node, target, method, args, CallerInfo::Proxy { cont })?;
            seq::settle_lock(rt, node, obj, locked, &out);
            match out {
                SeqOutcome::Value(v) => rt.deliver_cont(node, cont, v),
                SeqOutcome::Halted => Ok(()),
                SeqOutcome::Consumed { shell } => {
                    debug_assert!(shell.is_none(), "proxy caller cannot grow a shell");
                    Ok(())
                }
                SeqOutcome::Blocked {
                    ctx,
                    shell,
                    cont_needed,
                } => {
                    debug_assert!(shell.is_none(), "proxy caller cannot grow a shell");
                    if cont_needed {
                        rt.charge(node, rt.cost.cont_link);
                        rt.nodes[node].ctxs.get_mut(ctx).cont = cont;
                    }
                    Ok(())
                }
            }
        }
    }
}

/// The conservative heap-based invocation (paper §3.1): allocate a
/// context, pass everything through the heap, schedule. Returns the
/// context index, or `None` when the target lock was busy and the
/// invocation was deferred instead.
pub(crate) fn par_invoke_ctx(
    rt: &mut Runtime,
    node: usize,
    target: ObjRef,
    method: MethodId,
    args: Vec<Value>,
    cont: Continuation,
    forwarded: bool,
) -> Result<Option<u32>, Trap> {
    let locked = rt.obj_locked_class(node, target.index);
    if locked {
        let held = rt.nodes[node].objects[target.index as usize]
            .lock
            .as_ref()
            .is_some_and(|l| l.holder.is_some());
        if held {
            rt.ctr(node).lock_conflicts += 1;
            rt.lock_defer(
                node,
                target.index,
                DeferredInvoke {
                    method,
                    args,
                    cont,
                    forwarded,
                    req: 0,
                },
            );
            return Ok(None);
        }
    }
    let m = rt.program.method(method);
    let (nlocals, nslots) = (m.locals, m.slots);
    let frame = ActFrame::new(method, target, nlocals, nslots, &args);
    // Fixed bookkeeping + the conservatively eager continuation.
    rt.charge(node, rt.cost.par_invoke_fixed + rt.cost.cont_create);
    let id = rt.new_ctx(node, frame, cont, WaitState::Ready, false);
    rt.ctr(node).par_invokes += 1;
    if locked {
        let ok = rt.lock_try(node, target.index, LockHolder::Ctx(id));
        debug_assert!(ok, "probed free above");
        rt.nodes[node].ctxs.get_mut(id).holds_lock = true;
    }
    rt.enqueue_ready(node, id);
    Ok(Some(id))
}
