//! # hem-core — the hybrid stack/heap execution model
//!
//! This crate is the reproduction of the paper's primary contribution: a
//! runtime in which every method has **two versions** — a sequential one
//! that runs on the ordinary call stack (here: the host Rust stack of the
//! sequential interpreter) and a parallel one that runs as a resumable
//! state machine out of a **heap-allocated context** — and in which the
//! program **adapts at run time to the data layout** by speculatively
//! executing sequentially and falling back to parallel execution when an
//! invocation would block.
//!
//! The pieces map onto the paper as follows:
//!
//! | Paper | Module |
//! |---|---|
//! | §3.1 parallel invocations, multi-future touch (Fig. 4) | [`par`] |
//! | §3.2 sequential schemas NB / MB / CP (Figs. 5–7) | [`seq`] |
//! | §3.2.2 lazy context allocation + stack unwinding (Fig. 6) | [`seq`], [`context`] |
//! | §3.2.3 lazy continuation creation, forwarding on the stack (Fig. 7) | [`seq`], [`cont`] |
//! | §3.3 wrapper functions & proxy contexts (Fig. 8) | [`wrapper`] |
//! | heap contexts with embedded futures | [`context`] |
//! | implicit per-object locks | [`object`] |
//! | the machine itself (nodes, clocks, interconnect) | [`rt`] on top of `hem-machine` |
//!
//! The runtime executes `hem-ir` programs under a [`SchemaMap`] produced by
//! `hem-analysis`, in one of two [`ExecMode`]s: `ParallelOnly` (the paper's
//! baseline: every invocation gets a heap context) or `Hybrid` (the paper's
//! contribution). A third evaluator, [`cref`], prices an "equivalent C
//! program" for Table 3's baseline column.
//!
//! ## Quick start
//!
//! ```
//! use hem_core::{Runtime, ExecMode};
//! use hem_analysis::InterfaceSet;
//! use hem_ir::{ProgramBuilder, BinOp, Value};
//! use hem_machine::cost::CostModel;
//!
//! // fib in the fine-grained concurrent IR.
//! let mut pb = ProgramBuilder::new();
//! let math = pb.class("Math", false);
//! let fib = pb.declare(math, "fib", 1);
//! pb.define(fib, |mb| {
//!     let n = mb.arg(0);
//!     let small = mb.binl(BinOp::Lt, n, 2);
//!     mb.if_else(small, |mb| mb.reply(n), |mb| {
//!         let me = mb.self_ref();
//!         let a = mb.binl(BinOp::Sub, n, 1);
//!         let b = mb.binl(BinOp::Sub, n, 2);
//!         let s1 = mb.invoke_local(me, fib, &[a.into()]);
//!         let s2 = mb.invoke_local(me, fib, &[b.into()]);
//!         mb.touch(&[s1, s2]);
//!         let x = mb.get_slot(s1);
//!         let y = mb.get_slot(s2);
//!         let r = mb.binl(BinOp::Add, x, y);
//!         mb.reply(r);
//!     });
//! });
//! let program = pb.finish();
//!
//! let mut rt = Runtime::new(program, 1, CostModel::cm5(), ExecMode::Hybrid,
//!                           InterfaceSet::Full).unwrap();
//! let obj = rt.alloc_object_by_name("Math", hem_machine::NodeId(0));
//! let result = rt.call(obj, rt.find_method("Math", "fib").unwrap(),
//!                      &[Value::Int(10)]).unwrap();
//! assert_eq!(result, Some(Value::Int(55)));
//! ```

#![warn(missing_docs)]

pub mod cont;
pub mod context;
pub mod cref;
pub mod error;
pub mod exec;
pub mod explore;
pub mod msg;
pub mod object;
pub mod par;
pub mod rt;
pub mod sanitize;
pub mod seq;
pub mod shard;
pub mod timewarp;
pub mod trace;
pub mod wrapper;

pub use cont::{CallerInfo, Continuation};
pub use context::{ActFrame, Context, SlotState, WaitState};
pub use error::Trap;
pub use explore::{Explorer, Mutant, TieBreak, TieChoice};
pub use msg::CollKind;
pub use object::Object;
pub use rt::{NodeObjectState, Runtime, SchedImpl};
pub use sanitize::Sanitizer;
pub use timewarp::SpecStats;
pub use trace::{MsgCause, Observer, Trace, TraceEvent, TraceRecord};

pub use hem_analysis::{InterfaceSet, Schema, SchemaMap};

/// How the runtime executes invocations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// The paper's baseline: the conservative general case — every
    /// invocation allocates a heap context and passes arguments and return
    /// values through the heap (§3.1).
    ParallelOnly,
    /// The paper's contribution: speculatively execute the sequential
    /// version on the stack, falling back to the heap when an invocation
    /// would block (§3.2–3.3). Which sequential interfaces exist is decided
    /// by the [`InterfaceSet`] given to [`Runtime::new`].
    Hybrid,
}

impl std::fmt::Display for ExecMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecMode::ParallelOnly => write!(f, "parallel-only"),
            ExecMode::Hybrid => write!(f, "hybrid"),
        }
    }
}
