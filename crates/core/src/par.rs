//! The parallel (heap-context) interpreter: the paper's §3.1 code version.
//!
//! A context is dispatched from the ready queue and stepped until it
//! replies, forwards, halts, or suspends on a touch. The parallel version
//! is optimized for concurrency generation and latency hiding: invocations
//! are issued asynchronously (several can be outstanding from one method)
//! and a *set* of futures is touched at once so the activation restarts at
//! most once per synchronization point (Fig. 4).
//!
//! Under the hybrid mode, invocations issued *from* a heap context still
//! attempt the callee's sequential version first — the caller's context
//! existing doesn't stop the callee from running on the stack (Table 2
//! prices exactly these heap-caller/stack-callee combinations).

use crate::cont::{CallerInfo, Continuation};
use crate::context::{ActFrame, SlotState, WaitState};
use crate::error::Trap;
use crate::exec::{self, Next};
use crate::msg::Msg;
use crate::object::{DeferredInvoke, LockHolder};
use crate::rt::{ActiveCtx, Runtime};
use crate::seq::{self, SeqOutcome};
use crate::ExecMode;
use hem_ir::{ContRef, Instr, MethodId, Value};
use hem_machine::NodeId;

/// Result of stepping a context.
enum StepEnd {
    /// Replied / forwarded / halted; the context was freed.
    Finished,
    /// Suspended on a touch; the frame must be stored with this wait set.
    Suspend {
        /// Awaited slot mask.
        mask: u64,
        /// Unresolved count.
        missing: u16,
    },
}

/// Dispatch one ready context.
pub(crate) fn dispatch(rt: &mut Runtime, node: usize, id: u32) -> Result<(), Trap> {
    rt.charge(node, rt.cost.dispatch);
    rt.new_task();
    rt.san_dispatch_check(node, id);
    let (frame, gen) = {
        let c = rt.nodes[node].ctxs.get_mut(id);
        debug_assert_eq!(c.wait, WaitState::Ready, "dispatch of non-ready context");
        c.wait = WaitState::Running;
        let placeholder = ActFrame {
            method: c.frame.method,
            obj: c.frame.obj,
            pc: 0,
            locals: Vec::new(),
            slots: Vec::new(),
        };
        (std::mem::replace(&mut c.frame, placeholder), c.gen)
    };
    debug_assert!(rt.active.is_none(), "nested context dispatch");
    rt.active = Some(ActiveCtx {
        node,
        id,
        gen,
        fills: Vec::new(),
    });

    let mut fr = frame;
    let res = step_loop(rt, node, id, gen, &mut fr);
    match res {
        Ok(StepEnd::Finished) => {
            rt.active = None;
            Ok(())
        }
        Ok(StepEnd::Suspend { mask, missing }) => {
            rt.active = None;
            rt.charge(node, rt.cost.suspend);
            rt.ctr(node).suspends += 1;
            rt.emit(
                node,
                crate::trace::TraceEvent::Suspend {
                    node: NodeId(node as u32),
                    ctx: id,
                },
            );
            let c = rt.nodes[node].ctxs.get_mut(id);
            c.frame = fr;
            c.wait = WaitState::Waiting { mask, missing };
            Ok(())
        }
        Err(t) => {
            rt.active = None;
            Err(t)
        }
    }
}

fn step_loop(
    rt: &mut Runtime,
    node: usize,
    id: u32,
    gen: u32,
    fr: &mut ActFrame,
) -> Result<StepEnd, Trap> {
    let prog = rt.program.clone();
    let m = prog.method(fr.method);
    loop {
        drain_fills(rt, fr)?;
        let ins = fr
            .pc
            .try_into()
            .ok()
            .and_then(|pc: usize| m.body.get(pc))
            .ok_or_else(|| Trap::at(fr.method, fr.pc, "pc past end of body"))?;
        rt.charge(node, rt.cost.op);
        match ins {
            Instr::Invoke {
                slot,
                target,
                method: callee,
                args,
                hint: _,
            } => {
                let tv = exec::read(fr, target);
                let a = exec::read_args(fr, args);
                par_invoke(rt, node, id, gen, fr, *slot, tv, *callee, a)?;
                fr.pc += 1;
            }
            Instr::Touch { slots } => {
                rt.ctr(node).touches += 1;
                rt.charge(node, rt.cost.future_touch * slots.len() as u64);
                drain_fills(rt, fr)?;
                let (mask, missing) = seq::unsatisfied(fr, slots);
                if missing == 0 {
                    fr.pc += 1;
                } else {
                    rt.ctr(node).touch_misses += 1;
                    return Ok(StepEnd::Suspend { mask, missing });
                }
            }
            Instr::Multicast {
                slot,
                group,
                method: callee,
                args,
            } => {
                let members = exec::read_group(rt, fr, node, *group)?;
                let a = exec::read_args(fr, args);
                let (kind, cont) = match slot {
                    None => (crate::msg::CollKind::Cast, Continuation::Discard),
                    Some(s) => (
                        crate::msg::CollKind::CastAcked,
                        par_coll_cont(fr, node, id, gen, *s),
                    ),
                };
                rt.issue_collective(node, kind, &members, *callee, a, cont)?;
                fr.pc += 1;
            }
            Instr::Reduce {
                slot,
                group,
                method: callee,
                args,
                op,
            } => {
                let members = exec::read_group(rt, fr, node, *group)?;
                let a = exec::read_args(fr, args);
                let cont = par_coll_cont(fr, node, id, gen, *slot);
                rt.issue_collective(
                    node,
                    crate::msg::CollKind::Reduce(*op),
                    &members,
                    *callee,
                    a,
                    cont,
                )?;
                fr.pc += 1;
            }
            Instr::Barrier { slot, group } => {
                let members = exec::read_group(rt, fr, node, *group)?;
                let cont = par_coll_cont(fr, node, id, gen, *slot);
                rt.issue_collective(
                    node,
                    crate::msg::CollKind::Barrier,
                    &members,
                    MethodId(0),
                    Vec::new(),
                    cont,
                )?;
                fr.pc += 1;
            }
            Instr::Reply { src } => {
                let c = rt.nodes[node].ctxs.get(id);
                if c.cont_consumed {
                    return Err(Trap::at(
                        fr.method,
                        fr.pc,
                        "reply after continuation consumed",
                    ));
                }
                let cont = c.cont;
                let v = exec::read(fr, src);
                rt.deliver_cont(node, cont, v)?;
                rt.finish_ctx(node, id);
                return Ok(StepEnd::Finished);
            }
            Instr::Halt => {
                rt.finish_ctx(node, id);
                return Ok(StepEnd::Finished);
            }
            Instr::Forward {
                target,
                method: callee,
                args,
                hint: _,
            } => {
                let tv = exec::read(fr, target);
                let a = exec::read_args(fr, args);
                par_forward(rt, node, id, fr, tv, *callee, a)?;
                rt.finish_ctx(node, id);
                return Ok(StepEnd::Finished);
            }
            Instr::StoreCont { field, idx } => {
                let c = rt.nodes[node].ctxs.get(id);
                if c.cont_consumed {
                    return Err(Trap::at(fr.method, fr.pc, "continuation already consumed"));
                }
                let cont = c.cont;
                rt.charge(node, rt.cost.cont_create);
                rt.ctr(node).conts_created += 1;
                let Continuation::Into(cr) = cont else {
                    return Err(Trap::at(
                        fr.method,
                        fr.pc,
                        "cannot store a root/discard continuation into a data structure",
                    ));
                };
                let src = hem_ir::Operand::K(Value::Cont(cr));
                let ins = match idx {
                    None => Instr::SetField { field: *field, src },
                    Some(i) => Instr::SetElem {
                        field: *field,
                        idx: *i,
                        src,
                    },
                };
                exec::exec_simple(rt, node, fr, &ins)?;
                rt.nodes[node].ctxs.get_mut(id).cont_consumed = true;
                fr.pc += 1;
            }
            simple => match exec::exec_simple(rt, node, fr, simple)? {
                Next::Advance => fr.pc += 1,
                Next::Goto(t) => fr.pc = t,
            },
        }
    }
}

/// Mark a collective's result slot pending and build the continuation the
/// collective root delivers into (the stepping context's own slot).
fn par_coll_cont(
    fr: &mut ActFrame,
    node: usize,
    id: u32,
    gen: u32,
    s: hem_ir::Slot,
) -> Continuation {
    if !matches!(fr.slots[s.idx()], SlotState::Join(_)) {
        fr.slots[s.idx()] = SlotState::Pending;
    }
    Continuation::Into(ContRef {
        node: NodeId(node as u32),
        ctx: id,
        gen,
        slot: s.0,
    })
}

/// Apply fills buffered for the context being stepped.
fn drain_fills(rt: &mut Runtime, fr: &mut ActFrame) -> Result<(), Trap> {
    let fills = {
        let a = rt.active.as_mut().expect("stepping without active record");
        if a.fills.is_empty() {
            return Ok(());
        }
        std::mem::take(&mut a.fills)
    };
    for (slot, v) in fills {
        Runtime::apply_fill(&mut fr.slots, slot, v).map_err(|e| Trap::at(fr.method, fr.pc, e))?;
    }
    Ok(())
}

/// Handle an `Invoke` issued from a heap context.
#[allow(clippy::too_many_arguments)]
fn par_invoke(
    rt: &mut Runtime,
    node: usize,
    id: u32,
    gen: u32,
    fr: &mut ActFrame,
    slot: Option<hem_ir::Slot>,
    target: Value,
    callee: MethodId,
    args: Vec<Value>,
) -> Result<(), Trap> {
    let pc = fr.pc;
    let tobj = target
        .as_obj()
        .map_err(|e| Trap::from_value(fr.method, pc, e))?;
    let tobj = rt.resolve_local(node, tobj);
    rt.charge(node, rt.cost.locality_check);
    if let Some(s) = slot {
        if !matches!(fr.slots[s.idx()], SlotState::Join(_)) {
            fr.slots[s.idx()] = SlotState::Pending;
        }
    }
    let my_cont = |s: hem_ir::Slot| {
        Continuation::Into(ContRef {
            node: NodeId(node as u32),
            ctx: id,
            gen,
            slot: s.0,
        })
    };
    let cont = slot.map(my_cont).unwrap_or(Continuation::Discard);

    if tobj.node.idx() != node {
        rt.ctr(node).remote_invokes += 1;
        rt.send_invoke(
            node,
            tobj.node,
            Msg::Invoke {
                obj: tobj.index,
                method: callee,
                args,
                cont,
                forwarded: false,
            },
        )?;
        return Ok(());
    }

    rt.ctr(node).local_invokes += 1;
    rt.charge(node, rt.cost.concurrency_check);

    if rt.mode == ExecMode::ParallelOnly {
        // The paper includes speculative inlining in *all* measurements
        // (§4.2): even the parallel-only baseline inlines tiny provably
        // non-blocking methods on local unlocked objects instead of
        // allocating a context.
        let inline_ok = rt.enable_inlining
            && rt.program.method(callee).inlinable
            && rt.schemas.of(callee) == hem_analysis::Schema::NonBlocking
            && !rt.obj_locked_class(node, tobj.index);
        if inline_ok {
            rt.charge(node, rt.cost.inline_guard);
            rt.ctr(node).inlined += 1;
            let out = seq::run_seq(rt, node, tobj, callee, args, seq::Conv::Nb)?;
            if let (SeqOutcome::Value(v), Some(s)) = (out, slot) {
                Runtime::apply_fill(&mut fr.slots, s.0, v)
                    .map_err(|e| Trap::at(fr.method, pc, e))?;
            }
            return Ok(());
        }
        crate::wrapper::par_invoke_ctx(rt, node, tobj, callee, args, cont, false)?;
        return Ok(());
    }

    let locked = rt.obj_locked_class(node, tobj.index);
    if locked && !rt.lock_try(node, tobj.index, LockHolder::Task(rt.current_task)) {
        rt.lock_defer(
            node,
            tobj.index,
            DeferredInvoke {
                method: callee,
                args,
                cont,
                forwarded: false,
                req: 0,
            },
        );
        return Ok(());
    }

    let cp_info = match slot {
        Some(s) => CallerInfo::Created {
            node: NodeId(node as u32),
            ctx: id,
            gen,
            ret_slot: s.0,
        },
        None => CallerInfo::Proxy {
            cont: Continuation::Discard,
        },
    };
    let out = seq::call_seq_schema(rt, node, tobj, callee, args, cp_info)?;
    seq::settle_lock(rt, node, tobj.index, locked, &out);
    match out {
        SeqOutcome::Value(v) => {
            if let Some(s) = slot {
                // Synchronous return-through-memory is priced by the
                // schema call-extra, not as a future store.
                Runtime::apply_fill(&mut fr.slots, s.0, v)
                    .map_err(|e| Trap::at(fr.method, pc, e))?;
            }
            Ok(())
        }
        SeqOutcome::Halted => Ok(()),
        SeqOutcome::Consumed { shell } => {
            debug_assert!(shell.is_none(), "created-caller cannot grow a shell");
            Ok(())
        }
        SeqOutcome::Blocked {
            ctx: child,
            shell,
            cont_needed,
        } => {
            debug_assert!(shell.is_none(), "created-caller cannot grow a shell");
            if cont_needed {
                rt.charge(node, rt.cost.cont_link);
                rt.nodes[node].ctxs.get_mut(child).cont = cont;
            }
            Ok(())
        }
    }
}

/// Handle a `Forward` issued from a heap context: the context's own
/// continuation is passed along (it already exists — no laziness needed).
fn par_forward(
    rt: &mut Runtime,
    node: usize,
    id: u32,
    fr: &mut ActFrame,
    target: Value,
    callee: MethodId,
    args: Vec<Value>,
) -> Result<(), Trap> {
    let pc = fr.pc;
    let tobj = target
        .as_obj()
        .map_err(|e| Trap::from_value(fr.method, pc, e))?;
    let tobj = rt.resolve_local(node, tobj);
    let my_cont = {
        let c = rt.nodes[node].ctxs.get(id);
        if c.cont_consumed {
            return Err(Trap::at(
                fr.method,
                pc,
                "forward after continuation consumed",
            ));
        }
        c.cont
    };
    rt.nodes[node].ctxs.get_mut(id).cont_consumed = true;
    rt.charge(node, rt.cost.locality_check);

    if tobj.node.idx() != node {
        rt.ctr(node).remote_invokes += 1;
        rt.send_invoke(
            node,
            tobj.node,
            Msg::Invoke {
                obj: tobj.index,
                method: callee,
                args,
                cont: my_cont,
                forwarded: true,
            },
        )?;
        return Ok(());
    }

    rt.ctr(node).local_invokes += 1;
    rt.charge(node, rt.cost.concurrency_check);

    if rt.mode == ExecMode::ParallelOnly {
        crate::wrapper::par_invoke_ctx(rt, node, tobj, callee, args, my_cont, true)?;
        return Ok(());
    }

    let locked = rt.obj_locked_class(node, tobj.index);
    if locked && !rt.lock_try(node, tobj.index, LockHolder::Task(rt.current_task)) {
        rt.lock_defer(
            node,
            tobj.index,
            DeferredInvoke {
                method: callee,
                args,
                cont: my_cont,
                forwarded: true,
                req: 0,
            },
        );
        return Ok(());
    }

    rt.ctr(node).stack_forwards += 1;
    let out = seq::call_seq_schema(
        rt,
        node,
        tobj,
        callee,
        args,
        CallerInfo::Proxy { cont: my_cont },
    )?;
    seq::settle_lock(rt, node, tobj.index, locked, &out);
    match out {
        SeqOutcome::Value(v) => rt.deliver_cont(node, my_cont, v),
        SeqOutcome::Halted => Ok(()),
        SeqOutcome::Consumed { shell } => {
            debug_assert!(shell.is_none());
            Ok(())
        }
        SeqOutcome::Blocked {
            ctx: child,
            shell,
            cont_needed,
        } => {
            debug_assert!(shell.is_none());
            if cont_needed {
                rt.charge(node, rt.cost.cont_link);
                rt.nodes[node].ctxs.get_mut(child).cont = my_cont;
            }
            Ok(())
        }
    }
}
