//! The sequential (stack) interpreter: NB / MB / CP calling conventions,
//! lazy context allocation, lazy continuation creation, and fallback.
//!
//! A sequential invocation runs as a host-Rust call (`run_seq` recursion) —
//! the analogue of the paper's generated C functions running on the C
//! stack. Three things can interrupt stack execution, and each maps to a
//! paper mechanism:
//!
//! * an invocation that must go **remote** (or hit a held lock) — the
//!   caller lazily creates *its own* heap context so the reply has a
//!   landing site, sends the request, and unwinds (§3.2.2);
//! * a **blocked callee** — the callee returns its freshly created
//!   context, the caller links a continuation for the callee's return
//!   value into it, creates its own context, and unwinds (Fig. 6);
//! * a **consumed continuation** — a CP callee forwarded or stored the
//!   caller's (not-yet-created) continuation; materializing it may create
//!   a *shell* context for the caller, which is passed back up the
//!   unwinding stack for the caller to populate and adopt (§3.2.3).
//!
//! The unwinding protocol is the `SeqOutcome` enum; the invariants are
//! documented on its variants.

use crate::cont::{CallerInfo, Continuation};
use crate::context::{ActFrame, SlotState, WaitState};
use crate::error::Trap;
use crate::exec::{self, Next};
use crate::msg::Msg;
use crate::object::{DeferredInvoke, LockHolder};
use crate::rt::Runtime;
use hem_analysis::Schema;
use hem_ir::{ContRef, Instr, MethodId, ObjRef, Slot, Value};
use hem_machine::NodeId;

/// How a sequential execution ended.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum SeqOutcome {
    /// Ran to completion on the stack; the reply value is carried directly
    /// (the paper's `return_val` passed through memory).
    Value(Value),
    /// Ran to completion without replying (reactive methods). The caller's
    /// future, if any, stays pending.
    Halted,
    /// The method fell back into heap context `ctx`.
    ///
    /// * `cont_needed = true`: the context's continuation is still unset;
    ///   the caller must link the reply capability into it (Fig. 6).
    /// * `shell`: if the method had already consumed its caller's
    ///   continuation and a shell context was created for the caller, it
    ///   is passed back here for the caller to adopt.
    Blocked {
        /// The callee's (fallen-back) context.
        ctx: u32,
        /// Shell context created for the *caller*, if any.
        shell: Option<u32>,
        /// Whether the caller must still link a continuation into `ctx`.
        cont_needed: bool,
    },
    /// CP only: the method consumed its continuation (forwarded it or
    /// stored it) and finished its stack execution. `shell` as above.
    Consumed {
        /// Shell context created for the *caller*, if any.
        shell: Option<u32>,
    },
}

/// Calling convention of a sequential execution (paper Fig. 5).
#[derive(Debug, Clone, Copy)]
pub(crate) enum Conv {
    /// Non-blocking: plain call; any fallback attempt is a trap.
    Nb,
    /// May-block: may return `Blocked`.
    Mb,
    /// Continuation-passing: carries the caller descriptor.
    Cp(CallerInfo),
}

/// Interpreter-local state threaded through one sequential activation.
struct SeqState {
    fr: ActFrame,
    /// `Some(shell)` once this activation's continuation has been
    /// consumed (by `StoreCont`); `Reply`/`Forward` afterwards is a trap.
    consumed: Option<Option<u32>>,
    conv: Conv,
}

/// Run `method` on local object `obj` sequentially under `conv`.
pub(crate) fn run_seq(
    rt: &mut Runtime,
    node: usize,
    obj: ObjRef,
    method: MethodId,
    args: Vec<Value>,
    conv: Conv,
) -> Result<SeqOutcome, Trap> {
    rt.seq_depth += 1;
    let r = run_inner(rt, node, obj, method, args, conv);
    rt.seq_depth -= 1;
    r
}

fn run_inner(
    rt: &mut Runtime,
    node: usize,
    obj: ObjRef,
    method: MethodId,
    args: Vec<Value>,
    conv: Conv,
) -> Result<SeqOutcome, Trap> {
    let prog = rt.program.clone();
    let m = prog.method(method);
    let mut st = SeqState {
        fr: ActFrame::new(method, obj, m.locals, m.slots, &args),
        consumed: None,
        conv,
    };
    loop {
        let ins = m
            .body
            .get(st.fr.pc as usize)
            .ok_or_else(|| Trap::at(method, st.fr.pc, "pc past end of body"))?;
        rt.charge(node, rt.cost.op);
        match ins {
            Instr::Invoke {
                slot,
                target,
                method: callee,
                args,
                hint: _,
            } => {
                let tv = exec::read(&st.fr, target);
                let a = exec::read_args(&st.fr, args);
                if let Some(out) = seq_invoke(rt, node, &mut st, *slot, tv, *callee, a)? {
                    return Ok(out);
                }
                st.fr.pc += 1;
            }
            Instr::Touch { slots } => {
                rt.ctr(node).touches += 1;
                rt.charge(node, rt.cost.future_touch * slots.len() as u64);
                let (mask, missing) = unsatisfied(&st.fr, slots);
                if missing == 0 {
                    st.fr.pc += 1;
                } else {
                    rt.ctr(node).touch_misses += 1;
                    let pc = st.fr.pc;
                    let out =
                        do_fallback(rt, node, &mut st, pc, WaitState::Waiting { mask, missing })?;
                    return Ok(out);
                }
            }
            Instr::Multicast {
                slot,
                group,
                method: callee,
                args,
            } => {
                let members = exec::read_group(rt, &st.fr, node, *group)?;
                let a = exec::read_args(&st.fr, args);
                match slot {
                    None => {
                        // Fire-and-forget: nothing flows back, the stack
                        // execution continues.
                        rt.issue_collective(
                            node,
                            crate::msg::CollKind::Cast,
                            &members,
                            *callee,
                            a,
                            Continuation::Discard,
                        )?;
                        st.fr.pc += 1;
                    }
                    Some(s) => {
                        if let Some(out) = seq_collective(
                            rt,
                            node,
                            &mut st,
                            *s,
                            crate::msg::CollKind::CastAcked,
                            &members,
                            *callee,
                            a,
                        )? {
                            return Ok(out);
                        }
                    }
                }
            }
            Instr::Reduce {
                slot,
                group,
                method: callee,
                args,
                op,
            } => {
                let members = exec::read_group(rt, &st.fr, node, *group)?;
                let a = exec::read_args(&st.fr, args);
                if let Some(out) = seq_collective(
                    rt,
                    node,
                    &mut st,
                    *slot,
                    crate::msg::CollKind::Reduce(*op),
                    &members,
                    *callee,
                    a,
                )? {
                    return Ok(out);
                }
            }
            Instr::Barrier { slot, group } => {
                let members = exec::read_group(rt, &st.fr, node, *group)?;
                if let Some(out) = seq_collective(
                    rt,
                    node,
                    &mut st,
                    *slot,
                    crate::msg::CollKind::Barrier,
                    &members,
                    MethodId(0),
                    Vec::new(),
                )? {
                    return Ok(out);
                }
            }
            Instr::Reply { src } => {
                if st.consumed.is_some() {
                    return Err(Trap::at(
                        method,
                        st.fr.pc,
                        "reply after continuation consumed",
                    ));
                }
                return Ok(SeqOutcome::Value(exec::read(&st.fr, src)));
            }
            Instr::Halt => {
                return Ok(match st.consumed.take() {
                    Some(shell) => SeqOutcome::Consumed { shell },
                    None => SeqOutcome::Halted,
                });
            }
            Instr::Forward {
                target,
                method: callee,
                args,
                hint: _,
            } => {
                let Conv::Cp(info) = st.conv else {
                    return Err(Trap::at(method, st.fr.pc, "forward outside CP convention"));
                };
                if st.consumed.is_some() {
                    return Err(Trap::at(
                        method,
                        st.fr.pc,
                        "forward after continuation consumed",
                    ));
                }
                let tv = exec::read(&st.fr, target);
                let a = exec::read_args(&st.fr, args);
                return seq_forward(rt, node, tv, *callee, a, info, method, st.fr.pc);
            }
            Instr::StoreCont { field, idx } => {
                let Conv::Cp(info) = st.conv else {
                    return Err(Trap::at(
                        method,
                        st.fr.pc,
                        "store-cont outside CP convention",
                    ));
                };
                if st.consumed.is_some() {
                    return Err(Trap::at(method, st.fr.pc, "continuation already consumed"));
                }
                let (cont, shell) = rt.materialize_cont(node, info)?;
                store_cont_value(rt, node, &mut st.fr, *field, idx.as_ref(), cont)?;
                st.consumed = Some(shell);
                st.fr.pc += 1;
            }
            simple => match exec::exec_simple(rt, node, &mut st.fr, simple)? {
                Next::Advance => st.fr.pc += 1,
                Next::Goto(t) => st.fr.pc = t,
            },
        }
    }
}

/// Compute the awaited-slot mask of a touch against a frame.
pub(crate) fn unsatisfied(fr: &ActFrame, slots: &[Slot]) -> (u64, u16) {
    let mut mask = 0u64;
    let mut missing = 0u16;
    for s in slots {
        if !fr.slots[s.idx()].satisfied() && mask & (1u64 << s.0) == 0 {
            mask |= 1u64 << s.0;
            missing += 1;
        }
    }
    (mask, missing)
}

/// Store a materialized continuation into a field of `self`.
fn store_cont_value(
    rt: &mut Runtime,
    node: usize,
    fr: &mut ActFrame,
    field: hem_ir::FieldId,
    idx: Option<&hem_ir::Operand>,
    cont: Continuation,
) -> Result<(), Trap> {
    let Continuation::Into(cr) = cont else {
        return Err(Trap::at(
            fr.method,
            fr.pc,
            "cannot store a root/discard continuation into a data structure",
        ));
    };
    let v = Value::Cont(cr);
    match idx {
        None => {
            // Reuse the shared field machinery via a synthetic SetField.
            let ins = Instr::SetField {
                field,
                src: hem_ir::Operand::K(v),
            };
            exec::exec_simple(rt, node, fr, &ins)?;
        }
        Some(i) => {
            let ins = Instr::SetElem {
                field,
                idx: *i,
                src: hem_ir::Operand::K(v),
            };
            exec::exec_simple(rt, node, fr, &ins)?;
        }
    }
    Ok(())
}

/// Fall back: move the stack frame into a lazily created heap context and
/// produce the unwinding outcome. A fallback from a non-blocking method is
/// a broken compiler promise (e.g. an `AlwaysLocal` hint on a remote
/// object) and traps loudly.
fn do_fallback(
    rt: &mut Runtime,
    node: usize,
    st: &mut SeqState,
    next_pc: u32,
    wait: WaitState,
) -> Result<SeqOutcome, Trap> {
    if matches!(st.conv, Conv::Nb) {
        return Err(Trap::at(
            st.fr.method,
            st.fr.pc,
            "non-blocking method attempted to block (locality hint violated?)",
        ));
    }
    let ctx = rt.fallback_ctx(node, &mut st.fr, next_pc, wait);
    Ok(finish_block_outcome(rt, node, st, ctx))
}

/// Adopt a shell context created on our behalf and produce the outcome.
fn do_adopt(
    rt: &mut Runtime,
    node: usize,
    st: &mut SeqState,
    shell: u32,
    next_pc: u32,
) -> SeqOutcome {
    rt.adopt_shell(node, shell, &mut st.fr, next_pc);
    finish_block_outcome(rt, node, st, shell)
}

fn finish_block_outcome(rt: &mut Runtime, node: usize, st: &mut SeqState, ctx: u32) -> SeqOutcome {
    match st.consumed.take() {
        Some(shell) => {
            rt.nodes[node].ctxs.get_mut(ctx).cont_consumed = true;
            SeqOutcome::Blocked {
                ctx,
                shell,
                cont_needed: false,
            }
        }
        None => SeqOutcome::Blocked {
            ctx,
            shell: None,
            cont_needed: true,
        },
    }
}

/// Handle one `Invoke` from a stack frame. Returns `Some(outcome)` when
/// the frame fell back (the interpreter must unwind), `None` to continue.
fn seq_invoke(
    rt: &mut Runtime,
    node: usize,
    st: &mut SeqState,
    slot: Option<Slot>,
    target: Value,
    callee: MethodId,
    args: Vec<Value>,
) -> Result<Option<SeqOutcome>, Trap> {
    let pc = st.fr.pc;
    let tobj = target
        .as_obj()
        .map_err(|e| Trap::from_value(st.fr.method, pc, e))?;
    let tobj = rt.resolve_local(node, tobj);
    rt.charge(node, rt.cost.locality_check);
    // Mark the reply future pending (join counters keep their count).
    if let Some(s) = slot {
        if !matches!(st.fr.slots[s.idx()], SlotState::Join(_)) {
            st.fr.slots[s.idx()] = SlotState::Pending;
        }
    }

    if tobj.node.idx() != node {
        // Remote: lazy creation of our own context so the reply can land.
        rt.ctr(node).remote_invokes += 1;
        return match slot {
            None => {
                rt.send_invoke(
                    node,
                    tobj.node,
                    Msg::Invoke {
                        obj: tobj.index,
                        method: callee,
                        args,
                        cont: Continuation::Discard,
                        forwarded: false,
                    },
                )?;
                Ok(None)
            }
            Some(s) => {
                let out = do_fallback(rt, node, st, pc + 1, WaitState::Ready)?;
                let SeqOutcome::Blocked { ctx, .. } = out else {
                    unreachable!()
                };
                let gen = rt.nodes[node].ctxs.gen(ctx);
                let cont = Continuation::Into(ContRef {
                    node: NodeId(node as u32),
                    ctx,
                    gen,
                    slot: s.0,
                });
                rt.send_invoke(
                    node,
                    tobj.node,
                    Msg::Invoke {
                        obj: tobj.index,
                        method: callee,
                        args,
                        cont,
                        forwarded: false,
                    },
                )?;
                Ok(Some(out))
            }
        };
    }

    rt.ctr(node).local_invokes += 1;
    rt.charge(node, rt.cost.concurrency_check);
    let locked = rt.obj_locked_class(node, tobj.index);
    if locked && !rt.lock_try(node, tobj.index, LockHolder::Task(rt.current_task)) {
        // Target busy: defer the invocation on the lock.
        return match slot {
            None => {
                rt.lock_defer(
                    node,
                    tobj.index,
                    DeferredInvoke {
                        method: callee,
                        args,
                        cont: Continuation::Discard,
                        forwarded: false,
                        req: 0,
                    },
                );
                Ok(None)
            }
            Some(s) => {
                let out = do_fallback(rt, node, st, pc + 1, WaitState::Ready)?;
                let SeqOutcome::Blocked { ctx, .. } = out else {
                    unreachable!()
                };
                let gen = rt.nodes[node].ctxs.gen(ctx);
                let cont = Continuation::Into(ContRef {
                    node: NodeId(node as u32),
                    ctx,
                    gen,
                    slot: s.0,
                });
                rt.charge(node, rt.cost.cont_create);
                rt.lock_defer(
                    node,
                    tobj.index,
                    DeferredInvoke {
                        method: callee,
                        args,
                        cont,
                        forwarded: false,
                        req: 0,
                    },
                );
                Ok(Some(out))
            }
        };
    }

    // Local and lock held (or lock-free): run the sequential version.
    let cp_info = match slot {
        Some(s) => CallerInfo::NotCreated {
            method: st.fr.method,
            obj: st.fr.obj,
            ret_slot: s.0,
        },
        None => CallerInfo::Proxy {
            cont: Continuation::Discard,
        },
    };
    let out = call_seq_schema(rt, node, tobj, callee, args, cp_info)?;
    settle_lock(rt, node, tobj.index, locked, &out);
    match out {
        SeqOutcome::Value(v) => {
            if let Some(s) = slot {
                // No future_store charge here: a synchronous completion
                // returns through memory, which the schema's call-extra
                // already prices (paper §4.1).
                Runtime::apply_fill(&mut st.fr.slots, s.0, v)
                    .map_err(|e| Trap::at(st.fr.method, pc, e))?;
            }
            Ok(None)
        }
        SeqOutcome::Halted => Ok(None),
        SeqOutcome::Consumed { shell: None } => Ok(None),
        SeqOutcome::Consumed { shell: Some(sh) } => Ok(Some(do_adopt(rt, node, st, sh, pc + 1))),
        SeqOutcome::Blocked {
            ctx: child,
            shell,
            cont_needed,
        } => match slot {
            None => {
                debug_assert!(shell.is_none());
                if cont_needed {
                    rt.charge(node, rt.cost.cont_link);
                    rt.nodes[node].ctxs.get_mut(child).cont = Continuation::Discard;
                }
                Ok(None)
            }
            Some(s) => {
                let out = if let Some(sh) = shell {
                    do_adopt(rt, node, st, sh, pc + 1)
                } else {
                    do_fallback(rt, node, st, pc + 1, WaitState::Ready)?
                };
                if cont_needed {
                    let SeqOutcome::Blocked { ctx: mine, .. } = out else {
                        unreachable!()
                    };
                    let gen = rt.nodes[node].ctxs.gen(mine);
                    rt.charge(node, rt.cost.cont_create + rt.cost.cont_link);
                    rt.nodes[node].ctxs.get_mut(child).cont = Continuation::Into(ContRef {
                        node: NodeId(node as u32),
                        ctx: mine,
                        gen,
                        slot: s.0,
                    });
                }
                Ok(Some(out))
            }
        },
    }
}

/// Handle a slot-bearing collective from a stack frame. The completion
/// arrives over the wire (up-tree legs), never synchronously, so the frame
/// always falls back first — exactly like a remote `Invoke` with a slot —
/// and the collective's root continuation points into the fallen-back
/// context.
#[allow(clippy::too_many_arguments)]
fn seq_collective(
    rt: &mut Runtime,
    node: usize,
    st: &mut SeqState,
    slot: Slot,
    kind: crate::msg::CollKind,
    members: &[ObjRef],
    callee: MethodId,
    args: Vec<Value>,
) -> Result<Option<SeqOutcome>, Trap> {
    let pc = st.fr.pc;
    if !matches!(st.fr.slots[slot.idx()], SlotState::Join(_)) {
        st.fr.slots[slot.idx()] = SlotState::Pending;
    }
    let out = do_fallback(rt, node, st, pc + 1, WaitState::Ready)?;
    let SeqOutcome::Blocked { ctx, .. } = out else {
        unreachable!()
    };
    let gen = rt.nodes[node].ctxs.gen(ctx);
    let cont = Continuation::Into(ContRef {
        node: NodeId(node as u32),
        ctx,
        gen,
        slot: slot.0,
    });
    rt.issue_collective(node, kind, members, callee, args, cont)?;
    Ok(Some(out))
}

/// Handle a `Forward` from a stack frame (paper Fig. 7): pass our
/// continuation — still implicit in `info` — to the next method, executing
/// the whole chain on the stack when everything stays local.
#[allow(clippy::too_many_arguments)]
fn seq_forward(
    rt: &mut Runtime,
    node: usize,
    target: Value,
    callee: MethodId,
    args: Vec<Value>,
    info: CallerInfo,
    method: MethodId,
    pc: u32,
) -> Result<SeqOutcome, Trap> {
    let tobj = target
        .as_obj()
        .map_err(|e| Trap::from_value(method, pc, e))?;
    rt.charge(node, rt.cost.locality_check);

    if tobj.node.idx() != node {
        // Off-node forward: the continuation must become real now.
        rt.ctr(node).remote_invokes += 1;
        let (cont, shell) = rt.materialize_cont(node, info)?;
        rt.send_invoke(
            node,
            tobj.node,
            Msg::Invoke {
                obj: tobj.index,
                method: callee,
                args,
                cont,
                forwarded: true,
            },
        )?;
        return Ok(SeqOutcome::Consumed { shell });
    }

    rt.ctr(node).local_invokes += 1;
    rt.charge(node, rt.cost.concurrency_check);
    let locked = rt.obj_locked_class(node, tobj.index);
    if locked && !rt.lock_try(node, tobj.index, LockHolder::Task(rt.current_task)) {
        let (cont, shell) = rt.materialize_cont(node, info)?;
        rt.lock_defer(
            node,
            tobj.index,
            DeferredInvoke {
                method: callee,
                args,
                cont,
                forwarded: true,
                req: 0,
            },
        );
        return Ok(SeqOutcome::Consumed { shell });
    }

    // Local forwarding: pass caller_info along unchanged — the chain
    // executes on the stack and the final value returns through return_val.
    rt.ctr(node).stack_forwards += 1;
    let out = call_seq_schema(rt, node, tobj, callee, args, info)?;
    settle_lock(rt, node, tobj.index, locked, &out);
    match out {
        SeqOutcome::Value(v) => Ok(SeqOutcome::Value(v)),
        SeqOutcome::Halted => Ok(SeqOutcome::Halted),
        SeqOutcome::Consumed { shell } => Ok(SeqOutcome::Consumed { shell }),
        SeqOutcome::Blocked {
            ctx: child,
            shell,
            cont_needed,
        } => {
            if cont_needed {
                // The target suspended without consuming: it inherits our
                // (now materialized) continuation.
                debug_assert!(shell.is_none());
                let (cont, shell2) = rt.materialize_cont(node, info)?;
                rt.charge(node, rt.cost.cont_link);
                rt.nodes[node].ctxs.get_mut(child).cont = cont;
                Ok(SeqOutcome::Consumed { shell: shell2 })
            } else {
                Ok(SeqOutcome::Consumed { shell })
            }
        }
    }
}

/// Release or transfer a target's lock according to how its sequential
/// execution ended.
pub(crate) fn settle_lock(rt: &mut Runtime, node: usize, obj: u32, locked: bool, out: &SeqOutcome) {
    if !locked {
        return;
    }
    match out {
        SeqOutcome::Blocked { ctx, .. } => {
            // The method still holds its receiver across the suspension.
            rt.lock_transfer(node, obj, LockHolder::Ctx(*ctx));
            rt.nodes[node].ctxs.get_mut(*ctx).holds_lock = true;
            rt.san_settle_blocked(node, obj, *ctx);
        }
        _ => rt.lock_release(node, obj),
    }
}

/// Run a local callee through its selected sequential schema, charging the
/// schema's call cost (or the speculative-inlining guard) and counting the
/// completion. This is the single entry used by stack callers, heap-context
/// callers, wrappers and lock grants.
pub(crate) fn call_seq_schema(
    rt: &mut Runtime,
    node: usize,
    target: ObjRef,
    callee: MethodId,
    args: Vec<Value>,
    cp_info: CallerInfo,
) -> Result<SeqOutcome, Trap> {
    let schema = rt.schemas.of(callee);

    // Host-stack depth guard: deep MB/CP chains divert through the heap
    // (the moral equivalent of a stack-limit check); a deep NB chain is a
    // genuine stack overflow, as it would be for the generated C.
    // Mutant: bypass the guard; deep chains keep recursing sequentially.
    if rt.seq_depth >= rt.max_seq_depth && !rt.mutant_is(crate::explore::Mutant::SkipDepthGuard) {
        if schema == Schema::NonBlocking {
            return Err(Trap::new(format!(
                "sequential depth limit {} exceeded in non-blocking chain",
                rt.max_seq_depth
            )));
        }
        let m = rt.program.method(callee);
        let (l, s) = (m.locals, m.slots);
        let frame = ActFrame::new(callee, target, l, s, &args);
        rt.charge(node, rt.cost.par_invoke_fixed);
        let id = rt.new_ctx(node, frame, Continuation::Unset, WaitState::Ready, false);
        rt.ctr(node).par_invokes += 1;
        rt.enqueue_ready(node, id);
        return Ok(SeqOutcome::Blocked {
            ctx: id,
            shell: None,
            cont_needed: true,
        });
    }

    rt.san_seq_entry(node, target, callee);
    let inlinable = rt.program.method(callee).inlinable && rt.enable_inlining;
    let inlined = inlinable && schema == Schema::NonBlocking;
    if inlined {
        rt.charge(node, rt.cost.inline_guard);
        rt.ctr(node).inlined += 1;
        rt.emit(
            node,
            crate::trace::TraceEvent::Inlined {
                node: NodeId(node as u32),
                method: callee,
            },
        );
    } else {
        let extra = match schema {
            Schema::NonBlocking => rt.cost.nb_call_extra,
            Schema::MayBlock => rt.cost.mb_call_extra,
            Schema::ContPassing => rt.cost.cp_call_extra,
        };
        rt.charge(node, rt.cost.plain_call + extra);
    }

    let conv = match schema {
        Schema::NonBlocking => Conv::Nb,
        Schema::MayBlock => Conv::Mb,
        Schema::ContPassing => Conv::Cp(cp_info),
    };
    let out = run_seq(rt, node, target, callee, args, conv)?;

    if !inlined && !matches!(out, SeqOutcome::Blocked { .. }) {
        // Completed on the stack: count it under its schema.
        let c = rt.ctr(node);
        match schema {
            Schema::NonBlocking => c.stack_nb += 1,
            Schema::MayBlock => c.stack_mb += 1,
            Schema::ContPassing => c.stack_cp += 1,
        }
        rt.emit(
            node,
            crate::trace::TraceEvent::StackComplete {
                node: NodeId(node as u32),
                method: callee,
                schema,
            },
        );
    }
    Ok(out)
}
