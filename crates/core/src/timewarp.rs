//! Optimistic (Time-Warp) execution at window granularity, for the
//! zero-lookahead regime.
//!
//! [`SchedImpl::Speculative`] keeps the sharded executor's structure —
//! contiguous node shards, one OS worker per shard, windowed advance, a
//! deterministic commit at each barrier — but drops the conservative
//! premise that a window may only extend as far as the lookahead
//! guarantees no cross-shard message can land. Instead each window
//! *speculates*:
//!
//! 1. **Checkpoint.** Every worker arms a copy-on-dirty checkpoint: the
//!    first time a window dispatch (or an intra-shard delivery) touches
//!    a node, the node is cloned whole — objects, contexts, inbox,
//!    transport maps, and the wire-sequence counter (see
//!    [`crate::rt::Node`]'s `Clone`). Untouched nodes cost nothing.
//! 2. **Optimistic advance.** Shards run the ordinary in-window dispatch
//!    loop ([`crate::shard::run_window`]) to a window edge `end = W + δ`
//!    with `δ` well past the conservative lookahead (adaptively sized,
//!    see below), parking cross-shard sends in their outboxes exactly as
//!    the conservative executor does.
//! 3. **Validate.** At the barrier the coordinator scans every outbox: a
//!    packet due *inside* the window (`deliver < end`) is a
//!    **straggler** — its destination shard just ran the window without
//!    it, so the optimistic run is invalid.
//! 4. **Rollback + anti-messages.** On any straggler, *all* shards roll
//!    back: checkpointed nodes are moved back in place, parked outbox
//!    packets are discarded (each one an **anti-message** — the send
//!    never happened; the per-node wire-sequence counters rewind with
//!    the node snapshots, so a re-send re-draws the *same* sequence
//!    number and hence the same [`hem_machine::fault::FaultPlan`] fate,
//!    which is a pure function of `(seed, seq, src, dest)`), worker
//!    network counters are reset to their window-edge snapshot
//!    ([`hem_machine::net::Network::restore_counters`]), sanitizer state
//!    rewinds, and the trace capture of the cancelled attempt is
//!    dropped. The window re-runs with `end` shrunk to the earliest
//!    straggler's delivery time `d_min` — and that second attempt is
//!    provably clean (below). When `d_min == W` (a zero-latency message
//!    delivered exactly at the window base) the shrunken window would be
//!    empty, so the coordinator serially steps the global-minimum event
//!    and opens a fresh window.
//! 5. **Commit.** A validated window's shards were causally independent
//!    after the fact — exactly the conservative invariant, established
//!    by checking rather than by bounding — so the union of their runs
//!    is the serial run's event set for `[W, end)`, and per-shard state,
//!    counters, and captures fold into the coordinator as under
//!    [`SchedImpl::Sharded`].
//!
//! **Why the retry is clean.** Shard-local dispatch consumes no foreign
//! input inside a window (stragglers are precisely the foreign input
//! that *should* have arrived), so re-running a shard from its restored
//! checkpoint replays attempt 1 exactly, truncated at the smaller window
//! edge `d_min`. Its sends are therefore a subset of attempt 1's sends —
//! and every packet attempt 1 produced was due at or after `d_min`
//! (non-stragglers were due ≥ `end` > `d_min`; `d_min` is the minimum
//! over stragglers). A subset of packets all due ≥ `d_min` contains no
//! straggler for a window ending at `d_min`: attempt 2 validates.
//!
//! **Why the commit is the serial run.** Induction over the serial
//! schedule restricted to `[W, end)`: the serial run's next event always
//! belongs to some shard, its inputs are that shard's own state plus
//! messages validated to be due ≥ `end`, and shard-local dispatch uses
//! the identical selection rule — so each shard's in-window sequence *is*
//! the serial schedule's projection onto that shard, and makespan,
//! counters, final state, and fault fates are bit-identical to
//! [`SchedImpl::EventIndex`].
//!
//! **The commit merge is a heads-merge, not a sort.** Under zero
//! lookahead a dispatched event can *create* a smaller-key candidate —
//! dispatching `(t, local-work, n)` may send a zero-latency message that
//! becomes `(t, message, n')` with `message < local-work` in the kind
//! order — so neither the serial dispatch order nor a shard's capture
//! buffer is key-sorted, and the conservative executor's global
//! sort-by-key would interleave records wrongly. The serial order is
//! instead reconstructed by repeatedly taking, among the shards' *next
//! undispatched* events, the one with the minimum key (equal keys across
//! shards are impossible — the node id is part of the key and nodes are
//! partitioned). In conservative windows per-shard dispatch keys are
//! non-decreasing and the heads-merge degenerates to exactly that sort.
//!
//! **Windows never cross timers.** `end` is capped at the earliest
//! retransmission-timer candidate, as under the conservative executor:
//! timer handlers inspect *remote* inboxes (`frame_in_flight`), which no
//! windowed worker may do. Timers are handled by coordinator serial
//! steps with full-machine visibility.
//!
//! **Adaptive window.** `δ` starts at 8× the conservative lookahead
//! (floored at 8 cycles when the lookahead is zero — the regime this
//! executor exists for), halves on every rollback (floor 1), and doubles
//! after four consecutive clean windows (capped at 64× the base). The
//! adaptation is driven only by rollback outcomes, which may differ
//! across thread counts — harmless, because *every* validated window
//! commits a serial-order prefix regardless of where its edges fall.
//!
//! **Diagnostics.** Rollback/anti-message/checkpoint counts accumulate
//! in [`SpecStats`] (see [`crate::Runtime::spec_stats`]), deliberately
//! outside `MachineStats`: like the event-index heap diagnostics, they
//! depend on the thread count, and `MachineStats` is bit-identical
//! across executors by contract.

use crate::error::Trap;
use crate::explore::Mutant;
use crate::rt::{Node, Runtime};
use crate::shard::{recv_spin, run_window, EventKey};
use crate::trace::TraceRecord;
use hem_machine::stats::NetStats;
use hem_machine::Cycles;
use std::sync::mpsc::{channel, Sender};

/// A worker's armed window checkpoint: copy-on-dirty node snapshots plus
/// the window-edge values of the worker-global state a rollback must
/// rewind (network counters, sanitizer state, task-token counter).
pub(crate) struct TwCkpt {
    /// `saved[i]` — node `i` as it stood at the window edge, populated
    /// lazily by [`Runtime::tw_save`] the first time the window touches
    /// the node. Only this worker's owned nodes ever appear.
    pub saved: Vec<Option<Box<Node>>>,
    /// The worker network's counter snapshot at the window edge.
    pub net: NetStats,
    /// The worker sanitizer's snapshot, when one is attached.
    pub san: Option<crate::sanitize::SanSnapshot>,
    /// Task-token counter at the window edge, so a re-run draws
    /// identical tokens.
    pub next_task: u64,
}

/// Speculation diagnostics for [`crate::SchedImpl::Speculative`] runs;
/// all zero under every other scheduler (including the `threads <= 1`
/// fallback). Accumulates across `run_until` calls. Thread-count
/// *dependent* by nature — rollback patterns change with the partition —
/// which is why these live outside `MachineStats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpecStats {
    /// Speculative windows committed (validated clean).
    pub windows: u64,
    /// Events the coordinator stepped serially (timer due, or a
    /// straggler landing exactly on the window base).
    pub serial_steps: u64,
    /// Windows rolled back on straggler detection.
    pub rollbacks: u64,
    /// Speculatively sent cross-shard packets cancelled by rollbacks.
    pub anti_messages: u64,
    /// Copy-on-dirty node snapshots taken.
    pub ckpt_nodes: u64,
    /// Widest committed window, in cycles.
    pub max_window: Cycles,
}

impl Runtime {
    /// Speculation diagnostics accumulated by
    /// [`crate::SchedImpl::Speculative`] runs on this runtime (zeros
    /// under every other scheduler). Unlike [`Self::stats`], these are
    /// *not* bit-identical across thread counts — they describe how much
    /// speculating the executor did, not what the machine computed.
    pub fn spec_stats(&self) -> SpecStats {
        self.spec
    }

    /// Copy-on-dirty checkpoint hook: called before the first mutation
    /// of node `i` in a speculative window (at dispatch, and at
    /// intra-shard message delivery — cross-node state only ever changes
    /// through those two paths). No-op unless this runtime is a shard
    /// worker with an armed checkpoint.
    #[inline]
    pub(crate) fn tw_save(&mut self, i: usize) {
        let Some(sh) = self.shard.as_deref_mut() else {
            return;
        };
        let Some(ck) = sh.ckpt.as_mut() else {
            return;
        };
        if ck.saved[i].is_none() {
            ck.saved[i] = Some(Box::new(self.nodes[i].clone()));
            self.spec.ckpt_nodes += 1;
        }
    }

    /// Drive the machine until every candidate is at or past `horizon`
    /// with the optimistic executor. Falls back to the plain event index
    /// only for degenerate thread counts — a zero-lookahead cost model
    /// runs speculatively (that regime is the point; the conservative
    /// executor serializes there).
    pub(crate) fn run_speculative(&mut self, threads: usize, horizon: Cycles) -> Result<(), Trap> {
        let p = self.nodes.len();
        let threads = threads.min(p);
        if threads <= 1 {
            return self.run_sharded_fallback(horizon);
        }
        let wire = self.cost.min_wire_latency();
        let mut lookahead = if self.reliable {
            wire.min(self.retx_base)
        } else {
            wire
        };
        lookahead =
            lookahead.saturating_add(self.net.plan().map_or(0, |plan| plan.min_extra_latency()));
        // Base window scale: the conservative lookahead when there is
        // one, a small constant when there is none.
        let base = lookahead.max(1);
        self.run_timewarp_windows(threads, base, horizon)
    }

    /// The optimistic coordinator loop (see the [module docs](self)).
    fn run_timewarp_windows(
        &mut self,
        threads: usize,
        base: Cycles,
        horizon: Cycles,
    ) -> Result<(), Trap> {
        let p = self.nodes.len();
        let mut owner = vec![0usize; p];
        for (s, chunk) in (0..threads).map(|s| (s, (s * p / threads, (s + 1) * p / threads))) {
            for o in &mut owner[chunk.0..chunk.1] {
                *o = s;
            }
        }
        let record = self.trace_buf.enabled() || self.observer.is_some();
        let mut workers: Vec<Option<Runtime>> = (0..threads)
            .map(|s| Some(self.make_worker(s, &owner, record)))
            .collect();

        let mut delta = base.saturating_mul(8);
        let delta_cap = base.saturating_mul(64);
        let mut clean_streak = 0u32;

        let mut outcome: Result<(), (EventKey, Trap)> = Ok(());
        std::thread::scope(|scope| {
            type Job = (Runtime, Cycles);
            type Done = (usize, Runtime, Result<(), Trap>);
            let mut job_tx: Vec<Sender<Job>> = Vec::with_capacity(threads - 1);
            let (res_tx, res_rx) = channel::<Done>();
            for s in 1..threads {
                let (tx, rx) = channel::<Job>();
                job_tx.push(tx);
                let res_tx = res_tx.clone();
                scope.spawn(move || {
                    while let Ok((mut rt, end)) = rx.recv() {
                        let r = run_window(&mut rt, end);
                        if res_tx.send((s, rt, r)).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(res_tx);

            'windows: loop {
                // All nodes live in `self` here. Find W and the timer
                // bound, exactly as the conservative executor does.
                let mut wkey: Option<EventKey> = None;
                let mut timer_bound = Cycles::MAX;
                for i in 0..p {
                    if let Some((t, k)) = self.node_candidate(i) {
                        let key = (t, k, i as u32);
                        if wkey.is_none_or(|b| key < b) {
                            wkey = Some(key);
                        }
                    }
                    if let Some(t2) = self.node_timer_candidate(i) {
                        timer_bound = timer_bound.min(t2);
                    }
                }
                let Some(wkey) = wkey else {
                    break; // quiescent
                };
                if wkey.0 >= horizon {
                    break;
                }
                let mut end = wkey.0.saturating_add(delta).min(timer_bound).min(horizon);
                if end <= wkey.0 {
                    // A retransmission timer is (or ties with) the next
                    // event: never speculate past it — its handler
                    // inspects remote inboxes. Exact serial semantics.
                    self.spec.serial_steps += 1;
                    self.sched_stats.serial_steps += 1;
                    if let Err(trap) = self.dispatch_event(wkey.0, wkey.1, wkey.2 as usize) {
                        outcome = Err((wkey, trap));
                        break 'windows;
                    }
                    continue;
                }

                // Optimistic attempts at [wkey.0, end): validate, shrink
                // on stragglers. Terminates — `end` strictly decreases,
                // and the retry at `d_min` is provably clean (module
                // docs), so in practice this loop runs at most twice.
                loop {
                    // Hand-out, with checkpoints armed.
                    let mut active = vec![false; threads];
                    for (s, slot) in workers.iter_mut().enumerate() {
                        let wk = slot.as_mut().expect("worker at barrier");
                        wk.sched.clear();
                        wk.sched_stats.events_dispatched = 0;
                        let ck = TwCkpt {
                            saved: (0..p).map(|_| None).collect(),
                            net: wk.net.stats(),
                            san: wk.sanitizer.as_deref().map(|s| s.snapshot()),
                            next_task: wk.next_task,
                        };
                        let sh = wk.shard.as_mut().expect("shard ctx");
                        sh.ckpt = Some(ck);
                        sh.min_timer = Cycles::MAX;
                        for (i, &own) in owner.iter().enumerate() {
                            if own != s {
                                continue;
                            }
                            std::mem::swap(&mut self.nodes[i], &mut wk.nodes[i]);
                            wk.nodes[i].sched_noted = None;
                            if let Some((t, k)) = wk.node_candidate(i) {
                                if t < end {
                                    wk.sched_note(t, k, i);
                                    active[s] = true;
                                }
                            }
                        }
                    }
                    for s in 1..threads {
                        if active[s] {
                            let wk = workers[s].take().expect("worker at barrier");
                            job_tx[s - 1].send((wk, end)).expect("worker thread died");
                            // One whole runtime shipped out through the
                            // channel; its twin comes back at the Done
                            // receive below. The sharded executor's
                            // pinned pool counts zero of either.
                            self.sched_stats.runtime_moves += 1;
                        }
                    }
                    let mut fails: Vec<(EventKey, Trap)> = Vec::new();
                    if active[0] {
                        let wk = workers[0].as_mut().expect("inline shard");
                        if let Err(trap) = run_window(wk, end) {
                            fails.push((wk.shard.as_ref().expect("shard ctx").cur, trap));
                        }
                    }
                    let jobs_out = (1..threads).filter(|&s| active[s]).count();
                    for _ in 0..jobs_out {
                        let (s, wk, r) = recv_spin(&res_rx, threads);
                        self.sched_stats.runtime_moves += 1;
                        self.sched_stats.coord_roundtrips += 1;
                        if let Err(trap) = r {
                            fails.push((wk.shard.as_ref().expect("shard ctx").cur, trap));
                        }
                        workers[s] = Some(wk);
                    }

                    // Barrier, pass 1: every node back into the
                    // coordinator (restores below target `self.nodes`).
                    for (s, slot) in workers.iter_mut().enumerate() {
                        let wk = slot.as_mut().expect("worker at barrier");
                        for (i, &own) in owner.iter().enumerate() {
                            if own == s {
                                std::mem::swap(&mut self.nodes[i], &mut wk.nodes[i]);
                            }
                        }
                    }

                    // Validate: a parked cross-shard packet due inside
                    // the window is a straggler, and so is a
                    // retransmission timer armed mid-window with a
                    // deadline inside it (workers never fire timers;
                    // the serial run would). `d_min` is the earliest
                    // either anywhere.
                    let mut d_min: Option<Cycles> = None;
                    for slot in workers.iter() {
                        let wk = slot.as_ref().expect("worker at barrier");
                        let sh = wk.shard.as_ref().expect("shard ctx");
                        for (_, entry) in &sh.outbox {
                            if entry.deliver < end && d_min.is_none_or(|m| entry.deliver < m) {
                                d_min = Some(entry.deliver);
                            }
                        }
                        if sh.min_timer < end && d_min.is_none_or(|m| sh.min_timer < m) {
                            d_min = Some(sh.min_timer);
                        }
                    }

                    let Some(d_min) = d_min else {
                        // Clean window: commit.
                        self.spec.windows += 1;
                        self.spec.max_window = self.spec.max_window.max(end - wkey.0);
                        self.sched_stats.windows += 1;
                        clean_streak += 1;
                        if clean_streak >= 4 {
                            clean_streak = 0;
                            delta = delta.saturating_mul(2).min(delta_cap);
                        }
                        let mut captures: Vec<Vec<(EventKey, u32, TraceRecord)>> =
                            Vec::with_capacity(threads);
                        let mut dispatched: Vec<Vec<EventKey>> = Vec::with_capacity(threads);
                        let mut wevents = 0u64;
                        for slot in workers.iter_mut() {
                            let wk = slot.as_mut().expect("worker at barrier");
                            self.sched_stats.events_dispatched += wk.sched_stats.events_dispatched;
                            wevents += wk.sched_stats.events_dispatched;
                            if wk.result.is_some() {
                                self.result = wk.result.take();
                            }
                            if !wk.completions.is_empty() {
                                self.completions.append(&mut wk.completions);
                            }
                            let sh = wk.shard.as_mut().expect("shard ctx");
                            sh.ckpt = None;
                            for (d, entry) in sh.outbox.drain(..) {
                                self.nodes[d as usize].inbox.push(entry);
                            }
                            captures.push(std::mem::take(&mut sh.capture));
                            dispatched.push(std::mem::take(&mut sh.dispatched));
                        }
                        self.sched_stats.window_events += wevents;
                        self.sched_stats.max_window_events =
                            self.sched_stats.max_window_events.max(wevents);
                        // Heads-merge (module docs): replay events in
                        // serial order — always the minimum key among the
                        // shards' next-undispatched events — flushing each
                        // event's records as it commits, and stopping at
                        // the serial-first trap if any shard trapped.
                        let fail_keys: Vec<EventKey> = fails.iter().map(|(k, _)| *k).collect();
                        let mut ev_cur = vec![0usize; threads];
                        let mut rec_cur = vec![0usize; threads];
                        let mut trap_key: Option<EventKey> = None;
                        loop {
                            let mut head: Option<(EventKey, usize)> = None;
                            for (s, d) in dispatched.iter().enumerate() {
                                if let Some(&k) = d.get(ev_cur[s]) {
                                    if head.is_none_or(|(hk, _)| k < hk) {
                                        head = Some((k, s));
                                    }
                                }
                            }
                            let Some((k, s)) = head else {
                                break;
                            };
                            ev_cur[s] += 1;
                            // This event's records sit at the shard's
                            // record cursor: same key, same ordinal (the
                            // ordinal splits back-to-back events that
                            // share a key).
                            if let Some(&(k0, o0, _)) = captures[s].get(rec_cur[s]) {
                                if k0 == k {
                                    while let Some(&(k2, o2, rec)) = captures[s].get(rec_cur[s]) {
                                        if (k2, o2) != (k0, o0) {
                                            break;
                                        }
                                        self.flush_record(rec);
                                        rec_cur[s] += 1;
                                    }
                                }
                            }
                            if fail_keys.contains(&k) {
                                trap_key = Some(k);
                                break;
                            }
                        }
                        if let Some(tk) = trap_key {
                            let (_, trap) = fails
                                .into_iter()
                                .find(|(k, _)| *k == tk)
                                .expect("trap for merged key");
                            outcome = Err((tk, trap));
                            break 'windows;
                        } else if let Some((key, trap)) = fails.into_iter().min_by_key(|(k, _)| *k)
                        {
                            // Defensive: a trapping dispatch always logs
                            // its key, so the merge should have found it.
                            outcome = Err((key, trap));
                            break 'windows;
                        }
                        break; // next window
                    };

                    // Straggler: roll every shard back to the window
                    // edge and cancel the attempt. Traps found by the
                    // cancelled attempt are speculative state — if real,
                    // the retry re-encounters them (its run is a prefix
                    // of the cancelled one).
                    self.spec.rollbacks += 1;
                    clean_streak = 0;
                    delta = (delta / 2).max(1);
                    fails.clear();
                    let keep_wseq = self.mutant_is(Mutant::SkipWireSeqRestore);
                    for slot in workers.iter_mut() {
                        let wk = slot.as_mut().expect("worker at barrier");
                        let sh = wk.shard.as_mut().expect("shard ctx");
                        self.spec.anti_messages += sh.outbox.len() as u64;
                        sh.outbox.clear();
                        sh.capture.clear();
                        sh.dispatched.clear();
                        let ck = sh.ckpt.take().expect("armed checkpoint");
                        for (i, saved) in ck.saved.into_iter().enumerate() {
                            if let Some(saved) = saved {
                                let wseq = self.nodes[i].wire_seq;
                                self.nodes[i] = *saved;
                                if keep_wseq {
                                    // Mutation site (`skip-wire-seq-restore`):
                                    // keep the speculatively advanced
                                    // counter, so re-sends draw fresh
                                    // sequence numbers and re-roll their
                                    // fault fates.
                                    self.nodes[i].wire_seq = wseq;
                                }
                            }
                        }
                        wk.net.restore_counters(&ck.net);
                        if let (Some(sn), Some(snap)) =
                            (wk.sanitizer.as_deref_mut(), ck.san.as_ref())
                        {
                            sn.rollback(snap);
                        }
                        wk.next_task = ck.next_task;
                        wk.result = None;
                        wk.completions.clear();
                    }
                    if d_min <= wkey.0 {
                        // The straggler lands exactly on the window base:
                        // the shrunken window would be empty. Step the
                        // global-minimum event serially (the rollback put
                        // the machine back at the window edge, so `wkey`
                        // is still the minimum) and open a fresh window.
                        self.spec.serial_steps += 1;
                        self.sched_stats.serial_steps += 1;
                        if let Err(trap) = self.dispatch_event(wkey.0, wkey.1, wkey.2 as usize) {
                            outcome = Err((wkey, trap));
                            break 'windows;
                        }
                        break; // next window
                    }
                    end = d_min; // retry, shrunken — provably clean
                }
            }
            drop(job_tx); // workers exit; scope joins them
        });

        // Fold worker-side global state back into the coordinator.
        for slot in &mut workers {
            let wk = slot.as_mut().expect("worker after run");
            self.net.absorb_counters(&wk.net);
            self.spec.ckpt_nodes += wk.spec.ckpt_nodes;
            if let (Some(main_s), Some(wk_s)) =
                (self.sanitizer.as_deref_mut(), wk.sanitizer.as_deref_mut())
            {
                main_s.absorb(wk_s);
            }
        }
        for n in &mut self.nodes {
            n.sched_noted = None;
        }
        outcome.map_err(|(_, trap)| trap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::Packet;
    use crate::rt::{InboxEntry, SchedImpl};
    use crate::trace::Observer;
    use crate::{ExecMode, InterfaceSet};
    use hem_ir::{BinOp, MethodId, ObjRef, ProgramBuilder, Value};
    use hem_machine::cost::CostModel;
    use hem_machine::fault::FaultPlan;
    use hem_machine::net::{Network, WireClass};
    use hem_machine::NodeId;
    use proptest::prelude::*;

    /// Same bounce-ring as the sharded executor's tests: every hop is
    /// cross-node traffic, so speculation, stragglers, and rollbacks all
    /// get exercised.
    fn ring_runtime(p: u32, cost: CostModel) -> (Runtime, ObjRef, MethodId) {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("C", false);
        let peer = pb.field(c, "peer");
        let bounce = pb.declare(c, "bounce", 1);
        pb.define(bounce, |mb| {
            let n = mb.arg(0);
            let done = mb.binl(BinOp::Lt, n, 1);
            mb.if_else(
                done,
                |mb| mb.reply(n),
                |mb| {
                    let pr = mb.get_field(peer);
                    let n1 = mb.binl(BinOp::Sub, n, 1);
                    let s = mb.invoke_into(pr, bounce, &[n1.into()]);
                    let v = mb.touch_get(s);
                    let r = mb.binl(BinOp::Add, v, n);
                    mb.reply(r);
                },
            );
        });
        let mut rt = Runtime::new(pb.finish(), p, cost, ExecMode::Hybrid, InterfaceSet::Full)
            .expect("valid ring program");
        let objs: Vec<ObjRef> = (0..p)
            .map(|i| rt.alloc_object_by_name("C", NodeId(i)))
            .collect();
        for (i, &o) in objs.iter().enumerate() {
            rt.set_field(o, peer, Value::Obj(objs[(i + 1) % objs.len()]));
        }
        (rt, objs[0], bounce)
    }

    struct Collect(Vec<TraceRecord>);
    impl Observer for Collect {
        fn on_record(&mut self, rec: &TraceRecord) {
            self.0.push(*rec);
        }
    }

    struct Outcome {
        result: Option<Value>,
        makespan: Cycles,
        trace: Vec<TraceRecord>,
        observed: Vec<TraceRecord>,
        stats: hem_machine::stats::MachineStats,
        spec: SpecStats,
    }

    fn run_ring(sched: SchedImpl, cost: CostModel, faults: Option<FaultPlan>) -> Outcome {
        let (mut rt, root, bounce) = ring_runtime(4, cost);
        rt.sched_impl = sched;
        rt.enable_trace();
        rt.attach_observer(Box::new(Collect(Vec::new())));
        if let Some(plan) = faults {
            rt.set_fault_plan(plan);
        }
        let result = rt.call(root, bounce, &[Value::Int(25)]).expect("ring runs");
        let obs = rt.take_observer().expect("observer attached");
        let observed = (obs as Box<dyn std::any::Any>)
            .downcast::<Collect>()
            .expect("collect observer")
            .0;
        Outcome {
            result,
            makespan: rt.makespan(),
            trace: rt.take_trace(),
            observed,
            stats: rt.stats(),
            spec: rt.spec_stats(),
        }
    }

    fn assert_bit_identical(a: &Outcome, b: &Outcome, what: &str) {
        assert_eq!(a.result, b.result, "{what}: result");
        assert_eq!(a.makespan, b.makespan, "{what}: makespan");
        if let Some(i) = (0..a.trace.len().min(b.trace.len())).find(|&i| a.trace[i] != b.trace[i]) {
            panic!(
                "{what}: traces diverge at record {i}:\n  a: {:?}\n  b: {:?}",
                a.trace[i], b.trace[i]
            );
        }
        assert_eq!(a.trace.len(), b.trace.len(), "{what}: trace length");
        assert_eq!(a.observed, b.observed, "{what}: observer stream");
        assert_eq!(a.stats.node_time, b.stats.node_time, "{what}: clocks");
        assert_eq!(a.stats.per_node, b.stats.per_node, "{what}: counters");
        assert_eq!(a.stats.net, b.stats.net, "{what}: net stats");
        assert_eq!(
            a.stats.sched.events_dispatched, b.stats.sched.events_dispatched,
            "{what}: dispatch count"
        );
    }

    #[test]
    fn speculative_matches_event_index_on_a_ring() {
        let base = run_ring(SchedImpl::EventIndex, CostModel::cm5(), None);
        assert_eq!(base.result, Some(Value::Int(325)), "25+24+...+1");
        for threads in [2, 3, 4, 7] {
            let spec = run_ring(SchedImpl::Speculative { threads }, CostModel::cm5(), None);
            assert_bit_identical(&base, &spec, &format!("threads={threads}"));
            assert_eq!(spec.stats.sched.heap_pushes, 0, "heap stats read 0");
            assert_eq!(spec.stats.sched.max_heap_depth, 0);
            assert!(
                spec.spec.windows + spec.spec.serial_steps > 0,
                "threads={threads}: the speculative path actually ran"
            );
        }
    }

    #[test]
    fn speculative_matches_event_index_under_faults() {
        let plan = FaultPlan::seeded(7);
        let base = run_ring(SchedImpl::EventIndex, CostModel::cm5(), Some(plan.clone()));
        for threads in [2, 4] {
            let spec = run_ring(
                SchedImpl::Speculative { threads },
                CostModel::cm5(),
                Some(plan.clone()),
            );
            assert_bit_identical(&base, &spec, &format!("faulty threads={threads}"));
        }
    }

    #[test]
    fn speculative_runs_the_zero_lookahead_regime() {
        // Unit cost: zero wire latency, zero lookahead. The conservative
        // sharded executor must serialize here; the speculative one keeps
        // windowing — and must still be bit-identical.
        let base = run_ring(SchedImpl::EventIndex, CostModel::unit(), None);
        for threads in [2, 4] {
            let spec = run_ring(SchedImpl::Speculative { threads }, CostModel::unit(), None);
            assert_bit_identical(&base, &spec, &format!("unit-cost threads={threads}"));
            assert!(
                spec.spec.windows > 0,
                "threads={threads}: zero lookahead must not fall back to serial"
            );
        }
    }

    #[test]
    fn degenerate_thread_counts_fall_back() {
        let base = run_ring(SchedImpl::EventIndex, CostModel::cm5(), None);
        for threads in [0, 1] {
            let spec = run_ring(SchedImpl::Speculative { threads }, CostModel::cm5(), None);
            assert_bit_identical(&base, &spec, &format!("cm5 threads={threads}"));
            assert_eq!(
                spec.spec,
                SpecStats::default(),
                "fallback must not speculate"
            );
        }
        // More threads than nodes clamps to the node count and still runs
        // speculatively.
        let spec = run_ring(
            SchedImpl::Speculative { threads: 64 },
            CostModel::cm5(),
            None,
        );
        assert_bit_identical(&base, &spec, "threads=64 > p=4");
    }

    #[test]
    fn speculative_ring_truncation_counts_match() {
        let run = |sched: SchedImpl| {
            let (mut rt, root, bounce) = ring_runtime(4, CostModel::cm5());
            rt.sched_impl = sched;
            rt.enable_trace_ring(16);
            rt.call(root, bounce, &[Value::Int(25)]).expect("ring runs");
            (rt.trace_dropped_total(), rt.take_trace())
        };
        let (base_dropped, base_tail) = run(SchedImpl::EventIndex);
        assert!(base_dropped > 0, "ring must truncate for the test to bite");
        for threads in [2, 4] {
            let (dropped, tail) = run(SchedImpl::Speculative { threads });
            assert_eq!(dropped, base_dropped, "threads={threads}: evictions");
            assert_eq!(tail, base_tail, "threads={threads}: ring tail");
        }
    }

    /// Everything a rollback must restore on a node, in comparable form.
    type NodeFingerprint = (
        Vec<(u32, Vec<Value>, Vec<Vec<Value>>)>,
        Vec<(Cycles, u64, u32, String)>,
        u64,
        Cycles,
        String,
    );

    fn fingerprint(n: &Node) -> NodeFingerprint {
        let mut inbox: Vec<(Cycles, u64, u32, String)> = n
            .inbox
            .iter()
            .map(|e| (e.deliver, e.seq, e.src.0, format!("{:?}", e.msg)))
            .collect();
        inbox.sort();
        (
            n.objects
                .iter()
                .map(|o| (o.class.0, o.scalars.clone(), o.arrays.clone()))
                .collect(),
            inbox,
            n.wire_seq,
            n.time,
            format!("{:?} {:?} {:?}", n.tx_next, n.rx_floor, n.rx_seen),
        )
    }

    /// One random mutation against node 0 — the kinds of writes a
    /// speculative window performs.
    fn apply_op(rt: &mut Runtime, op: (u8, u64)) {
        let (kind, x) = op;
        let n = &mut rt.nodes[0];
        match kind % 4 {
            0 => {
                if let Some(o) = n.objects.first_mut() {
                    if let Some(s) = o.scalars.first_mut() {
                        *s = Value::Int(x as i64);
                    }
                }
            }
            1 => n.inbox.push(InboxEntry {
                deliver: x % 1000,
                seq: x,
                src: NodeId(1),
                msg: Packet::Ack { seq: x },
                req: 0,
                retx: false,
            }),
            2 => {
                n.inbox.pop();
            }
            _ => {
                n.wire_seq = n.wire_seq.wrapping_add(1 + x % 3);
                n.time = n.time.max(x % 500);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        /// Random checkpoint point, random speculative mutations, rollback:
        /// the node fingerprint (object state, inbox, wire seq, clock,
        /// transport maps) round-trips exactly — the snapshot aliases
        /// nothing with the live node.
        #[test]
        fn node_snapshot_restore_round_trips(
            pre in proptest::collection::vec((0u8..4, 0u64..10_000), 0..24),
            post in proptest::collection::vec((0u8..4, 0u64..10_000), 1..24),
        ) {
            let (mut rt, _, _) = ring_runtime(2, CostModel::cm5());
            for op in pre {
                apply_op(&mut rt, op);
            }
            let at_ckpt = fingerprint(&rt.nodes[0]);
            // Checkpoint exactly as tw_save does.
            let saved = Box::new(rt.nodes[0].clone());
            for op in post {
                apply_op(&mut rt, op);
            }
            // Rollback exactly as the straggler path does.
            rt.nodes[0] = *saved;
            prop_assert_eq!(fingerprint(&rt.nodes[0]), at_ckpt);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        /// Interleaved speculate/rollback cycles against the network: after
        /// each `restore_counters` the full `NetStats` word — data, ack,
        /// retx, faults — is exactly the window-edge snapshot, with and
        /// without a fault plan rolling fates.
        #[test]
        fn net_counter_rollback_is_exact(
            seed in 0u64..1_000,
            rounds in proptest::collection::vec(
                proptest::collection::vec((0u64..1 << 20, 0u8..3, 1u64..64), 1..12),
                1..6,
            ),
        ) {
            let mut net: Network<Packet> = Network::new();
            if seed % 2 == 1 {
                net.set_plan(Some(FaultPlan::seeded(seed)));
            }
            let mut at = 0;
            for sends in rounds {
                let snap = net.stats();
                for (seq, class, words) in sends {
                    at += 1;
                    let class = match class {
                        0 => WireClass::Data,
                        1 => WireClass::Ack,
                        _ => WireClass::Retx,
                    };
                    net.send_tagged(
                        seq,
                        NodeId(0),
                        NodeId(1),
                        at,
                        words,
                        class,
                        Packet::Ack { seq },
                    );
                }
                // Anti-messages: the attempt is cancelled wholesale.
                net.restore_counters(&snap);
                prop_assert_eq!(net.stats(), snap);
            }
        }
    }
}
