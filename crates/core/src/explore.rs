//! Schedule exploration: seeded tie-breaking in the event loop and a
//! bounded-exhaustive explorer over tie-break decisions.
//!
//! The dispatch loop is deterministic: the next event is the minimum
//! `(virtual time, kind, node)` candidate. But candidates **tied on
//! virtual time** are causally independent — each is enabled *now*, on a
//! different `(node, kind)`, and dispatching any one of them first is a
//! legal execution of the simulated machine (messages still deliver no
//! earlier than their send time, and a node's own clock only moves when
//! its event runs). The default rule is therefore one schedule out of
//! many; order-dependent bugs in unwinding, continuation forwarding, or
//! the §4.1 revert-to-parallel policy can hide behind it.
//!
//! [`TieBreak`] makes the tie rule a policy: keep the canonical order
//! ([`TieBreak::Det`]), pick uniformly from the tied set with a seeded
//! RNG ([`TieBreak::Seeded`]), or replay a recorded decision vector
//! ([`TieBreak::Replay`]). Every non-forced decision is logged as a
//! [`TieChoice`], so a failing schedule is reproducible: print the
//! choice vector, rerun under `Replay`.
//!
//! [`Explorer`] drives depth-first bounded-exhaustive enumeration of the
//! decision tree (the stateless-model-checking loop): run under a prefix,
//! read back the full decision log, advance the rightmost decision that
//! still has unexplored siblings.

/// How the event loop breaks ties among candidates with equal virtual
/// time. Set via [`crate::Runtime::set_tie_break`]; the default
/// ([`TieBreak::Det`]) routes through the production dispatch loops and
/// costs nothing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum TieBreak {
    /// Canonical order: minimum `(kind, node)` among the tied set — the
    /// same schedule the event index and the linear scan produce.
    #[default]
    Det,
    /// Uniform choice from the tied set, from a SplitMix64 stream over
    /// the given seed.
    Seeded(u64),
    /// Replay a recorded decision vector: the i-th *non-forced* decision
    /// (tie arity > 1) picks `v[i]` (clamped to the arity; exhausted
    /// vectors pick 0, i.e. fall back to canonical order).
    Replay(Vec<u32>),
}

/// One logged tie-break decision: which of the `arity` tied candidates
/// (in canonical `(kind, node)` order) was dispatched. Forced decisions
/// (arity 1) are not logged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TieChoice {
    /// Index picked, `0 <= choice < arity`.
    pub choice: u32,
    /// Number of candidates tied at the minimum time.
    pub arity: u32,
}

/// Advance a SplitMix64 stream (same generator the test shims use).
#[inline]
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Depth-first bounded-exhaustive enumeration over tie-break decision
/// vectors.
///
/// ```text
/// let mut ex = Explorer::new(max_schedules);
/// while let Some(plan) = ex.next_plan() {
///     // fresh runtime; rt.set_tie_break(TieBreak::Replay(plan));
///     // run the kernel; assert whatever must hold on every schedule
///     ex.record(rt.tie_log());
/// }
/// assert!(ex.complete());
/// ```
///
/// `record` scans the *actual* decision log of the run (which extends the
/// plan with canonical-order choices wherever the plan ran out) for the
/// rightmost decision with an unexplored sibling and makes that the next
/// plan — the standard DFS over a tree whose branching is only discovered
/// by running.
#[derive(Debug)]
pub struct Explorer {
    prefix: Vec<u32>,
    runs: usize,
    max_runs: usize,
    done: bool,
    exhausted: bool,
    awaiting_record: bool,
}

impl Explorer {
    /// Explore at most `max_runs` schedules (the bound of
    /// "bounded-exhaustive").
    pub fn new(max_runs: usize) -> Explorer {
        Explorer {
            prefix: Vec::new(),
            runs: 0,
            max_runs,
            done: false,
            exhausted: false,
            awaiting_record: false,
        }
    }

    /// The next decision vector to run under, or `None` when the tree is
    /// exhausted or the bound is hit. Each returned plan must be followed
    /// by exactly one [`Explorer::record`] call.
    pub fn next_plan(&mut self) -> Option<Vec<u32>> {
        assert!(!self.awaiting_record, "next_plan before record");
        if self.done || self.runs >= self.max_runs {
            return None;
        }
        self.runs += 1;
        self.awaiting_record = true;
        Some(self.prefix.clone())
    }

    /// Feed back the full decision log of the run started by the last
    /// [`Explorer::next_plan`]; computes the next unexplored prefix.
    pub fn record(&mut self, log: &[TieChoice]) {
        assert!(self.awaiting_record, "record without next_plan");
        self.awaiting_record = false;
        for p in (0..log.len()).rev() {
            if log[p].choice + 1 < log[p].arity {
                self.prefix.clear();
                self.prefix.extend(log[..p].iter().map(|t| t.choice));
                self.prefix.push(log[p].choice + 1);
                return;
            }
        }
        self.done = true;
        self.exhausted = true;
    }

    /// Schedules run so far.
    pub fn schedules_run(&self) -> usize {
        self.runs
    }

    /// True when the whole decision tree was enumerated (the run bound
    /// did not truncate the search).
    pub fn complete(&self) -> bool {
        self.exhausted
    }
}

/// Seeded single-point mutants of the runtime's protocol code, for
/// proving the conformance harness has teeth. Compiled only under
/// `cfg(test)` or the `mutants` cargo feature, and selected at
/// [`crate::Runtime::new`] time from the `HEM_MUTANT` environment
/// variable — so `HEM_MUTANT=<name> cargo test --features mutants` runs
/// the *entire* suite against the mutated runtime.
///
/// Each mutant is chosen to be silent along the default deterministic
/// schedule (same final state, or a divergence only a structural check
/// can see) so that catching it requires the sanitizer or the schedule
/// explorer; see `tests/schedule_explore.rs` for the per-mutant kill
/// assertions and DESIGN.md §5.13 for the rationale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutant {
    /// Wake a waiting context when its touch still has one unresolved
    /// slot. The early-woken context re-suspends, so the final state is
    /// unchanged — only the sanitizer's wake check sees it.
    EagerWake,
    /// Deliver a root reply twice. The second delivery overwrites the
    /// result with the same value — only the sanitizer's one-shot reply
    /// check sees it.
    DoubleRootReply,
    /// Mark slot 0, instead of the caller's return slot, pending when
    /// building a shell context (§3.2.3). Adoption discards the shell's
    /// slot states, so behavior is unchanged — the continuation-slot
    /// offset invariant is purely structural.
    ShellSlotZero,
    /// Drop the join-counter decrement for queue-delivered fills into
    /// joins with 2+ outstanding replies: the join never completes and
    /// its awaiter leaks.
    DropJoinDecrement,
    /// Skip the §4.1 revert-to-parallel depth guard: deep sequential
    /// chains keep recursing on the host stack past `max_seq_depth`
    /// instead of diverting through a heap context.
    SkipDepthGuard,
    /// Keep a node's speculatively advanced wire-sequence counter across a
    /// Time-Warp rollback instead of restoring the checkpointed value
    /// (rollback bookkeeping bug, see `crate::timewarp`). Re-sent
    /// messages then carry fresh sequence numbers, so fault fates and
    /// same-cycle delivery tie-breaks are re-drawn differently from the
    /// cancelled attempt — invisible under every non-speculative
    /// scheduler (no rollbacks happen), caught only by diffing the
    /// speculative path against `SchedImpl::EventIndex`.
    SkipWireSeqRestore,
    /// Price every modeled-collective down leg at one wire hop instead of
    /// its fan-out-tree depth (see `Runtime::issue_collective`). A pure,
    /// uniform timing change: traces stay internally consistent and every
    /// scheduler implementation reproduces it bit-identically, so
    /// cross-executor diffing can *not* see it — it is caught only by an
    /// explicit assertion on the collective delivery schedule
    /// (`tests/collectives.rs`).
    CollectiveSkipsHopCost,
}

impl Mutant {
    /// Every mutant, for smoke-check loops.
    pub const ALL: [Mutant; 7] = [
        Mutant::EagerWake,
        Mutant::DoubleRootReply,
        Mutant::ShellSlotZero,
        Mutant::DropJoinDecrement,
        Mutant::SkipDepthGuard,
        Mutant::SkipWireSeqRestore,
        Mutant::CollectiveSkipsHopCost,
    ];

    /// The `HEM_MUTANT` spelling of this mutant.
    pub fn name(self) -> &'static str {
        match self {
            Mutant::EagerWake => "eager-wake",
            Mutant::DoubleRootReply => "double-root-reply",
            Mutant::ShellSlotZero => "shell-slot-zero",
            Mutant::DropJoinDecrement => "drop-join-decrement",
            Mutant::SkipDepthGuard => "skip-depth-guard",
            Mutant::SkipWireSeqRestore => "skip-wire-seq-restore",
            Mutant::CollectiveSkipsHopCost => "collective-skips-hop-cost",
        }
    }

    /// Read `HEM_MUTANT`; unset means no mutation, an unknown name is a
    /// loud error (a typo must never silently run the unmutated runtime).
    #[cfg(any(test, feature = "mutants"))]
    pub fn from_env() -> Option<Mutant> {
        let v = std::env::var("HEM_MUTANT").ok()?;
        let v = v.trim();
        if v.is_empty() {
            return None;
        }
        Some(
            Mutant::ALL
                .into_iter()
                .find(|m| m.name() == v)
                .unwrap_or_else(|| panic!("unknown HEM_MUTANT {v:?}")),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn choices(v: &[(u32, u32)]) -> Vec<TieChoice> {
        v.iter()
            .map(|&(choice, arity)| TieChoice { choice, arity })
            .collect()
    }

    /// Drive the explorer against a fixed synthetic tree: every schedule
    /// has two decision points of arity 2 except the (1, _) subtree which
    /// has one extra point. The DFS must visit all 6 leaves exactly once.
    #[test]
    fn dfs_enumerates_a_small_tree() {
        let mut seen = Vec::new();
        let mut ex = Explorer::new(100);
        while let Some(plan) = ex.next_plan() {
            // Simulate the run: extend the plan with zeros to the tree's
            // depth for this branch.
            let a = plan.first().copied().unwrap_or(0);
            let b = plan.get(1).copied().unwrap_or(0);
            let log = if a == 1 {
                let c = plan.get(2).copied().unwrap_or(0);
                seen.push(vec![a, b, c]);
                choices(&[(a, 2), (b, 2), (c, 2)])
            } else {
                seen.push(vec![a, b]);
                choices(&[(a, 2), (b, 2)])
            };
            ex.record(&log);
        }
        assert!(ex.complete());
        assert_eq!(ex.schedules_run(), 6);
        let expect: Vec<Vec<u32>> = vec![
            vec![0, 0],
            vec![0, 1],
            vec![1, 0, 0],
            vec![1, 0, 1],
            vec![1, 1, 0],
            vec![1, 1, 1],
        ];
        assert_eq!(seen, expect);
    }

    #[test]
    fn dfs_respects_the_bound() {
        let mut ex = Explorer::new(3);
        let mut n = 0;
        while let Some(plan) = ex.next_plan() {
            let a = plan.first().copied().unwrap_or(0);
            let b = plan.get(1).copied().unwrap_or(0);
            ex.record(&choices(&[(a, 4), (b, 4)]));
            n += 1;
        }
        assert_eq!(n, 3);
        assert!(!ex.complete(), "bound must report truncation");
    }

    #[test]
    fn tieless_run_is_complete_after_one_schedule() {
        let mut ex = Explorer::new(10);
        let plan = ex.next_plan().unwrap();
        assert!(plan.is_empty());
        ex.record(&[]);
        assert!(ex.next_plan().is_none());
        assert!(ex.complete());
        assert_eq!(ex.schedules_run(), 1);
    }

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = 42u64;
        let mut b = 42u64;
        let xs: Vec<u64> = (0..8).map(|_| splitmix64(&mut a)).collect();
        let ys: Vec<u64> = (0..8).map(|_| splitmix64(&mut b)).collect();
        assert_eq!(xs, ys);
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn mutant_names_round_trip() {
        for m in Mutant::ALL {
            assert!(Mutant::ALL.iter().any(|x| x.name() == m.name() && *x == m));
        }
    }
}
