//! Online invariant sanitizer: opt-in structural checking of the hybrid
//! execution model's protocol invariants, at every step of a run.
//!
//! The model's semantic-transparency argument (paper §3–4) rests on a
//! handful of structural invariants. Some are *always* enforced, because
//! violating them corrupts data the runtime itself needs — those trap
//! (`Err(Trap)`) unconditionally:
//!
//! * join counters never go negative and a future is never filled twice
//!   ([`crate::Runtime::apply_fill`]: "reply to completed join", "double
//!   reply to future");
//! * a future is read only when resolved (`GetSlot` traps on an
//!   unresolved slot) — a toucher that cannot proceed suspends instead;
//! * a consumed continuation is never replied through again
//!   ("reply after continuation consumed").
//!
//! Others are invisible to the trap machinery: breaking them yields a run
//! that still terminates with plausible-looking state. The sanitizer
//! checks exactly those, online, when enabled with
//! [`crate::Runtime::enable_sanitizer`]:
//!
//! * **Wake soundness** — a waiting context is woken only when every slot
//!   in its touch mask is satisfied (an early wake re-suspends and hides).
//! * **One reply to the root** — the harness-visible result is delivered
//!   at most once per [`crate::Runtime::call`].
//! * **Continuation slot offset** — a shell context built for a caller
//!   (§3.2.3) marks the caller's declared return slot pending, not some
//!   other offset (adoption overwrites the shell's slots, so a wrong
//!   offset is otherwise silent).
//! * **Revert-to-parallel honored (§4.1)** — no sequential entry runs at
//!   or past `max_seq_depth`, and a fallen-back activation is only
//!   created while unwinding a live stack (`seq_depth > 0`) — a
//!   fallen-back activation never re-unwinds.
//! * **Sequential-on-locked** — a sequential version entered on a locked
//!   object finds the lock held, and a locked method that suspends hands
//!   its lock to its own context (transfer, not release).
//! * **Ready-only dispatch** — only `Ready` contexts are dispatched.
//! * **Context conservation** — at quiescence, every allocated context
//!   was retired ([`crate::Runtime::sanitizer_check_quiescent`], called
//!   by the harness when a program should have finished).
//!
//! Violations are *recorded*, not panicked: a schedule explorer needs the
//! run to finish so it can print the failing tie-break sequence for
//! replay. Costs: the sanitizer never charges virtual time or emits trace
//! events, so an enabled sanitizer leaves clocks, counters, and traces
//! bit-identical (the `sched_throughput` bench guards this); disabled,
//! every hook is one `Option` discriminant test.

use crate::context::{SlotState, WaitState};
use crate::object::LockHolder;
use crate::rt::Runtime;
use hem_ir::{MethodId, ObjRef};

/// Sanitizer state: recorded violations plus the shadow counters the
/// checks need. Owned by the runtime; see the [module docs](self).
#[derive(Debug, Default)]
pub struct Sanitizer {
    violations: Vec<String>,
    /// `(time, kind, node)` key of the dispatched event that last
    /// delivered to the root continuation in the current call. A reactive
    /// program may legally deliver several late root replies in one
    /// `call` (parked activations from earlier calls releasing), but each
    /// arrives in its own dispatched event — two root deliveries inside
    /// one event step is a double reply. The event *key* (not a dispatch
    /// count) is the step identity so the check is invariant across
    /// scheduler implementations: shard workers count events per window.
    last_root_event: Option<(hem_machine::Cycles, u8, u32)>,
    /// Contexts allocated / retired since the sanitizer was enabled.
    ctx_allocs: u64,
    ctx_frees: u64,
}

impl Sanitizer {
    fn violation(&mut self, msg: String) {
        self.violations.push(msg);
    }

    /// Fold a shard worker's sanitizer state into the coordinator's:
    /// violations are appended and the context-conservation counters
    /// summed, so `sanitizer_check_quiescent` on the coordinator sees the
    /// machine-wide balance. (`last_root_event` is per-dispatch state and
    /// does not cross the merge.)
    pub(crate) fn absorb(&mut self, other: &mut Sanitizer) {
        self.violations.append(&mut other.violations);
        self.ctx_allocs += other.ctx_allocs;
        self.ctx_frees += other.ctx_frees;
        other.ctx_allocs = 0;
        other.ctx_frees = 0;
    }

    /// Capture the rollback point the speculative executor restores to:
    /// violations recorded so far (as a length — the vector is
    /// append-only), the root-delivery step, and the conservation
    /// counters. A rolled-back window's checks are undone wholesale; the
    /// clean re-run re-records whatever still holds.
    pub(crate) fn snapshot(&self) -> SanSnapshot {
        SanSnapshot {
            violations_len: self.violations.len(),
            last_root_event: self.last_root_event,
            ctx_allocs: self.ctx_allocs,
            ctx_frees: self.ctx_frees,
        }
    }

    /// Rewind to a [`Self::snapshot`] taken on this sanitizer.
    pub(crate) fn rollback(&mut self, snap: &SanSnapshot) {
        self.violations.truncate(snap.violations_len);
        self.last_root_event = snap.last_root_event;
        self.ctx_allocs = snap.ctx_allocs;
        self.ctx_frees = snap.ctx_frees;
    }
}

/// A [`Sanitizer::snapshot`] — see there.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SanSnapshot {
    violations_len: usize,
    last_root_event: Option<(hem_machine::Cycles, u8, u32)>,
    ctx_allocs: u64,
    ctx_frees: u64,
}

impl Runtime {
    /// Turn the online invariant sanitizer on (see the
    /// [module docs](self) for what is checked). Enable before running:
    /// context conservation counts from this point. Checking never
    /// charges virtual time, so traces, clocks, and counters are
    /// bit-identical with the sanitizer on or off.
    pub fn enable_sanitizer(&mut self) {
        if self.sanitizer.is_none() {
            self.sanitizer = Some(Box::default());
        }
    }

    /// Is the sanitizer on?
    pub fn sanitizer_enabled(&self) -> bool {
        self.sanitizer.is_some()
    }

    /// Violations recorded so far (empty when the sanitizer is off or the
    /// run is clean).
    pub fn sanitizer_violations(&self) -> &[String] {
        self.sanitizer
            .as_deref()
            .map_or(&[], |s| s.violations.as_slice())
    }

    /// Drain the recorded violations.
    pub fn take_sanitizer_violations(&mut self) -> Vec<String> {
        self.sanitizer
            .as_deref_mut()
            .map_or_else(Vec::new, |s| std::mem::take(&mut s.violations))
    }

    /// End-of-program check, called by a harness when the program should
    /// have fully completed: the machine must be quiescent, no context
    /// may remain live, and every context allocated since the sanitizer
    /// was enabled must have been retired. (Do not call between phases of
    /// an intentionally reactive program — parked contexts are legal
    /// there.)
    pub fn sanitizer_check_quiescent(&mut self) {
        if self.sanitizer.is_none() {
            return;
        }
        let quiescent = self.is_quiescent();
        let live = self.live_contexts();
        let stuck = if live > 0 {
            format!("; stuck: {:?}", self.stuck_contexts())
        } else {
            String::new()
        };
        let s = self.sanitizer.as_deref_mut().expect("checked above");
        if !quiescent {
            s.violation("quiescence check while work remains".into());
        }
        if live != 0 {
            s.violation(format!("{live} contexts live at quiescence{stuck}"));
        }
        if s.ctx_allocs != s.ctx_frees {
            s.violation(format!(
                "context conservation: {} allocated, {} retired",
                s.ctx_allocs, s.ctx_frees
            ));
        }
    }

    // ================= internal hooks =================
    //
    // Every hook short-circuits on a disabled sanitizer and never touches
    // clocks, counters, or the trace.

    /// A waiting context is being woken: every slot in its awaited mask
    /// must be satisfied.
    #[inline]
    pub(crate) fn san_wake_check(&mut self, node: usize, ctx: u32, mask: u64) {
        if self.sanitizer.is_none() {
            return;
        }
        let slots = &self.nodes[node].ctxs.get(ctx).frame.slots;
        let mut bad = Vec::new();
        for i in 0..64u16 {
            if mask & (1u64 << i) != 0 && !slots.get(i as usize).is_some_and(SlotState::satisfied) {
                bad.push(i);
            }
        }
        if !bad.is_empty() {
            self.sanitizer.as_deref_mut().unwrap().violation(format!(
                "node {node} ctx {ctx}: woken with unsatisfied touch slots {bad:?}"
            ));
        }
    }

    /// A reply reached the root continuation. Legitimate root deliveries
    /// each arrive in their own dispatched event (an activation replies
    /// at most once); two inside one event step is a double reply.
    #[inline]
    pub(crate) fn san_root_delivered(&mut self) {
        let step = self.san_step;
        if let Some(s) = self.sanitizer.as_deref_mut() {
            if s.last_root_event == Some(step) {
                s.violation(format!(
                    "root continuation replied to twice within event step {step:?}"
                ));
            }
            s.last_root_event = Some(step);
        }
    }

    /// A new root call is starting; the root continuation is fresh.
    #[inline]
    pub(crate) fn san_root_reset(&mut self) {
        if let Some(s) = self.sanitizer.as_deref_mut() {
            s.last_root_event = None;
        }
    }

    /// A shell context was just built for a caller: its declared return
    /// slot — and only that slot — must be marked pending.
    #[inline]
    pub(crate) fn san_shell_check(&mut self, node: usize, shell: u32, ret_slot: u16) {
        if self.sanitizer.is_none() {
            return;
        }
        let slots = &self.nodes[node].ctxs.get(shell).frame.slots;
        let bad: Vec<usize> = slots
            .iter()
            .enumerate()
            .filter(|(i, s)| (**s == SlotState::Pending) != (*i == ret_slot as usize))
            .map(|(i, _)| i)
            .collect();
        if !bad.is_empty() {
            self.sanitizer.as_deref_mut().unwrap().violation(format!(
                "node {node} shell ctx {shell}: continuation slot not at its fixed \
                 offset (declared return slot {ret_slot}, mismarked slots {bad:?})"
            ));
        }
    }

    /// A sequential version is being entered on `target`: the §4.1 depth
    /// guard must have kept us under `max_seq_depth`, and a locked
    /// receiver must actually be held.
    #[inline]
    pub(crate) fn san_seq_entry(&mut self, node: usize, target: ObjRef, callee: MethodId) {
        if self.sanitizer.is_none() {
            return;
        }
        let depth_ok = self.seq_depth < self.max_seq_depth;
        let lock_ok = match &self.nodes[node].objects[target.index as usize].lock {
            Some(l) => l.holder.is_some(),
            None => true,
        };
        let (depth, max) = (self.seq_depth, self.max_seq_depth);
        let s = self.sanitizer.as_deref_mut().unwrap();
        if !depth_ok {
            s.violation(format!(
                "method {callee:?} entered sequentially at depth {depth} >= limit {max} \
                 (revert-to-parallel bypassed)"
            ));
        }
        if !lock_ok {
            s.violation(format!(
                "method {callee:?} running sequentially on locked object \
                 node {node} obj {} with no lock holder",
                target.index
            ));
        }
    }

    /// A context was allocated; `fallback` creations (stack unwinding,
    /// §3.2.2–3.2.3) are only legal while a sequential activation is
    /// live — a fallen-back activation never re-unwinds.
    #[inline]
    pub(crate) fn san_ctx_alloc(&mut self, node: usize, ctx: u32, fallback: bool) {
        if self.sanitizer.is_none() {
            return;
        }
        let depth = self.seq_depth;
        let s = self.sanitizer.as_deref_mut().unwrap();
        s.ctx_allocs += 1;
        if fallback && depth == 0 {
            s.violation(format!(
                "node {node} ctx {ctx}: fallback context created outside any \
                 sequential activation (re-unwind of a fallen-back activation?)"
            ));
        }
    }

    /// A context was retired.
    #[inline]
    pub(crate) fn san_ctx_free(&mut self) {
        if let Some(s) = self.sanitizer.as_deref_mut() {
            s.ctx_frees += 1;
        }
    }

    /// A context is about to be dispatched: it must be `Ready`.
    #[inline]
    pub(crate) fn san_dispatch_check(&mut self, node: usize, ctx: u32) {
        if self.sanitizer.is_none() {
            return;
        }
        let wait = self.nodes[node].ctxs.get(ctx).wait;
        if wait != WaitState::Ready {
            self.sanitizer.as_deref_mut().unwrap().violation(format!(
                "node {node} ctx {ctx}: dispatched in state {wait:?} (not Ready)"
            ));
        }
    }

    /// A locked method suspended: its lock must have been transferred to
    /// the fallen-back context, which must know it holds it.
    #[inline]
    pub(crate) fn san_settle_blocked(&mut self, node: usize, obj: u32, ctx: u32) {
        if self.sanitizer.is_none() {
            return;
        }
        let holder = self.nodes[node].objects[obj as usize]
            .lock
            .as_ref()
            .and_then(|l| l.holder);
        let holds = self.nodes[node].ctxs.get(ctx).holds_lock;
        if holder != Some(LockHolder::Ctx(ctx)) || !holds {
            self.sanitizer.as_deref_mut().unwrap().violation(format!(
                "node {node} obj {obj}: locked method suspended into ctx {ctx} but \
                 lock holder is {holder:?} (holds_lock = {holds}); lock must \
                 transfer, not release"
            ));
        }
    }
}
