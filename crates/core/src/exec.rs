//! Instruction semantics shared by the sequential and parallel
//! interpreters.
//!
//! The central correctness property of the hybrid model is that the two
//! code versions compute the same results; everything except invocation,
//! synchronization and termination is therefore implemented exactly once
//! here and called from both interpreters.

use crate::context::{ActFrame, SlotState};
use crate::error::Trap;
use crate::object::FieldKind;
use crate::rt::Runtime;
use hem_ir::value::{bin_op, un_op};
use hem_ir::{Instr, ObjRef, Operand, Value};

/// Where control goes after a simple instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Next {
    /// Fall through to `pc + 1`.
    Advance,
    /// Jump to an absolute instruction index.
    Goto(u32),
}

/// Read an operand against a frame.
#[inline]
pub(crate) fn read(fr: &ActFrame, op: &Operand) -> Value {
    match op {
        Operand::L(l) => fr.locals[l.idx()],
        Operand::K(v) => *v,
    }
}

/// Evaluate a list of operands.
pub(crate) fn read_args(fr: &ActFrame, ops: &[Operand]) -> Vec<Value> {
    ops.iter().map(|o| read(fr, o)).collect()
}

/// Execute one of the mode-independent instructions. The caller has
/// already charged the base `op` cost; this adds any operation-specific
/// cost (object allocation, join init, continuation sends).
///
/// # Panics
/// On instructions that are mode-specific (`Invoke`, `Touch`, terminators,
/// `StoreCont`) — the interpreters dispatch those before calling here.
pub(crate) fn exec_simple(
    rt: &mut Runtime,
    node: usize,
    fr: &mut ActFrame,
    ins: &Instr,
) -> Result<Next, Trap> {
    let pc = fr.pc;
    let trap_v = |e| Trap::from_value(fr.method, pc, e);
    match ins {
        Instr::Mov { dst, src } => {
            fr.locals[dst.idx()] = read(fr, src);
        }
        Instr::Bin { dst, op, a, b } => {
            let v = bin_op(*op, read(fr, a), read(fr, b)).map_err(trap_v)?;
            fr.locals[dst.idx()] = v;
        }
        Instr::Un { dst, op, a } => {
            let v = un_op(*op, read(fr, a)).map_err(trap_v)?;
            fr.locals[dst.idx()] = v;
        }
        Instr::SelfRef { dst } => {
            fr.locals[dst.idx()] = Value::Obj(fr.obj);
        }
        Instr::MyNode { dst } => {
            fr.locals[dst.idx()] = Value::Int(node as i64);
        }
        Instr::NodeOf { dst, obj } => {
            let o = read(fr, obj).as_obj().map_err(trap_v)?;
            fr.locals[dst.idx()] = Value::Int(o.node.0 as i64);
        }
        Instr::NewLocal { dst, class } => {
            // Local allocation only; remote placement is harness business.
            rt.charge(node, rt.cost.ctx_alloc);
            let o = rt.layouts[class.idx()].instantiate(*class);
            let objs = &mut rt.nodes[node].objects;
            objs.push(o);
            fr.locals[dst.idx()] = Value::Obj(ObjRef {
                node: hem_machine::NodeId(node as u32),
                index: (objs.len() - 1) as u32,
            });
        }
        Instr::GetField { dst, field } => {
            let v = match field_kind(rt, fr, *field) {
                FieldKind::Scalar(i) => obj(rt, fr, node).scalars[i as usize],
                FieldKind::Array(_) => unreachable!("validated"),
            };
            fr.locals[dst.idx()] = v;
        }
        Instr::SetField { field, src } => {
            let v = read(fr, src);
            match field_kind(rt, fr, *field) {
                FieldKind::Scalar(i) => obj_mut(rt, fr, node).scalars[i as usize] = v,
                FieldKind::Array(_) => unreachable!("validated"),
            }
        }
        Instr::GetElem { dst, field, idx } => {
            let i = read(fr, idx).as_int().map_err(trap_v)?;
            let v = match field_kind(rt, fr, *field) {
                FieldKind::Array(a) => {
                    let arr = &obj(rt, fr, node).arrays[a as usize];
                    *arr.get(i as usize).ok_or_else(|| {
                        Trap::at(
                            fr.method,
                            pc,
                            format!("array index {i} out of range ({})", arr.len()),
                        )
                    })?
                }
                FieldKind::Scalar(_) => unreachable!("validated"),
            };
            fr.locals[dst.idx()] = v;
        }
        Instr::SetElem { field, idx, src } => {
            let i = read(fr, idx).as_int().map_err(trap_v)?;
            let v = read(fr, src);
            match field_kind(rt, fr, *field) {
                FieldKind::Array(a) => {
                    let arr = &mut obj_mut(rt, fr, node).arrays[a as usize];
                    let len = arr.len();
                    *arr.get_mut(i as usize).ok_or_else(|| {
                        Trap::at(
                            fr.method,
                            pc,
                            format!("array index {i} out of range ({len})"),
                        )
                    })? = v;
                }
                FieldKind::Scalar(_) => unreachable!("validated"),
            }
        }
        Instr::ArrNew { field, len } => {
            let l = read(fr, len).as_int().map_err(trap_v)?;
            if l < 0 {
                return Err(Trap::at(
                    fr.method,
                    pc,
                    format!("negative array length {l}"),
                ));
            }
            rt.charge(node, rt.cost.ctx_alloc);
            match field_kind(rt, fr, *field) {
                FieldKind::Array(a) => {
                    obj_mut(rt, fr, node).arrays[a as usize] = vec![Value::Nil; l as usize];
                }
                FieldKind::Scalar(_) => unreachable!("validated"),
            }
        }
        Instr::ArrLen { dst, field } => {
            let v = match field_kind(rt, fr, *field) {
                FieldKind::Array(a) => {
                    Value::Int(obj(rt, fr, node).arrays[a as usize].len() as i64)
                }
                FieldKind::Scalar(_) => unreachable!("validated"),
            };
            fr.locals[dst.idx()] = v;
        }
        Instr::GetSlot { dst, slot } => {
            let s = &fr.slots[slot.idx()];
            let v = s.value().ok_or_else(|| {
                Trap::at(
                    fr.method,
                    pc,
                    format!("get of unresolved slot {} ({s:?})", slot.0),
                )
            })?;
            fr.locals[dst.idx()] = v;
        }
        Instr::JoinInit { slot, count } => {
            let c = read(fr, count).as_int().map_err(trap_v)?;
            if c < 0 {
                return Err(Trap::at(fr.method, pc, format!("negative join count {c}")));
            }
            rt.charge(node, rt.cost.join_init);
            fr.slots[slot.idx()] = SlotState::Join(c as u32);
        }
        Instr::SendToCont { cont, value } => {
            let c = read(fr, cont).as_cont().map_err(trap_v)?;
            let v = read(fr, value);
            rt.deliver_cont(node, crate::cont::Continuation::Into(c), v)?;
        }
        Instr::Jmp { to } => return Ok(Next::Goto(*to)),
        Instr::Br { cond, t, f } => {
            let c = read(fr, cond).as_bool().map_err(trap_v)?;
            return Ok(Next::Goto(if c { *t } else { *f }));
        }
        other => unreachable!("exec_simple given mode-specific instruction {other:?}"),
    }
    Ok(Next::Advance)
}

/// Read a collective group: every element of `self.field` must be an
/// object reference (collectives address objects, and their hosting nodes
/// define the fan-out tree's membership).
pub(crate) fn read_group(
    rt: &Runtime,
    fr: &ActFrame,
    node: usize,
    field: hem_ir::FieldId,
) -> Result<Vec<ObjRef>, Trap> {
    match field_kind(rt, fr, field) {
        FieldKind::Array(a) => obj(rt, fr, node).arrays[a as usize]
            .iter()
            .map(|v| {
                v.as_obj()
                    .map_err(|e| Trap::from_value(fr.method, fr.pc, e))
            })
            .collect(),
        FieldKind::Scalar(_) => unreachable!("validated"),
    }
}

#[inline]
fn field_kind(rt: &Runtime, fr: &ActFrame, field: hem_ir::FieldId) -> FieldKind {
    let class = rt.nodes[fr.obj.node.idx()].objects[fr.obj.index as usize].class;
    rt.layouts[class.idx()].kinds[field.idx()]
}

#[inline]
fn obj<'a>(rt: &'a Runtime, fr: &ActFrame, node: usize) -> &'a crate::object::Object {
    debug_assert_eq!(fr.obj.node.idx(), node, "owner-computes violated");
    &rt.nodes[node].objects[fr.obj.index as usize]
}

#[inline]
fn obj_mut<'a>(rt: &'a mut Runtime, fr: &ActFrame, node: usize) -> &'a mut crate::object::Object {
    debug_assert_eq!(fr.obj.node.idx(), node, "owner-computes violated");
    &mut rt.nodes[node].objects[fr.obj.index as usize]
}
