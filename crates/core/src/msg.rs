//! Wire messages.
//!
//! Two kinds suffice, matching the paper's active-message style: a request
//! carrying an invocation (with its reply continuation, and a flag saying
//! whether that continuation was *forwarded* — forwarded requests carry a
//! full continuation and are therefore longer, the effect the EM3D
//! `forward` variant trades against reply count), and a reply determining
//! a future.
//!
//! On the wire every [`Msg`] travels inside a [`Packet`]: raw (the default,
//! for a perfectly reliable interconnect) or as a sequenced data frame of
//! the reliable transport, which adds acknowledgement frames — see
//! `rt.rs`'s retransmission protocol.

use crate::cont::Continuation;
use hem_ir::{ContRef, MethodId, Value};

/// A message in flight between nodes.
#[derive(Debug, Clone)]
pub enum Msg {
    /// Remote method invocation request.
    Invoke {
        /// Target object index on the destination node.
        obj: u32,
        /// Method to invoke.
        method: MethodId,
        /// Evaluated arguments.
        args: Vec<Value>,
        /// Where the reply goes.
        cont: Continuation,
        /// True when `cont` was forwarded from an earlier frame (proxy
        /// context case at the receiver).
        forwarded: bool,
    },
    /// Reply determining a future in a remote context.
    Reply {
        /// The continuation being determined.
        cont: ContRef,
        /// The value.
        value: Value,
    },
}

impl Msg {
    /// Payload size in words (header + object + method + args + reply
    /// capability). Drives the per-word wire cost; the request/reply
    /// *fixed* costs live in the cost model. Forwarded requests are
    /// longer: they carry the full materialized continuation plus the
    /// forwarding metadata (the paper's EM3D discussion turns on
    /// forward's "longer update messages" vs push's extra replies).
    pub fn words(&self) -> u64 {
        match self {
            Msg::Invoke {
                args,
                cont,
                forwarded,
                ..
            } => 3 + args.len() as u64 + cont.words() + if *forwarded { 4 } else { 0 },
            Msg::Reply { .. } => 3,
        }
    }

    /// Is this a reply?
    pub fn is_reply(&self) -> bool {
        matches!(self, Msg::Reply { .. })
    }
}

/// The wire envelope around a [`Msg`].
///
/// `Raw` is the legacy framing used when the reliable transport is off:
/// zero header words, no acknowledgements — correct only on a fault-free
/// interconnect. With the transport on, payloads travel as `Data` frames
/// carrying a per-`(sender, destination)` sequence number (the receiver's
/// duplicate-suppression key) and are confirmed with single-word `Ack`
/// frames; unconfirmed frames are retransmitted on a capped exponential
/// backoff in virtual time.
#[derive(Debug, Clone)]
pub enum Packet {
    /// Unsequenced payload (reliable transport off).
    Raw(Msg),
    /// Sequenced payload (reliable transport on). `seq` is the sender's
    /// per-destination transport sequence number — *not* the network's
    /// global sequence number, which changes on every retransmission.
    Data {
        /// Per-(sender, destination) transport sequence number.
        seq: u64,
        /// The payload.
        msg: Msg,
    },
    /// Acknowledgement of the `Data` frame `seq` sent by the packet's
    /// destination to the packet's source. Acks are not themselves acked.
    Ack {
        /// The acknowledged transport sequence number.
        seq: u64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use hem_machine::NodeId;

    #[test]
    fn sizes() {
        let inv = Msg::Invoke {
            obj: 0,
            method: MethodId(0),
            args: vec![Value::Int(1), Value::Int(2)],
            cont: Continuation::Into(ContRef {
                node: NodeId(0),
                ctx: 0,
                gen: 0,
                slot: 0,
            }),
            forwarded: false,
        };
        assert_eq!(inv.words(), 7);
        assert!(!inv.is_reply());
        let rep = Msg::Reply {
            cont: ContRef {
                node: NodeId(0),
                ctx: 0,
                gen: 0,
                slot: 0,
            },
            value: Value::Nil,
        };
        assert_eq!(rep.words(), 3);
        assert!(rep.is_reply());
    }

    #[test]
    fn fire_and_forget_is_shorter() {
        let inv = Msg::Invoke {
            obj: 0,
            method: MethodId(0),
            args: vec![],
            cont: Continuation::Discard,
            forwarded: false,
        };
        assert_eq!(inv.words(), 4);
    }
}
