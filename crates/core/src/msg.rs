//! Wire messages.
//!
//! Two kinds suffice, matching the paper's active-message style: a request
//! carrying an invocation (with its reply continuation, and a flag saying
//! whether that continuation was *forwarded* — forwarded requests carry a
//! full continuation and are therefore longer, the effect the EM3D
//! `forward` variant trades against reply count), and a reply determining
//! a future.
//!
//! On the wire every [`Msg`] travels inside a [`Packet`]: raw (the default,
//! for a perfectly reliable interconnect) or as a sequenced data frame of
//! the reliable transport, which adds acknowledgement frames — see
//! `rt.rs`'s retransmission protocol.

use crate::cont::Continuation;
use crate::trace::MsgCause;
use hem_ir::{BinOp, ContRef, MethodId, Value};
use hem_machine::NodeId;

/// Which modeled collective a [`Msg::CollDown`]/[`Msg::CollUp`] leg belongs
/// to. Carried on every leg so receivers (and the tracer) can attribute it
/// without consulting initiator-side state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollKind {
    /// Down-only multicast: members run the method, nothing flows back and
    /// the initiator does not wait.
    Cast,
    /// Acked multicast: members run the method and completion (not the
    /// results) percolates up the tree to determine the initiator's slot.
    CastAcked,
    /// Reduction: member results combine pairwise up the tree with `op`;
    /// the root receives the single folded value.
    Reduce(BinOp),
    /// Barrier: members contribute arrival immediately (no method runs);
    /// the initiator's slot determines once the whole group has arrived.
    Barrier,
}

impl CollKind {
    /// The wire-attribution cause for legs of this collective.
    pub fn cause(self) -> MsgCause {
        match self {
            CollKind::Cast | CollKind::CastAcked => MsgCause::Multicast,
            CollKind::Reduce(_) => MsgCause::Reduce,
            CollKind::Barrier => MsgCause::Barrier,
        }
    }

    /// Does this collective have an up phase (legs flowing back toward the
    /// initiator)?
    pub fn has_up_phase(self) -> bool {
        !matches!(self, CollKind::Cast)
    }
}

/// A message in flight between nodes.
#[derive(Debug, Clone)]
pub enum Msg {
    /// Remote method invocation request.
    Invoke {
        /// Target object index on the destination node.
        obj: u32,
        /// Method to invoke.
        method: MethodId,
        /// Evaluated arguments.
        args: Vec<Value>,
        /// Where the reply goes.
        cont: Continuation,
        /// True when `cont` was forwarded from an earlier frame (proxy
        /// context case at the receiver).
        forwarded: bool,
    },
    /// Reply determining a future in a remote context.
    Reply {
        /// The continuation being determined.
        cont: ContRef,
        /// The value.
        value: Value,
    },
    /// Down-tree leg of a modeled collective: the initiator delivers one
    /// invocation (or barrier probe) to one group member, positioned at
    /// `pos` in the virtual binary-heap fan-out tree. All down legs
    /// originate at the initiator — the tree shapes *timing* (delivery is
    /// delayed by `depth` wire hops) and the up-phase routing, not the
    /// sender — so transport framing, fault fates, and per-sender wire
    /// sequencing apply to collectives unchanged.
    CollDown {
        /// Target object index on the destination node (ignored for
        /// [`CollKind::Barrier`], which runs no method).
        obj: u32,
        /// Method every member runs (ignored for barriers).
        method: MethodId,
        /// Arguments, identical on every leg.
        args: Vec<Value>,
        /// Initiating node — half of the collective's identity.
        init: NodeId,
        /// Initiator-local collective id — the other half.
        id: u64,
        /// This member's position in the virtual tree (root = 0, member
        /// rank r sits at r + 1).
        pos: u32,
        /// Node hosting this member's tree parent (the up leg's wire
        /// destination; the initiator itself when `parent_pos == 0`).
        parent: NodeId,
        /// Tree position of the parent (keys the parent's fold state).
        parent_pos: u32,
        /// Which fold slot at the parent this member feeds (1 = left
        /// child, 2 = right child).
        child_ix: u8,
        /// How many tree children this member must collect before its own
        /// up leg can fire (0 for leaves).
        children: u8,
        /// Which collective this leg belongs to.
        kind: CollKind,
    },
    /// Up-tree leg of a modeled collective: one member's (sub-tree-folded)
    /// contribution travelling to its tree parent. Sent by the member's
    /// node, so up-phase traffic is attributed to the nodes that really
    /// generate it.
    CollUp {
        /// Initiating node (identity).
        init: NodeId,
        /// Initiator-local collective id (identity).
        id: u64,
        /// Tree position of the receiving parent (keys its fold state;
        /// 0 = the initiator's root state).
        parent_pos: u32,
        /// Fold slot this contribution fills at the parent (1 or 2).
        child_ix: u8,
        /// The folded sub-tree value (Nil for barriers and acked casts).
        value: Value,
        /// Which collective this leg belongs to.
        kind: CollKind,
    },
}

impl Msg {
    /// Payload size in words (header + object + method + args + reply
    /// capability). Drives the per-word wire cost; the request/reply
    /// *fixed* costs live in the cost model. Forwarded requests are
    /// longer: they carry the full materialized continuation plus the
    /// forwarding metadata (the paper's EM3D discussion turns on
    /// forward's "longer update messages" vs push's extra replies).
    pub fn words(&self) -> u64 {
        match self {
            Msg::Invoke {
                args,
                cont,
                forwarded,
                ..
            } => 3 + args.len() as u64 + cont.words() + if *forwarded { 4 } else { 0 },
            Msg::Reply { .. } => 3,
            // Collective legs are compact: the tree metadata is header
            // bits, not payload words, and no reply continuation is
            // carried — the (init, id, pos) identity replaces it. This is
            // the wire saving over the hand-rolled fan-out loop (a 5-word
            // invoke plus a 3-word reply per member). Barrier legs are
            // single-word probes.
            Msg::CollDown { args, kind, .. } => match kind {
                CollKind::Barrier => 1,
                _ => 2 + args.len() as u64,
            },
            Msg::CollUp { kind, .. } => match kind {
                CollKind::Barrier => 1,
                _ => 2,
            },
        }
    }

    /// Is this a reply?
    pub fn is_reply(&self) -> bool {
        matches!(self, Msg::Reply { .. })
    }

    /// The wire-attribution cause of this payload.
    pub fn cause(&self) -> MsgCause {
        match self {
            Msg::Invoke { .. } => MsgCause::Request,
            Msg::Reply { .. } => MsgCause::Reply,
            Msg::CollDown { kind, .. } | Msg::CollUp { kind, .. } => kind.cause(),
        }
    }

    /// The collective kind, if this is a collective leg.
    pub fn coll_kind(&self) -> Option<CollKind> {
        match self {
            Msg::CollDown { kind, .. } | Msg::CollUp { kind, .. } => Some(*kind),
            _ => None,
        }
    }
}

/// The wire envelope around a [`Msg`].
///
/// `Raw` is the legacy framing used when the reliable transport is off:
/// zero header words, no acknowledgements — correct only on a fault-free
/// interconnect. With the transport on, payloads travel as `Data` frames
/// carrying a per-`(sender, destination)` sequence number (the receiver's
/// duplicate-suppression key) and are confirmed with single-word `Ack`
/// frames; unconfirmed frames are retransmitted on a capped exponential
/// backoff in virtual time.
#[derive(Debug, Clone)]
pub enum Packet {
    /// Unsequenced payload (reliable transport off).
    Raw(Msg),
    /// Sequenced payload (reliable transport on). `seq` is the sender's
    /// per-destination transport sequence number — *not* the network's
    /// global sequence number, which changes on every retransmission.
    Data {
        /// Per-(sender, destination) transport sequence number.
        seq: u64,
        /// The payload.
        msg: Msg,
    },
    /// Acknowledgement of the `Data` frame `seq` sent by the packet's
    /// destination to the packet's source. Acks are not themselves acked.
    Ack {
        /// The acknowledged transport sequence number.
        seq: u64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use hem_machine::NodeId;

    #[test]
    fn sizes() {
        let inv = Msg::Invoke {
            obj: 0,
            method: MethodId(0),
            args: vec![Value::Int(1), Value::Int(2)],
            cont: Continuation::Into(ContRef {
                node: NodeId(0),
                ctx: 0,
                gen: 0,
                slot: 0,
            }),
            forwarded: false,
        };
        assert_eq!(inv.words(), 7);
        assert!(!inv.is_reply());
        let rep = Msg::Reply {
            cont: ContRef {
                node: NodeId(0),
                ctx: 0,
                gen: 0,
                slot: 0,
            },
            value: Value::Nil,
        };
        assert_eq!(rep.words(), 3);
        assert!(rep.is_reply());
    }

    #[test]
    fn collective_legs_are_compact() {
        let down = Msg::CollDown {
            obj: 0,
            method: MethodId(0),
            args: vec![Value::Int(7)],
            init: NodeId(0),
            id: 1,
            pos: 3,
            parent: NodeId(2),
            parent_pos: 1,
            child_ix: 1,
            children: 0,
            kind: CollKind::Reduce(BinOp::Add),
        };
        // Cheaper than the 5-word invoke the fan-out loop would send.
        assert_eq!(down.words(), 3);
        assert_eq!(down.coll_kind(), Some(CollKind::Reduce(BinOp::Add)));
        let up = Msg::CollUp {
            init: NodeId(0),
            id: 1,
            parent_pos: 1,
            child_ix: 1,
            value: Value::Int(7),
            kind: CollKind::Reduce(BinOp::Add),
        };
        // Cheaper than the 3-word reply.
        assert_eq!(up.words(), 2);
        let probe = Msg::CollDown {
            obj: 0,
            method: MethodId(0),
            args: vec![],
            init: NodeId(0),
            id: 2,
            pos: 1,
            parent: NodeId(0),
            parent_pos: 0,
            child_ix: 1,
            children: 0,
            kind: CollKind::Barrier,
        };
        assert_eq!(probe.words(), 1, "barrier legs are single-word probes");
        assert!(!probe.is_reply());
        assert_eq!(CollKind::Barrier.cause(), MsgCause::Barrier);
        assert_eq!(CollKind::Cast.cause(), MsgCause::Multicast);
        assert!(!CollKind::Cast.has_up_phase());
        assert!(CollKind::CastAcked.has_up_phase());
    }

    #[test]
    fn fire_and_forget_is_shorter() {
        let inv = Msg::Invoke {
            obj: 0,
            method: MethodId(0),
            args: vec![],
            cont: Continuation::Discard,
            forwarded: false,
        };
        assert_eq!(inv.words(), 4);
    }
}
