//! Continuations and caller descriptors.
//!
//! A *continuation* is the right to determine a future (paper §2). In the
//! hybrid model continuations are created **lazily**: as long as execution
//! stays on the stack the continuation is implicit in the stack structure,
//! and only when a method suspends, forwards off-node, or stores the
//! continuation into a data structure is a concrete [`Continuation`]
//! materialized (§3.2.3).
//!
//! [`CallerInfo`] is the paper's `caller_info` parameter of the
//! continuation-passing schema: it describes the caller *well enough to
//! create its context and continuation later if needed* — whether the
//! caller's context already exists, its shape if not, where the return
//! value lives, and whether the continuation was forwarded (proxy case).

use hem_ir::{ContRef, MethodId, ObjRef};

/// A materialized reply capability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Continuation {
    /// Not yet linked. Replying through an unset continuation is a trap;
    /// fallback linkage (paper Fig. 6) replaces it.
    Unset,
    /// Deliver into slot `slot` of a heap context (possibly remote).
    Into(ContRef),
    /// Deliver to the runtime's root result cell (the harness's `call`).
    Root,
    /// Discard the reply (fire-and-forget invocations).
    Discard,
    /// Deliver to the open-system completion log under this request id
    /// (external client requests injected by `Runtime::inject_request`;
    /// the reply time, minus the arrival time, is the request's latency).
    Request(u64),
    /// Deliver into a modeled collective's fold state: the member (or
    /// root) record keyed `(init, id, pos)` on `node`. Filling slot 0
    /// (the member's own contribution) may complete the member's sub-tree
    /// fold and fire its up leg. Delivery is free on `node` itself — a
    /// member finishing on its own stack contributes zero wire words —
    /// and degrades to a wire leg only if user code forwards the
    /// continuation off-node.
    Coll {
        /// Node holding the fold state.
        node: hem_machine::NodeId,
        /// Initiating node (collective identity).
        init: hem_machine::NodeId,
        /// Initiator-local collective id (collective identity).
        id: u64,
        /// Tree position whose state receives the value.
        pos: u32,
        /// Which collective (attributes the wire leg in the forwarded
        /// case).
        kind: crate::msg::CollKind,
    },
}

impl Continuation {
    /// Payload words a continuation occupies inside a message.
    pub fn words(&self) -> u64 {
        match self {
            Continuation::Into(_) | Continuation::Request(_) => 2,
            Continuation::Coll { .. } => 3,
            _ => 1,
        }
    }
}

/// The paper's `caller_info`: how a continuation-passing callee can obtain
/// its continuation if it turns out to need it (§3.2.3 lists exactly these
/// three cases).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallerInfo {
    /// The caller is a stack frame whose context does not exist yet. If
    /// the callee needs the continuation, it creates a *shell* context for
    /// the caller (sized from `method`'s declaration) with a fresh future
    /// at `ret_slot`, and passes the shell back up the unwinding stack for
    /// the caller to populate ("passing the continuation's future's
    /// context back to its caller").
    NotCreated {
        /// The caller's method (determines the shell's shape).
        method: MethodId,
        /// The caller's receiver (the shell lives on its node).
        obj: ObjRef,
        /// The slot within the caller awaiting this callee's reply.
        ret_slot: u16,
    },
    /// The caller's context already exists; the continuation, if needed,
    /// is a future at `ret_slot` of that context.
    Created {
        /// The caller's context.
        node: hem_machine::NodeId,
        /// Context index on that node.
        ctx: u32,
        /// Context generation (stale-continuation guard).
        gen: u32,
        /// The awaiting slot.
        ret_slot: u16,
    },
    /// The continuation already exists — the *proxy context* case
    /// (§3.3): the invocation arrived by message carrying a continuation,
    /// or user code passed a stored continuation into a CP interface.
    Proxy {
        /// The pre-existing continuation.
        cont: Continuation,
    },
}

impl CallerInfo {
    /// True for the proxy (forwarded-from-elsewhere) case.
    pub fn is_proxy(&self) -> bool {
        matches!(self, CallerInfo::Proxy { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hem_machine::NodeId;

    #[test]
    fn continuation_message_size() {
        let c = Continuation::Into(ContRef {
            node: NodeId(0),
            ctx: 1,
            gen: 0,
            slot: 2,
        });
        assert_eq!(c.words(), 2);
        assert_eq!(Continuation::Discard.words(), 1);
        assert_eq!(Continuation::Root.words(), 1);
    }

    #[test]
    fn proxy_detection() {
        let p = CallerInfo::Proxy {
            cont: Continuation::Root,
        };
        assert!(p.is_proxy());
        let n = CallerInfo::NotCreated {
            method: MethodId(0),
            obj: ObjRef {
                node: NodeId(0),
                index: 0,
            },
            ret_slot: 0,
        };
        assert!(!n.is_proxy());
    }
}
