//! Host-parallel sharded execution with bit-identical observables.
//!
//! [`SchedImpl::Sharded`] partitions the simulated nodes into contiguous
//! shards, one OS worker thread per shard, and advances each shard with
//! its own `(time, kind, node)` event index inside **conservative
//! virtual-time windows** — the classical conservative-PDES discipline,
//! specialized to this machine's structure:
//!
//! - **Lookahead** `L` is the minimum latency any packet can spend on the
//!   wire: `CostModel::min_wire_latency()`, capped by the retransmission
//!   timeout base when the reliable transport is engaged (an in-window
//!   send may arm a timer no earlier than `now + retx_base`), and never
//!   *reduced* by an installed [`hem_machine::fault::FaultPlan`] — fault
//!   plans only delay delivery (`FaultPlan::min_extra_latency` is the
//!   hook that records this).
//! - Each **window** is `[W, E)` where `W` is the global minimum
//!   candidate time and `E = min(W + L, TB)`, with `TB` the earliest
//!   retransmission-timer candidate anywhere. Every message sent at or
//!   after `W` is delivered at or after `W + L ≥ E`, and every timer due
//!   before `E` would contradict `E ≤ TB` — so inside a window the
//!   shards are causally independent: each may dispatch every candidate
//!   with key `< E` in its local key order, and the union is exactly the
//!   set of events a single-threaded run dispatches in `[W, E)`.
//! - When the window is empty (`E ≤ W`, i.e. a retransmission timer *is*
//!   the next event), the coordinator pulls every node back and runs one
//!   **serial step** with exact single-threaded semantics — retransmit
//!   logic may inspect remote inboxes (`frame_in_flight`), which the
//!   windowed workers never do.
//!
//! **Determinism.** Worker shards capture every trace record under its
//! dispatching event's `(time, kind, node)` key. At each window barrier
//! the coordinator concatenates the shard captures, stable-sorts by key
//! (keys are unique per event, and each shard's buffer is already
//! sorted), and replays them through the coordinator's trace buffer and
//! observer — reconstructing the exact single-threaded emission order,
//! including bounded-ring truncation counts. Cross-shard packets are
//! parked in per-shard outboxes and routed into destination inboxes at
//! the barrier (inbox order is a deterministic function of
//! `(delivery time, wire seq)`, so routing order is irrelevant). Wire
//! sequence numbers are per-sender (see `Node::wire_seq`), so fault
//! fates and same-cycle tie-breaks are identical at every thread count.
//! The result: traces, makespan, `MachineStats`, and observer rollups
//! are bit-identical between `threads = 1` and any other thread count —
//! with the single documented exception of the scheduler heap
//! diagnostics, which read 0 under `Sharded` (as under `LinearScan`).
//!
//! **Traps.** If any shard traps, the coordinator keeps the trap with
//! the minimum event key (windows are thread-count-invariant, so this is
//! the trap a single-threaded run would hit first), truncates the merged
//! capture to records at or below that key, and returns the error.
//! Machine *state* past the trapping event (work other shards completed
//! inside the same window) is not rolled back; only the error and the
//! trace are normative after a trap.

use crate::error::Trap;
use crate::explore::TieBreak;
use crate::rt::{InboxEntry, Node, Runtime, SchedImpl};
use crate::trace::TraceRecord;
use hem_machine::net::Network;
use hem_machine::stats::SchedStats;
use hem_machine::{Cycles, NodeId};
use std::collections::BinaryHeap;
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::Arc;

/// A dispatched event's identity: `(virtual time, kind, node)` — the
/// total order every dispatch loop implementation selects by.
pub(crate) type EventKey = (Cycles, u8, u32);

/// Shard-worker state hung off a worker [`Runtime`] (absent on every
/// user-constructed runtime). Holds the node-ownership map, the trace
/// capture for the deterministic merge, and the cross-shard outbox.
pub(crate) struct ShardCtx {
    /// `owns[i]` — does this shard own global node `i`?
    pub owns: Vec<bool>,
    /// Records emitted this window, each under its dispatching event's
    /// key and shard-local dispatch ordinal. Appended in dispatch order;
    /// under conservative windows the buffer is also key-sorted, while
    /// the speculative executor's zero-lookahead windows may interleave
    /// keys non-monotonically (a dispatched event can create a
    /// smaller-key candidate via a zero-latency send) — the ordinal
    /// preserves the true shard-local order either way.
    pub capture: Vec<(EventKey, u32, TraceRecord)>,
    /// Packets addressed to nodes of other shards, parked for the
    /// coordinator to route at the window barrier.
    pub outbox: Vec<(u32, InboxEntry)>,
    /// Key of the event currently being dispatched (capture tag; also
    /// identifies the trapping event when a dispatch returns an error).
    pub cur: EventKey,
    /// Shard-local dispatch ordinal of the current event (monotone per
    /// worker; distinguishes back-to-back events that share a key).
    pub ord: u32,
    /// Capture records at all? Mirrors "trace buffer enabled or observer
    /// attached" on the coordinator.
    pub record: bool,
    /// Copy-on-dirty window checkpoint, armed only by the speculative
    /// executor (see [`crate::timewarp`]); `None` under conservative
    /// sharded execution, where `Runtime::tw_save` is a no-op.
    pub ckpt: Option<crate::timewarp::TwCkpt>,
    /// Event keys in shard-local dispatch order, logged only while a
    /// checkpoint is armed: the speculative commit merge's master order
    /// (available even when tracing is off, unlike `capture`).
    pub dispatched: Vec<EventKey>,
    /// Earliest retransmission-timer deadline armed during the current
    /// speculative window (`Cycles::MAX` when none). Conservative
    /// windows cannot outrun `retx_base`, so a mid-window timer is never
    /// due in-window there; optimistic windows can, and workers never
    /// fire timers — validation treats a deadline below the window edge
    /// exactly like a straggler.
    pub min_timer: Cycles,
}

/// Spin iterations before parking on a blocking channel receive. Windows
/// are short (microseconds of host time), so results usually arrive
/// within the spin budget; parking is the slow path. On a single-CPU
/// host spinning only delays the producer thread, so the budget drops to
/// zero there and every receive parks immediately.
const SPIN: u32 = 20_000;

fn spin_budget() -> u32 {
    use std::sync::OnceLock;
    static BUDGET: OnceLock<u32> = OnceLock::new();
    *BUDGET.get_or_init(|| match std::thread::available_parallelism() {
        Ok(n) if n.get() > 1 => SPIN,
        _ => 0,
    })
}

pub(crate) fn recv_spin<T>(rx: &Receiver<T>) -> T {
    for _ in 0..spin_budget() {
        match rx.try_recv() {
            Ok(v) => return v,
            Err(TryRecvError::Empty) => std::hint::spin_loop(),
            Err(TryRecvError::Disconnected) => panic!("shard worker thread died"),
        }
    }
    rx.recv().expect("shard worker thread died")
}

/// One shard's in-window dispatch loop: the event index restricted to
/// candidates with key strictly below `end`. Mirrors
/// `Runtime::run_event_index` (pop, lazy re-validation, dispatch,
/// re-arm), except that candidates at or past the window edge are left
/// for the next window's reseeding instead of being re-keyed.
pub(crate) fn run_window(rt: &mut Runtime, end: Cycles) -> Result<(), Trap> {
    while rt.sched.peek().is_some_and(|e| e.time < end) {
        let e = rt.sched.pop().expect("peeked entry");
        let i = e.node as usize;
        if rt.nodes[i].sched_noted == Some((e.time, e.kind)) {
            rt.nodes[i].sched_noted = None;
        }
        let Some((t, kind)) = rt.node_candidate(i) else {
            continue;
        };
        if (t, kind) != (e.time, e.kind) {
            if t < end {
                rt.sched_note(t, kind, i);
            }
            continue;
        }
        if t >= end {
            continue;
        }
        if kind == 2 {
            // A retransmission timer came due inside the window. Under
            // conservative windows this is impossible (`end` never
            // outruns `retx_base`); under a speculative window it means
            // a timer armed mid-window — already recorded in
            // `min_timer`, so validation is guaranteed to roll this
            // attempt back below the deadline. Timer handlers need
            // full-machine visibility, so don't fire it: stop the shard
            // early and let the rollback discard everything.
            if rt.shard.as_ref().is_some_and(|sh| sh.ckpt.is_some()) {
                debug_assert!(
                    rt.shard.as_ref().is_some_and(|sh| sh.min_timer < end),
                    "in-window timer not recorded for validation"
                );
                break;
            }
            debug_assert!(
                false,
                "retransmission timer fired inside a window (lookahead bound violated)"
            );
        }
        rt.dispatch_event(t, kind, i)?;
        if let Some((t, kind)) = rt.node_candidate(i) {
            if t < end {
                rt.sched_note(t, kind, i);
            }
        }
    }
    Ok(())
}

impl Runtime {
    /// Drive the machine until every candidate is at or past `horizon`
    /// (`Cycles::MAX` = quiescence) with the sharded executor. Falls
    /// back to the plain event index when fewer than two shards are
    /// possible or the cost model has zero wire latency (no lookahead —
    /// every window would be empty).
    pub(crate) fn run_sharded(&mut self, threads: usize, horizon: Cycles) -> Result<(), Trap> {
        let p = self.nodes.len();
        let threads = threads.min(p);
        let wire = self.cost.min_wire_latency();
        let mut lookahead = if self.reliable {
            wire.min(self.retx_base)
        } else {
            wire
        };
        // Fault plans may only *delay* delivery, so any plan-derived slack
        // is additive (today always zero; the call records the dependency).
        lookahead =
            lookahead.saturating_add(self.net.plan().map_or(0, |plan| plan.min_extra_latency()));
        if threads <= 1 || lookahead == 0 {
            return self.run_sharded_fallback(horizon);
        }
        self.run_sharded_windows(threads, lookahead, horizon)
    }

    /// Zero-lookahead / single-shard path: run the plain event index,
    /// then zero the heap diagnostics so `MachineStats` is identical to
    /// what the windowed path reports at higher thread counts. Reseeds
    /// the index from scratch and clears it afterwards, so repeated
    /// horizon-bounded calls compose.
    pub(crate) fn run_sharded_fallback(&mut self, horizon: Cycles) -> Result<(), Trap> {
        let saved = self.sched_impl;
        self.sched_impl = SchedImpl::EventIndex;
        for i in 0..self.nodes.len() {
            self.nodes[i].sched_noted = None;
            if let Some((t, k)) = self.node_candidate(i) {
                self.sched_note(t, k, i);
            }
        }
        let r = self.run_event_index(horizon);
        self.sched_impl = saved;
        self.sched.clear();
        for n in &mut self.nodes {
            n.sched_noted = None;
        }
        self.sched_stats.heap_pushes = 0;
        self.sched_stats.stale_pops = 0;
        self.sched_stats.max_heap_depth = 0;
        r
    }

    /// Build the worker runtime for shard `s`: a full machine husk (every
    /// node present so global indexing works, but only owned nodes ever
    /// hold state during a window) sharing the program and fault plan,
    /// with tracing redirected into the shard capture.
    pub(crate) fn make_worker(&self, s: usize, owner: &[usize], record: bool) -> Runtime {
        let mut net = Network::new();
        net.set_plan(self.net.plan().cloned());
        Runtime {
            program: Arc::clone(&self.program),
            layouts: self.layouts.clone(),
            schemas: self.schemas.clone(),
            cost: self.cost.clone(),
            mode: self.mode,
            nodes: (0..owner.len() as u32)
                .map(|i| Node::new(NodeId(i)))
                .collect(),
            net,
            // Namespaced so worker-created task tokens (lock-holder
            // identities, live only within one dispatched event) never
            // collide with the coordinator's or another shard's.
            next_task: (s as u64 + 1) << 48,
            current_task: 0,
            current_req: 0,
            result: None,
            active: None,
            seq_depth: 0,
            max_seq_depth: self.max_seq_depth,
            enable_inlining: self.enable_inlining,
            sched_impl: SchedImpl::EventIndex,
            sched: BinaryHeap::new(),
            sched_stats: SchedStats::default(),
            trace_buf: crate::trace::Trace::default(),
            observer: None,
            sanitizer: if self.sanitizer.is_some() {
                Some(Box::default())
            } else {
                None
            },
            tie_break: TieBreak::Det,
            tie_rng: 0,
            tie_cursor: 0,
            tie_log: Vec::new(),
            #[cfg(any(test, feature = "mutants"))]
            mutant: self.mutant,
            reliable: self.reliable,
            retx_base: self.retx_base,
            retx_cap: self.retx_cap,
            poll_floor: Cycles::MAX,
            san_step: Self::SAN_ROOT_STEP,
            ext_seq: 0,
            completions: std::collections::BTreeMap::new(),
            spec: crate::timewarp::SpecStats::default(),
            shard: Some(Box::new(ShardCtx {
                owns: owner.iter().map(|&o| o == s).collect(),
                capture: Vec::new(),
                outbox: Vec::new(),
                cur: (0, 0, 0),
                ord: 0,
                record,
                ckpt: None,
                dispatched: Vec::new(),
                min_timer: Cycles::MAX,
            })),
        }
    }

    /// The windowed coordinator loop (see the [module docs](self)).
    fn run_sharded_windows(
        &mut self,
        threads: usize,
        lookahead: Cycles,
        horizon: Cycles,
    ) -> Result<(), Trap> {
        let p = self.nodes.len();
        // Contiguous balanced partition: shard s owns [s·p/T, (s+1)·p/T).
        let mut owner = vec![0usize; p];
        for (s, chunk) in (0..threads).map(|s| (s, (s * p / threads, (s + 1) * p / threads))) {
            for o in &mut owner[chunk.0..chunk.1] {
                *o = s;
            }
        }
        let record = self.trace_buf.enabled() || self.observer.is_some();
        let mut workers: Vec<Option<Runtime>> = (0..threads)
            .map(|s| Some(self.make_worker(s, &owner, record)))
            .collect();

        let mut outcome: Result<(), (EventKey, Trap)> = Ok(());
        std::thread::scope(|scope| {
            type Job = (Runtime, Cycles);
            type Done = (usize, Runtime, Result<(), Trap>);
            let mut job_tx: Vec<Sender<Job>> = Vec::with_capacity(threads - 1);
            let (res_tx, res_rx) = channel::<Done>();
            for s in 1..threads {
                let (tx, rx) = channel::<Job>();
                job_tx.push(tx);
                let res_tx = res_tx.clone();
                scope.spawn(move || {
                    while let Ok((mut rt, end)) = rx.recv() {
                        let r = run_window(&mut rt, end);
                        if res_tx.send((s, rt, r)).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(res_tx);

            let mut merged: Vec<(EventKey, u32, TraceRecord)> = Vec::new();
            'windows: loop {
                // All nodes live in `self` here. Find W and the timer bound.
                let mut wkey: Option<EventKey> = None;
                let mut timer_bound = Cycles::MAX;
                for i in 0..p {
                    if let Some((t, k)) = self.node_candidate(i) {
                        let key = (t, k, i as u32);
                        if wkey.is_none_or(|b| key < b) {
                            wkey = Some(key);
                        }
                    }
                    if let Some(t2) = self.node_timer_candidate(i) {
                        timer_bound = timer_bound.min(t2);
                    }
                }
                let Some(wkey) = wkey else {
                    break; // quiescent
                };
                if wkey.0 >= horizon {
                    break; // every candidate is at or past the horizon
                }
                // Capping the window at the horizon keeps horizon-bounded
                // runs an exact event-set prefix of unbounded ones; the
                // serial-step branch below stays unreachable from the cap
                // because `wkey.0 < horizon` here.
                let end = wkey
                    .0
                    .saturating_add(lookahead)
                    .min(timer_bound)
                    .min(horizon);
                if end <= wkey.0 {
                    // Serial step: the next event is (or ties with) a
                    // retransmission timer; run it with full-machine
                    // visibility and exact single-threaded semantics.
                    self.sched_stats.serial_steps += 1;
                    if let Err(trap) = self.dispatch_event(wkey.0, wkey.1, wkey.2 as usize) {
                        outcome = Err((wkey, trap));
                        break 'windows;
                    }
                    continue;
                }

                // Parallel window [wkey.0, end): hand nodes to shards.
                let mut active = vec![false; threads];
                for (s, slot) in workers.iter_mut().enumerate() {
                    let wk = slot.as_mut().expect("worker at barrier");
                    wk.sched.clear();
                    wk.sched_stats.events_dispatched = 0;
                    for (i, &own) in owner.iter().enumerate() {
                        if own != s {
                            continue;
                        }
                        std::mem::swap(&mut self.nodes[i], &mut wk.nodes[i]);
                        wk.nodes[i].sched_noted = None;
                        if let Some((t, k)) = wk.node_candidate(i) {
                            if t < end {
                                wk.sched_note(t, k, i);
                                active[s] = true;
                            }
                        }
                    }
                }
                for s in 1..threads {
                    if active[s] {
                        let wk = workers[s].take().expect("worker at barrier");
                        job_tx[s - 1].send((wk, end)).expect("worker thread died");
                    }
                }
                let mut fails: Vec<(EventKey, Trap)> = Vec::new();
                if active[0] {
                    let wk = workers[0].as_mut().expect("inline shard");
                    if let Err(trap) = run_window(wk, end) {
                        fails.push((wk.shard.as_ref().expect("shard ctx").cur, trap));
                    }
                }
                let jobs_out = (1..threads).filter(|&s| active[s]).count();
                for _ in 0..jobs_out {
                    let (s, wk, r) = recv_spin(&res_rx);
                    if let Err(trap) = r {
                        fails.push((wk.shard.as_ref().expect("shard ctx").cur, trap));
                    }
                    workers[s] = Some(wk);
                }

                // Barrier, pass 1: every node back into the coordinator
                // before any outbox is routed — a shard's outbox may
                // target a node owned by a shard later in the loop.
                for (s, slot) in workers.iter_mut().enumerate() {
                    let wk = slot.as_mut().expect("worker at barrier");
                    for (i, &own) in owner.iter().enumerate() {
                        if own == s {
                            std::mem::swap(&mut self.nodes[i], &mut wk.nodes[i]);
                        }
                    }
                }
                // Barrier, pass 2: route cross-shard packets, merge
                // captures, accumulate the dispatch count.
                merged.clear();
                let mut wevents = 0u64;
                for slot in workers.iter_mut() {
                    let wk = slot.as_mut().expect("worker at barrier");
                    wevents += wk.sched_stats.events_dispatched;
                    self.sched_stats.events_dispatched += wk.sched_stats.events_dispatched;
                    if wk.result.is_some() {
                        self.result = wk.result.take();
                    }
                    if !wk.completions.is_empty() {
                        // Request ids are unique, so folding worker logs
                        // into the id-ordered coordinator map is
                        // insertion-order independent.
                        self.completions.append(&mut wk.completions);
                    }
                    let sh = wk.shard.as_mut().expect("shard ctx");
                    for (d, entry) in sh.outbox.drain(..) {
                        self.nodes[d as usize].inbox.push(entry);
                    }
                    merged.append(&mut sh.capture);
                }
                self.sched_stats.windows += 1;
                self.sched_stats.window_events += wevents;
                self.sched_stats.max_window_events =
                    self.sched_stats.max_window_events.max(wevents);
                // Stable sort of key-sorted shard runs == deterministic
                // merge; keys are unique per event and the ordinal orders
                // records within one, so the order is total. (Conservative
                // windows dispatch in non-decreasing key order per shard —
                // only the speculative executor needs the general
                // heads-merge; see `crate::timewarp`.)
                merged.sort_by_key(|(k, o, _)| (*k, *o));
                if let Some(&(trap_key, _)) = fails.iter().min_by_key(|(k, _)| *k) {
                    // Keep only what a single-threaded run would have
                    // emitted before (and during) the trapping event.
                    for (k, _, rec) in merged.drain(..) {
                        if k <= trap_key {
                            self.flush_record(rec);
                        }
                    }
                    let (key, trap) = fails
                        .into_iter()
                        .min_by_key(|(k, _)| *k)
                        .expect("nonempty fails");
                    outcome = Err((key, trap));
                    break 'windows;
                }
                for (_, _, rec) in merged.drain(..) {
                    self.flush_record(rec);
                }
            }
            drop(job_tx); // workers exit; scope joins them
        });

        // Fold worker-side global state back into the coordinator.
        for slot in &mut workers {
            let wk = slot.as_mut().expect("worker after run");
            self.net.absorb_counters(&wk.net);
            if let (Some(main_s), Some(wk_s)) =
                (self.sanitizer.as_deref_mut(), wk.sanitizer.as_deref_mut())
            {
                main_s.absorb(wk_s);
            }
        }
        for n in &mut self.nodes {
            n.sched_noted = None;
        }
        outcome.map_err(|(_, trap)| trap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Observer, TraceRecord};
    use crate::{ExecMode, InterfaceSet};
    use hem_ir::{BinOp, MethodId, ObjRef, ProgramBuilder, Value};
    use hem_machine::cost::CostModel;
    use hem_machine::fault::FaultPlan;

    /// A ring of P objects, one per node; `bounce(n)` hops to the next
    /// peer `n` times, summing the countdown on the way back — every hop
    /// is cross-node traffic, so windows, outboxes, and the merge all see
    /// work.
    fn ring_runtime(p: u32, cost: CostModel) -> (Runtime, ObjRef, MethodId) {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("C", false);
        let peer = pb.field(c, "peer");
        let bounce = pb.declare(c, "bounce", 1);
        pb.define(bounce, |mb| {
            let n = mb.arg(0);
            let done = mb.binl(BinOp::Lt, n, 1);
            mb.if_else(
                done,
                |mb| mb.reply(n),
                |mb| {
                    let pr = mb.get_field(peer);
                    let n1 = mb.binl(BinOp::Sub, n, 1);
                    let s = mb.invoke_into(pr, bounce, &[n1.into()]);
                    let v = mb.touch_get(s);
                    let r = mb.binl(BinOp::Add, v, n);
                    mb.reply(r);
                },
            );
        });
        let mut rt = Runtime::new(pb.finish(), p, cost, ExecMode::Hybrid, InterfaceSet::Full)
            .expect("valid ring program");
        let objs: Vec<ObjRef> = (0..p)
            .map(|i| rt.alloc_object_by_name("C", NodeId(i)))
            .collect();
        for (i, &o) in objs.iter().enumerate() {
            rt.set_field(o, peer, Value::Obj(objs[(i + 1) % objs.len()]));
        }
        (rt, objs[0], bounce)
    }

    struct Collect(Vec<TraceRecord>);
    impl Observer for Collect {
        fn on_record(&mut self, rec: &TraceRecord) {
            self.0.push(*rec);
        }
    }

    struct Outcome {
        result: Option<Value>,
        makespan: Cycles,
        trace: Vec<TraceRecord>,
        observed: Vec<TraceRecord>,
        stats: hem_machine::stats::MachineStats,
    }

    fn run_ring(sched: SchedImpl, cost: CostModel, faults: Option<FaultPlan>) -> Outcome {
        let (mut rt, root, bounce) = ring_runtime(4, cost);
        rt.sched_impl = sched;
        rt.enable_trace();
        rt.attach_observer(Box::new(Collect(Vec::new())));
        if let Some(plan) = faults {
            rt.set_fault_plan(plan);
        }
        let result = rt.call(root, bounce, &[Value::Int(25)]).expect("ring runs");
        let obs = rt.take_observer().expect("observer attached");
        let observed = (obs as Box<dyn std::any::Any>)
            .downcast::<Collect>()
            .expect("collect observer")
            .0;
        Outcome {
            result,
            makespan: rt.makespan(),
            trace: rt.take_trace(),
            observed,
            stats: rt.stats(),
        }
    }

    fn assert_bit_identical(a: &Outcome, b: &Outcome, what: &str) {
        assert_eq!(a.result, b.result, "{what}: result");
        assert_eq!(a.makespan, b.makespan, "{what}: makespan");
        if let Some(i) = (0..a.trace.len().min(b.trace.len())).find(|&i| a.trace[i] != b.trace[i]) {
            panic!(
                "{what}: traces diverge at record {i}:\n  a: {:?}\n  b: {:?}",
                a.trace[i], b.trace[i]
            );
        }
        assert_eq!(a.trace.len(), b.trace.len(), "{what}: trace length");
        assert_eq!(a.observed, b.observed, "{what}: observer stream");
        assert_eq!(a.stats.node_time, b.stats.node_time, "{what}: clocks");
        assert_eq!(a.stats.per_node, b.stats.per_node, "{what}: counters");
        assert_eq!(a.stats.net, b.stats.net, "{what}: net stats");
        assert_eq!(
            a.stats.sched.events_dispatched, b.stats.sched.events_dispatched,
            "{what}: dispatch count"
        );
    }

    #[test]
    fn sharded_matches_event_index_on_a_ring() {
        let base = run_ring(SchedImpl::EventIndex, CostModel::cm5(), None);
        assert_eq!(base.result, Some(Value::Int(325)), "25+24+...+1");
        for threads in [2, 3, 4, 7] {
            let sharded = run_ring(SchedImpl::Sharded { threads }, CostModel::cm5(), None);
            assert_bit_identical(&base, &sharded, &format!("threads={threads}"));
            assert_eq!(
                sharded.stats.sched.heap_pushes, 0,
                "sharded heap stats read 0"
            );
            assert_eq!(sharded.stats.sched.max_heap_depth, 0);
        }
    }

    #[test]
    fn sharded_matches_event_index_under_faults() {
        let plan = FaultPlan::seeded(7);
        let base = run_ring(SchedImpl::EventIndex, CostModel::cm5(), Some(plan.clone()));
        for threads in [2, 4] {
            let sharded = run_ring(
                SchedImpl::Sharded { threads },
                CostModel::cm5(),
                Some(plan.clone()),
            );
            assert_bit_identical(&base, &sharded, &format!("faulty threads={threads}"));
        }
    }

    #[test]
    fn zero_lookahead_and_degenerate_thread_counts_fall_back() {
        // The unit cost model has zero wire latency: no lookahead, so the
        // sharded executor must run the plain event index (and still
        // report zeroed heap diagnostics).
        let base = run_ring(SchedImpl::EventIndex, CostModel::unit(), None);
        for threads in [0, 1, 4] {
            let sharded = run_ring(SchedImpl::Sharded { threads }, CostModel::unit(), None);
            assert_bit_identical(&base, &sharded, &format!("unit-cost threads={threads}"));
            assert_eq!(sharded.stats.sched.heap_pushes, 0);
        }
        // Degenerate thread counts on a real cost model: same story.
        let base = run_ring(SchedImpl::EventIndex, CostModel::cm5(), None);
        for threads in [0, 1] {
            let sharded = run_ring(SchedImpl::Sharded { threads }, CostModel::cm5(), None);
            assert_bit_identical(&base, &sharded, &format!("cm5 threads={threads}"));
        }
    }

    #[test]
    fn sharded_ring_truncation_counts_match() {
        // Bounded trace ring: eviction counts must survive the merge.
        let run = |sched: SchedImpl| {
            let (mut rt, root, bounce) = ring_runtime(4, CostModel::cm5());
            rt.sched_impl = sched;
            rt.enable_trace_ring(16);
            rt.call(root, bounce, &[Value::Int(25)]).expect("ring runs");
            (rt.trace_dropped_total(), rt.take_trace())
        };
        let (base_dropped, base_tail) = run(SchedImpl::EventIndex);
        assert!(base_dropped > 0, "ring must truncate for the test to bite");
        for threads in [2, 4] {
            let (dropped, tail) = run(SchedImpl::Sharded { threads });
            assert_eq!(dropped, base_dropped, "threads={threads}: evictions");
            assert_eq!(tail, base_tail, "threads={threads}: ring tail");
        }
    }
}
