//! Host-parallel sharded execution with bit-identical observables.
//!
//! [`SchedImpl::Sharded`] partitions the simulated nodes into contiguous
//! shards, one OS worker thread per shard, and advances each shard with
//! its own `(time, kind, node)` event index inside **conservative
//! virtual-time windows** — the classical conservative-PDES discipline,
//! specialized to this machine's structure:
//!
//! - **Lookahead** `L` is the minimum latency any packet can spend on the
//!   wire: `CostModel::min_wire_latency()`, capped by the retransmission
//!   timeout base when the reliable transport is engaged (an in-window
//!   send may arm a timer no earlier than `now + retx_base`), and never
//!   *reduced* by an installed [`hem_machine::fault::FaultPlan`] — fault
//!   plans only delay delivery (`FaultPlan::min_extra_latency` is the
//!   hook that records this).
//! - Each **window** is `[W, E)` where `W` is the global minimum
//!   candidate time and `E = min(W + L, TB)`, with `TB` the earliest
//!   retransmission-timer candidate anywhere. Every message sent at or
//!   after `W` is delivered at or after `W + L ≥ E`, and every timer due
//!   before `E` would contradict `E ≤ TB` — so inside a window the
//!   shards are causally independent: each may dispatch every candidate
//!   with key `< E` in its local key order, and the union is exactly the
//!   set of events a single-threaded run dispatches in `[W, E)`.
//! - When the window is empty (`E ≤ W`, i.e. a retransmission timer *is*
//!   the next event), the coordinator pulls every node back and runs one
//!   **serial step** with exact single-threaded semantics — retransmit
//!   logic may inspect remote inboxes (`frame_in_flight`), which the
//!   windowed workers never do.
//!
//! **Coordinator-free steady state.** Worker state is *persistent*: a
//! [`ShardPool`] pins each shard's worker runtime (and the nodes it
//! owns) to one OS thread for the lifetime of the pool — across windows
//! and across `run_until` chunks. The window edge is a seqlock-style
//! **epoch publication**, not a channel rendezvous: the coordinator
//! writes the window end and bumps an atomic epoch (Release); each
//! worker observes the bump (Acquire), reseeds its index from its own
//! nodes, runs the window, publishes its post-window minimum candidate
//! key and earliest timer into its cell, and stores the epoch into its
//! ack slot (Release). Cell ownership alternates with the protocol:
//! worker `s` owns `cells[s]` while `acks[s] < epoch`, the coordinator
//! owns it while `acks[s] == epoch`. On the steady-state path **no
//! worker `Runtime` ever moves and no coordinator channel round-trip
//! happens** — `SchedStats::{runtime_moves, coord_roundtrips}` assert
//! exactly that, and `SchedStats::pool_reuses` counts chunks served by
//! one pool. Each wait is graded (spin → `yield_now` → park, see
//! [`spin_tiers`]) so oversubscribed hosts degrade to parking instead of
//! burning full spin budgets against each other.
//!
//! The per-shard published minima replace the coordinator's O(P) scan:
//! the next window base is the min over `T` published keys, adjusted
//! during outbox routing (delivering a packet into node `d` can only add
//! the candidate `(max(node time, deliver), 0, d)`, which the
//! coordinator mins into the destination shard's slot as it routes).
//!
//! **Profile-guided shard maps.** The partition is contiguous but not
//! necessarily equal-sized: [`Runtime::set_shard_weights`] installs
//! per-node busy weights (exported by `hem_obs::Rollup`) and
//! [`shard_partition`] cuts shard boundaries by cumulative weight, so a
//! placement whose hot nodes sit in one contiguous slice no longer idles
//! most workers. The merge rule below is partition-independent, so any
//! weighting is observationally invisible.
//!
//! **Determinism.** Worker shards capture every trace record under its
//! dispatching event's `(time, kind, node)` key. At each window barrier
//! the coordinator concatenates the shard captures, stable-sorts by key
//! (keys are unique per event, and each shard's buffer is already
//! sorted), and replays them through the coordinator's trace buffer and
//! observer — reconstructing the exact single-threaded emission order,
//! including bounded-ring truncation counts. Cross-shard packets are
//! parked in per-shard outboxes and routed into destination inboxes at
//! the barrier (inbox order is a deterministic function of
//! `(delivery time, wire seq)`, so routing order is irrelevant). Wire
//! sequence numbers are per-sender (see `Node::wire_seq`), so fault
//! fates and same-cycle tie-breaks are identical at every thread count.
//! The result: traces, makespan, `MachineStats`, and observer rollups
//! are bit-identical between `threads = 1` and any other thread count —
//! with the single documented exception of the scheduler heap
//! diagnostics, which read 0 under `Sharded` (as under `LinearScan`).
//!
//! **Traps.** If any shard traps, the coordinator keeps the trap with
//! the minimum event key (windows are thread-count-invariant, so this is
//! the trap a single-threaded run would hit first), truncates the merged
//! capture to records at or below that key, and returns the error.
//! Machine *state* past the trapping event (work other shards completed
//! inside the same window) is not rolled back; only the error and the
//! trace are normative after a trap.

use crate::error::Trap;
use crate::explore::TieBreak;
use crate::rt::{InboxEntry, Node, Runtime, SchedImpl};
use crate::trace::TraceRecord;
use hem_machine::net::Network;
use hem_machine::stats::{NetStats, SchedStats};
use hem_machine::{Cycles, NodeId};
use std::cell::UnsafeCell;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, TryRecvError};
use std::sync::{Arc, Mutex};
use std::thread::{JoinHandle, Thread};

/// A dispatched event's identity: `(virtual time, kind, node)` — the
/// total order every dispatch loop implementation selects by.
pub(crate) type EventKey = (Cycles, u8, u32);

/// Shard-worker state hung off a worker [`Runtime`] (absent on every
/// user-constructed runtime). Holds the node-ownership map, the trace
/// capture for the deterministic merge, and the cross-shard outbox.
pub(crate) struct ShardCtx {
    /// `owns[i]` — does this shard own global node `i`?
    pub owns: Vec<bool>,
    /// Records emitted this window, each under its dispatching event's
    /// key and shard-local dispatch ordinal. Appended in dispatch order;
    /// under conservative windows the buffer is also key-sorted, while
    /// the speculative executor's zero-lookahead windows may interleave
    /// keys non-monotonically (a dispatched event can create a
    /// smaller-key candidate via a zero-latency send) — the ordinal
    /// preserves the true shard-local order either way.
    pub capture: Vec<(EventKey, u32, TraceRecord)>,
    /// Packets addressed to nodes of other shards, parked for the
    /// coordinator to route at the window barrier.
    pub outbox: Vec<(u32, InboxEntry)>,
    /// Key of the event currently being dispatched (capture tag; also
    /// identifies the trapping event when a dispatch returns an error).
    pub cur: EventKey,
    /// Shard-local dispatch ordinal of the current event (monotone per
    /// worker; distinguishes back-to-back events that share a key).
    pub ord: u32,
    /// Capture records at all? Mirrors "trace buffer enabled or observer
    /// attached" on the coordinator.
    pub record: bool,
    /// Copy-on-dirty window checkpoint, armed only by the speculative
    /// executor (see [`crate::timewarp`]); `None` under conservative
    /// sharded execution, where `Runtime::tw_save` is a no-op.
    pub ckpt: Option<crate::timewarp::TwCkpt>,
    /// Event keys in shard-local dispatch order, logged only while a
    /// checkpoint is armed: the speculative commit merge's master order
    /// (available even when tracing is off, unlike `capture`).
    pub dispatched: Vec<EventKey>,
    /// Earliest retransmission-timer deadline armed during the current
    /// speculative window (`Cycles::MAX` when none). Conservative
    /// windows cannot outrun `retx_base`, so a mid-window timer is never
    /// due in-window there; optimistic windows can, and workers never
    /// fire timers — validation treats a deadline below the window edge
    /// exactly like a straggler.
    pub min_timer: Cycles,
}

/// Full spin budget before yielding on a cross-thread wait. Windows are
/// short (microseconds of host time), so the other side usually responds
/// within the spin budget; parking is the slow path.
const SPIN: u32 = 20_000;

/// Iterations of the `yield_now` tier between spinning and parking: long
/// enough to cover a descheduled peer's timeslice on a busy host, short
/// enough that an idle pool parks almost immediately.
const YIELDS: u32 = 64;

fn host_cores() -> usize {
    use std::sync::OnceLock;
    static CORES: OnceLock<usize> = OnceLock::new();
    *CORES.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Graded wait budget for a pool of `threads` workers (coordinator
/// included). Three tiers: spin (`spin_loop` hint), `yield_now`, park.
///
/// The spin budget is graded by oversubscription: with `threads` at or
/// under the host's `available_parallelism` every waiter may burn the
/// full [`SPIN`] budget (the peer is genuinely running on another core),
/// but with more workers than cores the surplus waiters would only spin
/// *against* the threads they are waiting for — so the budget shrinks
/// proportionally (`SPIN · cores / threads`) and collapses to zero on a
/// single-core host, where the yield tier hands the timeslice straight
/// to the producer.
pub(crate) struct SpinTiers {
    pub spin: u32,
    pub yields: u32,
}

pub(crate) fn spin_tiers(threads: usize) -> SpinTiers {
    let cores = host_cores();
    if cores <= 1 {
        return SpinTiers {
            spin: 0,
            yields: YIELDS / 2,
        };
    }
    let spin = if threads <= cores {
        SPIN
    } else {
        ((SPIN as u64 * cores as u64) / threads as u64) as u32
    };
    SpinTiers {
        spin,
        yields: YIELDS,
    }
}

/// Blocking channel receive with the graded spin/yield/park discipline
/// (see [`spin_tiers`]); used by the speculative executor's rendezvous.
pub(crate) fn recv_spin<T>(rx: &Receiver<T>, threads: usize) -> T {
    let tiers = spin_tiers(threads);
    for tier in 0..2u8 {
        let budget = if tier == 0 { tiers.spin } else { tiers.yields };
        for _ in 0..budget {
            match rx.try_recv() {
                Ok(v) => return v,
                Err(TryRecvError::Empty) if tier == 0 => std::hint::spin_loop(),
                Err(TryRecvError::Empty) => std::thread::yield_now(),
                Err(TryRecvError::Disconnected) => panic!("shard worker thread died"),
            }
        }
    }
    rx.recv().expect("shard worker thread died")
}

/// One shard's in-window dispatch loop: the event index restricted to
/// candidates with key strictly below `end`. Mirrors
/// `Runtime::run_event_index` (pop, lazy re-validation, dispatch,
/// re-arm), except that candidates at or past the window edge are left
/// for the next window's reseeding instead of being re-keyed.
pub(crate) fn run_window(rt: &mut Runtime, end: Cycles) -> Result<(), Trap> {
    while rt.sched.peek().is_some_and(|e| e.time < end) {
        let e = rt.sched.pop().expect("peeked entry");
        let i = e.node as usize;
        if rt.nodes[i].sched_noted == Some((e.time, e.kind)) {
            rt.nodes[i].sched_noted = None;
        }
        let Some((t, kind)) = rt.node_candidate(i) else {
            continue;
        };
        if (t, kind) != (e.time, e.kind) {
            if t < end {
                rt.sched_note(t, kind, i);
            }
            continue;
        }
        if t >= end {
            continue;
        }
        if kind == 2 {
            // A retransmission timer came due inside the window. Under
            // conservative windows this is impossible (`end` never
            // outruns `retx_base`); under a speculative window it means
            // a timer armed mid-window — already recorded in
            // `min_timer`, so validation is guaranteed to roll this
            // attempt back below the deadline. Timer handlers need
            // full-machine visibility, so don't fire it: stop the shard
            // early and let the rollback discard everything.
            if rt.shard.as_ref().is_some_and(|sh| sh.ckpt.is_some()) {
                debug_assert!(
                    rt.shard.as_ref().is_some_and(|sh| sh.min_timer < end),
                    "in-window timer not recorded for validation"
                );
                break;
            }
            debug_assert!(
                false,
                "retransmission timer fired inside a window (lookahead bound violated)"
            );
        }
        rt.dispatch_event(t, kind, i)?;
        if let Some((t, kind)) = rt.node_candidate(i) {
            if t < end {
                rt.sched_note(t, kind, i);
            }
        }
    }
    Ok(())
}

/// Contiguous node→shard partition. With `weights == None`, shard `s`
/// owns the equal slice `[s·p/T, (s+1)·p/T)`. With weights, shard
/// boundaries cut by cumulative weight (each node weighs at least 1, so
/// all-zero or short weight vectors degrade to near-equal slices), and
/// every shard is guaranteed at least one node when `p ≥ threads`.
///
/// The partition only shapes host-time balance: the window protocol and
/// the capture merge are partition-independent, so observables are
/// bit-identical under every return value of this function.
pub(crate) fn shard_partition(p: usize, threads: usize, weights: Option<&[u64]>) -> Vec<usize> {
    let threads = threads.clamp(1, p.max(1));
    let mut owner = vec![0usize; p];
    let Some(w) = weights else {
        for s in 0..threads {
            for o in &mut owner[s * p / threads..(s + 1) * p / threads] {
                *o = s;
            }
        }
        return owner;
    };
    let weight = |i: usize| -> u128 { w.get(i).copied().unwrap_or(0).max(1) as u128 };
    let total: u128 = (0..p).map(weight).sum();
    let mut s = 0usize;
    let mut acc: u128 = 0;
    for (i, o) in owner.iter_mut().enumerate() {
        *o = s;
        acc += weight(i);
        if s + 1 >= threads || i + 1 >= p {
            continue;
        }
        // Nearest-boundary cut: advance when the next node's weight
        // midpoint lies at or past shard s's quota — i.e. keeping node
        // i+1 here would land us farther from the ideal boundary than
        // cutting now. (The plain "quota met" rule cuts one node late
        // whenever a boundary falls mid-node, e.g. two near-equal hot
        // nodes would both land in shard 0.)
        let over_quota = (2 * acc + weight(i + 1)) * threads as u128 >= 2 * (s as u128 + 1) * total;
        let must_cut = p - i - 1 == threads - s - 1; // one node per remaining shard
        if over_quota || must_cut {
            s += 1;
        }
    }
    owner
}

/// One shard's slot in the pool: the pinned worker runtime plus the
/// results it publishes at each window edge. Ownership alternates with
/// the epoch protocol (see [`PoolShared::cells`]).
struct WorkerCell {
    rt: Runtime,
    /// Global indices of the nodes this shard owns (the dense form of
    /// `ShardCtx::owns`; workers reseed and scan only these).
    owned: Vec<u32>,
    /// Minimum post-window candidate key over owned nodes.
    min_key: Option<EventKey>,
    /// Earliest retransmission-timer candidate over owned nodes.
    min_timer: Cycles,
    /// The window's trap, if any, keyed by the trapping event.
    trap: Option<(EventKey, Trap)>,
}

/// State shared between the coordinator and the pinned worker threads.
///
/// # Safety protocol
///
/// `cells[s]` (for `s ≥ 1`) is owned by worker `s` from the moment the
/// coordinator publishes an epoch `e > acks[s]` until the worker stores
/// `acks[s] = e`; at every other time the coordinator owns it.
/// `cells[0]` is only ever touched by the coordinator (shard 0 runs
/// inline on the coordinating thread). All cell writes are published by
/// the Release store that transfers ownership (`epoch` coordinator →
/// worker, `acks[s]` worker → coordinator) and read after the matching
/// Acquire load — hence the manual `Sync`.
struct PoolShared {
    /// Window-publication epoch: the seqlock edge. Strictly monotone;
    /// bumped only while the coordinator owns every cell.
    epoch: AtomicU64,
    /// Window end `E` for the current epoch (written before the bump).
    end: AtomicU64,
    /// Per-worker ack: the last epoch worker `s` finished. Slot 0 is
    /// unused (shard 0 is inline).
    acks: Vec<AtomicU64>,
    cells: Vec<UnsafeCell<WorkerCell>>,
    /// Coordinator thread to unpark after an ack. Rewritten at every
    /// chunk entry — a `Runtime` may migrate between user threads.
    coord: Mutex<Option<Thread>>,
    /// A worker panicked; waits panic instead of hanging.
    died: AtomicBool,
    /// Tear the pool down (set by `Drop`, observed after an epoch bump).
    shutdown: AtomicBool,
}

// Safety: see the protocol above — every cell access is serialized by
// the epoch/ack handoff, and all other fields are atomics or a Mutex.
unsafe impl Sync for PoolShared {}

fn unpark_coord(shared: &PoolShared) {
    let guard = shared.coord.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(t) = guard.as_ref() {
        t.unpark();
    }
}

/// Recompute a cell's published minima from its owned nodes (O(P/T)).
fn publish_minima(cell: &mut WorkerCell) {
    let mut mk: Option<EventKey> = None;
    let mut mt = Cycles::MAX;
    for &i in &cell.owned {
        let i = i as usize;
        if let Some((t, k)) = cell.rt.node_candidate(i) {
            let key = (t, k, i as u32);
            if mk.is_none_or(|b| key < b) {
                mk = Some(key);
            }
        }
        if let Some(t2) = cell.rt.node_timer_candidate(i) {
            mt = mt.min(t2);
        }
    }
    cell.min_key = mk;
    cell.min_timer = mt;
}

/// Run one window on a shard cell: reseed the index from owned
/// candidates below `end`, dispatch, then publish the post-window minima
/// and any trap. Shared verbatim by the pinned workers and the inline
/// shard 0.
fn run_shard_window(cell: &mut WorkerCell, end: Cycles) {
    let rt = &mut cell.rt;
    rt.sched.clear();
    for &i in &cell.owned {
        let i = i as usize;
        rt.nodes[i].sched_noted = None;
        if let Some((t, k)) = rt.node_candidate(i) {
            if t < end {
                rt.sched_note(t, k, i);
            }
        }
    }
    let r = run_window(rt, end);
    cell.trap = r
        .err()
        .map(|trap| (rt.shard.as_ref().expect("shard ctx").cur, trap));
    publish_minima(cell);
}

/// The pinned worker's whole life: wait for an epoch bump, run the
/// published window on the owned cell, ack, repeat — no channels, no
/// runtime moves.
fn worker_loop(shared: &PoolShared, s: usize, threads: usize) {
    let tiers = spin_tiers(threads);
    let mut seen = 0u64;
    loop {
        // Graded wait for the next epoch; parks between windows and
        // across chunk gaps (the unconditional `unpark` at publication
        // makes a lost-wakeup race impossible: park tokens saturate).
        let mut spins = 0u32;
        let mut yields = 0u32;
        let e = loop {
            let e = shared.epoch.load(Ordering::Acquire);
            if e != seen {
                break e;
            }
            if spins < tiers.spin {
                spins += 1;
                std::hint::spin_loop();
            } else if yields < tiers.yields {
                yields += 1;
                std::thread::yield_now();
            } else {
                std::thread::park();
            }
        };
        seen = e;
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        let end = shared.end.load(Ordering::Relaxed);
        // Safety: `acks[s] < epoch` here, so this worker owns its cell.
        let cell = unsafe { &mut *shared.cells[s].get() };
        run_shard_window(cell, end);
        shared.acks[s].store(e, Ordering::Release);
        unpark_coord(shared);
    }
}

/// Pool identity: a pool is reusable by a later chunk only if nothing a
/// worker runtime snapshots at build time has changed.
#[derive(PartialEq, Eq, Clone, Copy)]
struct PoolKey {
    threads: usize,
    p: usize,
    record: bool,
    san: bool,
    /// `Runtime::pool_gen` at build time: bumped by every
    /// pool-invalidating mutation (fault plan, transport, shard weights).
    gen: u64,
}

/// The persistent worker pool: pinned worker threads, the node→shard
/// map, and the epoch state. Lives on the coordinator [`Runtime`] and
/// survives across `run_until` chunks; dropped (joining its threads)
/// when invalidated or when the runtime is dropped. Between chunks every
/// cell holds only node husks — the real nodes are swapped back into the
/// coordinator so the public API (`inject_request`, `stats`,
/// `queue_depth`, …) keeps working unchanged.
pub(crate) struct ShardPool {
    threads: usize,
    owner: Vec<usize>,
    shared: Arc<PoolShared>,
    /// Park/unpark handles for workers `1..threads` (index 0 is a
    /// placeholder for the inline shard).
    worker_threads: Vec<Thread>,
    handles: Vec<JoinHandle<()>>,
    /// The coordinator's view of the published epoch.
    epoch: u64,
    key: PoolKey,
}

impl ShardPool {
    /// Safety: caller must hold coordinator ownership of cell `s` under
    /// the epoch/ack protocol (no window in flight, or `acks[s]` caught
    /// up; cell 0 is always coordinator-owned).
    #[allow(clippy::mut_from_ref)]
    unsafe fn cell(&self, s: usize) -> &mut WorkerCell {
        &mut *self.shared.cells[s].get()
    }

    /// Swap every owned node between the coordinator and its shard cell.
    /// An involution: called once at chunk entry (nodes → cells) and
    /// once at chunk exit (nodes → coordinator); also brackets serial
    /// steps, which need full-machine visibility. Only the coordinator
    /// may call this (it owns every cell at those points).
    fn swap_nodes(&mut self, rt: &mut Runtime) {
        for s in 0..self.threads {
            // Safety: coordinator owns all cells between windows.
            let cell = unsafe { self.cell(s) };
            for &i in &cell.owned {
                std::mem::swap(&mut rt.nodes[i as usize], &mut cell.rt.nodes[i as usize]);
            }
        }
    }

    /// Publish window `[_, end)` to the pinned workers: the seqlock
    /// edge. The Release bump transfers cell ownership to the workers;
    /// the unconditional unparks cover parked ones (tokens saturate, so
    /// an unpark racing a not-yet-parked worker is harmless).
    fn publish(&mut self, end: Cycles) {
        self.shared.end.store(end, Ordering::Relaxed);
        self.epoch += 1;
        self.shared.epoch.store(self.epoch, Ordering::Release);
        for t in &self.worker_threads[1..] {
            t.unpark();
        }
    }

    /// Graded wait until every pinned worker has acked the current
    /// epoch, transferring all cells back to the coordinator.
    fn wait_acks(&self) {
        let tiers = spin_tiers(self.threads);
        for s in 1..self.threads {
            let mut spins = 0u32;
            let mut yields = 0u32;
            loop {
                if self.shared.acks[s].load(Ordering::Acquire) == self.epoch {
                    break;
                }
                if self.shared.died.load(Ordering::Relaxed) {
                    panic!("shard worker thread died");
                }
                if spins < tiers.spin {
                    spins += 1;
                    std::hint::spin_loop();
                } else if yields < tiers.yields {
                    yields += 1;
                    std::thread::yield_now();
                } else {
                    std::thread::park();
                }
            }
        }
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.epoch.fetch_add(1, Ordering::Release);
        for t in &self.worker_threads[1..] {
            t.unpark();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Runtime {
    /// Drive the machine until every candidate is at or past `horizon`
    /// (`Cycles::MAX` = quiescence) with the sharded executor. Falls
    /// back to the plain event index when fewer than two shards are
    /// possible or the cost model has zero wire latency (no lookahead —
    /// every window would be empty).
    pub(crate) fn run_sharded(&mut self, threads: usize, horizon: Cycles) -> Result<(), Trap> {
        let p = self.nodes.len();
        let threads = threads.min(p);
        let wire = self.cost.min_wire_latency();
        let mut lookahead = if self.reliable {
            wire.min(self.retx_base)
        } else {
            wire
        };
        // Fault plans may only *delay* delivery, so any plan-derived slack
        // is additive (today always zero; the call records the dependency).
        lookahead =
            lookahead.saturating_add(self.net.plan().map_or(0, |plan| plan.min_extra_latency()));
        if threads <= 1 || lookahead == 0 {
            return self.run_sharded_fallback(horizon);
        }
        self.run_sharded_windows(threads, lookahead, horizon)
    }

    /// Zero-lookahead / single-shard path: run the plain event index,
    /// then zero the heap diagnostics so `MachineStats` is identical to
    /// what the windowed path reports at higher thread counts. Reseeds
    /// the index from scratch and clears it afterwards, so repeated
    /// horizon-bounded calls compose.
    pub(crate) fn run_sharded_fallback(&mut self, horizon: Cycles) -> Result<(), Trap> {
        let saved = self.sched_impl;
        self.sched_impl = SchedImpl::EventIndex;
        for i in 0..self.nodes.len() {
            self.nodes[i].sched_noted = None;
            if let Some((t, k)) = self.node_candidate(i) {
                self.sched_note(t, k, i);
            }
        }
        let r = self.run_event_index(horizon);
        self.sched_impl = saved;
        self.sched.clear();
        for n in &mut self.nodes {
            n.sched_noted = None;
        }
        self.sched_stats.heap_pushes = 0;
        self.sched_stats.stale_pops = 0;
        self.sched_stats.max_heap_depth = 0;
        r
    }

    /// Build the worker runtime for shard `s`: a full machine husk (every
    /// node present so global indexing works, but only owned nodes ever
    /// hold state during a window) sharing the program and fault plan,
    /// with tracing redirected into the shard capture.
    pub(crate) fn make_worker(&self, s: usize, owner: &[usize], record: bool) -> Runtime {
        let mut net = Network::new();
        net.set_plan(self.net.plan().cloned());
        Runtime {
            program: Arc::clone(&self.program),
            layouts: self.layouts.clone(),
            schemas: self.schemas.clone(),
            cost: self.cost.clone(),
            mode: self.mode,
            nodes: (0..owner.len() as u32)
                .map(|i| Node::new(NodeId(i)))
                .collect(),
            net,
            // Namespaced so worker-created task tokens (lock-holder
            // identities, live only within one dispatched event) never
            // collide with the coordinator's or another shard's.
            next_task: (s as u64 + 1) << 48,
            current_task: 0,
            current_req: 0,
            result: None,
            active: None,
            seq_depth: 0,
            max_seq_depth: self.max_seq_depth,
            enable_inlining: self.enable_inlining,
            sched_impl: SchedImpl::EventIndex,
            sched: BinaryHeap::new(),
            sched_stats: SchedStats::default(),
            trace_buf: crate::trace::Trace::default(),
            observer: None,
            sanitizer: if self.sanitizer.is_some() {
                Some(Box::default())
            } else {
                None
            },
            tie_break: TieBreak::Det,
            tie_rng: 0,
            tie_cursor: 0,
            tie_log: Vec::new(),
            #[cfg(any(test, feature = "mutants"))]
            mutant: self.mutant,
            reliable: self.reliable,
            retx_base: self.retx_base,
            retx_cap: self.retx_cap,
            poll_floor: Cycles::MAX,
            san_step: Self::SAN_ROOT_STEP,
            ext_seq: 0,
            completions: std::collections::BTreeMap::new(),
            spec: crate::timewarp::SpecStats::default(),
            shard: Some(Box::new(ShardCtx {
                owns: owner.iter().map(|&o| o == s).collect(),
                capture: Vec::new(),
                outbox: Vec::new(),
                cur: (0, 0, 0),
                ord: 0,
                record,
                ckpt: None,
                dispatched: Vec::new(),
                min_timer: Cycles::MAX,
            })),
            shard_weights: None,
            pool: None,
            pool_gen: 0,
        }
    }

    /// Reuse the persistent pool when its build-time snapshot still
    /// matches, else (re)build it: partition the nodes (honoring any
    /// installed shard weights), construct one pinned worker runtime per
    /// shard, and spawn the worker threads for shards `1..threads`
    /// (shard 0 runs inline on the coordinating thread).
    fn ensure_pool(&mut self, threads: usize, record: bool) {
        let key = PoolKey {
            threads,
            p: self.nodes.len(),
            record,
            san: self.sanitizer.is_some(),
            gen: self.pool_gen,
        };
        if self.pool.as_ref().is_some_and(|pool| pool.key == key) {
            self.sched_stats.pool_reuses += 1;
            return;
        }
        self.pool = None; // joins any stale pool's workers first
        let p = self.nodes.len();
        let owner = shard_partition(p, threads, self.shard_weights.as_deref());
        let cells: Vec<UnsafeCell<WorkerCell>> = (0..threads)
            .map(|s| {
                UnsafeCell::new(WorkerCell {
                    rt: self.make_worker(s, &owner, record),
                    owned: owner
                        .iter()
                        .enumerate()
                        .filter(|&(_, &o)| o == s)
                        .map(|(i, _)| i as u32)
                        .collect(),
                    min_key: None,
                    min_timer: Cycles::MAX,
                    trap: None,
                })
            })
            .collect();
        let shared = Arc::new(PoolShared {
            epoch: AtomicU64::new(0),
            end: AtomicU64::new(0),
            acks: (0..threads).map(|_| AtomicU64::new(0)).collect(),
            cells,
            coord: Mutex::new(None),
            died: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
        });
        let mut worker_threads = vec![std::thread::current(); 1]; // slot 0: inline shard
        let mut handles = Vec::with_capacity(threads.saturating_sub(1));
        for s in 1..threads {
            let shared = Arc::clone(&shared);
            let h = std::thread::Builder::new()
                .name(format!("hem-shard-{s}"))
                .spawn(move || {
                    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        worker_loop(&shared, s, threads)
                    }));
                    if r.is_err() {
                        shared.died.store(true, Ordering::SeqCst);
                        unpark_coord(&shared);
                    }
                })
                .expect("spawn shard worker");
            worker_threads.push(h.thread().clone());
            handles.push(h);
        }
        self.pool = Some(ShardPool {
            threads,
            owner,
            shared,
            worker_threads,
            handles,
            epoch: 0,
            key,
        });
    }

    /// The windowed coordinator loop (see the [module docs](self)):
    /// steady state is publish-epoch → inline shard 0 → wait acks →
    /// merge/route at the barrier. Whole chunks share one pool; node
    /// state only crosses a thread boundary by `mem::swap` at chunk
    /// edges and serial steps, never through a channel.
    fn run_sharded_windows(
        &mut self,
        threads: usize,
        lookahead: Cycles,
        horizon: Cycles,
    ) -> Result<(), Trap> {
        let record = self.trace_buf.enabled() || self.observer.is_some();
        self.ensure_pool(threads, record);
        let mut pool = self.pool.take().expect("pool just ensured");
        *pool.shared.coord.lock().unwrap_or_else(|e| e.into_inner()) = Some(std::thread::current());
        // Chunk entry: pin the nodes into their shard cells.
        pool.swap_nodes(self);
        // Initial per-shard minima (the coordinator owns every cell).
        let mut shard_min: Vec<Option<EventKey>> = vec![None; threads];
        let mut shard_timer: Vec<Cycles> = vec![Cycles::MAX; threads];
        for s in 0..threads {
            // Safety: no window in flight.
            let cell = unsafe { pool.cell(s) };
            publish_minima(cell);
            shard_min[s] = cell.min_key;
            shard_timer[s] = cell.min_timer;
        }

        let mut outcome: Result<(), (EventKey, Trap)> = Ok(());
        let mut merged: Vec<(EventKey, u32, TraceRecord)> = Vec::new();
        'windows: loop {
            // W and the timer bound from the published per-shard minima
            // (O(T), replacing the old coordinator's O(P) rescan).
            let mut wkey: Option<EventKey> = None;
            let mut timer_bound = Cycles::MAX;
            for s in 0..threads {
                if let Some(k) = shard_min[s] {
                    if wkey.is_none_or(|b| k < b) {
                        wkey = Some(k);
                    }
                }
                timer_bound = timer_bound.min(shard_timer[s]);
            }
            let Some(wkey) = wkey else {
                break; // quiescent
            };
            if wkey.0 >= horizon {
                break; // every candidate is at or past the horizon
            }
            // Capping the window at the horizon keeps horizon-bounded
            // runs an exact event-set prefix of unbounded ones; the
            // serial-step branch below stays unreachable from the cap
            // because `wkey.0 < horizon` here.
            let end = wkey
                .0
                .saturating_add(lookahead)
                .min(timer_bound)
                .min(horizon);
            if end <= wkey.0 {
                // Serial step: the next event is (or ties with) a
                // retransmission timer; run it with full-machine
                // visibility and exact single-threaded semantics.
                pool.swap_nodes(self); // every node home
                self.sched_stats.serial_steps += 1;
                let r = self.dispatch_event(wkey.0, wkey.1, wkey.2 as usize);
                pool.swap_nodes(self); // and back out
                if let Err(trap) = r {
                    outcome = Err((wkey, trap));
                    break 'windows;
                }
                for s in 0..threads {
                    // Safety: no window in flight.
                    let cell = unsafe { pool.cell(s) };
                    publish_minima(cell);
                    shard_min[s] = cell.min_key;
                    shard_timer[s] = cell.min_timer;
                }
                continue;
            }

            // Parallel window [wkey.0, end): one atomic publication.
            pool.publish(end);
            // Safety: cell 0 is always coordinator-owned.
            run_shard_window(unsafe { pool.cell(0) }, end);
            pool.wait_acks();

            // Barrier pass 1 (coordinator owns every cell again): fold
            // dispatch counts and completion logs, collect traps and the
            // published minima, concatenate the captures.
            let mut wevents = 0u64;
            let mut fails: Vec<(EventKey, Trap)> = Vec::new();
            merged.clear();
            for s in 0..threads {
                // Safety: all acks collected.
                let cell = unsafe { pool.cell(s) };
                let wk = &mut cell.rt;
                wevents += wk.sched_stats.events_dispatched;
                self.sched_stats.events_dispatched += wk.sched_stats.events_dispatched;
                wk.sched_stats.events_dispatched = 0;
                if wk.result.is_some() {
                    self.result = wk.result.take();
                }
                if !wk.completions.is_empty() {
                    // Request ids are unique, so folding worker logs
                    // into the id-ordered coordinator map is
                    // insertion-order independent.
                    self.completions.append(&mut wk.completions);
                }
                shard_min[s] = cell.min_key;
                shard_timer[s] = cell.min_timer;
                if let Some(f) = cell.trap.take() {
                    fails.push(f);
                }
                merged.append(&mut wk.shard.as_mut().expect("shard ctx").capture);
            }
            // Barrier pass 2: route cross-shard packets straight into
            // the destination cells (all published minima are in hand,
            // so lowering a destination shard's minimum is sound even
            // when the destination shard index precedes the source's).
            for s in 0..threads {
                // Safety: coordinator owns all cells; the take below
                // ends the borrow before the destination cell is
                // touched, and a shard never outboxes to itself.
                let mut out = {
                    let cell = unsafe { pool.cell(s) };
                    std::mem::take(&mut cell.rt.shard.as_mut().expect("shard ctx").outbox)
                };
                for (d, entry) in out.drain(..) {
                    let ds = pool.owner[d as usize];
                    // Safety: as above.
                    let dcell = unsafe { pool.cell(ds) };
                    let node = &mut dcell.rt.nodes[d as usize];
                    let key = (node.time.max(entry.deliver), 0u8, d);
                    node.inbox.push(entry);
                    if shard_min[ds].is_none_or(|b| key < b) {
                        shard_min[ds] = Some(key);
                    }
                }
                // Hand the drained buffer back so its capacity is reused.
                let cell = unsafe { pool.cell(s) };
                cell.rt.shard.as_mut().expect("shard ctx").outbox = out;
            }
            self.sched_stats.windows += 1;
            self.sched_stats.window_events += wevents;
            self.sched_stats.max_window_events = self.sched_stats.max_window_events.max(wevents);
            // Stable sort of key-sorted shard runs == deterministic
            // merge; keys are unique per event and the ordinal orders
            // records within one, so the order is total. (Conservative
            // windows dispatch in non-decreasing key order per shard —
            // only the speculative executor needs the general
            // heads-merge; see `crate::timewarp`.)
            merged.sort_by_key(|(k, o, _)| (*k, *o));
            if let Some(&(trap_key, _)) = fails.iter().min_by_key(|(k, _)| *k) {
                // Keep only what a single-threaded run would have
                // emitted before (and during) the trapping event.
                for (k, _, rec) in merged.drain(..) {
                    if k <= trap_key {
                        self.flush_record(rec);
                    }
                }
                let (key, trap) = fails
                    .into_iter()
                    .min_by_key(|(k, _)| *k)
                    .expect("nonempty fails");
                outcome = Err((key, trap));
                break 'windows;
            }
            for (_, _, rec) in merged.drain(..) {
                self.flush_record(rec);
            }
        }

        // Chunk exit: unpin the nodes (the involution swaps them home)
        // and fold worker-side global state into the coordinator. The
        // pool itself — threads, shard map, worker husks — stays put for
        // the next chunk.
        pool.swap_nodes(self);
        for s in 0..threads {
            // Safety: no window in flight after the loop.
            let cell = unsafe { pool.cell(s) };
            let wk = &mut cell.rt;
            self.net.absorb_counters(&wk.net);
            // `absorb_counters` reads without draining; zero the source
            // so the next chunk's fold doesn't double-count.
            wk.net.restore_counters(&NetStats::default());
            if let (Some(main_s), Some(wk_s)) =
                (self.sanitizer.as_deref_mut(), wk.sanitizer.as_deref_mut())
            {
                main_s.absorb(wk_s); // drains the worker-side tallies
            }
        }
        for n in &mut self.nodes {
            n.sched_noted = None;
        }
        self.pool = Some(pool);
        outcome.map_err(|(_, trap)| trap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Observer, TraceRecord};
    use crate::{ExecMode, InterfaceSet};
    use hem_ir::{BinOp, MethodId, ObjRef, ProgramBuilder, Value};
    use hem_machine::cost::CostModel;
    use hem_machine::fault::FaultPlan;

    /// A ring of P objects, one per node; `bounce(n)` hops to the next
    /// peer `n` times, summing the countdown on the way back — every hop
    /// is cross-node traffic, so windows, outboxes, and the merge all see
    /// work.
    fn ring_runtime(p: u32, cost: CostModel) -> (Runtime, ObjRef, MethodId) {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("C", false);
        let peer = pb.field(c, "peer");
        let bounce = pb.declare(c, "bounce", 1);
        pb.define(bounce, |mb| {
            let n = mb.arg(0);
            let done = mb.binl(BinOp::Lt, n, 1);
            mb.if_else(
                done,
                |mb| mb.reply(n),
                |mb| {
                    let pr = mb.get_field(peer);
                    let n1 = mb.binl(BinOp::Sub, n, 1);
                    let s = mb.invoke_into(pr, bounce, &[n1.into()]);
                    let v = mb.touch_get(s);
                    let r = mb.binl(BinOp::Add, v, n);
                    mb.reply(r);
                },
            );
        });
        let mut rt = Runtime::new(pb.finish(), p, cost, ExecMode::Hybrid, InterfaceSet::Full)
            .expect("valid ring program");
        let objs: Vec<ObjRef> = (0..p)
            .map(|i| rt.alloc_object_by_name("C", NodeId(i)))
            .collect();
        for (i, &o) in objs.iter().enumerate() {
            rt.set_field(o, peer, Value::Obj(objs[(i + 1) % objs.len()]));
        }
        (rt, objs[0], bounce)
    }

    struct Collect(Vec<TraceRecord>);
    impl Observer for Collect {
        fn on_record(&mut self, rec: &TraceRecord) {
            self.0.push(*rec);
        }
    }

    struct Outcome {
        result: Option<Value>,
        makespan: Cycles,
        trace: Vec<TraceRecord>,
        observed: Vec<TraceRecord>,
        stats: hem_machine::stats::MachineStats,
    }

    fn run_ring(sched: SchedImpl, cost: CostModel, faults: Option<FaultPlan>) -> Outcome {
        run_ring_weighted(sched, cost, faults, None)
    }

    fn run_ring_weighted(
        sched: SchedImpl,
        cost: CostModel,
        faults: Option<FaultPlan>,
        weights: Option<Vec<u64>>,
    ) -> Outcome {
        let (mut rt, root, bounce) = ring_runtime(4, cost);
        rt.sched_impl = sched;
        rt.enable_trace();
        rt.attach_observer(Box::new(Collect(Vec::new())));
        if let Some(plan) = faults {
            rt.set_fault_plan(plan);
        }
        rt.set_shard_weights(weights);
        let result = rt.call(root, bounce, &[Value::Int(25)]).expect("ring runs");
        let obs = rt.take_observer().expect("observer attached");
        let observed = (obs as Box<dyn std::any::Any>)
            .downcast::<Collect>()
            .expect("collect observer")
            .0;
        Outcome {
            result,
            makespan: rt.makespan(),
            trace: rt.take_trace(),
            observed,
            stats: rt.stats(),
        }
    }

    fn assert_bit_identical(a: &Outcome, b: &Outcome, what: &str) {
        assert_eq!(a.result, b.result, "{what}: result");
        assert_eq!(a.makespan, b.makespan, "{what}: makespan");
        if let Some(i) = (0..a.trace.len().min(b.trace.len())).find(|&i| a.trace[i] != b.trace[i]) {
            panic!(
                "{what}: traces diverge at record {i}:\n  a: {:?}\n  b: {:?}",
                a.trace[i], b.trace[i]
            );
        }
        assert_eq!(a.trace.len(), b.trace.len(), "{what}: trace length");
        assert_eq!(a.observed, b.observed, "{what}: observer stream");
        assert_eq!(a.stats.node_time, b.stats.node_time, "{what}: clocks");
        assert_eq!(a.stats.per_node, b.stats.per_node, "{what}: counters");
        assert_eq!(a.stats.net, b.stats.net, "{what}: net stats");
        assert_eq!(
            a.stats.sched.events_dispatched, b.stats.sched.events_dispatched,
            "{what}: dispatch count"
        );
    }

    #[test]
    fn sharded_matches_event_index_on_a_ring() {
        let base = run_ring(SchedImpl::EventIndex, CostModel::cm5(), None);
        assert_eq!(base.result, Some(Value::Int(325)), "25+24+...+1");
        for threads in [2, 3, 4, 7] {
            let sharded = run_ring(SchedImpl::Sharded { threads }, CostModel::cm5(), None);
            assert_bit_identical(&base, &sharded, &format!("threads={threads}"));
            assert_eq!(
                sharded.stats.sched.heap_pushes, 0,
                "sharded heap stats read 0"
            );
            assert_eq!(sharded.stats.sched.max_heap_depth, 0);
        }
    }

    #[test]
    fn sharded_matches_event_index_under_faults() {
        let plan = FaultPlan::seeded(7);
        let base = run_ring(SchedImpl::EventIndex, CostModel::cm5(), Some(plan.clone()));
        for threads in [2, 4] {
            let sharded = run_ring(
                SchedImpl::Sharded { threads },
                CostModel::cm5(),
                Some(plan.clone()),
            );
            assert_bit_identical(&base, &sharded, &format!("faulty threads={threads}"));
        }
    }

    #[test]
    fn zero_lookahead_and_degenerate_thread_counts_fall_back() {
        // The unit cost model has zero wire latency: no lookahead, so the
        // sharded executor must run the plain event index (and still
        // report zeroed heap diagnostics).
        let base = run_ring(SchedImpl::EventIndex, CostModel::unit(), None);
        for threads in [0, 1, 4] {
            let sharded = run_ring(SchedImpl::Sharded { threads }, CostModel::unit(), None);
            assert_bit_identical(&base, &sharded, &format!("unit-cost threads={threads}"));
            assert_eq!(sharded.stats.sched.heap_pushes, 0);
        }
        // Degenerate thread counts on a real cost model: same story.
        let base = run_ring(SchedImpl::EventIndex, CostModel::cm5(), None);
        for threads in [0, 1] {
            let sharded = run_ring(SchedImpl::Sharded { threads }, CostModel::cm5(), None);
            assert_bit_identical(&base, &sharded, &format!("cm5 threads={threads}"));
        }
    }

    #[test]
    fn sharded_ring_truncation_counts_match() {
        // Bounded trace ring: eviction counts must survive the merge.
        let run = |sched: SchedImpl| {
            let (mut rt, root, bounce) = ring_runtime(4, CostModel::cm5());
            rt.sched_impl = sched;
            rt.enable_trace_ring(16);
            rt.call(root, bounce, &[Value::Int(25)]).expect("ring runs");
            (rt.trace_dropped_total(), rt.take_trace())
        };
        let (base_dropped, base_tail) = run(SchedImpl::EventIndex);
        assert!(base_dropped > 0, "ring must truncate for the test to bite");
        for threads in [2, 4] {
            let (dropped, tail) = run(SchedImpl::Sharded { threads });
            assert_eq!(dropped, base_dropped, "threads={threads}: evictions");
            assert_eq!(tail, base_tail, "threads={threads}: ring tail");
        }
    }

    #[test]
    fn pool_persists_across_chunks_with_zero_moves() {
        // Two root calls = two executor chunks. The second must reuse
        // the pinned worker pool, and the steady-state window protocol
        // must never ship a runtime through a channel or rendezvous with
        // a coordinator channel pair.
        let (mut rt, root, bounce) = ring_runtime(4, CostModel::cm5());
        rt.sched_impl = SchedImpl::Sharded { threads: 2 };
        let a = rt.call(root, bounce, &[Value::Int(25)]).expect("chunk 1");
        let b = rt.call(root, bounce, &[Value::Int(25)]).expect("chunk 2");
        assert_eq!(a, b, "bounce is pure; both chunks agree");
        let st = rt.stats();
        assert!(st.sched.windows > 0, "windowed path exercised");
        assert_eq!(st.sched.runtime_moves, 0, "zero Runtime moves");
        assert_eq!(st.sched.coord_roundtrips, 0, "zero channel round-trips");
        assert!(st.sched.pool_reuses >= 1, "second chunk reused the pool");
    }

    #[test]
    fn pool_rebuilds_when_the_fault_plan_changes() {
        let (mut rt, root, bounce) = ring_runtime(4, CostModel::cm5());
        rt.sched_impl = SchedImpl::Sharded { threads: 2 };
        rt.call(root, bounce, &[Value::Int(5)]).expect("chunk 1");
        rt.set_fault_plan(FaultPlan::seeded(7));
        rt.call(root, bounce, &[Value::Int(5)]).expect("chunk 2");
        // The plan change invalidated the pool (worker networks hold a
        // plan copy), so the second chunk built a fresh one.
        assert_eq!(rt.stats().sched.pool_reuses, 0);
        rt.call(root, bounce, &[Value::Int(5)]).expect("chunk 3");
        assert_eq!(rt.stats().sched.pool_reuses, 1);
    }

    #[test]
    fn weighted_partition_defaults_to_equal_slices() {
        for (p, threads) in [(8, 2), (10, 4), (7, 3), (4, 4), (5, 1)] {
            let plain = shard_partition(p, threads, None);
            for s in 0..threads {
                for o in &plain[s * p / threads..(s + 1) * p / threads] {
                    assert_eq!(*o, s, "p={p} threads={threads}");
                }
            }
        }
    }

    #[test]
    fn weighted_partition_splits_hot_slices_and_keeps_shards_nonempty() {
        // All the heat in the first quarter: the weighted cut must split
        // it instead of handing it to one shard.
        let mut w = vec![1u64; 16];
        for x in &mut w[0..4] {
            *x = 1000;
        }
        let owner = shard_partition(16, 4, Some(&w));
        assert!(owner.windows(2).all(|ab| ab[0] <= ab[1]), "contiguous");
        assert!(
            owner[0..4]
                .iter()
                .collect::<std::collections::BTreeSet<_>>()
                .len()
                > 1,
            "hot slice split across shards: {owner:?}"
        );
        for s in 0..4 {
            assert!(owner.contains(&s), "shard {s} nonempty: {owner:?}");
        }
        // Degenerate weights (zeros, short vectors) still partition.
        let owner = shard_partition(6, 3, Some(&[0, 0]));
        for s in 0..3 {
            assert!(owner.contains(&s), "shard {s} nonempty: {owner:?}");
        }
    }

    #[test]
    fn weighted_runs_stay_bit_identical() {
        // The shard map is host-time tuning: a wildly skewed weighting
        // must not change a single observable bit.
        let base = run_ring(SchedImpl::EventIndex, CostModel::cm5(), None);
        for threads in [2, 4] {
            let skew = run_ring_weighted(
                SchedImpl::Sharded { threads },
                CostModel::cm5(),
                None,
                Some(vec![1_000_000, 1, 1, 1]),
            );
            assert_bit_identical(&base, &skew, &format!("weighted threads={threads}"));
        }
    }

    #[test]
    fn spin_tiers_shrink_under_oversubscription() {
        let cores = host_cores();
        let matched = spin_tiers(cores.max(2));
        let oversub = spin_tiers(cores.max(2) * 8);
        assert!(oversub.spin <= matched.spin, "budget never grows");
        if cores > 1 {
            assert_eq!(matched.spin, SPIN, "at-or-under cores spins fully");
            assert!(oversub.spin < SPIN, "oversubscribed budget shrinks");
        } else {
            assert_eq!(matched.spin, 0, "single-core hosts never spin");
        }
        assert!(oversub.yields > 0, "yield tier precedes parking");
    }
}
