//! Optional execution tracing.
//!
//! When enabled, the runtime records one [`TraceEvent`] per interesting
//! runtime action — stack completions, speculative inlines, fallbacks,
//! shell adoptions, messages, suspensions — with the virtual time at which
//! it happened. The trace makes the hybrid model's *adaptation* visible:
//! you can watch an invocation start on the stack, hit a remote object,
//! lazily grow a context, and finish in the parallel version.
//!
//! Tracing is off by default and costs one branch per event when off.

use hem_analysis::Schema;
use hem_ir::MethodId;
use hem_machine::{Cycles, NodeId};

/// Why a wire message was sent (and, symmetrically, what kind of payload
/// a handled message carried). Extends the old `reply: bool` so byte
/// accounting can attribute ack-protocol and retransmission overhead
/// separately from first-copy application traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgCause {
    /// Remote method invocation request.
    Request,
    /// Reply determining a future.
    Reply,
    /// Transport acknowledgement frame (reliable transport only).
    Ack,
    /// Retransmitted copy of an unacknowledged data frame (reliable
    /// transport only). Receivers never see this cause: a delivered
    /// retransmission is handled as its payload's `Request`/`Reply`.
    Retransmit,
    /// Leg of a modeled multicast (down-tree delivery of one invocation
    /// to one group member).
    Multicast,
    /// Leg of a modeled reduction (down-tree delivery or up-tree partial
    /// combine).
    Reduce,
    /// Leg of a modeled barrier (down-tree release probe or up-tree
    /// arrival notification).
    Barrier,
}

impl MsgCause {
    /// Is this an application reply (the old `reply` bool)?
    pub fn is_reply(self) -> bool {
        matches!(self, MsgCause::Reply)
    }

    /// Is this a modeled-collective leg (multicast/reduce/barrier)?
    pub fn is_collective(self) -> bool {
        matches!(
            self,
            MsgCause::Multicast | MsgCause::Reduce | MsgCause::Barrier
        )
    }
}

impl std::fmt::Display for MsgCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            MsgCause::Request => "request",
            MsgCause::Reply => "reply",
            MsgCause::Ack => "ack",
            MsgCause::Retransmit => "retransmit",
            MsgCause::Multicast => "multicast",
            MsgCause::Reduce => "reduce",
            MsgCause::Barrier => "barrier",
        };
        write!(f, "{s}")
    }
}

/// One recorded runtime action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A sequential execution completed on the stack.
    StackComplete {
        /// Node it ran on.
        node: NodeId,
        /// Completed method.
        method: MethodId,
        /// Its sequential schema.
        schema: Schema,
    },
    /// A local, non-blocking leaf was speculatively inlined.
    Inlined {
        /// Node.
        node: NodeId,
        /// Inlined method.
        method: MethodId,
    },
    /// A stack frame lazily became heap context `ctx` (unwinding).
    Fallback {
        /// Node.
        node: NodeId,
        /// Method that fell back.
        method: MethodId,
        /// The created context index.
        ctx: u32,
    },
    /// A heap context was created for an eager parallel invocation.
    ParInvoke {
        /// Node.
        node: NodeId,
        /// Invoked method.
        method: MethodId,
        /// The created context index.
        ctx: u32,
    },
    /// A caller populated a shell context a CP callee created for it.
    ShellAdopted {
        /// Node.
        node: NodeId,
        /// The shell's method.
        method: MethodId,
        /// The shell context index.
        ctx: u32,
    },
    /// A continuation was lazily materialized (§3.2.3).
    ContMaterialized {
        /// Node.
        node: NodeId,
    },
    /// A message was injected into the interconnect. Every wire injection
    /// emits exactly one `MsgSent` (including copies the fault plan then
    /// loses), so the count of these events equals the network's `sent`
    /// statistic.
    MsgSent {
        /// Sender.
        from: NodeId,
        /// Destination.
        to: NodeId,
        /// Payload size in words (drives the per-word wire cost).
        words: u64,
        /// What the message is (request/reply/ack/retransmit).
        cause: MsgCause,
        /// Blame tag: originating external request id + 1, or 0 when the
        /// send is not attributable to a request (closed-system kernels,
        /// internal bookkeeping). The tag rides the causal chain —
        /// invocations, replies, collectives, retransmissions — at zero
        /// virtual-time cost.
        req: u64,
    },
    /// A delivered message was handled on its destination node (transport
    /// duplicates that were suppressed emit [`TraceEvent::DupSuppressed`]
    /// instead). Nested handling during a send-time network poll emits
    /// this too, so every consumed message has exactly one record.
    MsgHandled {
        /// Handling (destination) node.
        node: NodeId,
        /// The message's sender.
        from: NodeId,
        /// Payload size in words.
        words: u64,
        /// Payload kind; never [`MsgCause::Retransmit`] (a delivered
        /// retransmission carries its original payload).
        cause: MsgCause,
        /// Blame tag (request id + 1; 0 = untagged), inherited from the
        /// tag carried by the sending step.
        req: u64,
        /// When the wire delivered the message to the inbox; the record's
        /// `at` minus this is time the message sat waiting for its node.
        deliver: Cycles,
        /// Whether the consumed copy arrived via a retransmission (the
        /// first copy was lost or slow) — attributes recovered wire time
        /// to the retransmit penalty rather than normal transit.
        retx: bool,
    },
    /// A context suspended on a touch.
    Suspend {
        /// Node.
        node: NodeId,
        /// Context.
        ctx: u32,
    },
    /// A waiting context became ready (its touch was satisfied).
    Resume {
        /// Node.
        node: NodeId,
        /// Context.
        ctx: u32,
    },
    /// An invocation was deferred on a held object lock.
    LockDeferred {
        /// Node.
        node: NodeId,
        /// Object index.
        obj: u32,
        /// Blame tag (request id + 1; 0 = untagged) of the deferred
        /// invocation — the waiter, not the lock holder.
        req: u64,
    },
    /// The fault plan lost an injected packet (never enqueued).
    MsgDropped {
        /// Sender.
        from: NodeId,
        /// Intended destination.
        to: NodeId,
        /// Lost to a partition window rather than random loss.
        partitioned: bool,
    },
    /// The fault plan enqueued a second wire-level copy of a packet.
    MsgDuplicated {
        /// Sender.
        from: NodeId,
        /// Destination.
        to: NodeId,
    },
    /// An unacknowledged data frame timed out and was retransmitted.
    Retransmit {
        /// Retransmitting sender.
        node: NodeId,
        /// Destination.
        to: NodeId,
        /// Retransmissions of this frame so far (1 = first retry).
        attempt: u32,
    },
    /// A received data frame was discarded as a duplicate.
    DupSuppressed {
        /// Receiver.
        node: NodeId,
        /// The frame's sender.
        from: NodeId,
    },
    /// A heap context was freed (its activation completed). Together with
    /// the allocation events (`ParInvoke`/`Fallback`) this delimits a
    /// context's residency span.
    CtxFreed {
        /// Node.
        node: NodeId,
        /// Context index.
        ctx: u32,
    },
    /// The dispatch loop selected an event: the node's clock now stands at
    /// the event's start time. `kind` 0 = handle a message, 1 = run local
    /// work (a lock grant or ready context), 2 = fire retransmission
    /// timers. Paired with [`TraceEvent::EventEnd`]; all records emitted
    /// between the pair belong to this scheduler step.
    EventStart {
        /// Dispatching node.
        node: NodeId,
        /// Candidate kind (0 message, 1 local work, 2 timers).
        kind: u8,
        /// Blame tag (request id + 1; 0 = untagged) of the work this step
        /// runs: the handled message's tag for kind 0, the granted or
        /// resumed context's tag for kind 1, always 0 for kind 2.
        req: u64,
    },
    /// The dispatched event completed; the record's time is the node's
    /// clock after all work charged during the step.
    EventEnd {
        /// Dispatching node.
        node: NodeId,
    },
    /// An external client request arrived at the machine (open-system
    /// service mode; see [`crate::rt::Runtime::inject_request`]). Emitted by the
    /// open-loop driver at the request's *arrival* time, which may be
    /// ahead of or behind the target node's clock — this is an offered-
    /// load marker, not on-node work.
    RequestArrived {
        /// Target node (where the request's root invocation lands).
        node: NodeId,
        /// Request id (unique per run).
        req: u64,
    },
    /// An external request's reply was delivered; the record's time is
    /// the serving node's clock at delivery, so `done.at − arrived.at`
    /// is the request's sojourn (latency) in cycles.
    RequestDone {
        /// Node that delivered the reply.
        node: NodeId,
        /// Request id.
        req: u64,
    },
    /// The admission controller refused an external request (queue-depth
    /// or deadline-infeasibility shedding) — it never entered the
    /// machine.
    RequestShed {
        /// Target node the request would have landed on.
        node: NodeId,
        /// Request id.
        req: u64,
    },
}

/// A timestamped event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Virtual time on the event's node.
    pub at: Cycles,
    /// The event.
    pub event: TraceEvent,
}

/// A zero-virtual-time trace consumer, fed every [`TraceRecord`] as it is
/// generated — the online analogue of draining the trace buffer, without
/// the buffer.
///
/// The contract is the sanitizer's: an attached observer must not (and,
/// through this interface, cannot) charge virtual time, touch counters, or
/// alter the event stream, so a run is bit-identical in trace, clocks, and
/// makespan with observation on or off (the `sched_throughput` bench
/// guards this). Attaching an observer forces record generation even when
/// the buffering trace is disabled, so machine-sized runs can be profiled
/// without holding the whole event stream in memory.
/// The `Any` supertrait lets a harness recover its concrete observer
/// after the run: `Box<dyn Observer>` upcasts to `Box<dyn Any>`, which
/// downcasts to the observer type (see the `trace_adaptation` example).
/// `Send` is required so an observed runtime can be driven by the
/// sharded executor (the observer itself only ever runs on the
/// coordinator thread, fed the deterministically merged stream).
pub trait Observer: std::any::Any + Send {
    /// Called once per generated record, in emission order.
    fn on_record(&mut self, rec: &TraceRecord);

    /// Called when the observer is detached ([`Runtime::take_observer`]).
    /// Observers that buffer records internally (to amortize per-record
    /// cost) must drain here; the default is a no-op.
    fn on_flush(&mut self) {}
}

/// The trace buffer: unbounded by default, or a bounded ring that keeps
/// only the most recent `cap` records (long fault-injection soaks want the
/// tail — the events around the failure — without unbounded memory).
#[derive(Debug, Default)]
pub struct Trace {
    records: std::collections::VecDeque<TraceRecord>,
    enabled: bool,
    /// Ring capacity; 0 = unbounded.
    cap: usize,
    /// Records evicted from the front of the ring since the last `take`.
    dropped: u64,
    /// Records evicted over the buffer's whole lifetime (never reset —
    /// reports derived from a truncated ring must be able to say so even
    /// after intermediate drains).
    dropped_total: u64,
}

impl Trace {
    /// Turn recording on (unbounded).
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Turn recording on, keeping only the most recent `cap` records
    /// (`cap = 0` means unbounded). Evictions are counted in
    /// [`Trace::dropped`].
    pub fn enable_ring(&mut self, cap: usize) {
        self.enabled = true;
        self.cap = cap;
    }

    /// Is recording on?
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Records evicted from the ring since the last drain.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Records evicted from the ring over its whole lifetime (not reset by
    /// [`Trace::take`]).
    pub fn dropped_total(&self) -> u64 {
        self.dropped_total
    }

    /// Record (no-op when disabled).
    #[inline]
    pub(crate) fn emit(&mut self, at: Cycles, event: TraceEvent) {
        if self.enabled {
            if self.cap != 0 && self.records.len() == self.cap {
                self.records.pop_front();
                self.dropped += 1;
                self.dropped_total += 1;
            }
            self.records.push_back(TraceRecord { at, event });
        }
    }

    /// Drain the recorded events (oldest first) and reset the drop count.
    pub fn take(&mut self) -> Vec<TraceRecord> {
        self.dropped = 0;
        std::mem::take(&mut self.records).into()
    }

    /// Iterate over the recorded events, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }
}

impl crate::rt::Runtime {
    /// Enable execution tracing (see [`TraceEvent`]).
    pub fn enable_trace(&mut self) {
        self.trace_buf.enable();
    }

    /// Enable tracing into a bounded ring keeping the last `cap` records.
    pub fn enable_trace_ring(&mut self, cap: usize) {
        self.trace_buf.enable_ring(cap);
    }

    /// Records evicted from the bounded trace ring since the last drain.
    pub fn trace_dropped(&self) -> u64 {
        self.trace_buf.dropped()
    }

    /// Records evicted from the bounded trace ring over the whole run
    /// (never reset; also surfaced as `MachineStats.sched.dropped_events`).
    pub fn trace_dropped_total(&self) -> u64 {
        self.trace_buf.dropped_total()
    }

    /// Drain recorded trace events.
    pub fn take_trace(&mut self) -> Vec<TraceRecord> {
        self.trace_buf.take()
    }

    /// Attach a zero-virtual-time [`Observer`] that is fed every record as
    /// it is generated. Generation is forced even if the buffering trace
    /// is off; the observer never charges virtual time, so traces, clocks,
    /// and makespan are bit-identical with or without it.
    pub fn attach_observer(&mut self, obs: Box<dyn Observer>) {
        self.observer = Some(obs);
    }

    /// Detach and return the attached observer, if any. The observer's
    /// [`Observer::on_flush`] runs first, so buffering observers hand
    /// back fully-drained aggregates.
    pub fn take_observer(&mut self) -> Option<Box<dyn Observer>> {
        let mut obs = self.observer.take();
        if let Some(o) = obs.as_deref_mut() {
            o.on_flush();
        }
        obs
    }

    /// Is an observer attached?
    pub fn observer_attached(&self) -> bool {
        self.observer.is_some()
    }

    /// Is any trace consumer live — the buffering trace, an observer, or
    /// (in a shard worker) the coordinator's capture?
    #[inline]
    pub(crate) fn tracing_active(&self) -> bool {
        match &self.shard {
            Some(sh) => sh.record,
            None => self.trace_buf.enabled() || self.observer.is_some(),
        }
    }

    /// Record an event against a node's current virtual time.
    ///
    /// In a shard worker the record is instead captured under the
    /// dispatching event's `(time, kind, node)` key; the coordinator
    /// merges all shards' captures in key order at each window barrier
    /// and replays them through [`Self::flush_record`], reconstructing
    /// the exact single-threaded emission order.
    #[inline]
    pub(crate) fn emit(&mut self, node: usize, event: TraceEvent) {
        let at = self.nodes[node].time;
        if let Some(sh) = &mut self.shard {
            if sh.record {
                sh.capture.push((sh.cur, sh.ord, TraceRecord { at, event }));
            }
            return;
        }
        if self.trace_buf.enabled() || self.observer.is_some() {
            if let Some(o) = self.observer.as_deref_mut() {
                o.on_record(&TraceRecord { at, event });
            }
            self.trace_buf.emit(at, event);
        }
    }

    /// Deliver an already-built record to the buffering trace and the
    /// observer — the sink half of [`Self::emit`], used by the sharded
    /// coordinator to replay merged shard captures with ring-truncation
    /// and observer semantics identical to direct emission.
    #[inline]
    pub(crate) fn flush_record(&mut self, rec: TraceRecord) {
        if let Some(o) = self.observer.as_deref_mut() {
            o.on_record(&rec);
        }
        self.trace_buf.emit(rec.at, rec.event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::default();
        t.emit(1, TraceEvent::ContMaterialized { node: NodeId(0) });
        assert_eq!(t.records().count(), 0);
        t.enable();
        t.emit(2, TraceEvent::ContMaterialized { node: NodeId(0) });
        assert_eq!(t.records().count(), 1);
        assert_eq!(t.records().next().unwrap().at, 2);
        let drained = t.take();
        assert_eq!(drained.len(), 1);
        assert_eq!(t.records().count(), 0);
    }

    #[test]
    fn ring_keeps_the_tail_and_counts_evictions() {
        let mut t = Trace::default();
        t.enable_ring(3);
        for i in 0..5 {
            t.emit(i, TraceEvent::ContMaterialized { node: NodeId(0) });
        }
        assert_eq!(t.dropped(), 2);
        let recs = t.take();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs.iter().map(|r| r.at).collect::<Vec<_>>(), vec![2, 3, 4]);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn ring_at_exactly_cap_evicts_nothing() {
        let mut t = Trace::default();
        t.enable_ring(3);
        for i in 0..3 {
            t.emit(i, TraceEvent::ContMaterialized { node: NodeId(0) });
        }
        assert_eq!(t.dropped(), 0, "filling to cap is not an eviction");
        let recs = t.take();
        assert_eq!(recs.iter().map(|r| r.at).collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn ring_at_cap_plus_one_evicts_exactly_the_oldest() {
        let mut t = Trace::default();
        t.enable_ring(3);
        for i in 0..4 {
            t.emit(i, TraceEvent::ContMaterialized { node: NodeId(0) });
        }
        assert_eq!(t.dropped(), 1);
        let recs = t.take();
        assert_eq!(
            recs.iter().map(|r| r.at).collect::<Vec<_>>(),
            vec![1, 2, 3],
            "exactly the oldest record is evicted"
        );
    }

    #[test]
    fn take_resets_dropped_and_ring_counts_anew() {
        // `take` drains the buffer *and* resets the eviction counter, so
        // each drained batch reports only its own window's losses.
        let mut t = Trace::default();
        t.enable_ring(2);
        for i in 0..5 {
            t.emit(i, TraceEvent::ContMaterialized { node: NodeId(0) });
        }
        assert_eq!(t.dropped(), 3);
        t.take();
        assert_eq!(t.dropped(), 0, "take resets the drop count");
        t.emit(9, TraceEvent::ContMaterialized { node: NodeId(0) });
        assert_eq!(t.dropped(), 0, "emptied ring refills before evicting");
        t.emit(10, TraceEvent::ContMaterialized { node: NodeId(0) });
        t.emit(11, TraceEvent::ContMaterialized { node: NodeId(0) });
        assert_eq!(t.dropped(), 1, "evictions count from the drained state");
        assert_eq!(
            t.take().iter().map(|r| r.at).collect::<Vec<_>>(),
            vec![10, 11]
        );
    }

    #[test]
    fn dropped_total_survives_take() {
        let mut t = Trace::default();
        t.enable_ring(2);
        for i in 0..5 {
            t.emit(i, TraceEvent::ContMaterialized { node: NodeId(0) });
        }
        assert_eq!(t.dropped(), 3);
        assert_eq!(t.dropped_total(), 3);
        t.take();
        assert_eq!(t.dropped(), 0, "drain-relative counter resets");
        assert_eq!(t.dropped_total(), 3, "lifetime counter does not");
        for i in 0..3 {
            t.emit(10 + i, TraceEvent::ContMaterialized { node: NodeId(0) });
        }
        assert_eq!(t.dropped_total(), 4);
    }

    #[test]
    fn unbounded_ring_cap_zero_never_drops() {
        let mut t = Trace::default();
        t.enable_ring(0);
        for i in 0..100 {
            t.emit(i, TraceEvent::ContMaterialized { node: NodeId(0) });
        }
        assert_eq!(t.dropped(), 0);
        assert_eq!(t.take().len(), 100);
    }
}
