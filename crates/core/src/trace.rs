//! Optional execution tracing.
//!
//! When enabled, the runtime records one [`TraceEvent`] per interesting
//! runtime action — stack completions, speculative inlines, fallbacks,
//! shell adoptions, messages, suspensions — with the virtual time at which
//! it happened. The trace makes the hybrid model's *adaptation* visible:
//! you can watch an invocation start on the stack, hit a remote object,
//! lazily grow a context, and finish in the parallel version.
//!
//! Tracing is off by default and costs one branch per event when off.

use hem_analysis::Schema;
use hem_ir::MethodId;
use hem_machine::{Cycles, NodeId};

/// One recorded runtime action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A sequential execution completed on the stack.
    StackComplete {
        /// Node it ran on.
        node: NodeId,
        /// Completed method.
        method: MethodId,
        /// Its sequential schema.
        schema: Schema,
    },
    /// A local, non-blocking leaf was speculatively inlined.
    Inlined {
        /// Node.
        node: NodeId,
        /// Inlined method.
        method: MethodId,
    },
    /// A stack frame lazily became heap context `ctx` (unwinding).
    Fallback {
        /// Node.
        node: NodeId,
        /// Method that fell back.
        method: MethodId,
        /// The created context index.
        ctx: u32,
    },
    /// A heap context was created for an eager parallel invocation.
    ParInvoke {
        /// Node.
        node: NodeId,
        /// Invoked method.
        method: MethodId,
        /// The created context index.
        ctx: u32,
    },
    /// A caller populated a shell context a CP callee created for it.
    ShellAdopted {
        /// Node.
        node: NodeId,
        /// The shell's method.
        method: MethodId,
        /// The shell context index.
        ctx: u32,
    },
    /// A continuation was lazily materialized (§3.2.3).
    ContMaterialized {
        /// Node.
        node: NodeId,
    },
    /// A request (`reply = false`) or reply message was sent.
    MsgSent {
        /// Sender.
        from: NodeId,
        /// Destination.
        to: NodeId,
        /// Reply vs request.
        reply: bool,
    },
    /// A context suspended on a touch.
    Suspend {
        /// Node.
        node: NodeId,
        /// Context.
        ctx: u32,
    },
    /// A waiting context became ready (its touch was satisfied).
    Resume {
        /// Node.
        node: NodeId,
        /// Context.
        ctx: u32,
    },
    /// An invocation was deferred on a held object lock.
    LockDeferred {
        /// Node.
        node: NodeId,
        /// Object index.
        obj: u32,
    },
    /// The fault plan lost an injected packet (never enqueued).
    MsgDropped {
        /// Sender.
        from: NodeId,
        /// Intended destination.
        to: NodeId,
        /// Lost to a partition window rather than random loss.
        partitioned: bool,
    },
    /// The fault plan enqueued a second wire-level copy of a packet.
    MsgDuplicated {
        /// Sender.
        from: NodeId,
        /// Destination.
        to: NodeId,
    },
    /// An unacknowledged data frame timed out and was retransmitted.
    Retransmit {
        /// Retransmitting sender.
        node: NodeId,
        /// Destination.
        to: NodeId,
        /// Retransmissions of this frame so far (1 = first retry).
        attempt: u32,
    },
    /// A received data frame was discarded as a duplicate.
    DupSuppressed {
        /// Receiver.
        node: NodeId,
        /// The frame's sender.
        from: NodeId,
    },
}

/// A timestamped event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Virtual time on the event's node.
    pub at: Cycles,
    /// The event.
    pub event: TraceEvent,
}

/// The trace buffer: unbounded by default, or a bounded ring that keeps
/// only the most recent `cap` records (long fault-injection soaks want the
/// tail — the events around the failure — without unbounded memory).
#[derive(Debug, Default)]
pub struct Trace {
    records: std::collections::VecDeque<TraceRecord>,
    enabled: bool,
    /// Ring capacity; 0 = unbounded.
    cap: usize,
    /// Records evicted from the front of the ring since the last `take`.
    dropped: u64,
}

impl Trace {
    /// Turn recording on (unbounded).
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Turn recording on, keeping only the most recent `cap` records
    /// (`cap = 0` means unbounded). Evictions are counted in
    /// [`Trace::dropped`].
    pub fn enable_ring(&mut self, cap: usize) {
        self.enabled = true;
        self.cap = cap;
    }

    /// Is recording on?
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Records evicted from the ring since the last drain.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Record (no-op when disabled).
    #[inline]
    pub(crate) fn emit(&mut self, at: Cycles, event: TraceEvent) {
        if self.enabled {
            if self.cap != 0 && self.records.len() == self.cap {
                self.records.pop_front();
                self.dropped += 1;
            }
            self.records.push_back(TraceRecord { at, event });
        }
    }

    /// Drain the recorded events (oldest first) and reset the drop count.
    pub fn take(&mut self) -> Vec<TraceRecord> {
        self.dropped = 0;
        std::mem::take(&mut self.records).into()
    }

    /// Iterate over the recorded events, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }
}

impl crate::rt::Runtime {
    /// Enable execution tracing (see [`TraceEvent`]).
    pub fn enable_trace(&mut self) {
        self.trace_buf.enable();
    }

    /// Enable tracing into a bounded ring keeping the last `cap` records.
    pub fn enable_trace_ring(&mut self, cap: usize) {
        self.trace_buf.enable_ring(cap);
    }

    /// Records evicted from the bounded trace ring since the last drain.
    pub fn trace_dropped(&self) -> u64 {
        self.trace_buf.dropped()
    }

    /// Drain recorded trace events.
    pub fn take_trace(&mut self) -> Vec<TraceRecord> {
        self.trace_buf.take()
    }

    /// Record an event against a node's current virtual time.
    #[inline]
    pub(crate) fn emit(&mut self, node: usize, event: TraceEvent) {
        if self.trace_buf.enabled() {
            let at = self.nodes[node].time;
            self.trace_buf.emit(at, event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::default();
        t.emit(1, TraceEvent::ContMaterialized { node: NodeId(0) });
        assert_eq!(t.records().count(), 0);
        t.enable();
        t.emit(2, TraceEvent::ContMaterialized { node: NodeId(0) });
        assert_eq!(t.records().count(), 1);
        assert_eq!(t.records().next().unwrap().at, 2);
        let drained = t.take();
        assert_eq!(drained.len(), 1);
        assert_eq!(t.records().count(), 0);
    }

    #[test]
    fn ring_keeps_the_tail_and_counts_evictions() {
        let mut t = Trace::default();
        t.enable_ring(3);
        for i in 0..5 {
            t.emit(i, TraceEvent::ContMaterialized { node: NodeId(0) });
        }
        assert_eq!(t.dropped(), 2);
        let recs = t.take();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs.iter().map(|r| r.at).collect::<Vec<_>>(), vec![2, 3, 4]);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn ring_at_exactly_cap_evicts_nothing() {
        let mut t = Trace::default();
        t.enable_ring(3);
        for i in 0..3 {
            t.emit(i, TraceEvent::ContMaterialized { node: NodeId(0) });
        }
        assert_eq!(t.dropped(), 0, "filling to cap is not an eviction");
        let recs = t.take();
        assert_eq!(recs.iter().map(|r| r.at).collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn ring_at_cap_plus_one_evicts_exactly_the_oldest() {
        let mut t = Trace::default();
        t.enable_ring(3);
        for i in 0..4 {
            t.emit(i, TraceEvent::ContMaterialized { node: NodeId(0) });
        }
        assert_eq!(t.dropped(), 1);
        let recs = t.take();
        assert_eq!(
            recs.iter().map(|r| r.at).collect::<Vec<_>>(),
            vec![1, 2, 3],
            "exactly the oldest record is evicted"
        );
    }

    #[test]
    fn take_resets_dropped_and_ring_counts_anew() {
        // `take` drains the buffer *and* resets the eviction counter, so
        // each drained batch reports only its own window's losses.
        let mut t = Trace::default();
        t.enable_ring(2);
        for i in 0..5 {
            t.emit(i, TraceEvent::ContMaterialized { node: NodeId(0) });
        }
        assert_eq!(t.dropped(), 3);
        t.take();
        assert_eq!(t.dropped(), 0, "take resets the drop count");
        t.emit(9, TraceEvent::ContMaterialized { node: NodeId(0) });
        assert_eq!(t.dropped(), 0, "emptied ring refills before evicting");
        t.emit(10, TraceEvent::ContMaterialized { node: NodeId(0) });
        t.emit(11, TraceEvent::ContMaterialized { node: NodeId(0) });
        assert_eq!(t.dropped(), 1, "evictions count from the drained state");
        assert_eq!(
            t.take().iter().map(|r| r.at).collect::<Vec<_>>(),
            vec![10, 11]
        );
    }

    #[test]
    fn unbounded_ring_cap_zero_never_drops() {
        let mut t = Trace::default();
        t.enable_ring(0);
        for i in 0..100 {
            t.emit(i, TraceEvent::ContMaterialized { node: NodeId(0) });
        }
        assert_eq!(t.dropped(), 0);
        assert_eq!(t.take().len(), 100);
    }
}
