//! Optional execution tracing.
//!
//! When enabled, the runtime records one [`TraceEvent`] per interesting
//! runtime action — stack completions, speculative inlines, fallbacks,
//! shell adoptions, messages, suspensions — with the virtual time at which
//! it happened. The trace makes the hybrid model's *adaptation* visible:
//! you can watch an invocation start on the stack, hit a remote object,
//! lazily grow a context, and finish in the parallel version.
//!
//! Tracing is off by default and costs one branch per event when off.

use hem_analysis::Schema;
use hem_ir::MethodId;
use hem_machine::{Cycles, NodeId};

/// One recorded runtime action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A sequential execution completed on the stack.
    StackComplete {
        /// Node it ran on.
        node: NodeId,
        /// Completed method.
        method: MethodId,
        /// Its sequential schema.
        schema: Schema,
    },
    /// A local, non-blocking leaf was speculatively inlined.
    Inlined {
        /// Node.
        node: NodeId,
        /// Inlined method.
        method: MethodId,
    },
    /// A stack frame lazily became heap context `ctx` (unwinding).
    Fallback {
        /// Node.
        node: NodeId,
        /// Method that fell back.
        method: MethodId,
        /// The created context index.
        ctx: u32,
    },
    /// A heap context was created for an eager parallel invocation.
    ParInvoke {
        /// Node.
        node: NodeId,
        /// Invoked method.
        method: MethodId,
        /// The created context index.
        ctx: u32,
    },
    /// A caller populated a shell context a CP callee created for it.
    ShellAdopted {
        /// Node.
        node: NodeId,
        /// The shell's method.
        method: MethodId,
        /// The shell context index.
        ctx: u32,
    },
    /// A continuation was lazily materialized (§3.2.3).
    ContMaterialized {
        /// Node.
        node: NodeId,
    },
    /// A request (`reply = false`) or reply message was sent.
    MsgSent {
        /// Sender.
        from: NodeId,
        /// Destination.
        to: NodeId,
        /// Reply vs request.
        reply: bool,
    },
    /// A context suspended on a touch.
    Suspend {
        /// Node.
        node: NodeId,
        /// Context.
        ctx: u32,
    },
    /// A waiting context became ready (its touch was satisfied).
    Resume {
        /// Node.
        node: NodeId,
        /// Context.
        ctx: u32,
    },
    /// An invocation was deferred on a held object lock.
    LockDeferred {
        /// Node.
        node: NodeId,
        /// Object index.
        obj: u32,
    },
}

/// A timestamped event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Virtual time on the event's node.
    pub at: Cycles,
    /// The event.
    pub event: TraceEvent,
}

/// The trace buffer.
#[derive(Debug, Default)]
pub struct Trace {
    records: Vec<TraceRecord>,
    enabled: bool,
}

impl Trace {
    /// Turn recording on.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Is recording on?
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Record (no-op when disabled).
    #[inline]
    pub(crate) fn emit(&mut self, at: Cycles, event: TraceEvent) {
        if self.enabled {
            self.records.push(TraceRecord { at, event });
        }
    }

    /// Drain the recorded events.
    pub fn take(&mut self) -> Vec<TraceRecord> {
        std::mem::take(&mut self.records)
    }

    /// Peek at the recorded events.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }
}

impl crate::rt::Runtime {
    /// Enable execution tracing (see [`TraceEvent`]).
    pub fn enable_trace(&mut self) {
        self.trace_buf.enable();
    }

    /// Drain recorded trace events.
    pub fn take_trace(&mut self) -> Vec<TraceRecord> {
        self.trace_buf.take()
    }

    /// Record an event against a node's current virtual time.
    #[inline]
    pub(crate) fn emit(&mut self, node: usize, event: TraceEvent) {
        if self.trace_buf.enabled() {
            let at = self.nodes[node].time;
            self.trace_buf.emit(at, event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::default();
        t.emit(1, TraceEvent::ContMaterialized { node: NodeId(0) });
        assert!(t.records().is_empty());
        t.enable();
        t.emit(2, TraceEvent::ContMaterialized { node: NodeId(0) });
        assert_eq!(t.records().len(), 1);
        assert_eq!(t.records()[0].at, 2);
        let drained = t.take();
        assert_eq!(drained.len(), 1);
        assert!(t.records().is_empty());
    }
}
