//! Runtime traps.

use hem_ir::{MethodId, ValueError};

/// A fatal runtime error. The simulation is deterministic, so a trap is a
/// program (or harness) bug, never a transient condition; the event loop
//  aborts on the first trap and `Runtime::call` surfaces it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trap {
    /// Method executing when the trap fired, if any.
    pub method: Option<MethodId>,
    /// Program counter within the method, if any.
    pub pc: Option<u32>,
    /// Description.
    pub what: String,
}

impl Trap {
    /// A trap with location context.
    pub fn at(method: MethodId, pc: u32, what: impl Into<String>) -> Self {
        Trap {
            method: Some(method),
            pc: Some(pc),
            what: what.into(),
        }
    }

    /// A trap without location context.
    pub fn new(what: impl Into<String>) -> Self {
        Trap {
            method: None,
            pc: None,
            what: what.into(),
        }
    }

    /// Convert a value-semantics error into a trap at a location.
    pub fn from_value(method: MethodId, pc: u32, e: ValueError) -> Self {
        let what = match e {
            ValueError::Type { op, got } => format!("type error in {op}: got {got}"),
            ValueError::DivByZero => "division by zero".to_string(),
        };
        Trap::at(method, pc, what)
    }
}

impl std::fmt::Display for Trap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (self.method, self.pc) {
            (Some(m), Some(pc)) => write!(f, "trap at method #{} pc {}: {}", m.0, pc, self.what),
            _ => write!(f, "trap: {}", self.what),
        }
    }
}

impl std::error::Error for Trap {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_with_and_without_location() {
        let t = Trap::at(MethodId(2), 7, "boom");
        assert_eq!(t.to_string(), "trap at method #2 pc 7: boom");
        let t = Trap::new("boom");
        assert_eq!(t.to_string(), "trap: boom");
    }

    #[test]
    fn from_value_error() {
        let t = Trap::from_value(MethodId(0), 1, ValueError::DivByZero);
        assert!(t.what.contains("division"));
        let t = Trap::from_value(
            MethodId(0),
            1,
            ValueError::Type {
                op: "as_int",
                got: "nil",
            },
        );
        assert!(t.what.contains("as_int") && t.what.contains("nil"));
    }
}
