//! Object migration with forwarding addresses (the paper's future-work
//! direction): stale references keep working through name translation,
//! and moving an object toward its callers converts remote invocations
//! into stack execution.

use hem_analysis::InterfaceSet;
use hem_core::{ExecMode, Runtime};
use hem_ir::{BinOp, FieldId, MethodId, Program, ProgramBuilder, Value};
use hem_machine::cost::CostModel;
use hem_machine::NodeId;

/// Driver with a `peer` field; `poke(k)` calls the peer's `bump` k times.
fn program() -> (Program, MethodId, MethodId, FieldId, FieldId) {
    let mut pb = ProgramBuilder::new();
    let c = pb.class("C", false);
    let n = pb.field(c, "n");
    let peer = pb.field(c, "peer");
    let bump = pb.method(c, "bump", 0, |mb| {
        let cur = mb.get_field(n);
        let nv = mb.binl(BinOp::Add, cur, 1);
        mb.set_field(n, nv);
        mb.reply(nv);
    });
    let poke = pb.method(c, "poke", 1, |mb| {
        let p = mb.get_field(peer);
        let s = mb.slot();
        let last = mb.local();
        mb.mov(last, 0i64);
        mb.for_range(0i64, mb.arg(0), |mb, _| {
            mb.invoke(Some(s), p, bump, &[], hem_ir::LocalityHint::Unknown);
            mb.touch(&[s]);
            let v = mb.get_slot(s);
            mb.mov(last, v);
        });
        mb.reply(last);
    });
    (pb.finish(), bump, poke, n, peer)
}

fn world() -> (
    Runtime,
    hem_ir::ObjRef,
    hem_ir::ObjRef,
    MethodId,
    FieldId,
    FieldId,
) {
    let (p, _bump, poke, n, peer) = program();
    let mut rt =
        Runtime::new(p, 2, CostModel::cm5(), ExecMode::Hybrid, InterfaceSet::Full).expect("valid");
    let driver = rt.alloc_object_by_name("C", NodeId(0));
    let cell = rt.alloc_object_by_name("C", NodeId(1));
    rt.set_field(cell, n, Value::Int(0));
    rt.set_field(driver, peer, Value::Obj(cell));
    (rt, driver, cell, poke, n, peer)
}

#[test]
fn stale_references_forward_and_results_are_unchanged() {
    let (mut rt, driver, cell, poke, n, _peer) = world();
    // Warm up remotely.
    let r = rt.call(driver, poke, &[Value::Int(3)]).unwrap();
    assert_eq!(r, Some(Value::Int(3)));

    // Move the cell to the driver's node; the driver's `peer` field still
    // holds the stale reference.
    let new_ref = rt.migrate_object(cell, NodeId(0));
    assert_eq!(new_ref.node, NodeId(0));

    let r = rt.call(driver, poke, &[Value::Int(3)]).unwrap();
    assert_eq!(r, Some(Value::Int(6)), "state moved with the object");
    // Old and new reference read the same object.
    assert_eq!(rt.get_field(cell, n), Value::Int(6));
    assert_eq!(rt.get_field(new_ref, n), Value::Int(6));
    assert_eq!(rt.resolve_ref(cell), new_ref);
    assert_eq!(rt.live_contexts(), 0);
}

#[test]
fn migration_toward_caller_localizes_invocations() {
    let (mut rt, driver, cell, poke, _n, peer) = world();
    rt.call(driver, poke, &[Value::Int(5)]).unwrap();
    let before = rt.stats().totals();
    assert_eq!(before.remote_invokes, 5, "all pokes were remote");

    rt.migrate_object(cell, NodeId(0));
    rt.reset_counters();
    rt.call(driver, poke, &[Value::Int(5)]).unwrap();
    let after = rt.stats().totals();
    // The driver's field still holds the stale reference, so each call
    // pays the forwarding hop through the old home — but every bump now
    // *executes* on the caller's node (stack completions at the new home).
    assert!(
        after.stack_nb >= 5,
        "bumps completed on the stack at the new home: {}",
        after.stack_nb
    );
    assert!(after.msgs_sent > 0, "stale field keeps paying forwarding");

    // Snap the reference (what the paper's automated migration would do)
    // and the computation becomes fully local: no messages, no contexts.
    let fresh = rt.resolve_ref(cell);
    rt.set_field(driver, peer, Value::Obj(fresh));
    rt.reset_counters();
    rt.call(driver, poke, &[Value::Int(5)]).unwrap();
    let snapped = rt.stats().totals();
    assert_eq!(snapped.msgs_sent, 0, "fully local after snapping");
    assert_eq!(snapped.ctx_alloc, 0);
    assert_eq!(snapped.remote_invokes, 0);
}

#[test]
fn double_migration_chains_forwarding() {
    let (mut rt, driver, cell, poke, n, _peer) = world();
    let r1 = rt.migrate_object(cell, NodeId(0));
    let r2 = rt.migrate_object(cell, NodeId(1)); // via stale ref: resolves first
    assert_eq!(r2.node, NodeId(1));
    assert_ne!(r1, r2);
    assert_eq!(rt.resolve_ref(cell), r2);
    assert_eq!(rt.resolve_ref(r1), r2);
    let r = rt.call(driver, poke, &[Value::Int(2)]).unwrap();
    assert_eq!(r, Some(Value::Int(2)));
    assert_eq!(rt.get_field(cell, n), Value::Int(2));
}

#[test]
fn migrating_to_same_node_is_identity() {
    let (mut rt, _driver, cell, _poke, _n, _peer) = world();
    let r = rt.migrate_object(cell, NodeId(1));
    assert_eq!(r, cell, "already home");
    assert_eq!(rt.resolve_ref(cell), cell);
}

#[test]
fn remote_message_to_old_home_is_forwarded() {
    // The driver (node 0) holds a stale ref to an object whose old home is
    // node 1 but which now lives on node 0: the request goes to node 1,
    // discovers the forwarding address, and comes back — one extra
    // message round, correct result.
    let (mut rt, driver, cell, poke, _n, _peer) = world();
    rt.migrate_object(cell, NodeId(0));
    rt.reset_counters();
    let r = rt.call(driver, poke, &[Value::Int(1)]).unwrap();
    assert_eq!(r, Some(Value::Int(1)));
    let t = rt.stats().totals();
    // The invoke through the stale ref travels: node0 -> node1 (old home)
    // -> node0 (new home), then executes locally.
    assert!(
        t.msgs_sent >= 1,
        "at least the forwarded hop: {}",
        t.msgs_sent
    );
    assert_eq!(rt.live_contexts(), 0);
}

#[test]
#[should_panic(expected = "locked object")]
fn migration_refuses_held_locks() {
    // A locked cell whose method waits forever on a reactive callee: the
    // machine goes quiescent with the lock still held — migration must
    // refuse to move it out from under the suspended activation.
    let mut pb = ProgramBuilder::new();
    let quiet = pb.class("Quiet", false);
    let silent = pb.method(quiet, "silent", 0, |mb| mb.halt());
    let cell = pb.class("Cell", true);
    let peer = pb.field(cell, "peer");
    let stuck = pb.method(cell, "stuck", 0, |mb| {
        let p = mb.get_field(peer);
        let s = mb.invoke_into(p, silent, &[]);
        let v = mb.touch_get(s);
        mb.reply(v);
    });
    let p = pb.finish();
    let mut rt =
        Runtime::new(p, 2, CostModel::cm5(), ExecMode::Hybrid, InterfaceSet::Full).unwrap();
    let q = rt.alloc_object_by_name("Quiet", NodeId(1));
    let c = rt.alloc_object_by_name("Cell", NodeId(0));
    rt.set_field(c, peer, Value::Obj(q));
    let r = rt.call(c, stuck, &[]).unwrap();
    assert_eq!(r, None, "parked forever");
    assert!(!rt.stuck_contexts().is_empty());
    let _ = rt.migrate_object(c, NodeId(1));
}

#[test]
#[should_panic(expected = "cannot migrate with queued invocations")]
fn migration_refuses_queued_lock_waiters() {
    // First invocation holds the cell's lock and parks forever; a second
    // invocation arrives while the lock is held and is queued on it. The
    // machine is quiescent (the waiter is parked on the lock, not on a run
    // queue), but moving the object would strand the queued invocation —
    // the guard diagnoses the waiters, not just the held lock.
    let mut pb = ProgramBuilder::new();
    let quiet = pb.class("Quiet", false);
    let silent = pb.method(quiet, "silent", 0, |mb| mb.halt());
    let cell = pb.class("Cell", true);
    let peer = pb.field(cell, "peer");
    let stuck = pb.method(cell, "stuck", 0, |mb| {
        let p = mb.get_field(peer);
        let s = mb.invoke_into(p, silent, &[]);
        let v = mb.touch_get(s);
        mb.reply(v);
    });
    let p = pb.finish();
    let mut rt =
        Runtime::new(p, 2, CostModel::cm5(), ExecMode::Hybrid, InterfaceSet::Full).unwrap();
    let q = rt.alloc_object_by_name("Quiet", NodeId(1));
    let c = rt.alloc_object_by_name("Cell", NodeId(0));
    rt.set_field(c, peer, Value::Obj(q));
    let r = rt.call(c, stuck, &[]).unwrap();
    assert_eq!(r, None, "holder parked forever");
    // Second independent task: finds the lock held, defers on it.
    let r = rt.call(c, stuck, &[]).unwrap();
    assert_eq!(r, None, "second invocation queued behind the lock");
    assert!(rt.is_quiescent());
    let _ = rt.migrate_object(c, NodeId(1));
}

#[test]
#[should_panic(expected = "live activations")]
fn migration_refuses_live_activations() {
    // An unlocked object whose method is parked forever: moving it would
    // strand the suspended activation's `self`.
    let mut pb = ProgramBuilder::new();
    let quiet = pb.class("Quiet", false);
    let silent = pb.method(quiet, "silent", 0, |mb| mb.halt());
    let cell = pb.class("FreeCell", false);
    let peer = pb.field(cell, "peer");
    let stuck = pb.method(cell, "stuck", 0, |mb| {
        let p = mb.get_field(peer);
        let s = mb.invoke_into(p, silent, &[]);
        let v = mb.touch_get(s);
        mb.reply(v);
    });
    let p = pb.finish();
    let mut rt =
        Runtime::new(p, 2, CostModel::cm5(), ExecMode::Hybrid, InterfaceSet::Full).unwrap();
    let q = rt.alloc_object_by_name("Quiet", NodeId(1));
    let c = rt.alloc_object_by_name("FreeCell", NodeId(0));
    rt.set_field(c, peer, Value::Obj(q));
    let r = rt.call(c, stuck, &[]).unwrap();
    assert_eq!(r, None);
    let _ = rt.migrate_object(c, NodeId(1));
}
