//! Prompt trap propagation from send-time polls.
//!
//! Sending a message polls the sender's inbox (the active-message
//! discipline), and a handler that runs during that poll can trap. The
//! trap must abort the sender's execution at the send — it must not be
//! parked for the scheduler to notice later while the sender's method
//! keeps executing past the failed operation.

use hem_analysis::InterfaceSet;
use hem_core::{ExecMode, Runtime};
use hem_ir::{BinOp, LocalityHint, ProgramBuilder, Value};
use hem_machine::cost::CostModel;
use hem_machine::NodeId;

/// Node 0's driver sends to node 1, suspends, resumes, computes locally,
/// then sends again. Meanwhile a forwarded invocation of a trapping method
/// (array index out of range) arrives in node 0's inbox; the second send's
/// poll handles it. The trap must surface from that send: the driver's
/// `marker` write after the send must never execute.
#[test]
fn trap_in_send_poll_aborts_sender_promptly() {
    let mut pb = ProgramBuilder::new();

    let quiet = pb.class("Quiet", false);
    let echo = pb.method(quiet, "echo", 1, |mb| mb.reply(mb.arg(0)));
    let noop = pb.method(quiet, "noop", 0, |mb| mb.reply_nil());

    let boom_c = pb.class("Boom", false);
    let cells = pb.array_field(boom_c, "cells");
    let boom = pb.method(boom_c, "boom", 0, |mb| {
        let v = mb.get_elem(cells, 99i64); // trap: cells has one element
        mb.reply(v);
    });

    let driver = pb.class("Driver", false);
    let q = pb.field(driver, "q");
    let tgt = pb.field(driver, "tgt");
    let marker = pb.field(driver, "marker");
    let go = pb.method(driver, "go", 0, |mb| {
        let qv = mb.get_field(q);
        let tv = mb.get_field(tgt);
        let s = mb.slot();
        mb.invoke(Some(s), qv, echo, &[7i64.into()], LocalityHint::Unknown);
        mb.invoke(None, tv, boom, &[], LocalityHint::Unknown);
        mb.touch(&[s]);
        let v = mb.get_slot(s);
        // Local work: advance this node's clock past the forwarded boom
        // message's delivery time without yielding to the scheduler.
        let acc = mb.local();
        mb.mov(acc, v);
        mb.for_range(0i64, 400i64, |mb, _| {
            let t = mb.binl(BinOp::Add, acc, 1i64);
            mb.mov(acc, t);
        });
        // This send polls the inbox; handling the forwarded boom traps.
        mb.invoke(None, qv, noop, &[], LocalityHint::Unknown);
        // Must be unreachable: the trap aborts the context at the send.
        mb.set_field(marker, 1i64);
        mb.reply_nil();
    });

    let p = pb.finish();
    let mut rt =
        Runtime::new(p, 2, CostModel::cm5(), ExecMode::Hybrid, InterfaceSet::Full).unwrap();
    let qo = rt.alloc_object_by_name("Quiet", NodeId(1));
    let bo = rt.alloc_object_by_name("Boom", NodeId(1));
    rt.set_array(bo, cells, vec![Value::Int(0)]);
    // Move the boom target home to node 0; the driver keeps the stale
    // node-1 reference, so its request is forwarded back to node 0 and
    // arrives (delivery time past the driver's resume) while the driver is
    // deep in its local loop.
    rt.migrate_object(bo, NodeId(0));
    let d = rt.alloc_object_by_name("Driver", NodeId(0));
    rt.set_field(d, q, Value::Obj(qo));
    rt.set_field(d, tgt, Value::Obj(bo));
    rt.set_field(d, marker, Value::Int(0));

    let err = rt.call(d, go, &[]).expect_err("boom must trap the run");
    let msg = format!("{err}");
    assert!(
        msg.contains("array index 99"),
        "trap is the handler's, not a secondary failure: {msg}"
    );
    assert_eq!(
        rt.get_field(d, marker),
        Value::Int(0),
        "driver kept executing past the trapping send"
    );
}

/// Same shape, but the trapping handler runs from the scheduler's own
/// dispatch (no send in flight): the trap still surfaces from `call`.
#[test]
fn trap_in_scheduled_handler_propagates() {
    let mut pb = ProgramBuilder::new();
    let boom_c = pb.class("Boom", false);
    let cells = pb.array_field(boom_c, "cells");
    let boom = pb.method(boom_c, "boom", 0, |mb| {
        let v = mb.get_elem(cells, 99i64);
        mb.reply(v);
    });
    let driver = pb.class("Driver", false);
    let tgt = pb.field(driver, "tgt");
    let go = pb.method(driver, "go", 0, |mb| {
        let tv = mb.get_field(tgt);
        mb.invoke(None, tv, boom, &[], LocalityHint::Unknown);
        mb.reply_nil();
    });
    let p = pb.finish();
    let mut rt =
        Runtime::new(p, 2, CostModel::cm5(), ExecMode::Hybrid, InterfaceSet::Full).unwrap();
    let bo = rt.alloc_object_by_name("Boom", NodeId(1));
    rt.set_array(bo, cells, vec![Value::Int(0)]);
    let d = rt.alloc_object_by_name("Driver", NodeId(0));
    rt.set_field(d, tgt, Value::Obj(bo));
    let err = rt.call(d, go, &[]).expect_err("boom must trap the run");
    assert!(format!("{err}").contains("array index 99"));
}
