//! Prompt trap propagation from send-time polls.
//!
//! Sending a message polls the sender's inbox (the active-message
//! discipline), and a handler that runs during that poll can trap. The
//! trap must abort the sender's execution at the send — it must not be
//! parked for the scheduler to notice later while the sender's method
//! keeps executing past the failed operation.
//!
//! A poll only services messages that had *arrived by the start of the
//! current event* (`poll_floor`): an event is an atomic action at its
//! dispatch time, and mid-event clock advance is cost accounting, not
//! observable time. A message delivered after the event began waits for
//! its own scheduler step — that rule is what makes nested handling a
//! pure function of simulated state, independent of host execution
//! order and of the sharded executor's node partition.

use hem_analysis::InterfaceSet;
use hem_core::{ExecMode, Runtime};
use hem_ir::{BinOp, LocalityHint, ProgramBuilder, Value};
use hem_machine::cost::CostModel;
use hem_machine::fault::{FaultPlan, LinkWindow, NodeWindow};
use hem_machine::NodeId;

/// Two messages are already due at node 0 when it dispatches: a `work`
/// invocation (inbox head) and, right behind it, an invocation of a
/// trapping method (array index out of range). The `work` handler marks
/// that it started, then sends — the send's poll handles the trapping
/// message, and the trap must surface from that send: the handler's
/// `marker` write after it must never execute.
#[test]
fn trap_in_send_poll_aborts_sender_promptly() {
    let mut pb = ProgramBuilder::new();

    let quiet = pb.class("Quiet", false);
    let noop = pb.method(quiet, "noop", 0, |mb| mb.reply_nil());

    let boom_c = pb.class("Boom", false);
    let cells = pb.array_field(boom_c, "cells");
    let boom = pb.method(boom_c, "boom", 0, |mb| {
        let v = mb.get_elem(cells, 99i64); // trap: cells has one element
        mb.reply(v);
    });

    let work_c = pb.class("Work", false);
    let wq = pb.field(work_c, "q");
    let started = pb.field(work_c, "started");
    let marker = pb.field(work_c, "marker");
    let work = pb.method(work_c, "work", 0, |mb| {
        mb.set_field(started, 1i64);
        // This send polls the inbox; the boom message behind this one is
        // already due (it arrived before this event began), so the poll
        // handles it and its trap surfaces here.
        let qv = mb.get_field(wq);
        mb.invoke(None, qv, noop, &[], LocalityHint::Unknown);
        // Must be unreachable: the trap aborts the context at the send.
        mb.set_field(marker, 1i64);
        mb.reply_nil();
    });

    let kick_c = pb.class("Kicker", false);
    let kw = pb.field(kick_c, "w");
    let kb = pb.field(kick_c, "b");
    let kick = pb.method(kick_c, "kick", 0, |mb| {
        let wv = mb.get_field(kw);
        let bv = mb.get_field(kb);
        mb.invoke(None, wv, work, &[], LocalityHint::Unknown);
        mb.invoke(None, bv, boom, &[], LocalityHint::Unknown);
        mb.reply_nil();
    });

    let driver = pb.class("Driver", false);
    let dk = pb.field(driver, "k");
    let go = pb.method(driver, "go", 0, |mb| {
        let kv = mb.get_field(dk);
        mb.invoke(None, kv, kick, &[], LocalityHint::Unknown);
        // Long local work: push node 0's clock far past both deliveries,
        // so when this root invocation finishes, the work and boom
        // messages are *both* due at node 0's next dispatch.
        let acc = mb.local();
        mb.mov(acc, 0i64);
        mb.for_range(0i64, 2_000i64, |mb, _| {
            let t = mb.binl(BinOp::Add, acc, 1i64);
            mb.mov(acc, t);
        });
        mb.reply_nil();
    });

    let p = pb.finish();
    let mut rt =
        Runtime::new(p, 2, CostModel::cm5(), ExecMode::Hybrid, InterfaceSet::Full).unwrap();
    let qo = rt.alloc_object_by_name("Quiet", NodeId(1));
    let bo = rt.alloc_object_by_name("Boom", NodeId(0));
    rt.set_array(bo, cells, vec![Value::Int(0)]);
    let wo = rt.alloc_object_by_name("Work", NodeId(0));
    rt.set_field(wo, wq, Value::Obj(qo));
    rt.set_field(wo, started, Value::Int(0));
    rt.set_field(wo, marker, Value::Int(0));
    let ko = rt.alloc_object_by_name("Kicker", NodeId(1));
    rt.set_field(ko, kw, Value::Obj(wo));
    rt.set_field(ko, kb, Value::Obj(bo));
    let d = rt.alloc_object_by_name("Driver", NodeId(0));
    rt.set_field(d, dk, Value::Obj(ko));

    let err = rt.call(d, go, &[]).expect_err("boom must trap the run");
    let msg = format!("{err}");
    assert!(
        msg.contains("array index 99"),
        "trap is the handler's, not a secondary failure: {msg}"
    );
    assert_eq!(
        rt.get_field(wo, started),
        Value::Int(1),
        "the work handler was dispatched before the boom message"
    );
    assert_eq!(
        rt.get_field(wo, marker),
        Value::Int(0),
        "work handler kept executing past the trapping send"
    );
}

/// A message that arrives *after* the current event began is not nested
/// into a later send's poll, even if the node's clock has run past its
/// delivery time: it waits for its own scheduler step. The driver's
/// method runs to completion past the send, and the trap surfaces from
/// the message's own dispatch. (Before `poll_floor`, the send would have
/// handled it nested — behavior that depended on host execution order
/// and broke the sharded executor's bit-identity.)
#[test]
fn late_arrival_waits_for_its_own_step() {
    let mut pb = ProgramBuilder::new();

    let quiet = pb.class("Quiet", false);
    let echo = pb.method(quiet, "echo", 1, |mb| mb.reply(mb.arg(0)));
    let noop = pb.method(quiet, "noop", 0, |mb| mb.reply_nil());

    let boom_c = pb.class("Boom", false);
    let cells = pb.array_field(boom_c, "cells");
    let boom = pb.method(boom_c, "boom", 0, |mb| {
        let v = mb.get_elem(cells, 99i64); // trap: cells has one element
        mb.reply(v);
    });

    let driver = pb.class("Driver", false);
    let q = pb.field(driver, "q");
    let tgt = pb.field(driver, "tgt");
    let marker = pb.field(driver, "marker");
    let go = pb.method(driver, "go", 0, |mb| {
        let qv = mb.get_field(q);
        let tv = mb.get_field(tgt);
        let s = mb.slot();
        mb.invoke(Some(s), qv, echo, &[7i64.into()], LocalityHint::Unknown);
        mb.invoke(None, tv, boom, &[], LocalityHint::Unknown);
        mb.touch(&[s]);
        let v = mb.get_slot(s);
        // Local work: advance this node's clock past the forwarded boom
        // message's delivery time without yielding to the scheduler.
        let acc = mb.local();
        mb.mov(acc, v);
        mb.for_range(0i64, 400i64, |mb, _| {
            let t = mb.binl(BinOp::Add, acc, 1i64);
            mb.mov(acc, t);
        });
        // The boom message arrived mid-event (after this resume step
        // began), so this send's poll must NOT handle it.
        mb.invoke(None, qv, noop, &[], LocalityHint::Unknown);
        mb.set_field(marker, 1i64);
        mb.reply_nil();
    });

    let p = pb.finish();
    let mut rt =
        Runtime::new(p, 2, CostModel::cm5(), ExecMode::Hybrid, InterfaceSet::Full).unwrap();
    let qo = rt.alloc_object_by_name("Quiet", NodeId(1));
    let bo = rt.alloc_object_by_name("Boom", NodeId(1));
    rt.set_array(bo, cells, vec![Value::Int(0)]);
    // Move the boom target home to node 0; the driver keeps the stale
    // node-1 reference, so its request is forwarded back to node 0 and
    // arrives (delivery time past the driver's resume) while the driver is
    // deep in its local loop.
    rt.migrate_object(bo, NodeId(0));
    let d = rt.alloc_object_by_name("Driver", NodeId(0));
    rt.set_field(d, q, Value::Obj(qo));
    rt.set_field(d, tgt, Value::Obj(bo));
    rt.set_field(d, marker, Value::Int(0));

    let err = rt.call(d, go, &[]).expect_err("boom must trap the run");
    let msg = format!("{err}");
    assert!(
        msg.contains("array index 99"),
        "trap is the handler's, not a secondary failure: {msg}"
    );
    assert_eq!(
        rt.get_field(d, marker),
        Value::Int(1),
        "the late arrival must wait for its own step, not abort the driver"
    );
}

/// Same shape, but the trapping handler runs from the scheduler's own
/// dispatch (no send in flight): the trap still surfaces from `call`.
#[test]
fn trap_in_scheduled_handler_propagates() {
    let mut pb = ProgramBuilder::new();
    let boom_c = pb.class("Boom", false);
    let cells = pb.array_field(boom_c, "cells");
    let boom = pb.method(boom_c, "boom", 0, |mb| {
        let v = mb.get_elem(cells, 99i64);
        mb.reply(v);
    });
    let driver = pb.class("Driver", false);
    let tgt = pb.field(driver, "tgt");
    let go = pb.method(driver, "go", 0, |mb| {
        let tv = mb.get_field(tgt);
        mb.invoke(None, tv, boom, &[], LocalityHint::Unknown);
        mb.reply_nil();
    });
    let p = pb.finish();
    let mut rt =
        Runtime::new(p, 2, CostModel::cm5(), ExecMode::Hybrid, InterfaceSet::Full).unwrap();
    let bo = rt.alloc_object_by_name("Boom", NodeId(1));
    rt.set_array(bo, cells, vec![Value::Int(0)]);
    let d = rt.alloc_object_by_name("Driver", NodeId(0));
    rt.set_field(d, tgt, Value::Obj(bo));
    let err = rt.call(d, go, &[]).expect_err("boom must trap the run");
    assert!(format!("{err}").contains("array index 99"));
}

/// A reply lost to a link partition must be recovered by the transport's
/// retransmission — it must not surface as a trap, a hang, or a parked
/// continuation. The driver invokes a remote echo and touches the result
/// while the 1→0 link is partitioned; the call still completes with the
/// echoed value once retransmits punch through the closed window.
#[test]
fn dropped_reply_is_retransmitted_not_trapped() {
    let mut pb = ProgramBuilder::new();
    let quiet = pb.class("Quiet", false);
    let echo = pb.method(quiet, "echo", 1, |mb| mb.reply(mb.arg(0)));
    let driver = pb.class("Driver", false);
    let q = pb.field(driver, "q");
    let out = pb.field(driver, "out");
    let go = pb.method(driver, "go", 0, |mb| {
        let qv = mb.get_field(q);
        let s = mb.slot();
        mb.invoke(Some(s), qv, echo, &[41i64.into()], LocalityHint::Unknown);
        mb.touch(&[s]);
        let v = mb.get_slot(s);
        let w = mb.binl(BinOp::Add, v, 1i64);
        mb.set_field(out, w);
        mb.reply_nil();
    });
    let p = pb.finish();
    let mut rt =
        Runtime::new(p, 2, CostModel::cm5(), ExecMode::Hybrid, InterfaceSet::Full).unwrap();
    // Close the reply direction (1→0) for a window wide enough to swallow
    // the first reply and at least its first retransmission; request
    // traffic (0→1) is unaffected.
    let mut plan = FaultPlan::seeded(7);
    plan.partitions = vec![LinkWindow {
        src: Some(NodeId(1)),
        dest: Some(NodeId(0)),
        from: 0,
        until: 2_000,
    }];
    rt.set_fault_plan(plan);
    let qo = rt.alloc_object_by_name("Quiet", NodeId(1));
    let d = rt.alloc_object_by_name("Driver", NodeId(0));
    rt.set_field(d, q, Value::Obj(qo));
    rt.set_field(d, out, Value::Int(0));

    rt.call(d, go, &[])
        .expect("partition loss must be recovered, not trapped");
    assert_eq!(
        rt.get_field(d, out),
        Value::Int(42),
        "echoed value survived the loss"
    );
    let stats = rt.stats();
    assert!(
        stats.net.faults.partition_drops > 0,
        "the window actually dropped frames"
    );
    assert!(
        stats.totals().retransmits > 0,
        "recovery came from retransmission"
    );
}

/// A node stalled well past the retransmission timeout still delivers its
/// deferred messages — and the stalled frame, being in flight the whole
/// time, is never redundantly retransmitted. The deferred invocation's
/// trap must surface exactly as it would on a healthy wire.
#[test]
fn stalled_node_delivers_deferred_trap() {
    let mut pb = ProgramBuilder::new();
    let boom_c = pb.class("Boom", false);
    let cells = pb.array_field(boom_c, "cells");
    let boom = pb.method(boom_c, "boom", 0, |mb| {
        let v = mb.get_elem(cells, 99i64);
        mb.reply(v);
    });
    let driver = pb.class("Driver", false);
    let tgt = pb.field(driver, "tgt");
    let go = pb.method(driver, "go", 0, |mb| {
        let tv = mb.get_field(tgt);
        mb.invoke(None, tv, boom, &[], LocalityHint::Unknown);
        mb.reply_nil();
    });
    let p = pb.finish();
    let mut rt =
        Runtime::new(p, 2, CostModel::cm5(), ExecMode::Hybrid, InterfaceSet::Full).unwrap();
    // Stall node 1 far past the cm5 retransmission timeout (~1160 cycles):
    // the boom request sits deferred for 8000 cycles while the sender's
    // timer fires repeatedly.
    let mut plan = FaultPlan::seeded(11);
    plan.stalls = vec![NodeWindow {
        node: NodeId(1),
        from: 0,
        until: 8_000,
    }];
    rt.set_fault_plan(plan);
    let bo = rt.alloc_object_by_name("Boom", NodeId(1));
    rt.set_array(bo, cells, vec![Value::Int(0)]);
    let d = rt.alloc_object_by_name("Driver", NodeId(0));
    rt.set_field(d, tgt, Value::Obj(bo));

    let err = rt
        .call(d, go, &[])
        .expect_err("deferred boom must still trap");
    assert!(
        format!("{err}").contains("array index 99"),
        "the deferred handler's own trap surfaced: {err}"
    );
    let stats = rt.stats();
    assert!(
        stats.net.faults.stall_defers > 0,
        "the stall actually deferred frames"
    );
    assert_eq!(
        stats.totals().retransmits,
        0,
        "an in-flight (stalled) frame is never redundantly retransmitted"
    );
}
