//! Prompt trap propagation from send-time polls.
//!
//! Sending a message polls the sender's inbox (the active-message
//! discipline), and a handler that runs during that poll can trap. The
//! trap must abort the sender's execution at the send — it must not be
//! parked for the scheduler to notice later while the sender's method
//! keeps executing past the failed operation.

use hem_analysis::InterfaceSet;
use hem_core::{ExecMode, Runtime};
use hem_ir::{BinOp, LocalityHint, ProgramBuilder, Value};
use hem_machine::cost::CostModel;
use hem_machine::fault::{FaultPlan, LinkWindow, NodeWindow};
use hem_machine::NodeId;

/// Node 0's driver sends to node 1, suspends, resumes, computes locally,
/// then sends again. Meanwhile a forwarded invocation of a trapping method
/// (array index out of range) arrives in node 0's inbox; the second send's
/// poll handles it. The trap must surface from that send: the driver's
/// `marker` write after the send must never execute.
#[test]
fn trap_in_send_poll_aborts_sender_promptly() {
    let mut pb = ProgramBuilder::new();

    let quiet = pb.class("Quiet", false);
    let echo = pb.method(quiet, "echo", 1, |mb| mb.reply(mb.arg(0)));
    let noop = pb.method(quiet, "noop", 0, |mb| mb.reply_nil());

    let boom_c = pb.class("Boom", false);
    let cells = pb.array_field(boom_c, "cells");
    let boom = pb.method(boom_c, "boom", 0, |mb| {
        let v = mb.get_elem(cells, 99i64); // trap: cells has one element
        mb.reply(v);
    });

    let driver = pb.class("Driver", false);
    let q = pb.field(driver, "q");
    let tgt = pb.field(driver, "tgt");
    let marker = pb.field(driver, "marker");
    let go = pb.method(driver, "go", 0, |mb| {
        let qv = mb.get_field(q);
        let tv = mb.get_field(tgt);
        let s = mb.slot();
        mb.invoke(Some(s), qv, echo, &[7i64.into()], LocalityHint::Unknown);
        mb.invoke(None, tv, boom, &[], LocalityHint::Unknown);
        mb.touch(&[s]);
        let v = mb.get_slot(s);
        // Local work: advance this node's clock past the forwarded boom
        // message's delivery time without yielding to the scheduler.
        let acc = mb.local();
        mb.mov(acc, v);
        mb.for_range(0i64, 400i64, |mb, _| {
            let t = mb.binl(BinOp::Add, acc, 1i64);
            mb.mov(acc, t);
        });
        // This send polls the inbox; handling the forwarded boom traps.
        mb.invoke(None, qv, noop, &[], LocalityHint::Unknown);
        // Must be unreachable: the trap aborts the context at the send.
        mb.set_field(marker, 1i64);
        mb.reply_nil();
    });

    let p = pb.finish();
    let mut rt =
        Runtime::new(p, 2, CostModel::cm5(), ExecMode::Hybrid, InterfaceSet::Full).unwrap();
    let qo = rt.alloc_object_by_name("Quiet", NodeId(1));
    let bo = rt.alloc_object_by_name("Boom", NodeId(1));
    rt.set_array(bo, cells, vec![Value::Int(0)]);
    // Move the boom target home to node 0; the driver keeps the stale
    // node-1 reference, so its request is forwarded back to node 0 and
    // arrives (delivery time past the driver's resume) while the driver is
    // deep in its local loop.
    rt.migrate_object(bo, NodeId(0));
    let d = rt.alloc_object_by_name("Driver", NodeId(0));
    rt.set_field(d, q, Value::Obj(qo));
    rt.set_field(d, tgt, Value::Obj(bo));
    rt.set_field(d, marker, Value::Int(0));

    let err = rt.call(d, go, &[]).expect_err("boom must trap the run");
    let msg = format!("{err}");
    assert!(
        msg.contains("array index 99"),
        "trap is the handler's, not a secondary failure: {msg}"
    );
    assert_eq!(
        rt.get_field(d, marker),
        Value::Int(0),
        "driver kept executing past the trapping send"
    );
}

/// Same shape, but the trapping handler runs from the scheduler's own
/// dispatch (no send in flight): the trap still surfaces from `call`.
#[test]
fn trap_in_scheduled_handler_propagates() {
    let mut pb = ProgramBuilder::new();
    let boom_c = pb.class("Boom", false);
    let cells = pb.array_field(boom_c, "cells");
    let boom = pb.method(boom_c, "boom", 0, |mb| {
        let v = mb.get_elem(cells, 99i64);
        mb.reply(v);
    });
    let driver = pb.class("Driver", false);
    let tgt = pb.field(driver, "tgt");
    let go = pb.method(driver, "go", 0, |mb| {
        let tv = mb.get_field(tgt);
        mb.invoke(None, tv, boom, &[], LocalityHint::Unknown);
        mb.reply_nil();
    });
    let p = pb.finish();
    let mut rt =
        Runtime::new(p, 2, CostModel::cm5(), ExecMode::Hybrid, InterfaceSet::Full).unwrap();
    let bo = rt.alloc_object_by_name("Boom", NodeId(1));
    rt.set_array(bo, cells, vec![Value::Int(0)]);
    let d = rt.alloc_object_by_name("Driver", NodeId(0));
    rt.set_field(d, tgt, Value::Obj(bo));
    let err = rt.call(d, go, &[]).expect_err("boom must trap the run");
    assert!(format!("{err}").contains("array index 99"));
}

/// A reply lost to a link partition must be recovered by the transport's
/// retransmission — it must not surface as a trap, a hang, or a parked
/// continuation. The driver invokes a remote echo and touches the result
/// while the 1→0 link is partitioned; the call still completes with the
/// echoed value once retransmits punch through the closed window.
#[test]
fn dropped_reply_is_retransmitted_not_trapped() {
    let mut pb = ProgramBuilder::new();
    let quiet = pb.class("Quiet", false);
    let echo = pb.method(quiet, "echo", 1, |mb| mb.reply(mb.arg(0)));
    let driver = pb.class("Driver", false);
    let q = pb.field(driver, "q");
    let out = pb.field(driver, "out");
    let go = pb.method(driver, "go", 0, |mb| {
        let qv = mb.get_field(q);
        let s = mb.slot();
        mb.invoke(Some(s), qv, echo, &[41i64.into()], LocalityHint::Unknown);
        mb.touch(&[s]);
        let v = mb.get_slot(s);
        let w = mb.binl(BinOp::Add, v, 1i64);
        mb.set_field(out, w);
        mb.reply_nil();
    });
    let p = pb.finish();
    let mut rt =
        Runtime::new(p, 2, CostModel::cm5(), ExecMode::Hybrid, InterfaceSet::Full).unwrap();
    // Close the reply direction (1→0) for a window wide enough to swallow
    // the first reply and at least its first retransmission; request
    // traffic (0→1) is unaffected.
    let mut plan = FaultPlan::seeded(7);
    plan.partitions = vec![LinkWindow {
        src: Some(NodeId(1)),
        dest: Some(NodeId(0)),
        from: 0,
        until: 2_000,
    }];
    rt.set_fault_plan(plan);
    let qo = rt.alloc_object_by_name("Quiet", NodeId(1));
    let d = rt.alloc_object_by_name("Driver", NodeId(0));
    rt.set_field(d, q, Value::Obj(qo));
    rt.set_field(d, out, Value::Int(0));

    rt.call(d, go, &[])
        .expect("partition loss must be recovered, not trapped");
    assert_eq!(
        rt.get_field(d, out),
        Value::Int(42),
        "echoed value survived the loss"
    );
    let stats = rt.stats();
    assert!(
        stats.net.faults.partition_drops > 0,
        "the window actually dropped frames"
    );
    assert!(
        stats.totals().retransmits > 0,
        "recovery came from retransmission"
    );
}

/// A node stalled well past the retransmission timeout still delivers its
/// deferred messages — and the stalled frame, being in flight the whole
/// time, is never redundantly retransmitted. The deferred invocation's
/// trap must surface exactly as it would on a healthy wire.
#[test]
fn stalled_node_delivers_deferred_trap() {
    let mut pb = ProgramBuilder::new();
    let boom_c = pb.class("Boom", false);
    let cells = pb.array_field(boom_c, "cells");
    let boom = pb.method(boom_c, "boom", 0, |mb| {
        let v = mb.get_elem(cells, 99i64);
        mb.reply(v);
    });
    let driver = pb.class("Driver", false);
    let tgt = pb.field(driver, "tgt");
    let go = pb.method(driver, "go", 0, |mb| {
        let tv = mb.get_field(tgt);
        mb.invoke(None, tv, boom, &[], LocalityHint::Unknown);
        mb.reply_nil();
    });
    let p = pb.finish();
    let mut rt =
        Runtime::new(p, 2, CostModel::cm5(), ExecMode::Hybrid, InterfaceSet::Full).unwrap();
    // Stall node 1 far past the cm5 retransmission timeout (~1160 cycles):
    // the boom request sits deferred for 8000 cycles while the sender's
    // timer fires repeatedly.
    let mut plan = FaultPlan::seeded(11);
    plan.stalls = vec![NodeWindow {
        node: NodeId(1),
        from: 0,
        until: 8_000,
    }];
    rt.set_fault_plan(plan);
    let bo = rt.alloc_object_by_name("Boom", NodeId(1));
    rt.set_array(bo, cells, vec![Value::Int(0)]);
    let d = rt.alloc_object_by_name("Driver", NodeId(0));
    rt.set_field(d, tgt, Value::Obj(bo));

    let err = rt
        .call(d, go, &[])
        .expect_err("deferred boom must still trap");
    assert!(
        format!("{err}").contains("array index 99"),
        "the deferred handler's own trap surfaced: {err}"
    );
    let stats = rt.stats();
    assert!(
        stats.net.faults.stall_defers > 0,
        "the stall actually deferred frames"
    );
    assert_eq!(
        stats.totals().retransmits,
        0,
        "an in-flight (stalled) frame is never redundantly retransmitted"
    );
}
