//! Protocol edge cases: deep forwarding chains, trap paths, depth limits,
//! trace contents, lock grant re-queuing, and interface restrictions over
//! remote wrappers.

use hem_analysis::InterfaceSet;
use hem_core::{ExecMode, Runtime, TraceEvent};
use hem_ir::{BinOp, FieldId, LocalityHint, MethodId, Program, ProgramBuilder, Value};
use hem_machine::cost::CostModel;
use hem_machine::NodeId;

fn rt_for(p: Program, nodes: u32, mode: ExecMode, ifaces: InterfaceSet) -> Runtime {
    Runtime::new(p, nodes, CostModel::cm5(), mode, ifaces).expect("valid program")
}

/// A forwarding chain of length `k` across a ring of objects: each hop
/// forwards to the next object's `hop` method, the last replies.
fn chain_program() -> (Program, MethodId, MethodId, FieldId) {
    let mut pb = ProgramBuilder::new();
    let c = pb.class("Ring", false);
    let next = pb.field(c, "next");
    let hop = pb.declare(c, "hop", 1);
    pb.define(hop, |mb| {
        let k = mb.arg(0);
        let done = mb.binl(BinOp::Le, k, 0);
        mb.if_else(
            done,
            |mb| mb.reply(999i64),
            |mb| {
                let n = mb.get_field(next);
                let k1 = mb.binl(BinOp::Sub, k, 1);
                mb.forward(n, hop, &[k1.into()], LocalityHint::Unknown);
            },
        );
    });
    let root = pb.method(c, "root", 1, |mb| {
        let n = mb.get_field(next);
        let s = mb.invoke_into(n, hop, &[mb.arg(0).into()]);
        let v = mb.touch_get(s);
        mb.reply(v);
    });
    (pb.finish(), root, hop, next)
}

#[test]
fn long_forward_chain_across_ring_of_nodes() {
    // 12 hops around a 4-node ring: the continuation is forwarded through
    // many remote messages and the final responder replies straight to
    // the root caller's context.
    let (p, root, _hop, next) = chain_program();
    for mode in [ExecMode::Hybrid, ExecMode::ParallelOnly] {
        let mut rt = rt_for(p.clone(), 4, mode, InterfaceSet::Full);
        let objs: Vec<_> = (0..4)
            .map(|n| rt.alloc_object_by_name("Ring", NodeId(n)))
            .collect();
        for (i, o) in objs.iter().enumerate() {
            rt.set_field(*o, next, Value::Obj(objs[(i + 1) % 4]));
        }
        let r = rt.call(objs[0], root, &[Value::Int(12)]).unwrap();
        assert_eq!(r, Some(Value::Int(999)), "{mode}");
        assert_eq!(rt.live_contexts(), 0, "{mode}");
        if mode == ExecMode::Hybrid {
            let t = rt.stats().totals();
            // Every remote hop is one forwarded message; only one reply
            // crosses the wire at the end.
            assert_eq!(t.replies_sent, 1, "single terminal reply");
            assert!(t.msgs_sent >= 12, "one request per hop: {}", t.msgs_sent);
        }
    }
}

#[test]
fn long_local_forward_chain_stays_on_stack() {
    let (p, root, _hop, next) = chain_program();
    let mut rt = rt_for(p, 1, ExecMode::Hybrid, InterfaceSet::Full);
    let a = rt.alloc_object_by_name("Ring", NodeId(0));
    rt.set_field(a, next, Value::Obj(a)); // self-ring
    let r = rt.call(a, root, &[Value::Int(40)]).unwrap();
    assert_eq!(r, Some(Value::Int(999)));
    let t = rt.stats().totals();
    assert_eq!(t.ctx_alloc, 0, "whole 40-hop chain on the stack");
    assert_eq!(t.conts_created, 0);
    assert_eq!(t.stack_forwards, 40);
}

#[test]
fn nb_depth_overflow_traps_cleanly() {
    // A non-blocking chain deeper than the host-stack budget cannot be
    // diverted (a C stack would overflow too) — it must trap, not crash.
    let mut pb = ProgramBuilder::new();
    let c = pb.class("C", false);
    let down = pb.declare(c, "down", 1);
    pb.define(down, |mb| {
        let n = mb.arg(0);
        let z = mb.binl(BinOp::Le, n, 0);
        mb.if_else(
            z,
            |mb| mb.reply(0i64),
            |mb| {
                let me = mb.self_ref();
                let n1 = mb.binl(BinOp::Sub, n, 1);
                let s = mb.invoke_local(me, down, &[n1.into()]);
                let v = mb.touch_get(s);
                mb.reply(v);
            },
        );
    });
    let p = pb.finish();
    let mut rt = rt_for(p, 1, ExecMode::Hybrid, InterfaceSet::Full);
    rt.max_seq_depth = 64;
    let o = rt.alloc_object_by_name("C", NodeId(0));
    let e = rt.call(o, down, &[Value::Int(1000)]).unwrap_err();
    assert!(e.what.contains("depth limit"), "{e}");
}

#[test]
fn trace_records_the_adaptation_story() {
    let (p, root, _hop, next) = chain_program();
    let mut rt = rt_for(p, 2, ExecMode::Hybrid, InterfaceSet::Full);
    let a = rt.alloc_object_by_name("Ring", NodeId(0));
    let b = rt.alloc_object_by_name("Ring", NodeId(1));
    rt.set_field(a, next, Value::Obj(b));
    rt.set_field(b, next, Value::Obj(a));
    rt.enable_trace();
    rt.call(a, root, &[Value::Int(4)]).unwrap();
    let trace = rt.take_trace();
    assert!(!trace.is_empty());
    let has = |f: &dyn Fn(&TraceEvent) -> bool| trace.iter().any(|r| f(&r.event));
    assert!(
        has(&|e| matches!(e, TraceEvent::Fallback { .. })),
        "root fell back"
    );
    assert!(has(&|e| matches!(
        e,
        TraceEvent::MsgSent {
            cause: hem_core::MsgCause::Request,
            ..
        }
    )));
    assert!(has(&|e| matches!(
        e,
        TraceEvent::MsgSent {
            cause: hem_core::MsgCause::Reply,
            ..
        }
    )));
    assert!(
        has(&|e| matches!(
            e,
            TraceEvent::MsgHandled {
                cause: hem_core::MsgCause::Request,
                ..
            }
        )),
        "every consumed message leaves a MsgHandled record"
    );
    assert!(
        has(&|e| matches!(e, TraceEvent::ContMaterialized { .. })),
        "off-node forward materialized the continuation"
    );
    assert!(has(&|e| matches!(e, TraceEvent::Resume { .. })));
    // Times are monotone per node.
    for n in 0..2u32 {
        let times: Vec<u64> = trace
            .iter()
            .filter(|r| match r.event {
                TraceEvent::Fallback { node, .. }
                | TraceEvent::StackComplete { node, .. }
                | TraceEvent::Resume { node, .. }
                | TraceEvent::Suspend { node, .. } => node == NodeId(n),
                _ => false,
            })
            .map(|r| r.at)
            .collect();
        assert!(
            times.windows(2).all(|w| w[0] <= w[1]),
            "node {n} times {times:?}"
        );
    }
}

#[test]
fn cp_only_interface_works_over_remote_wrappers() {
    // Under the CP-only restriction every wrapper invocation uses proxy
    // caller-info; results and conservation must be unaffected.
    let (p, root, _hop, next) = chain_program();
    let mut rt = rt_for(p, 3, ExecMode::Hybrid, InterfaceSet::CpOnly);
    let objs: Vec<_> = (0..3)
        .map(|n| rt.alloc_object_by_name("Ring", NodeId(n)))
        .collect();
    for (i, o) in objs.iter().enumerate() {
        rt.set_field(*o, next, Value::Obj(objs[(i + 1) % 3]));
    }
    let r = rt.call(objs[0], root, &[Value::Int(7)]).unwrap();
    assert_eq!(r, Some(Value::Int(999)));
    let t = rt.stats().totals();
    assert!(t.proxy_conts > 0, "CP wrappers used proxy contexts");
    assert_eq!(rt.live_contexts(), 0);
}

#[test]
fn lock_grant_requeues_when_stolen() {
    // A locked cell with a long-held lock: grants that find the lock
    // re-taken go back on the queue; all bumps still apply exactly once.
    let mut pb = ProgramBuilder::new();
    let gate_c = pb.class("Gate", false);
    let zero = pb.method(gate_c, "zero", 0, |mb| mb.reply(0i64));
    let cell = pb.class("Cell", true);
    let n = pb.field(cell, "n");
    let peer = pb.field(cell, "peer");
    let slow_bump = pb.method(cell, "slow_bump", 0, |mb| {
        let g = mb.get_field(peer);
        let s = mb.invoke_into(g, zero, &[]);
        let v = mb.touch_get(s);
        let cur = mb.get_field(n);
        let one = mb.binl(BinOp::Add, cur, 1);
        let nv = mb.binl(BinOp::Add, one, v);
        mb.set_field(n, nv);
        mb.reply_nil();
    });
    let fast_bump = pb.method(cell, "fast_bump", 0, |mb| {
        let cur = mb.get_field(n);
        let nv = mb.binl(BinOp::Add, cur, 1);
        mb.set_field(n, nv);
        mb.reply_nil();
    });
    let m = pb.class("M", false);
    let cf = pb.field(m, "cell");
    let go = pb.method(m, "go", 0, |mb| {
        let c = mb.get_field(cf);
        let join = mb.slot();
        mb.join_init(join, 6i64);
        for i in 0..6 {
            let target = if i % 2 == 0 { slow_bump } else { fast_bump };
            mb.invoke(Some(join), c, target, &[], LocalityHint::Unknown);
        }
        mb.touch(&[join]);
        mb.reply_nil();
    });
    let p = pb.finish();
    for mode in [ExecMode::Hybrid, ExecMode::ParallelOnly] {
        let mut rt = rt_for(p.clone(), 3, mode, InterfaceSet::Full);
        let g = rt.alloc_object_by_name("Gate", NodeId(2));
        let c = rt.alloc_object_by_name("Cell", NodeId(1));
        rt.set_field(c, n, Value::Int(0));
        rt.set_field(c, peer, Value::Obj(g));
        let d = rt.alloc_object_by_name("M", NodeId(0));
        rt.set_field(d, cf, Value::Obj(c));
        rt.call(d, go, &[]).unwrap();
        assert_eq!(
            rt.get_field(c, n),
            Value::Int(6),
            "{mode}: exactly-once bumps"
        );
        assert_eq!(rt.live_contexts(), 0, "{mode}");
    }
}

#[test]
fn mixed_join_of_local_and_remote_members() {
    // A join whose members are a mix of synchronous stack completions and
    // remote replies must fire exactly when the last member lands.
    let mut pb = ProgramBuilder::new();
    let c = pb.class("C", false);
    let one = pb.method(c, "one", 0, |mb| mb.reply(1i64));
    let others = pb.array_field(c, "others");
    let go = pb.method(c, "go", 0, |mb| {
        let join = mb.slot();
        let n = mb.arr_len(others);
        let me = mb.self_ref();
        let total = mb.binl(BinOp::Add, n, 3);
        mb.join_init(join, total);
        // 3 local members...
        for _ in 0..3 {
            mb.invoke(Some(join), me, one, &[], LocalityHint::AlwaysLocal);
        }
        // ...plus one per remote peer.
        mb.for_range(0i64, n, |mb, k| {
            let o = mb.get_elem(others, k);
            mb.invoke(Some(join), o, one, &[], LocalityHint::Unknown);
        });
        mb.touch(&[join]);
        mb.reply(7i64);
    });
    let p = pb.finish();
    let mut rt = rt_for(p, 4, ExecMode::Hybrid, InterfaceSet::Full);
    let root = rt.alloc_object_by_name("C", NodeId(0));
    let peers: Vec<Value> = (1..4)
        .map(|n| Value::Obj(rt.alloc_object_by_name("C", NodeId(n))))
        .collect();
    rt.set_array(root, others, peers);
    let r = rt.call(root, go, &[]).unwrap();
    assert_eq!(r, Some(Value::Int(7)));
    assert_eq!(rt.live_contexts(), 0);
}

#[test]
fn store_root_continuation_traps() {
    let mut pb = ProgramBuilder::new();
    let c = pb.class("C", false);
    let f = pb.field(c, "w");
    let park = pb.method(c, "park", 0, |mb| {
        mb.store_cont(f);
        mb.halt();
    });
    let p = pb.finish();
    let mut rt = rt_for(p, 1, ExecMode::Hybrid, InterfaceSet::Full);
    let o = rt.alloc_object_by_name("C", NodeId(0));
    // Calling a continuation-storing method directly from the harness
    // gives it the root continuation, which cannot live in a field.
    let e = rt.call(o, park, &[]).unwrap_err();
    assert!(e.what.contains("root/discard continuation"), "{e}");
}
