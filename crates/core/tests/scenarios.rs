//! End-to-end scenarios exercising every mechanism of the hybrid model:
//! stack execution, fallback, remote invocation, forwarding, stored
//! continuations, joins, locks, and the parallel-only baseline.

use hem_analysis::{InterfaceSet, Schema};
use hem_core::{ExecMode, Runtime};
use hem_ir::{BinOp, FieldId, LocalityHint, MethodId, Program, ProgramBuilder, UnOp, Value};
use hem_machine::cost::CostModel;
use hem_machine::NodeId;

fn rt_with(program: Program, nodes: u32, mode: ExecMode, ifaces: InterfaceSet) -> Runtime {
    Runtime::new(program, nodes, CostModel::cm5(), mode, ifaces).expect("valid program")
}

// ---------- fib: pure non-blocking recursion ----------

fn fib_program() -> (Program, MethodId) {
    let mut pb = ProgramBuilder::new();
    let math = pb.class("Math", false);
    let fib = pb.declare(math, "fib", 1);
    pb.define(fib, |mb| {
        let n = mb.arg(0);
        let small = mb.binl(BinOp::Lt, n, 2);
        mb.if_else(
            small,
            |mb| mb.reply(n),
            |mb| {
                let me = mb.self_ref();
                let a = mb.binl(BinOp::Sub, n, 1);
                let b = mb.binl(BinOp::Sub, n, 2);
                let s1 = mb.invoke_local(me, fib, &[a.into()]);
                let s2 = mb.invoke_local(me, fib, &[b.into()]);
                mb.touch(&[s1, s2]);
                let x = mb.get_slot(s1);
                let y = mb.get_slot(s2);
                let r = mb.binl(BinOp::Add, x, y);
                mb.reply(r);
            },
        );
    });
    (pb.finish(), fib)
}

#[test]
fn fib_hybrid_runs_entirely_on_stack() {
    let (p, fib) = fib_program();
    let mut rt = rt_with(p, 1, ExecMode::Hybrid, InterfaceSet::Full);
    assert_eq!(rt.schemas().of(fib), Schema::NonBlocking);
    let o = rt.alloc_object_by_name("Math", NodeId(0));
    let r = rt.call(o, fib, &[Value::Int(15)]).unwrap();
    assert_eq!(r, Some(Value::Int(610)));
    let t = rt.stats().totals();
    assert_eq!(
        t.ctx_alloc, 0,
        "non-blocking recursion needs no heap contexts"
    );
    assert_eq!(t.fallbacks, 0);
    assert_eq!(t.par_invokes, 0);
    assert_eq!(t.msgs_sent, 0);
    assert!(
        t.stack_nb > 500,
        "every call completed on the stack: {}",
        t.stack_nb
    );
    assert_eq!(rt.live_contexts(), 0);
}

#[test]
fn fib_parallel_only_matches_but_allocates() {
    let (p, fib) = fib_program();
    let mut rt = rt_with(p, 1, ExecMode::ParallelOnly, InterfaceSet::Full);
    let o = rt.alloc_object_by_name("Math", NodeId(0));
    let r = rt.call(o, fib, &[Value::Int(15)]).unwrap();
    assert_eq!(r, Some(Value::Int(610)));
    let t = rt.stats().totals();
    assert!(
        t.ctx_alloc > 500,
        "heap context per invocation: {}",
        t.ctx_alloc
    );
    assert_eq!(t.ctx_alloc, t.ctx_free, "no context leaks");
    assert_eq!(rt.live_contexts(), 0);
}

#[test]
fn hybrid_is_cheaper_than_parallel_only_sequentially() {
    let (p, fib) = fib_program();
    let mut h = rt_with(p.clone(), 1, ExecMode::Hybrid, InterfaceSet::Full);
    let oh = h.alloc_object_by_name("Math", NodeId(0));
    h.call(oh, fib, &[Value::Int(15)]).unwrap();

    let mut par = rt_with(p, 1, ExecMode::ParallelOnly, InterfaceSet::Full);
    let op = par.alloc_object_by_name("Math", NodeId(0));
    par.call(op, fib, &[Value::Int(15)]).unwrap();

    assert!(
        h.makespan() * 3 < par.makespan(),
        "hybrid {} should be several times cheaper than parallel-only {}",
        h.makespan(),
        par.makespan()
    );
}

#[test]
fn interface_restriction_still_correct_but_slower() {
    let (p, fib) = fib_program();
    let mut results = Vec::new();
    let mut times = Vec::new();
    for ifc in [InterfaceSet::Full, InterfaceSet::MbCp, InterfaceSet::CpOnly] {
        let mut rt = rt_with(p.clone(), 1, ExecMode::Hybrid, ifc);
        let o = rt.alloc_object_by_name("Math", NodeId(0));
        results.push(rt.call(o, fib, &[Value::Int(12)]).unwrap());
        times.push(rt.makespan());
    }
    assert!(results.iter().all(|r| *r == Some(Value::Int(144))));
    assert!(
        times[0] <= times[1] && times[1] <= times[2],
        "more interfaces should not be slower: {times:?}"
    );
    assert!(times[0] < times[2], "NB fast path should beat CP-only");
}

// ---------- remote invocation & lazy context creation ----------

/// Two objects on two nodes; `Driver.go` calls `Echo.twice` remotely.
/// Returns (program, go, peer_field).
fn remote_program() -> (Program, MethodId, FieldId) {
    let mut pb = ProgramBuilder::new();
    let echo = pb.class("Echo", false);
    let twice = pb.method(echo, "twice", 1, |mb| {
        let r = mb.binl(BinOp::Mul, mb.arg(0), 2);
        mb.reply(r);
    });
    let driver = pb.class("Driver", false);
    let peer = pb.field(driver, "peer");
    let go = pb.method(driver, "go", 1, |mb| {
        let p = mb.get_field(peer);
        let s = mb.invoke_into(p, twice, &[mb.arg(0).into()]);
        let v = mb.touch_get(s);
        let r = mb.binl(BinOp::Add, v, 1);
        mb.reply(r);
    });
    (pb.finish(), go, peer)
}

#[test]
fn remote_invoke_falls_back_and_replies() {
    let (p, go, peer) = remote_program();
    let mut rt = rt_with(p, 2, ExecMode::Hybrid, InterfaceSet::Full);
    let e = rt.alloc_object_by_name("Echo", NodeId(1));
    let d = rt.alloc_object_by_name("Driver", NodeId(0));
    rt.set_field(d, peer, Value::Obj(e));
    let r = rt.call(d, go, &[Value::Int(21)]).unwrap();
    assert_eq!(r, Some(Value::Int(43)));
    let t = rt.stats().totals();
    assert_eq!(t.remote_invokes, 1);
    assert_eq!(t.msgs_sent, 1);
    assert_eq!(t.replies_sent, 1);
    assert_eq!(t.fallbacks, 1, "caller lazily created its own context");
    assert_eq!(t.ctx_alloc, 1);
    assert_eq!(
        t.wrapper_runs, 1,
        "remote side ran from the message handler"
    );
    assert_eq!(rt.live_contexts(), 0, "all contexts reclaimed");
    let s = rt.stats();
    assert_eq!(
        s.per_node[1].ctx_alloc, 0,
        "callee ran on the handler's stack"
    );
}

#[test]
fn remote_invoke_parallel_only_allocates_on_both_sides() {
    let (p, go, peer) = remote_program();
    let mut rt = rt_with(p, 2, ExecMode::ParallelOnly, InterfaceSet::Full);
    let e = rt.alloc_object_by_name("Echo", NodeId(1));
    let d = rt.alloc_object_by_name("Driver", NodeId(0));
    rt.set_field(d, peer, Value::Obj(e));
    let r = rt.call(d, go, &[Value::Int(21)]).unwrap();
    assert_eq!(r, Some(Value::Int(43)));
    let s = rt.stats();
    assert!(s.per_node[0].ctx_alloc >= 1);
    assert!(
        s.per_node[1].ctx_alloc >= 1,
        "baseline allocates at the receiver"
    );
    assert_eq!(rt.live_contexts(), 0);
}

// ---------- forwarding (continuation passing on the stack) ----------

/// root -> intermed -> respond via Forward. Returns (program, root, next).
fn forward_program(local: bool) -> (Program, MethodId, FieldId) {
    let hint = if local {
        LocalityHint::AlwaysLocal
    } else {
        LocalityHint::Unknown
    };
    let mut pb = ProgramBuilder::new();
    let c = pb.class("F", false);
    let next = pb.field(c, "next");
    let respond = pb.method(c, "respond", 1, |mb| {
        let r = mb.binl(BinOp::Add, mb.arg(0), 100);
        mb.reply(r);
    });
    let intermed = pb.method(c, "intermed", 1, |mb| {
        let n = mb.get_field(next);
        mb.forward(n, respond, &[mb.arg(0).into()], hint);
    });
    let root = pb.method(c, "root", 1, |mb| {
        let n = mb.get_field(next);
        let s = mb.slot();
        mb.invoke(Some(s), n, intermed, &[mb.arg(0).into()], hint);
        let v = mb.touch_get(s);
        mb.reply(v);
    });
    (pb.finish(), root, next)
}

#[test]
fn local_forward_chain_completes_on_stack() {
    let (p, root, next) = forward_program(true);
    let mut rt = rt_with(p, 1, ExecMode::Hybrid, InterfaceSet::Full);
    let a = rt.alloc_object_by_name("F", NodeId(0));
    let b = rt.alloc_object_by_name("F", NodeId(0));
    let c = rt.alloc_object_by_name("F", NodeId(0));
    rt.set_field(a, next, Value::Obj(b));
    rt.set_field(b, next, Value::Obj(c));
    let r = rt.call(a, root, &[Value::Int(5)]).unwrap();
    assert_eq!(r, Some(Value::Int(105)));
    let t = rt.stats().totals();
    assert_eq!(t.ctx_alloc, 0, "whole forwarding chain ran on the stack");
    assert_eq!(t.conts_created, 0, "continuation never materialized");
    assert!(t.stack_forwards >= 1);
    assert!(t.stack_cp >= 1, "intermed used the CP schema");
}

#[test]
fn cross_node_forward_materializes_continuation() {
    let (p, root, next) = forward_program(false);
    let mut rt = rt_with(p, 2, ExecMode::Hybrid, InterfaceSet::Full);
    let a = rt.alloc_object_by_name("F", NodeId(0));
    let b = rt.alloc_object_by_name("F", NodeId(0));
    let c = rt.alloc_object_by_name("F", NodeId(1)); // responder remote
    rt.set_field(a, next, Value::Obj(b));
    rt.set_field(b, next, Value::Obj(c));
    let r = rt.call(a, root, &[Value::Int(5)]).unwrap();
    assert_eq!(r, Some(Value::Int(105)));
    let t = rt.stats().totals();
    assert!(
        t.conts_created >= 1,
        "off-node forward forces materialization"
    );
    assert_eq!(t.msgs_sent, 1, "one forwarded request");
    assert!(t.fallbacks >= 1, "root adopted the shell context");
    assert_eq!(rt.live_contexts(), 0);
}

#[test]
fn forwarded_message_replies_to_original_caller_across_three_nodes() {
    let (p, root, next) = forward_program(false);
    let mut rt = rt_with(p, 3, ExecMode::Hybrid, InterfaceSet::Full);
    let a = rt.alloc_object_by_name("F", NodeId(0));
    let b = rt.alloc_object_by_name("F", NodeId(1));
    let c = rt.alloc_object_by_name("F", NodeId(2));
    rt.set_field(a, next, Value::Obj(b));
    rt.set_field(b, next, Value::Obj(c));
    let r = rt.call(a, root, &[Value::Int(7)]).unwrap();
    assert_eq!(r, Some(Value::Int(107)));
    let s = rt.stats();
    assert_eq!(
        s.per_node[1].ctx_alloc, 0,
        "intermediate node stays stackless"
    );
    assert!(
        s.per_node[1].proxy_conts >= 1,
        "proxy context used by the wrapper"
    );
    assert_eq!(s.per_node[2].ctx_alloc, 0, "responder ran from the handler");
    assert_eq!(rt.live_contexts(), 0);
}

// ---------- stored continuations: a custom barrier (Fig. 3) ----------

/// Returns (program, go, fields...) for a master fanning out to workers
/// that meet at a counting barrier built from stored continuations.
#[allow(clippy::type_complexity)]
fn barrier_program() -> (Program, MethodId, FieldId, FieldId, FieldId, FieldId) {
    let mut pb = ProgramBuilder::new();
    let bar = pb.class("Barrier", true);
    let count = pb.field(bar, "count");
    let waiters = pb.array_field(bar, "waiters");
    let arrive = pb.declare(bar, "arrive", 0);
    pb.define(arrive, |mb| {
        let c = mb.get_field(count);
        let c1 = mb.binl(BinOp::Sub, c, 1);
        mb.set_field(count, c1);
        let done = mb.binl(BinOp::Eq, c1, 0);
        mb.if_else(
            done,
            |mb| {
                let n = mb.arr_len(waiters);
                mb.for_range(0i64, n, |mb, i| {
                    let w = mb.get_elem(waiters, i);
                    let nilp = mb.unl(UnOp::IsNil, w);
                    let present = mb.binl(BinOp::Eq, nilp, false);
                    mb.if_(present, |mb| {
                        mb.send_to_cont(w, 1i64);
                    });
                });
                mb.reply(1i64);
            },
            |mb| {
                mb.store_cont_at(waiters, c1);
                mb.halt();
            },
        );
    });
    let worker = pb.class("Worker", false);
    let barf = pb.field(worker, "bar");
    let work = pb.method(worker, "work", 0, |mb| {
        let b = mb.get_field(barf);
        let s = mb.invoke_into(b, arrive, &[]);
        let v = mb.touch_get(s);
        mb.reply(v);
    });
    let master = pb.class("Master", false);
    let ws = pb.array_field(master, "workers");
    let go = pb.method(master, "go", 0, |mb| {
        let n = mb.arr_len(ws);
        let join = mb.slot();
        mb.join_init(join, n);
        mb.for_range(0i64, n, |mb, i| {
            let w = mb.get_elem(ws, i);
            mb.invoke(Some(join), w, work, &[], LocalityHint::Unknown);
        });
        mb.touch(&[join]);
        mb.reply(7i64);
    });
    (pb.finish(), go, count, waiters, barf, ws)
}

#[test]
fn barrier_via_master_both_modes() {
    let (p, go, count, waiters, barf, ws) = barrier_program();
    for mode in [ExecMode::Hybrid, ExecMode::ParallelOnly] {
        let mut rt = rt_with(p.clone(), 4, mode, InterfaceSet::Full);
        let b = rt.alloc_object_by_name("Barrier", NodeId(0));
        rt.set_field(b, count, Value::Int(3));
        rt.set_array(b, waiters, vec![Value::Nil; 3]);
        let mut wrefs = Vec::new();
        for n in 1..4u32 {
            let w = rt.alloc_object_by_name("Worker", NodeId(n));
            rt.set_field(w, barf, Value::Obj(b));
            wrefs.push(Value::Obj(w));
        }
        let m = rt.alloc_object_by_name("Master", NodeId(0));
        rt.set_array(m, ws, wrefs);
        let r = rt.call(m, go, &[]).unwrap();
        assert_eq!(
            r,
            Some(Value::Int(7)),
            "{mode}: barrier released all workers"
        );
        assert_eq!(rt.live_contexts(), 0, "{mode}: no leaked contexts");
        if mode == ExecMode::Hybrid {
            let t = rt.stats().totals();
            assert!(
                t.conts_created >= 2,
                "parked arrivals materialized continuations"
            );
        }
    }
}

// ---------- locks ----------

#[test]
fn locked_object_serializes_and_defers() {
    // A locked Cell whose `bump` reads a remote value (suspending while
    // holding the lock), forcing later arrivals to defer.
    let mut pb = ProgramBuilder::new();
    let remote = pb.class("Remote", false);
    let get1 = pb.method(remote, "get1", 0, |mb| mb.reply(1i64));
    let cell = pb.class("Cell", true);
    let n = pb.field(cell, "n");
    let peer = pb.field(cell, "peer");
    let bump = pb.method(cell, "bump", 0, |mb| {
        let p = mb.get_field(peer);
        let s = mb.invoke_into(p, get1, &[]);
        let v = mb.touch_get(s);
        let cur = mb.get_field(n);
        let nv = mb.binl(BinOp::Add, cur, v);
        mb.set_field(n, nv);
        mb.reply(nv);
    });
    let master = pb.class("Master", false);
    let cellf = pb.field(master, "cell");
    let go = pb.method(master, "go", 0, |mb| {
        let c = mb.get_field(cellf);
        let join = mb.slot();
        mb.join_init(join, 4i64);
        for _ in 0..4 {
            mb.invoke(Some(join), c, bump, &[], LocalityHint::Unknown);
        }
        mb.touch(&[join]);
        mb.reply(0i64);
    });
    let p = pb.finish();

    for mode in [ExecMode::Hybrid, ExecMode::ParallelOnly] {
        let mut rt = rt_with(p.clone(), 3, mode, InterfaceSet::Full);
        let r = rt.alloc_object_by_name("Remote", NodeId(2));
        let c = rt.alloc_object_by_name("Cell", NodeId(1));
        rt.set_field(c, n, Value::Int(0));
        rt.set_field(c, peer, Value::Obj(r));
        let m = rt.alloc_object_by_name("Master", NodeId(0));
        rt.set_field(m, cellf, Value::Obj(c));
        let res = rt.call(m, go, &[]).unwrap();
        assert_eq!(res, Some(Value::Int(0)), "{mode}");
        assert_eq!(
            rt.get_field(c, n),
            Value::Int(4),
            "{mode}: all four bumps serialized"
        );
        assert_eq!(rt.live_contexts(), 0, "{mode}");
        let t = rt.stats().totals();
        assert!(
            t.lock_conflicts >= 1,
            "{mode}: suspending holder forced deferrals"
        );
    }
}

// ---------- determinism ----------

#[test]
fn runs_are_deterministic() {
    let (p, go, peer) = remote_program();
    let run = || {
        let mut rt = rt_with(p.clone(), 2, ExecMode::Hybrid, InterfaceSet::Full);
        let e = rt.alloc_object_by_name("Echo", NodeId(1));
        let d = rt.alloc_object_by_name("Driver", NodeId(0));
        rt.set_field(d, peer, Value::Obj(e));
        let r = rt.call(d, go, &[Value::Int(3)]).unwrap();
        (r, rt.makespan(), rt.stats().totals())
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
}

// ---------- seq-opt cost model ----------

#[test]
fn seq_opt_removes_parallelization_overhead() {
    let (p, fib) = fib_program();
    let mut full = Runtime::new(
        p.clone(),
        1,
        CostModel::cm5(),
        ExecMode::Hybrid,
        InterfaceSet::Full,
    )
    .unwrap();
    let o1 = full.alloc_object_by_name("Math", NodeId(0));
    full.call(o1, fib, &[Value::Int(14)]).unwrap();

    let mut opt = Runtime::new(
        p,
        1,
        CostModel::cm5().seq_opt(),
        ExecMode::Hybrid,
        InterfaceSet::Full,
    )
    .unwrap();
    let o2 = opt.alloc_object_by_name("Math", NodeId(0));
    opt.call(o2, fib, &[Value::Int(14)]).unwrap();

    assert!(opt.makespan() < full.makespan(), "seq-opt must be cheaper");
}

// ---------- C baseline ----------

#[test]
fn c_baseline_matches_and_is_cheapest() {
    let (p, fib) = fib_program();
    let mut rt = rt_with(p, 1, ExecMode::Hybrid, InterfaceSet::Full);
    let o = rt.alloc_object_by_name("Math", NodeId(0));
    let (v, c_cycles) = rt.call_c_baseline(o, fib, &[Value::Int(15)]).unwrap();
    assert_eq!(v, Some(Value::Int(610)));

    let before = rt.makespan();
    rt.call(o, fib, &[Value::Int(15)]).unwrap();
    let hybrid_cycles = rt.makespan() - before;
    assert!(
        c_cycles < hybrid_cycles,
        "C baseline {c_cycles} must undercut hybrid {hybrid_cycles}"
    );
    assert!(
        hybrid_cycles < c_cycles * 3,
        "hybrid {hybrid_cycles} should be C-like, C was {c_cycles}"
    );
}

// ---------- speculative inlining ----------

#[test]
fn inlinable_leaf_uses_guard_cost() {
    let mut pb = ProgramBuilder::new();
    let c = pb.class("C", false);
    let get = pb.method(c, "get", 0, |mb| {
        mb.inlinable();
        mb.reply(42i64);
    });
    let go = pb.method(c, "go", 0, |mb| {
        let me = mb.self_ref();
        let s = mb.invoke_local(me, get, &[]);
        let v = mb.touch_get(s);
        mb.reply(v);
    });
    let p = pb.finish();
    let mut rt = rt_with(p, 1, ExecMode::Hybrid, InterfaceSet::Full);
    let o = rt.alloc_object_by_name("C", NodeId(0));
    let r = rt.call(o, go, &[]).unwrap();
    assert_eq!(r, Some(Value::Int(42)));
    let t = rt.stats().totals();
    assert_eq!(t.inlined, 1);
    assert_eq!(t.stack_nb, 1, "only `go` itself counts as an NB stack call");
}

// ---------- misc protocol robustness ----------

#[test]
fn fire_and_forget_does_not_block_caller() {
    let mut pb = ProgramBuilder::new();
    let c = pb.class("C", false);
    let sink = pb.field(c, "sink");
    let note = pb.method(c, "note", 1, |mb| {
        mb.set_field(sink, mb.arg(0));
        mb.reply_nil();
    });
    let go = pb.method(c, "go", 1, |mb| {
        mb.invoke(None, mb.arg(0), note, &[7i64.into()], LocalityHint::Unknown);
        mb.reply(1i64);
    });
    let p = pb.finish();
    let mut rt = rt_with(p, 2, ExecMode::Hybrid, InterfaceSet::Full);
    let a = rt.alloc_object_by_name("C", NodeId(0));
    let b = rt.alloc_object_by_name("C", NodeId(1));
    let r = rt.call(a, go, &[Value::Obj(b)]).unwrap();
    assert_eq!(r, Some(Value::Int(1)));
    assert_eq!(rt.get_field(b, sink), Value::Int(7), "side effect arrived");
    let t = rt.stats().totals();
    assert_eq!(t.fallbacks, 0, "fire-and-forget needs no caller context");
    assert_eq!(
        t.replies_sent, 0,
        "discard continuation suppresses the reply"
    );
}

#[test]
fn unresolved_get_slot_traps() {
    let mut pb = ProgramBuilder::new();
    let c = pb.class("C", false);
    let m = pb.method(c, "bad", 0, |mb| {
        let s = mb.slot();
        let v = mb.get_slot(s);
        mb.reply(v);
    });
    let p = pb.finish();
    let mut rt = rt_with(p, 1, ExecMode::Hybrid, InterfaceSet::Full);
    let o = rt.alloc_object_by_name("C", NodeId(0));
    let e = rt.call(o, m, &[]).unwrap_err();
    assert!(e.what.contains("unresolved slot"), "{e}");
}

#[test]
fn deep_mb_recursion_diverts_through_heap() {
    let mut pb = ProgramBuilder::new();
    let c = pb.class("C", false);
    let down = pb.declare(c, "down", 1);
    pb.define(down, |mb| {
        let n = mb.arg(0);
        let z = mb.binl(BinOp::Le, n, 0);
        mb.if_else(
            z,
            |mb| mb.reply(0i64),
            |mb| {
                let me = mb.self_ref();
                let n1 = mb.binl(BinOp::Sub, n, 1);
                // Unknown hint ⇒ may-block schema.
                let s = mb.invoke_into(me, down, &[n1.into()]);
                let v = mb.touch_get(s);
                let r = mb.binl(BinOp::Add, v, 1);
                mb.reply(r);
            },
        );
    });
    let p = pb.finish();
    let mut rt = rt_with(p, 1, ExecMode::Hybrid, InterfaceSet::Full);
    rt.max_seq_depth = 50;
    let o = rt.alloc_object_by_name("C", NodeId(0));
    let r = rt.call(o, down, &[Value::Int(3000)]).unwrap();
    assert_eq!(r, Some(Value::Int(3000)));
    let t = rt.stats().totals();
    assert!(
        t.par_invokes > 0,
        "depth guard diverted calls through the heap"
    );
    assert_eq!(rt.live_contexts(), 0);
}

#[test]
fn reactive_halt_leaves_future_pending_and_reports_stuck() {
    let mut pb = ProgramBuilder::new();
    let c = pb.class("C", false);
    let silent = pb.method(c, "silent", 0, |mb| mb.halt());
    let go = pb.method(c, "go", 1, |mb| {
        let s = mb.invoke_into(mb.arg(0), silent, &[]);
        let v = mb.touch_get(s);
        mb.reply(v);
    });
    let p = pb.finish();
    let mut rt = rt_with(p, 2, ExecMode::Hybrid, InterfaceSet::Full);
    let a = rt.alloc_object_by_name("C", NodeId(0));
    let b = rt.alloc_object_by_name("C", NodeId(1));
    let r = rt.call(a, go, &[Value::Obj(b)]).unwrap();
    assert_eq!(r, None, "no reply ever produced");
    assert!(!rt.stuck_contexts().is_empty(), "caller is parked forever");
}
