//! The instruction set.
//!
//! A method body is a flat `Vec<Instr>` executed by a register machine over
//! the method's [`Local`] registers and its future
//! [`Slot`]s. Control flow is by instruction index
//! (the builder resolves structured `if`/`while` into jumps).

use crate::value::Value;
use crate::{ClassId, FieldId, Local, MethodId, Slot};

/// An instruction operand: a register or an immediate constant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Operand {
    /// Read a local register.
    L(Local),
    /// An immediate value.
    K(Value),
}

impl From<Local> for Operand {
    fn from(l: Local) -> Self {
        Operand::L(l)
    }
}
impl From<i64> for Operand {
    fn from(i: i64) -> Self {
        Operand::K(Value::Int(i))
    }
}
impl From<f64> for Operand {
    fn from(f: f64) -> Self {
        Operand::K(Value::Float(f))
    }
}
impl From<bool> for Operand {
    fn from(b: bool) -> Self {
        Operand::K(Value::Bool(b))
    }
}
impl From<Value> for Operand {
    fn from(v: Value) -> Self {
        Operand::K(v)
    }
}

/// Binary operations (numeric coercion semantics in [`crate::value::bin_op`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Min,
    Max,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
}

/// Unary operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum UnOp {
    Neg,
    Not,
    IsNil,
    ToFloat,
    ToInt,
    Sqrt,
}

/// Compiler-provided locality knowledge for a call site.
///
/// Concert's global flow analysis could sometimes prove that a callee object
/// is co-located with the caller (e.g. accessors on sub-objects). The
/// schema-selection analysis uses this: an `AlwaysLocal` invocation of a
/// non-blocking method on an unlocked class cannot block, whereas an
/// `Unknown` one may be remote and therefore may suspend the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LocalityHint {
    /// Target location unknown until run time (the common case).
    #[default]
    Unknown,
    /// Proven co-located with the caller.
    AlwaysLocal,
}

/// One IR instruction. See the module docs of [`crate`] for the model.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// `dst = src`.
    Mov {
        /// Destination register.
        dst: Local,
        /// Source operand.
        src: Operand,
    },
    /// `dst = a op b`.
    Bin {
        /// Destination register.
        dst: Local,
        /// Operation.
        op: BinOp,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// `dst = op a`.
    Un {
        /// Destination register.
        dst: Local,
        /// Operation.
        op: UnOp,
        /// Operand.
        a: Operand,
    },
    /// `dst = self` (the receiver object reference).
    SelfRef {
        /// Destination register.
        dst: Local,
    },
    /// `dst = index of the executing node` (as an Int).
    MyNode {
        /// Destination register.
        dst: Local,
    },
    /// `dst = node index of the object in `obj`` (as an Int). Name
    /// translation is explicit here; real programs use it for layout-aware
    /// decisions (the paper's applications know their data layout).
    NodeOf {
        /// Destination register.
        dst: Local,
        /// Object operand.
        obj: Operand,
    },
    /// Allocate a fresh object of `class` on the *executing* node, fields
    /// nil. Remote allocation is intentionally not expressible: data layout
    /// is an input to the execution model (paper §1 footnote), so the
    /// harness pre-places the object graph.
    NewLocal {
        /// Destination register for the new reference.
        dst: Local,
        /// Class of the new object.
        class: ClassId,
    },

    // ---- self field access (owner computes) ----
    /// `dst = self.field` (scalar field).
    GetField {
        /// Destination register.
        dst: Local,
        /// Scalar field.
        field: FieldId,
    },
    /// `self.field = src` (scalar field).
    SetField {
        /// Scalar field.
        field: FieldId,
        /// Source operand.
        src: Operand,
    },
    /// `dst = self.field[idx]` (array field).
    GetElem {
        /// Destination register.
        dst: Local,
        /// Array field.
        field: FieldId,
        /// Element index (Int).
        idx: Operand,
    },
    /// `self.field[idx] = src` (array field).
    SetElem {
        /// Array field.
        field: FieldId,
        /// Element index (Int).
        idx: Operand,
        /// Source operand.
        src: Operand,
    },
    /// (Re)allocate `self.field` as a nil-filled array of length `len`.
    ArrNew {
        /// Array field.
        field: FieldId,
        /// Length (Int).
        len: Operand,
    },
    /// `dst = length of self.field`.
    ArrLen {
        /// Destination register.
        dst: Local,
        /// Array field.
        field: FieldId,
    },

    // ---- invocation & synchronization ----
    /// Asynchronously invoke `method` on the object in `target`; the result
    /// future is `slot` (or discarded when `None`). This is the fine-grained
    /// thread creation the whole paper is about.
    Invoke {
        /// Future slot receiving the reply (`None` = fire-and-forget).
        slot: Option<Slot>,
        /// Receiver object.
        target: Operand,
        /// Method to run.
        method: MethodId,
        /// Arguments.
        args: Vec<Operand>,
        /// Compiler locality knowledge.
        hint: LocalityHint,
    },
    /// Block until every listed future slot is resolved (a single
    /// multi-slot touch, paper Fig. 4).
    Touch {
        /// Slots that must all be full before execution continues.
        slots: Vec<Slot>,
    },
    /// `dst = value of a resolved slot` (must have been touched).
    GetSlot {
        /// Destination register.
        dst: Local,
        /// Resolved slot.
        slot: Slot,
    },
    /// Turn `slot` into a join counter expecting `count` completions
    /// (data-parallel loops: N invocations, one touch).
    JoinInit {
        /// Slot to initialize.
        slot: Slot,
        /// Number of completions to await (Int).
        count: Operand,
    },

    // ---- modeled collectives (group = an array field of self holding
    //      object references; the interconnect delivers over a fan-out
    //      tree instead of P independent sends) ----
    /// Invoke `method(args)` on every object in `self.group`. With a
    /// slot, the slot resolves (to nil) once every member has completed;
    /// without one, fire-and-forget — nothing flows back.
    Multicast {
        /// Completion future (`None` = fire-and-forget).
        slot: Option<Slot>,
        /// Array field of self holding the member object references.
        group: FieldId,
        /// Method every member runs.
        method: MethodId,
        /// Arguments (identical for every member).
        args: Vec<Operand>,
    },
    /// Invoke `method(args)` on every member of `self.group` and combine
    /// the results pairwise with `op` up the fan-out tree; `slot` resolves
    /// to the single folded value. The fold is performed in tree-slot
    /// order, so the result is independent of completion order (`op`
    /// should still be associative for the grouping to be meaningful).
    Reduce {
        /// Future receiving the folded result.
        slot: Slot,
        /// Array field of self holding the member object references.
        group: FieldId,
        /// Method every member runs.
        method: MethodId,
        /// Arguments (identical for every member).
        args: Vec<Operand>,
        /// Pairwise combining operation.
        op: BinOp,
    },
    /// Synchronize with every node hosting a member of `self.group`:
    /// `slot` resolves (to nil) once every member's node has been reached
    /// and its arrival has percolated back. No method runs on the members.
    Barrier {
        /// Future resolving at full arrival.
        slot: Slot,
        /// Array field of self holding the member object references.
        group: FieldId,
    },

    // ---- terminators ----
    /// Determine the caller's future with `src` and finish.
    Reply {
        /// The reply value.
        src: Operand,
    },
    /// Pass our continuation to `method` on `target` and finish: the callee
    /// (or whoever it forwards to) replies directly to our caller. This is
    /// the paper's forwarding (like `call/cc` responsibility passing) and
    /// the reason the continuation-passing schema exists.
    Forward {
        /// Receiver object.
        target: Operand,
        /// Method to run.
        method: MethodId,
        /// Arguments.
        args: Vec<Operand>,
        /// Compiler locality knowledge.
        hint: LocalityHint,
    },
    /// Finish without determining the future (reactive methods; the
    /// continuation must have been stored or the invocation fire-and-forget).
    Halt,

    // ---- first-class continuations ----
    /// Materialize our own continuation and store it into `self.field`
    /// (scalar) or `self.field[idx]` (array). Used for custom
    /// synchronization structures (barriers etc., paper Fig. 3). The method
    /// must subsequently `Halt`, not `Reply`.
    StoreCont {
        /// Field to store into.
        field: FieldId,
        /// Element index for array fields.
        idx: Option<Operand>,
    },
    /// Determine a stored continuation with `value`.
    SendToCont {
        /// Continuation operand (a `Value::Cont`).
        cont: Operand,
        /// Reply value.
        value: Operand,
    },

    // ---- control flow ----
    /// Unconditional jump to instruction index `to`.
    Jmp {
        /// Target instruction index (or label id pre-resolution).
        to: u32,
    },
    /// Conditional branch on a Bool operand.
    Br {
        /// Condition (Bool).
        cond: Operand,
        /// Target when true.
        t: u32,
        /// Target when false.
        f: u32,
    },
}

impl Instr {
    /// True for instructions that end the method.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            Instr::Reply { .. } | Instr::Forward { .. } | Instr::Halt
        )
    }

    /// True when no execution can fall through to the next instruction.
    pub fn no_fallthrough(&self) -> bool {
        self.is_terminator() || matches!(self, Instr::Jmp { .. } | Instr::Br { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminators() {
        assert!(Instr::Halt.is_terminator());
        assert!(Instr::Reply { src: 0.into() }.is_terminator());
        assert!(!Instr::Jmp { to: 0 }.is_terminator());
        assert!(Instr::Jmp { to: 0 }.no_fallthrough());
        assert!(Instr::Br {
            cond: true.into(),
            t: 0,
            f: 1
        }
        .no_fallthrough());
        assert!(!Instr::Mov {
            dst: Local(0),
            src: 1.into()
        }
        .no_fallthrough());
    }

    #[test]
    fn operand_conversions() {
        assert_eq!(Operand::from(Local(3)), Operand::L(Local(3)));
        assert_eq!(Operand::from(5i64), Operand::K(Value::Int(5)));
        assert_eq!(Operand::from(2.5f64), Operand::K(Value::Float(2.5)));
        assert_eq!(Operand::from(true), Operand::K(Value::Bool(true)));
    }
}
