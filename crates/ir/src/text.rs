//! Canonical textual form of a program: a printer and a parser that
//! round-trip exactly (`parse(print(p)) == p`).
//!
//! The format is line-oriented and designed for golden files and
//! hand-written kernels:
//!
//! ```text
//! class Math {
//!   field x
//!   array data
//! }
//! inline method Math::get(0) locals=1 slots=0 {
//!   getf r0 x
//!   reply r0
//! }
//! ```
//!
//! Methods appear at top level, in program order (method ids are
//! positional, so grouping them under classes would renumber call sites).
//!
//! One instruction per line; jump targets are absolute instruction
//! indices; callees are referenced as `Class::method`; fields by name
//! within the enclosing class. Operands: `rN` (register), integers,
//! floats (must contain `.` or `e`), `true`/`false`, `nil`. A trailing
//! `!local` marks the compiler's `AlwaysLocal` hint; `_` in an invoke's
//! slot position marks fire-and-forget.

use crate::instr::{BinOp, Instr, LocalityHint, Operand, UnOp};
use crate::program::{Class, FieldDecl, Method, Program};
use crate::value::Value;
use crate::{ClassId, FieldId, Local, MethodId, Slot};
use std::fmt::Write as _;

/// A parse error with line context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// Description.
    pub what: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.what)
    }
}

impl std::error::Error for ParseError {}

// ================= printer =================

fn bin_name(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "add",
        BinOp::Sub => "sub",
        BinOp::Mul => "mul",
        BinOp::Div => "div",
        BinOp::Rem => "rem",
        BinOp::Min => "min",
        BinOp::Max => "max",
        BinOp::Eq => "eq",
        BinOp::Ne => "ne",
        BinOp::Lt => "lt",
        BinOp::Le => "le",
        BinOp::Gt => "gt",
        BinOp::Ge => "ge",
        BinOp::And => "and",
        BinOp::Or => "or",
        BinOp::BitAnd => "band",
        BinOp::BitOr => "bor",
        BinOp::BitXor => "bxor",
        BinOp::Shl => "shl",
        BinOp::Shr => "shr",
    }
}

fn un_name(op: UnOp) -> &'static str {
    match op {
        UnOp::Neg => "neg",
        UnOp::Not => "not",
        UnOp::IsNil => "isnil",
        UnOp::ToFloat => "tofloat",
        UnOp::ToInt => "toint",
        UnOp::Sqrt => "sqrt",
    }
}

fn print_operand(o: &Operand) -> String {
    match o {
        Operand::L(l) => format!("r{}", l.0),
        Operand::K(Value::Int(i)) => format!("{i}"),
        Operand::K(Value::Float(f)) => {
            let s = format!("{f}");
            if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
                s
            } else {
                format!("{s}.0")
            }
        }
        Operand::K(Value::Bool(b)) => format!("{b}"),
        Operand::K(Value::Nil) => "nil".to_string(),
        Operand::K(v) => panic!("unprintable constant {v:?} (refs are runtime-only)"),
    }
}

fn print_hint(h: LocalityHint) -> &'static str {
    match h {
        LocalityHint::Unknown => "",
        LocalityHint::AlwaysLocal => " !local",
    }
}

/// Render a program in the canonical text format.
pub fn print_program(p: &Program) -> String {
    let mut s = String::new();
    let callee = |m: MethodId| {
        let me = &p.methods[m.idx()];
        format!("{}::{}", p.classes[me.class.idx()].name, me.name)
    };
    for c in p.classes.iter() {
        let _ = writeln!(
            s,
            "class {}{} {{",
            c.name,
            if c.locked { " locked" } else { "" }
        );
        for f in &c.fields {
            let _ = writeln!(
                s,
                "  {} {}",
                if f.array { "array" } else { "field" },
                f.name
            );
        }
        let _ = writeln!(s, "}}");
    }
    {
        for m in p.methods.iter() {
            let c = &p.classes[m.class.idx()];
            let _ = writeln!(
                s,
                "{}method {}::{}({}) locals={} slots={} {{",
                if m.inlinable { "inline " } else { "" },
                c.name,
                m.name,
                m.params,
                m.locals,
                m.slots
            );
            let fname = |f: FieldId| c.fields[f.idx()].name.clone();
            for ins in &m.body {
                let line = match ins {
                    Instr::Mov { dst, src } => format!("mov r{} {}", dst.0, print_operand(src)),
                    Instr::Bin { dst, op, a, b } => format!(
                        "bin r{} {} {} {}",
                        dst.0,
                        bin_name(*op),
                        print_operand(a),
                        print_operand(b)
                    ),
                    Instr::Un { dst, op, a } => {
                        format!("un r{} {} {}", dst.0, un_name(*op), print_operand(a))
                    }
                    Instr::SelfRef { dst } => format!("self r{}", dst.0),
                    Instr::MyNode { dst } => format!("mynode r{}", dst.0),
                    Instr::NodeOf { dst, obj } => {
                        format!("nodeof r{} {}", dst.0, print_operand(obj))
                    }
                    Instr::NewLocal { dst, class } => {
                        format!("new r{} {}", dst.0, p.classes[class.idx()].name)
                    }
                    Instr::GetField { dst, field } => format!("getf r{} {}", dst.0, fname(*field)),
                    Instr::SetField { field, src } => {
                        format!("setf {} {}", fname(*field), print_operand(src))
                    }
                    Instr::GetElem { dst, field, idx } => {
                        format!("gete r{} {} {}", dst.0, fname(*field), print_operand(idx))
                    }
                    Instr::SetElem { field, idx, src } => format!(
                        "sete {} {} {}",
                        fname(*field),
                        print_operand(idx),
                        print_operand(src)
                    ),
                    Instr::ArrNew { field, len } => {
                        format!("arrnew {} {}", fname(*field), print_operand(len))
                    }
                    Instr::ArrLen { dst, field } => format!("arrlen r{} {}", dst.0, fname(*field)),
                    Instr::Invoke {
                        slot,
                        target,
                        method,
                        args,
                        hint,
                    } => {
                        let sl = match slot {
                            Some(s) => format!("f{}", s.0),
                            None => "_".to_string(),
                        };
                        let mut line = format!(
                            "invoke {} {} {}",
                            sl,
                            print_operand(target),
                            callee(*method)
                        );
                        for a in args {
                            let _ = write!(line, " {}", print_operand(a));
                        }
                        line.push_str(print_hint(*hint));
                        line
                    }
                    Instr::Touch { slots } => {
                        let mut line = "touch".to_string();
                        for sl in slots {
                            let _ = write!(line, " f{}", sl.0);
                        }
                        line
                    }
                    Instr::GetSlot { dst, slot } => format!("gets r{} f{}", dst.0, slot.0),
                    Instr::JoinInit { slot, count } => {
                        format!("join f{} {}", slot.0, print_operand(count))
                    }
                    Instr::Multicast {
                        slot,
                        group,
                        method,
                        args,
                    } => {
                        let sl = match slot {
                            Some(s) => format!("f{}", s.0),
                            None => "_".to_string(),
                        };
                        let mut line =
                            format!("mcast {} {} {}", sl, fname(*group), callee(*method));
                        for a in args {
                            let _ = write!(line, " {}", print_operand(a));
                        }
                        line
                    }
                    Instr::Reduce {
                        slot,
                        group,
                        method,
                        args,
                        op,
                    } => {
                        let mut line = format!(
                            "reduce f{} {} {} {}",
                            slot.0,
                            bin_name(*op),
                            fname(*group),
                            callee(*method)
                        );
                        for a in args {
                            let _ = write!(line, " {}", print_operand(a));
                        }
                        line
                    }
                    Instr::Barrier { slot, group } => {
                        format!("barrier f{} {}", slot.0, fname(*group))
                    }
                    Instr::Reply { src } => format!("reply {}", print_operand(src)),
                    Instr::Forward {
                        target,
                        method,
                        args,
                        hint,
                    } => {
                        let mut line =
                            format!("forward {} {}", print_operand(target), callee(*method));
                        for a in args {
                            let _ = write!(line, " {}", print_operand(a));
                        }
                        line.push_str(print_hint(*hint));
                        line
                    }
                    Instr::Halt => "halt".to_string(),
                    Instr::StoreCont { field, idx } => match idx {
                        None => format!("storec {}", fname(*field)),
                        Some(i) => format!("storec {} @ {}", fname(*field), print_operand(i)),
                    },
                    Instr::SendToCont { cont, value } => {
                        format!("sendc {} {}", print_operand(cont), print_operand(value))
                    }
                    Instr::Jmp { to } => format!("jmp {to}"),
                    Instr::Br { cond, t, f } => {
                        format!("br {} {} {}", print_operand(cond), t, f)
                    }
                };
                let _ = writeln!(s, "  {line}");
            }
            let _ = writeln!(s, "}}");
        }
    }
    s
}

// ================= parser =================

struct Parser<'a> {
    lines: Vec<(usize, &'a str)>, // (1-based line no, trimmed content)
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        let lines = src
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, l.trim()))
            .filter(|(_, l)| !l.is_empty() && !l.starts_with('#') && !l.starts_with("//"))
            .collect();
        Parser { lines, pos: 0 }
    }

    fn peek(&self) -> Option<(usize, &'a str)> {
        self.lines.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<(usize, &'a str)> {
        let l = self.peek();
        if l.is_some() {
            self.pos += 1;
        }
        l
    }

    fn err(line: usize, what: impl Into<String>) -> ParseError {
        ParseError {
            line,
            what: what.into(),
        }
    }
}

fn parse_operand(tok: &str, line: usize) -> Result<Operand, ParseError> {
    if let Some(r) = tok.strip_prefix('r') {
        if let Ok(n) = r.parse::<u16>() {
            return Ok(Operand::L(Local(n)));
        }
    }
    match tok {
        "nil" => return Ok(Operand::K(Value::Nil)),
        "true" => return Ok(Operand::K(Value::Bool(true))),
        "false" => return Ok(Operand::K(Value::Bool(false))),
        _ => {}
    }
    if tok.contains('.') || tok.contains('e') || tok.contains("inf") || tok == "NaN" {
        if let Ok(f) = tok.parse::<f64>() {
            return Ok(Operand::K(Value::Float(f)));
        }
    }
    if let Ok(i) = tok.parse::<i64>() {
        return Ok(Operand::K(Value::Int(i)));
    }
    Err(Parser::err(line, format!("bad operand `{tok}`")))
}

fn parse_reg(tok: &str, line: usize) -> Result<Local, ParseError> {
    match parse_operand(tok, line)? {
        Operand::L(l) => Ok(l),
        _ => Err(Parser::err(line, format!("expected register, got `{tok}`"))),
    }
}

fn parse_slot(tok: &str, line: usize) -> Result<Slot, ParseError> {
    tok.strip_prefix('f')
        .and_then(|s| s.parse::<u16>().ok())
        .map(Slot)
        .ok_or_else(|| Parser::err(line, format!("expected slot (fN), got `{tok}`")))
}

fn bin_of(name: &str) -> Option<BinOp> {
    Some(match name {
        "add" => BinOp::Add,
        "sub" => BinOp::Sub,
        "mul" => BinOp::Mul,
        "div" => BinOp::Div,
        "rem" => BinOp::Rem,
        "min" => BinOp::Min,
        "max" => BinOp::Max,
        "eq" => BinOp::Eq,
        "ne" => BinOp::Ne,
        "lt" => BinOp::Lt,
        "le" => BinOp::Le,
        "gt" => BinOp::Gt,
        "ge" => BinOp::Ge,
        "and" => BinOp::And,
        "or" => BinOp::Or,
        "band" => BinOp::BitAnd,
        "bor" => BinOp::BitOr,
        "bxor" => BinOp::BitXor,
        "shl" => BinOp::Shl,
        "shr" => BinOp::Shr,
        _ => return None,
    })
}

fn un_of(name: &str) -> Option<UnOp> {
    Some(match name {
        "neg" => UnOp::Neg,
        "not" => UnOp::Not,
        "isnil" => UnOp::IsNil,
        "tofloat" => UnOp::ToFloat,
        "toint" => UnOp::ToInt,
        "sqrt" => UnOp::Sqrt,
        _ => return None,
    })
}

/// Parse the canonical text format back into a validated [`Program`].
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    // Pass 1: collect class names, fields, and method signatures so that
    // forward references (`Class::method`, field names) resolve.
    struct PendingMethod {
        class: usize,
        name: String,
        params: u16,
        locals: u16,
        slots: u16,
        inlinable: bool,
        body_lines: Vec<(usize, String)>,
    }
    let mut classes: Vec<Class> = Vec::new();
    let mut methods: Vec<PendingMethod> = Vec::new();

    let mut p = Parser::new(src);
    while let Some((ln, line)) = p.next() {
        let toks: Vec<&str> = line.split_whitespace().collect();
        match toks.as_slice() {
            ["class", name, rest @ ..] => {
                let locked = rest.first() == Some(&"locked");
                let open_ok = rest.last() == Some(&"{") && rest.len() <= 2;
                if !open_ok {
                    return Err(Parser::err(ln, "expected `class Name [locked] {`"));
                }
                let ci = classes.len();
                classes.push(Class {
                    name: name.to_string(),
                    fields: Vec::new(),
                    locked,
                });
                loop {
                    let Some((ln2, l2)) = p.next() else {
                        return Err(Parser::err(ln, "unterminated class"));
                    };
                    let t2: Vec<&str> = l2.split_whitespace().collect();
                    match t2.as_slice() {
                        ["}"] => break,
                        ["field", f] => classes[ci].fields.push(FieldDecl {
                            name: f.to_string(),
                            array: false,
                        }),
                        ["array", f] => classes[ci].fields.push(FieldDecl {
                            name: f.to_string(),
                            array: true,
                        }),
                        _ => return Err(Parser::err(ln2, format!("bad class item `{l2}`"))),
                    }
                }
            }
            toks2 => {
                // method header: [inline] method Class::name(params) locals=N slots=K {
                let (inlinable, rest2) = if toks2.first() == Some(&"inline") {
                    (true, &toks2[1..])
                } else {
                    (false, toks2)
                };
                let ["method", sig, lts, sts, "{"] = rest2 else {
                    return Err(Parser::err(
                        ln,
                        format!("expected class or method, got `{line}`"),
                    ));
                };
                let (qname, params) = sig
                    .strip_suffix(')')
                    .and_then(|s| s.split_once('('))
                    .and_then(|(n, ps)| ps.parse::<u16>().ok().map(|v| (n, v)))
                    .ok_or_else(|| Parser::err(ln, "expected `Class::name(params)`"))?;
                let (cname, name2) = qname
                    .split_once("::")
                    .ok_or_else(|| Parser::err(ln, "expected `Class::name`"))?;
                let ci = classes
                    .iter()
                    .position(|c| c.name == cname)
                    .ok_or_else(|| Parser::err(ln, format!("unknown class `{cname}`")))?;
                let locals = lts
                    .strip_prefix("locals=")
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| Parser::err(ln, "expected locals=N"))?;
                let slots = sts
                    .strip_prefix("slots=")
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| Parser::err(ln, "expected slots=N"))?;
                let mut body_lines = Vec::new();
                loop {
                    let Some((ln3, l3)) = p.next() else {
                        return Err(Parser::err(ln, "unterminated method"));
                    };
                    if l3 == "}" {
                        break;
                    }
                    body_lines.push((ln3, l3.to_string()));
                }
                methods.push(PendingMethod {
                    class: ci,
                    name: name2.to_string(),
                    params,
                    locals,
                    slots,
                    inlinable,
                    body_lines,
                });
            }
        }
    }

    // Symbol tables.
    let method_id = |cls: &str, m: &str| -> Option<MethodId> {
        methods
            .iter()
            .position(|pm| pm.name == m && classes[pm.class].name == cls)
            .map(|i| MethodId(i as u32))
    };
    let class_id = |c: &str| -> Option<ClassId> {
        classes
            .iter()
            .position(|cl| cl.name == c)
            .map(|i| ClassId(i as u32))
    };

    // Pass 2: bodies.
    let mut out_methods = Vec::with_capacity(methods.len());
    for pm in &methods {
        let cls = &classes[pm.class];
        let field_id = |f: &str, ln: usize| -> Result<FieldId, ParseError> {
            cls.fields
                .iter()
                .position(|d| d.name == f)
                .map(|i| FieldId(i as u16))
                .ok_or_else(|| Parser::err(ln, format!("unknown field `{f}` in {}", cls.name)))
        };
        let callee = |tok: &str, ln: usize| -> Result<MethodId, ParseError> {
            let (c, m) = tok
                .split_once("::")
                .ok_or_else(|| Parser::err(ln, format!("expected Class::method, got `{tok}`")))?;
            method_id(c, m).ok_or_else(|| Parser::err(ln, format!("unknown method `{tok}`")))
        };
        let mut body = Vec::with_capacity(pm.body_lines.len());
        for (ln, line) in &pm.body_lines {
            let ln = *ln;
            let mut toks: Vec<&str> = line.split_whitespace().collect();
            let hint = if toks.last() == Some(&"!local") {
                toks.pop();
                LocalityHint::AlwaysLocal
            } else {
                LocalityHint::Unknown
            };
            let ins = match toks.as_slice() {
                ["mov", d, s] => Instr::Mov {
                    dst: parse_reg(d, ln)?,
                    src: parse_operand(s, ln)?,
                },
                ["bin", d, o, a, b] => Instr::Bin {
                    dst: parse_reg(d, ln)?,
                    op: bin_of(o).ok_or_else(|| Parser::err(ln, format!("bad binop `{o}`")))?,
                    a: parse_operand(a, ln)?,
                    b: parse_operand(b, ln)?,
                },
                ["un", d, o, a] => Instr::Un {
                    dst: parse_reg(d, ln)?,
                    op: un_of(o).ok_or_else(|| Parser::err(ln, format!("bad unop `{o}`")))?,
                    a: parse_operand(a, ln)?,
                },
                ["self", d] => Instr::SelfRef {
                    dst: parse_reg(d, ln)?,
                },
                ["mynode", d] => Instr::MyNode {
                    dst: parse_reg(d, ln)?,
                },
                ["nodeof", d, o] => Instr::NodeOf {
                    dst: parse_reg(d, ln)?,
                    obj: parse_operand(o, ln)?,
                },
                ["new", d, c] => Instr::NewLocal {
                    dst: parse_reg(d, ln)?,
                    class: class_id(c)
                        .ok_or_else(|| Parser::err(ln, format!("unknown class `{c}`")))?,
                },
                ["getf", d, f] => Instr::GetField {
                    dst: parse_reg(d, ln)?,
                    field: field_id(f, ln)?,
                },
                ["setf", f, s] => Instr::SetField {
                    field: field_id(f, ln)?,
                    src: parse_operand(s, ln)?,
                },
                ["gete", d, f, i] => Instr::GetElem {
                    dst: parse_reg(d, ln)?,
                    field: field_id(f, ln)?,
                    idx: parse_operand(i, ln)?,
                },
                ["sete", f, i, s] => Instr::SetElem {
                    field: field_id(f, ln)?,
                    idx: parse_operand(i, ln)?,
                    src: parse_operand(s, ln)?,
                },
                ["arrnew", f, l] => Instr::ArrNew {
                    field: field_id(f, ln)?,
                    len: parse_operand(l, ln)?,
                },
                ["arrlen", d, f] => Instr::ArrLen {
                    dst: parse_reg(d, ln)?,
                    field: field_id(f, ln)?,
                },
                ["invoke", sl, t, m, args @ ..] => Instr::Invoke {
                    slot: if *sl == "_" {
                        None
                    } else {
                        Some(parse_slot(sl, ln)?)
                    },
                    target: parse_operand(t, ln)?,
                    method: callee(m, ln)?,
                    args: args
                        .iter()
                        .map(|a| parse_operand(a, ln))
                        .collect::<Result<_, _>>()?,
                    hint,
                },
                ["touch", slots @ ..] => Instr::Touch {
                    slots: slots
                        .iter()
                        .map(|s| parse_slot(s, ln))
                        .collect::<Result<_, _>>()?,
                },
                ["gets", d, s] => Instr::GetSlot {
                    dst: parse_reg(d, ln)?,
                    slot: parse_slot(s, ln)?,
                },
                ["join", s, c] => Instr::JoinInit {
                    slot: parse_slot(s, ln)?,
                    count: parse_operand(c, ln)?,
                },
                ["mcast", sl, g, m, args @ ..] => Instr::Multicast {
                    slot: if *sl == "_" {
                        None
                    } else {
                        Some(parse_slot(sl, ln)?)
                    },
                    group: field_id(g, ln)?,
                    method: callee(m, ln)?,
                    args: args
                        .iter()
                        .map(|a| parse_operand(a, ln))
                        .collect::<Result<_, _>>()?,
                },
                ["reduce", sl, o, g, m, args @ ..] => Instr::Reduce {
                    slot: parse_slot(sl, ln)?,
                    op: bin_of(o).ok_or_else(|| Parser::err(ln, format!("bad binop `{o}`")))?,
                    group: field_id(g, ln)?,
                    method: callee(m, ln)?,
                    args: args
                        .iter()
                        .map(|a| parse_operand(a, ln))
                        .collect::<Result<_, _>>()?,
                },
                ["barrier", sl, g] => Instr::Barrier {
                    slot: parse_slot(sl, ln)?,
                    group: field_id(g, ln)?,
                },
                ["reply", s] => Instr::Reply {
                    src: parse_operand(s, ln)?,
                },
                ["forward", t, m, args @ ..] => Instr::Forward {
                    target: parse_operand(t, ln)?,
                    method: callee(m, ln)?,
                    args: args
                        .iter()
                        .map(|a| parse_operand(a, ln))
                        .collect::<Result<_, _>>()?,
                    hint,
                },
                ["halt"] => Instr::Halt,
                ["storec", f] => Instr::StoreCont {
                    field: field_id(f, ln)?,
                    idx: None,
                },
                ["storec", f, "@", i] => Instr::StoreCont {
                    field: field_id(f, ln)?,
                    idx: Some(parse_operand(i, ln)?),
                },
                ["sendc", c, v] => Instr::SendToCont {
                    cont: parse_operand(c, ln)?,
                    value: parse_operand(v, ln)?,
                },
                ["jmp", t] => Instr::Jmp {
                    to: t.parse().map_err(|_| Parser::err(ln, "bad jump target"))?,
                },
                ["br", c, t, f] => Instr::Br {
                    cond: parse_operand(c, ln)?,
                    t: t.parse()
                        .map_err(|_| Parser::err(ln, "bad branch target"))?,
                    f: f.parse()
                        .map_err(|_| Parser::err(ln, "bad branch target"))?,
                },
                _ => return Err(Parser::err(ln, format!("bad instruction `{line}`"))),
            };
            body.push(ins);
        }
        out_methods.push(Method {
            name: pm.name.clone(),
            class: ClassId(pm.class as u32),
            params: pm.params,
            locals: pm.locals,
            slots: pm.slots,
            body,
            inlinable: pm.inlinable,
        });
    }

    let program = Program {
        classes,
        methods: out_methods,
    };
    if let Err(errs) = program.validate() {
        return Err(ParseError {
            line: 0,
            what: format!(
                "parsed program failed validation: {}",
                errs.iter()
                    .map(|e| e.to_string())
                    .collect::<Vec<_>>()
                    .join("; ")
            ),
        });
    }
    Ok(program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProgramBuilder;

    fn roundtrip(p: &Program) {
        let text = print_program(p);
        let back = parse_program(&text).unwrap_or_else(|e| panic!("{e}\n---\n{text}"));
        assert_eq!(&back, p, "round-trip mismatch\n---\n{text}");
    }

    #[test]
    fn roundtrips_a_handwritten_program() {
        let src = "\
class Math {
  field x
  array data
}
inline method Math::get(0) locals=1 slots=0 {
  getf r0 x
  reply r0
}
method Math::go(1) locals=4 slots=2 {
  self r1
  invoke f0 r1 Math::get !local
  touch f0
  gets r2 f0
  bin r3 add r2 r0
  reply r3
}
";
        let p = parse_program(src).unwrap();
        assert_eq!(p.classes.len(), 1);
        assert_eq!(p.methods.len(), 2);
        assert!(p.methods[0].inlinable);
        roundtrip(&p);
    }

    #[test]
    fn error_reports_line() {
        let src = "class C {\n}\nmethod C::m(0) locals=1 slots=0 {\n  frobnicate r0\n}\n";
        let e = parse_program(src).unwrap_err();
        assert_eq!(e.line, 4);
        assert!(e.what.contains("frobnicate"));
    }

    #[test]
    fn unknown_names_are_rejected() {
        let src = "class C {\n}\nmethod C::m(0) locals=1 slots=0 {\n  getf r0 nope\n}\n";
        assert!(parse_program(src)
            .unwrap_err()
            .what
            .contains("unknown field"));
        let src = "class C {\n}\nmethod C::m(0) locals=1 slots=1 {\n  self r0\n  invoke f0 r0 C::nope\n  halt\n}\n";
        assert!(parse_program(src)
            .unwrap_err()
            .what
            .contains("unknown method"));
    }

    #[test]
    fn float_constants_roundtrip() {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("C", false);
        pb.method(c, "m", 0, |mb| {
            let a = mb.binl(crate::BinOp::Mul, 2.5f64, 4.0f64);
            let b = mb.binl(crate::BinOp::Add, a, 1e-3f64);
            mb.reply(b);
        });
        roundtrip(&pb.finish());
    }

    #[test]
    fn validation_failures_surface() {
        let src = "class C {\n}\nmethod C::m(0) locals=1 slots=0 {\n  jmp 99\n}\n";
        let e = parse_program(src).unwrap_err();
        assert!(e.what.contains("validation"), "{e}");
    }
}
