//! Ergonomic program construction.
//!
//! [`ProgramBuilder`] assembles classes and methods; [`MethodBuilder`]
//! provides structured control flow (`if_else`, `while_`, `for_range`) that
//! lowers to the flat jump-based body, plus label-resolved raw jumps for
//! anything irregular. Methods can be *declared* before being *defined*, so
//! mutually recursive programs (fib, forwarding chains) build naturally.

use crate::instr::{BinOp, Instr, LocalityHint, Operand, UnOp};
use crate::program::{Class, FieldDecl, Method, Program};
use crate::{ClassId, FieldId, Local, MethodId, Slot};

/// Builder for a whole [`Program`].
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    classes: Vec<Class>,
    methods: Vec<Method>,
    defined: Vec<bool>,
}

impl ProgramBuilder {
    /// Start an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a class. `locked` enables the implicit per-object lock.
    pub fn class(&mut self, name: &str, locked: bool) -> ClassId {
        self.classes.push(Class {
            name: name.to_string(),
            fields: Vec::new(),
            locked,
        });
        ClassId(self.classes.len() as u32 - 1)
    }

    /// Add a scalar field to `class`.
    pub fn field(&mut self, class: ClassId, name: &str) -> FieldId {
        let fields = &mut self.classes[class.idx()].fields;
        fields.push(FieldDecl {
            name: name.to_string(),
            array: false,
        });
        FieldId(fields.len() as u16 - 1)
    }

    /// Add an array field to `class`.
    pub fn array_field(&mut self, class: ClassId, name: &str) -> FieldId {
        let fields = &mut self.classes[class.idx()].fields;
        fields.push(FieldDecl {
            name: name.to_string(),
            array: true,
        });
        FieldId(fields.len() as u16 - 1)
    }

    /// Declare a method (so call sites can reference it) without a body yet.
    pub fn declare(&mut self, class: ClassId, name: &str, params: u16) -> MethodId {
        self.methods.push(Method {
            name: name.to_string(),
            class,
            params,
            locals: params,
            slots: 0,
            body: Vec::new(),
            inlinable: false,
        });
        self.defined.push(false);
        MethodId(self.methods.len() as u32 - 1)
    }

    /// Define a previously declared method.
    ///
    /// # Panics
    /// If the method was already defined.
    pub fn define<F: FnOnce(&mut MethodBuilder)>(&mut self, id: MethodId, f: F) {
        assert!(!self.defined[id.idx()], "method #{} defined twice", id.0);
        let params = self.methods[id.idx()].params;
        let mut mb = MethodBuilder::new(params);
        f(&mut mb);
        let (locals, slots, body, inlinable) = mb.finish();
        let m = &mut self.methods[id.idx()];
        m.locals = locals;
        m.slots = slots;
        m.body = body;
        m.inlinable = inlinable;
        self.defined[id.idx()] = true;
    }

    /// Declare and define in one step.
    pub fn method<F: FnOnce(&mut MethodBuilder)>(
        &mut self,
        class: ClassId,
        name: &str,
        params: u16,
        f: F,
    ) -> MethodId {
        let id = self.declare(class, name, params);
        self.define(id, f);
        id
    }

    /// Finish and validate.
    ///
    /// # Panics
    /// If any declared method is undefined or validation fails — builder
    /// misuse is a programming error in the harness, not a runtime condition.
    pub fn finish(self) -> Program {
        for (i, d) in self.defined.iter().enumerate() {
            assert!(
                *d,
                "method #{} ({}) declared but never defined",
                i, self.methods[i].name
            );
        }
        let p = Program {
            classes: self.classes,
            methods: self.methods,
        };
        if let Err(errs) = p.validate() {
            let msgs: Vec<String> = errs.iter().map(|e| e.to_string()).collect();
            panic!("program failed validation:\n{}", msgs.join("\n"));
        }
        p
    }
}

/// A control-flow label (builder-local).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LabelId(u32);

/// Builder for one method body. Registers `0..params` are the arguments;
/// [`MethodBuilder::local`] allocates fresh ones. Jumps emitted through the
/// builder reference [`LabelId`]s and are resolved to instruction indices
/// when the method is finished.
#[derive(Debug)]
pub struct MethodBuilder {
    params: u16,
    nlocals: u16,
    nslots: u16,
    body: Vec<Instr>,
    labels: Vec<Option<u32>>,
    inlinable: bool,
}

impl MethodBuilder {
    fn new(params: u16) -> Self {
        MethodBuilder {
            params,
            nlocals: params,
            nslots: 0,
            body: Vec::new(),
            labels: Vec::new(),
            inlinable: false,
        }
    }

    /// Register holding argument `i`.
    pub fn arg(&self, i: u16) -> Local {
        assert!(i < self.params, "argument {i} out of range");
        Local(i)
    }

    /// Allocate a fresh register.
    pub fn local(&mut self) -> Local {
        let l = Local(self.nlocals);
        self.nlocals += 1;
        l
    }

    /// Allocate a fresh future slot.
    pub fn slot(&mut self) -> Slot {
        let s = Slot(self.nslots);
        self.nslots += 1;
        s
    }

    /// Mark the method as a speculative-inlining candidate (tiny leaf).
    pub fn inlinable(&mut self) {
        self.inlinable = true;
    }

    // ---- data movement & arithmetic ----

    /// `dst = src`.
    pub fn mov(&mut self, dst: Local, src: impl Into<Operand>) {
        self.body.push(Instr::Mov {
            dst,
            src: src.into(),
        });
    }

    /// `dst = a op b`.
    pub fn bin(&mut self, dst: Local, op: BinOp, a: impl Into<Operand>, b: impl Into<Operand>) {
        self.body.push(Instr::Bin {
            dst,
            op,
            a: a.into(),
            b: b.into(),
        });
    }

    /// `fresh = a op b`, returning the fresh register.
    pub fn binl(&mut self, op: BinOp, a: impl Into<Operand>, b: impl Into<Operand>) -> Local {
        let dst = self.local();
        self.bin(dst, op, a, b);
        dst
    }

    /// `dst = op a`.
    pub fn un(&mut self, dst: Local, op: UnOp, a: impl Into<Operand>) {
        self.body.push(Instr::Un {
            dst,
            op,
            a: a.into(),
        });
    }

    /// `fresh = op a`, returning the fresh register.
    pub fn unl(&mut self, op: UnOp, a: impl Into<Operand>) -> Local {
        let dst = self.local();
        self.un(dst, op, a);
        dst
    }

    /// `fresh = self`.
    pub fn self_ref(&mut self) -> Local {
        let dst = self.local();
        self.body.push(Instr::SelfRef { dst });
        dst
    }

    /// `fresh = executing node index`.
    pub fn my_node(&mut self) -> Local {
        let dst = self.local();
        self.body.push(Instr::MyNode { dst });
        dst
    }

    /// `fresh = node index of obj`.
    pub fn node_of(&mut self, obj: impl Into<Operand>) -> Local {
        let dst = self.local();
        self.body.push(Instr::NodeOf {
            dst,
            obj: obj.into(),
        });
        dst
    }

    /// `fresh = new local object of class`.
    pub fn new_local_obj(&mut self, class: ClassId) -> Local {
        let dst = self.local();
        self.body.push(Instr::NewLocal { dst, class });
        dst
    }

    // ---- fields ----

    /// `fresh = self.field`.
    pub fn get_field(&mut self, field: FieldId) -> Local {
        let dst = self.local();
        self.body.push(Instr::GetField { dst, field });
        dst
    }

    /// `self.field = src`.
    pub fn set_field(&mut self, field: FieldId, src: impl Into<Operand>) {
        self.body.push(Instr::SetField {
            field,
            src: src.into(),
        });
    }

    /// `fresh = self.field[idx]`.
    pub fn get_elem(&mut self, field: FieldId, idx: impl Into<Operand>) -> Local {
        let dst = self.local();
        self.body.push(Instr::GetElem {
            dst,
            field,
            idx: idx.into(),
        });
        dst
    }

    /// `self.field[idx] = src`.
    pub fn set_elem(&mut self, field: FieldId, idx: impl Into<Operand>, src: impl Into<Operand>) {
        self.body.push(Instr::SetElem {
            field,
            idx: idx.into(),
            src: src.into(),
        });
    }

    /// Allocate `self.field` as a nil-filled array of length `len`.
    pub fn arr_new(&mut self, field: FieldId, len: impl Into<Operand>) {
        self.body.push(Instr::ArrNew {
            field,
            len: len.into(),
        });
    }

    /// `fresh = self.field.len()`.
    pub fn arr_len(&mut self, field: FieldId) -> Local {
        let dst = self.local();
        self.body.push(Instr::ArrLen { dst, field });
        dst
    }

    // ---- invocation & synchronization ----

    /// Raw invoke.
    pub fn invoke(
        &mut self,
        slot: Option<Slot>,
        target: impl Into<Operand>,
        method: MethodId,
        args: &[Operand],
        hint: LocalityHint,
    ) {
        self.body.push(Instr::Invoke {
            slot,
            target: target.into(),
            method,
            args: args.to_vec(),
            hint,
        });
    }

    /// Invoke into a fresh slot (unknown locality); returns the slot.
    pub fn invoke_into(
        &mut self,
        target: impl Into<Operand>,
        method: MethodId,
        args: &[Operand],
    ) -> Slot {
        let s = self.slot();
        self.invoke(Some(s), target, method, args, LocalityHint::Unknown);
        s
    }

    /// Invoke into a fresh slot with the `AlwaysLocal` hint.
    pub fn invoke_local(
        &mut self,
        target: impl Into<Operand>,
        method: MethodId,
        args: &[Operand],
    ) -> Slot {
        let s = self.slot();
        self.invoke(Some(s), target, method, args, LocalityHint::AlwaysLocal);
        s
    }

    /// Touch a set of slots.
    pub fn touch(&mut self, slots: &[Slot]) {
        self.body.push(Instr::Touch {
            slots: slots.to_vec(),
        });
    }

    /// `fresh = slot value` (slot must be resolved).
    pub fn get_slot(&mut self, slot: Slot) -> Local {
        let dst = self.local();
        self.body.push(Instr::GetSlot { dst, slot });
        dst
    }

    /// Touch one slot and read it.
    pub fn touch_get(&mut self, slot: Slot) -> Local {
        self.touch(&[slot]);
        self.get_slot(slot)
    }

    /// Initialize a join counter slot.
    pub fn join_init(&mut self, slot: Slot, count: impl Into<Operand>) {
        self.body.push(Instr::JoinInit {
            slot,
            count: count.into(),
        });
    }

    // ---- modeled collectives ----

    /// Raw multicast of `method(args)` over the members of `self.group`
    /// (an array field of object references). With a slot, the slot
    /// resolves once every member has completed; `None` = fire-and-forget.
    pub fn multicast(
        &mut self,
        slot: Option<Slot>,
        group: FieldId,
        method: MethodId,
        args: &[Operand],
    ) {
        self.body.push(Instr::Multicast {
            slot,
            group,
            method,
            args: args.to_vec(),
        });
    }

    /// Multicast awaiting completion in a fresh slot; returns the slot.
    pub fn multicast_into(&mut self, group: FieldId, method: MethodId, args: &[Operand]) -> Slot {
        let s = self.slot();
        self.multicast(Some(s), group, method, args);
        s
    }

    /// Reduce `method(args)` over the members of `self.group`, combining
    /// results with `op`; returns the fresh slot that resolves to the
    /// folded value.
    pub fn reduce(
        &mut self,
        group: FieldId,
        method: MethodId,
        args: &[Operand],
        op: BinOp,
    ) -> Slot {
        let slot = self.slot();
        self.body.push(Instr::Reduce {
            slot,
            group,
            method,
            args: args.to_vec(),
            op,
        });
        slot
    }

    /// Barrier over the nodes hosting the members of `self.group`;
    /// returns the fresh slot that resolves at full arrival.
    pub fn barrier(&mut self, group: FieldId) -> Slot {
        let slot = self.slot();
        self.body.push(Instr::Barrier { slot, group });
        slot
    }

    // ---- terminators & continuations ----

    /// Reply with a value (terminator).
    pub fn reply(&mut self, src: impl Into<Operand>) {
        self.body.push(Instr::Reply { src: src.into() });
    }

    /// Reply with nil (terminator).
    pub fn reply_nil(&mut self) {
        self.reply(crate::Value::Nil);
    }

    /// Forward our continuation (terminator).
    pub fn forward(
        &mut self,
        target: impl Into<Operand>,
        method: MethodId,
        args: &[Operand],
        hint: LocalityHint,
    ) {
        self.body.push(Instr::Forward {
            target: target.into(),
            method,
            args: args.to_vec(),
            hint,
        });
    }

    /// Finish without replying (terminator).
    pub fn halt(&mut self) {
        self.body.push(Instr::Halt);
    }

    /// Store our continuation into `self.field` (scalar).
    pub fn store_cont(&mut self, field: FieldId) {
        self.body.push(Instr::StoreCont { field, idx: None });
    }

    /// Store our continuation into `self.field[idx]`.
    pub fn store_cont_at(&mut self, field: FieldId, idx: impl Into<Operand>) {
        self.body.push(Instr::StoreCont {
            field,
            idx: Some(idx.into()),
        });
    }

    /// Determine a stored continuation with a value.
    pub fn send_to_cont(&mut self, cont: impl Into<Operand>, value: impl Into<Operand>) {
        self.body.push(Instr::SendToCont {
            cont: cont.into(),
            value: value.into(),
        });
    }

    // ---- control flow ----

    /// Allocate a label.
    pub fn new_label(&mut self) -> LabelId {
        self.labels.push(None);
        LabelId(self.labels.len() as u32 - 1)
    }

    /// Place a label at the current position.
    pub fn place(&mut self, l: LabelId) {
        assert!(self.labels[l.0 as usize].is_none(), "label placed twice");
        self.labels[l.0 as usize] = Some(self.body.len() as u32);
    }

    /// Jump to a label.
    pub fn jmp(&mut self, l: LabelId) {
        self.body.push(Instr::Jmp { to: l.0 });
    }

    /// Branch on a condition to one of two labels.
    pub fn br(&mut self, cond: impl Into<Operand>, t: LabelId, f: LabelId) {
        self.body.push(Instr::Br {
            cond: cond.into(),
            t: t.0,
            f: f.0,
        });
    }

    /// Structured two-armed conditional.
    pub fn if_else(
        &mut self,
        cond: impl Into<Operand>,
        then_: impl FnOnce(&mut Self),
        else_: impl FnOnce(&mut Self),
    ) {
        let lt = self.new_label();
        let lf = self.new_label();
        let lend = self.new_label();
        self.br(cond, lt, lf);
        self.place(lt);
        then_(self);
        self.jmp(lend);
        self.place(lf);
        else_(self);
        self.jmp(lend);
        self.place(lend);
    }

    /// Structured one-armed conditional.
    pub fn if_(&mut self, cond: impl Into<Operand>, then_: impl FnOnce(&mut Self)) {
        self.if_else(cond, then_, |_| {});
    }

    /// Structured while loop: `cond` re-evaluates each iteration.
    pub fn while_(&mut self, cond: impl Fn(&mut Self) -> Operand, body: impl FnOnce(&mut Self)) {
        let lhead = self.new_label();
        let lbody = self.new_label();
        let lend = self.new_label();
        self.place(lhead);
        let c = cond(self);
        self.br(c, lbody, lend);
        self.place(lbody);
        body(self);
        self.jmp(lhead);
        self.place(lend);
    }

    /// Counted loop: `for i in from..to { body(i) }` over a fresh register.
    pub fn for_range(
        &mut self,
        from: impl Into<Operand>,
        to: impl Into<Operand>,
        body: impl FnOnce(&mut Self, Local),
    ) {
        let i = self.local();
        let to_l = self.local();
        self.mov(i, from);
        let to_op = to.into();
        self.mov(to_l, to_op);
        self.while_(
            |mb| Operand::L(mb.binl(BinOp::Lt, i, to_l)),
            |mb| {
                body(mb, i);
                mb.bin(i, BinOp::Add, i, 1);
            },
        );
    }

    fn finish(mut self) -> (u16, u16, Vec<Instr>, bool) {
        // Resolve labels and guarantee a terminator exists. A label placed
        // after the final instruction (e.g. the join of a trailing if/else
        // whose arms both reply) needs a landing pad.
        let past_end = self.labels.contains(&Some(self.body.len() as u32));
        if past_end || self.body.last().is_none_or(|i| !i.no_fallthrough()) {
            self.body.push(Instr::Halt);
        }
        let labels = &self.labels;
        let resolve = |l: u32| -> u32 {
            labels[l as usize].unwrap_or_else(|| panic!("label {l} never placed"))
        };
        for ins in &mut self.body {
            match ins {
                Instr::Jmp { to } => *to = resolve(*to),
                Instr::Br { t, f, .. } => {
                    *t = resolve(*t);
                    *f = resolve(*f);
                }
                _ => {}
            }
        }
        (self.nlocals, self.nslots, self.body, self.inlinable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Value;

    #[test]
    fn builds_and_validates_fib_shape() {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("Math", false);
        let fib = pb.declare(c, "fib", 1);
        pb.define(fib, |mb| {
            let n = mb.arg(0);
            let small = mb.binl(BinOp::Lt, n, 2);
            mb.if_else(
                small,
                |mb| mb.reply(n),
                |mb| {
                    let me = mb.self_ref();
                    let n1 = mb.binl(BinOp::Sub, n, 1);
                    let n2 = mb.binl(BinOp::Sub, n, 2);
                    let s1 = mb.invoke_local(me, fib, &[n1.into()]);
                    let s2 = mb.invoke_local(me, fib, &[n2.into()]);
                    mb.touch(&[s1, s2]);
                    let a = mb.get_slot(s1);
                    let b = mb.get_slot(s2);
                    let r = mb.binl(BinOp::Add, a, b);
                    mb.reply(r);
                },
            );
        });
        let p = pb.finish();
        assert_eq!(p.methods.len(), 1);
        assert!(p.method(fib).slots >= 2);
        // The implicit trailing Halt guards the structured if/else joins.
        assert!(p.method(fib).body.last().unwrap().no_fallthrough());
    }

    #[test]
    fn while_loop_lowering_runs_bounds() {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("C", false);
        pb.method(c, "count", 1, |mb| {
            let acc = mb.local();
            mb.mov(acc, 0i64);
            mb.for_range(0i64, mb.arg(0), |mb, _i| {
                mb.bin(acc, BinOp::Add, acc, 1);
            });
            mb.reply(acc);
        });
        let p = pb.finish();
        // All jump targets resolved within bounds (validate() checked).
        assert!(p.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "defined twice")]
    fn double_define_panics() {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("C", false);
        let m = pb.declare(c, "m", 0);
        pb.define(m, |mb| mb.reply_nil());
        pb.define(m, |mb| mb.reply_nil());
    }

    #[test]
    #[should_panic(expected = "never defined")]
    fn undefined_method_panics_on_finish() {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("C", false);
        pb.declare(c, "m", 0);
        pb.finish();
    }

    #[test]
    fn fields_and_arrays() {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("C", true);
        let x = pb.field(c, "x");
        let arr = pb.array_field(c, "arr");
        pb.method(c, "init", 0, |mb| {
            mb.set_field(x, 41i64);
            mb.arr_new(arr, 4i64);
            mb.set_elem(arr, 0i64, Value::Bool(true));
            let l = mb.arr_len(arr);
            mb.reply(l);
        });
        let p = pb.finish();
        assert!(p.classes[0].locked);
        assert_eq!(p.classes[0].fields.len(), 2);
    }

    #[test]
    fn implicit_halt_added() {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("C", false);
        let m = pb.method(c, "noop", 0, |_mb| {});
        let p = pb.finish();
        assert_eq!(p.method(m).body, vec![Instr::Halt]);
    }
}
