//! # hem-ir — a fine-grained concurrent object-oriented IR
//!
//! The Concert system compiled ICC++ / Concurrent Aggregates programs to C.
//! This crate is the reproduction's stand-in for those source languages: a
//! small register-machine IR with exactly the features the paper's execution
//! model exists to support:
//!
//! * **methods as threads** — every [`Instr::Invoke`] is conceptually a new
//!   thread of control whose result is an *implicit future* in a caller
//!   [`Slot`];
//! * **implicit synchronization** — [`Instr::Touch`] lazily synchronizes on
//!   a *set* of futures at once (paper Fig. 4), and [`Instr::JoinInit`]
//!   expresses data-parallel loops joining on a counter;
//! * **location independence** — an [`ObjRef`] names an object anywhere in
//!   the machine; whether an invocation is local or remote is discovered at
//!   run time (this is what the hybrid model adapts to);
//! * **implicit locking** — dictated by class definitions
//!   ([`Class::locked`]);
//! * **first-class continuations** — a method may [`Instr::Forward`] its
//!   (implicit, possibly not-yet-created) continuation to another call,
//!   store it into a data structure ([`Instr::StoreCont`]), and reply
//!   through a stored continuation ([`Instr::SendToCont`]) — the features
//!   that force the paper's continuation-passing schema.
//!
//! Field access is deliberately restricted to `self` (the *owner computes*
//! rule): all cross-object data flow goes through method invocation, which
//! is the thing the execution model optimizes.
//!
//! Programs are constructed with [`build::ProgramBuilder`] and checked by
//! [`Program::validate`] before execution.

#![warn(missing_docs)]

pub mod build;
pub mod fmt;
pub mod instr;
pub mod program;
pub mod text;
pub mod value;

pub use build::{MethodBuilder, ProgramBuilder};
pub use instr::{BinOp, Instr, LocalityHint, Operand, UnOp};
pub use program::{Class, FieldDecl, Method, Program, ValidationError};
pub use value::{ContRef, ObjRef, Value, ValueError};

/// Identifies a class within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClassId(pub u32);

/// Identifies a method within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MethodId(pub u32);

/// Index of a field within its class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FieldId(pub u16);

/// A method-local register. Registers `0..params` hold the arguments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Local(pub u16);

/// A future slot within a method activation.
///
/// Futures live *inside* the activation frame (one of the paper's explicit
/// design points versus StackThreads, which allocates futures separately and
/// pays an extra memory reference per touch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Slot(pub u16);

impl ClassId {
    /// Index into the program's class table.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}
impl MethodId {
    /// Index into the program's method table.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}
impl FieldId {
    /// Index into the class's field list.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}
impl Local {
    /// Register index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}
impl Slot {
    /// Slot index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_indices() {
        assert_eq!(ClassId(3).idx(), 3);
        assert_eq!(MethodId(4).idx(), 4);
        assert_eq!(FieldId(5).idx(), 5);
        assert_eq!(Local(6).idx(), 6);
        assert_eq!(Slot(7).idx(), 7);
    }
}
