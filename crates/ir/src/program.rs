//! Program structure: classes, methods, and static validation.

use crate::instr::{Instr, Operand};
use crate::{ClassId, FieldId, Local, MethodId, Slot};

/// A field declaration. Scalar fields hold one [`crate::Value`]; array
/// fields hold a growable vector of values sized by `ArrNew`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDecl {
    /// Field name (diagnostics only).
    pub name: String,
    /// True for array fields.
    pub array: bool,
}

/// A class: a field layout plus the implicit-locking policy.
///
/// In ICC++ locking is dictated by data definitions; here `locked = true`
/// means every method invocation on an instance acquires the object lock
/// for the duration of the method (including across suspensions), and a
/// held lock defers incoming invocations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Class {
    /// Class name.
    pub name: String,
    /// Declared fields.
    pub fields: Vec<FieldDecl>,
    /// Whether instances carry an implicit lock.
    pub locked: bool,
}

/// A method: `params` arguments arriving in registers `0..params`,
/// `locals` total registers, `slots` future slots, and a flat body.
#[derive(Debug, Clone, PartialEq)]
pub struct Method {
    /// Method name (diagnostics and lookup).
    pub name: String,
    /// Receiver class.
    pub class: ClassId,
    /// Number of parameters.
    pub params: u16,
    /// Total registers (≥ `params`).
    pub locals: u16,
    /// Number of future slots.
    pub slots: u16,
    /// Instruction sequence.
    pub body: Vec<Instr>,
    /// Marks tiny leaf methods (accessors) eligible for speculative
    /// inlining: when the runtime check proves the target local and
    /// unlocked, the body runs with only the guard cost, no call overhead
    /// (paper §4.2 includes speculative inlining in all measurements).
    pub inlinable: bool,
}

/// A complete program: class table + method table. The entry point is
/// chosen by the harness (any method can be the root invocation).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    /// Class table.
    pub classes: Vec<Class>,
    /// Method table.
    pub methods: Vec<Method>,
}

/// A static validation error, with enough context to locate it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationError {
    /// Offending method, if applicable.
    pub method: Option<MethodId>,
    /// Instruction index within the method, if applicable.
    pub at: Option<usize>,
    /// Human-readable description.
    pub what: String,
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (self.method, self.at) {
            (Some(m), Some(i)) => write!(f, "method #{} instr {}: {}", m.0, i, self.what),
            (Some(m), None) => write!(f, "method #{}: {}", m.0, self.what),
            _ => write!(f, "{}", self.what),
        }
    }
}

impl Program {
    /// Look up a method by id.
    pub fn method(&self, id: MethodId) -> &Method {
        &self.methods[id.idx()]
    }

    /// Look up a class by id.
    pub fn class(&self, id: ClassId) -> &Class {
        &self.classes[id.idx()]
    }

    /// Find a method by `Class::name` and `Method::name`.
    pub fn find_method(&self, class: &str, name: &str) -> Option<MethodId> {
        self.methods
            .iter()
            .position(|m| m.name == name && self.classes[m.class.idx()].name == class)
            .map(|i| MethodId(i as u32))
    }

    /// Statically validate the program. Checks register/slot/field bounds,
    /// jump targets, call-site arity, terminator discipline and
    /// `StoreCont`/array-field shape agreement. Returns all errors found.
    pub fn validate(&self) -> Result<(), Vec<ValidationError>> {
        let mut errs = Vec::new();
        for (mi, m) in self.methods.iter().enumerate() {
            let mid = MethodId(mi as u32);
            let mut err = |at: Option<usize>, what: String| {
                errs.push(ValidationError {
                    method: Some(mid),
                    at,
                    what,
                });
            };
            if m.class.idx() >= self.classes.len() {
                err(None, format!("class #{} out of range", m.class.0));
                continue;
            }
            if m.locals < m.params {
                err(None, format!("locals {} < params {}", m.locals, m.params));
            }
            if m.body.is_empty() {
                err(None, "empty body".into());
                continue;
            }
            if !m.body[m.body.len() - 1].no_fallthrough() {
                err(
                    Some(m.body.len() - 1),
                    "last instruction can fall off the end of the method".into(),
                );
            }
            let cls = &self.classes[m.class.idx()];
            for (pi, ins) in m.body.iter().enumerate() {
                self.validate_instr(m, cls, ins, pi, &mut |at, what| {
                    errs.push(ValidationError {
                        method: Some(mid),
                        at: Some(at),
                        what,
                    })
                });
            }
        }
        if errs.is_empty() {
            Ok(())
        } else {
            Err(errs)
        }
    }

    fn validate_instr(
        &self,
        m: &Method,
        cls: &Class,
        ins: &Instr,
        at: usize,
        err: &mut dyn FnMut(usize, String),
    ) {
        let check_local = |l: Local, err: &mut dyn FnMut(usize, String)| {
            if l.idx() >= m.locals as usize {
                err(
                    at,
                    format!("register {} out of range ({} locals)", l.0, m.locals),
                );
            }
        };
        let check_op = |o: &Operand, err: &mut dyn FnMut(usize, String)| {
            if let Operand::L(l) = o {
                if l.idx() >= m.locals as usize {
                    err(
                        at,
                        format!("register {} out of range ({} locals)", l.0, m.locals),
                    );
                }
            }
        };
        let check_slot = |s: Slot, err: &mut dyn FnMut(usize, String)| {
            if s.idx() >= m.slots as usize {
                err(at, format!("slot {} out of range ({} slots)", s.0, m.slots));
            }
        };
        let check_field = |f: FieldId, want_array: bool, err: &mut dyn FnMut(usize, String)| {
            if f.idx() >= cls.fields.len() {
                err(
                    at,
                    format!("field {} out of range ({} fields)", f.0, cls.fields.len()),
                );
            } else if cls.fields[f.idx()].array != want_array {
                err(
                    at,
                    format!(
                        "field {} ({}) is {}an array",
                        f.0,
                        cls.fields[f.idx()].name,
                        if cls.fields[f.idx()].array {
                            ""
                        } else {
                            "not "
                        }
                    ),
                );
            }
        };
        let check_target = |to: u32, err: &mut dyn FnMut(usize, String)| {
            if to as usize >= m.body.len() {
                err(
                    at,
                    format!("jump target {} out of range ({} instrs)", to, m.body.len()),
                );
            }
        };
        let check_call =
            |method: MethodId, args: &[Operand], err: &mut dyn FnMut(usize, String)| {
                if method.idx() >= self.methods.len() {
                    err(at, format!("callee #{} out of range", method.0));
                } else if self.methods[method.idx()].params as usize != args.len() {
                    err(
                        at,
                        format!(
                            "callee {} expects {} args, got {}",
                            self.methods[method.idx()].name,
                            self.methods[method.idx()].params,
                            args.len()
                        ),
                    );
                }
            };

        match ins {
            Instr::Mov { dst, src } => {
                check_local(*dst, err);
                check_op(src, err);
            }
            Instr::Bin { dst, a, b, .. } => {
                check_local(*dst, err);
                check_op(a, err);
                check_op(b, err);
            }
            Instr::Un { dst, a, .. } => {
                check_local(*dst, err);
                check_op(a, err);
            }
            Instr::SelfRef { dst } | Instr::MyNode { dst } => check_local(*dst, err),
            Instr::NodeOf { dst, obj } => {
                check_local(*dst, err);
                check_op(obj, err);
            }
            Instr::NewLocal { dst, class } => {
                check_local(*dst, err);
                if class.idx() >= self.classes.len() {
                    err(at, format!("class #{} out of range", class.0));
                }
            }
            Instr::GetField { dst, field } => {
                check_local(*dst, err);
                check_field(*field, false, err);
            }
            Instr::SetField { field, src } => {
                check_field(*field, false, err);
                check_op(src, err);
            }
            Instr::GetElem { dst, field, idx } => {
                check_local(*dst, err);
                check_field(*field, true, err);
                check_op(idx, err);
            }
            Instr::SetElem { field, idx, src } => {
                check_field(*field, true, err);
                check_op(idx, err);
                check_op(src, err);
            }
            Instr::ArrNew { field, len } => {
                check_field(*field, true, err);
                check_op(len, err);
            }
            Instr::ArrLen { dst, field } => {
                check_local(*dst, err);
                check_field(*field, true, err);
            }
            Instr::Invoke {
                slot,
                target,
                method,
                args,
                ..
            } => {
                if let Some(s) = slot {
                    check_slot(*s, err);
                }
                check_op(target, err);
                check_call(*method, args, err);
                for a in args {
                    check_op(a, err);
                }
            }
            Instr::Touch { slots } => {
                for s in slots {
                    check_slot(*s, err);
                }
            }
            Instr::GetSlot { dst, slot } => {
                check_local(*dst, err);
                check_slot(*slot, err);
            }
            Instr::JoinInit { slot, count } => {
                check_slot(*slot, err);
                check_op(count, err);
            }
            Instr::Multicast {
                slot,
                group,
                method,
                args,
            } => {
                if let Some(s) = slot {
                    check_slot(*s, err);
                }
                check_field(*group, true, err);
                check_call(*method, args, err);
                for a in args {
                    check_op(a, err);
                }
            }
            Instr::Reduce {
                slot,
                group,
                method,
                args,
                ..
            } => {
                check_slot(*slot, err);
                check_field(*group, true, err);
                check_call(*method, args, err);
                for a in args {
                    check_op(a, err);
                }
            }
            Instr::Barrier { slot, group } => {
                check_slot(*slot, err);
                check_field(*group, true, err);
            }
            Instr::Reply { src } => check_op(src, err),
            Instr::Forward {
                target,
                method,
                args,
                ..
            } => {
                check_op(target, err);
                check_call(*method, args, err);
                for a in args {
                    check_op(a, err);
                }
            }
            Instr::Halt => {}
            Instr::StoreCont { field, idx } => {
                check_field(*field, idx.is_some(), err);
                if let Some(i) = idx {
                    check_op(i, err);
                }
            }
            Instr::SendToCont { cont, value } => {
                check_op(cont, err);
                check_op(value, err);
            }
            Instr::Jmp { to } => check_target(*to, err),
            Instr::Br { cond, t, f } => {
                check_op(cond, err);
                check_target(*t, err);
                check_target(*f, err);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::BinOp;

    fn tiny_program() -> Program {
        Program {
            classes: vec![Class {
                name: "C".into(),
                fields: vec![
                    FieldDecl {
                        name: "x".into(),
                        array: false,
                    },
                    FieldDecl {
                        name: "arr".into(),
                        array: true,
                    },
                ],
                locked: false,
            }],
            methods: vec![Method {
                name: "m".into(),
                class: ClassId(0),
                params: 1,
                locals: 2,
                slots: 1,
                body: vec![
                    Instr::Bin {
                        dst: Local(1),
                        op: BinOp::Add,
                        a: Local(0).into(),
                        b: 1.into(),
                    },
                    Instr::Reply {
                        src: Local(1).into(),
                    },
                ],
                inlinable: false,
            }],
        }
    }

    #[test]
    fn valid_program_passes() {
        assert!(tiny_program().validate().is_ok());
    }

    #[test]
    fn catches_bad_register() {
        let mut p = tiny_program();
        p.methods[0].body[0] = Instr::Mov {
            dst: Local(9),
            src: 0.into(),
        };
        let errs = p.validate().unwrap_err();
        assert!(errs.iter().any(|e| e.what.contains("register 9")));
    }

    #[test]
    fn catches_bad_slot_and_field() {
        let mut p = tiny_program();
        p.methods[0].body.insert(
            0,
            Instr::GetSlot {
                dst: Local(1),
                slot: Slot(4),
            },
        );
        p.methods[0].body.insert(
            0,
            Instr::GetField {
                dst: Local(1),
                field: FieldId(7),
            },
        );
        let errs = p.validate().unwrap_err();
        assert!(errs.iter().any(|e| e.what.contains("slot 4")));
        assert!(errs.iter().any(|e| e.what.contains("field 7")));
    }

    #[test]
    fn catches_scalar_array_mismatch() {
        let mut p = tiny_program();
        // GetField on the array field is an error.
        p.methods[0].body[0] = Instr::GetField {
            dst: Local(1),
            field: FieldId(1),
        };
        let errs = p.validate().unwrap_err();
        assert!(errs.iter().any(|e| e.what.contains("array")));
    }

    #[test]
    fn catches_fallthrough_and_empty() {
        let mut p = tiny_program();
        p.methods[0].body.pop(); // remove Reply: ends with Bin
        let errs = p.validate().unwrap_err();
        assert!(errs.iter().any(|e| e.what.contains("fall off")));

        p.methods[0].body.clear();
        let errs = p.validate().unwrap_err();
        assert!(errs.iter().any(|e| e.what.contains("empty body")));
    }

    #[test]
    fn catches_bad_arity_and_callee() {
        let mut p = tiny_program();
        p.methods[0].body[0] = Instr::Invoke {
            slot: Some(Slot(0)),
            target: Local(0).into(),
            method: MethodId(0),
            args: vec![], // wrong: expects 1
            hint: Default::default(),
        };
        let errs = p.validate().unwrap_err();
        assert!(errs.iter().any(|e| e.what.contains("expects 1 args")));

        p.methods[0].body[0] = Instr::Invoke {
            slot: None,
            target: Local(0).into(),
            method: MethodId(5),
            args: vec![],
            hint: Default::default(),
        };
        let errs = p.validate().unwrap_err();
        assert!(errs.iter().any(|e| e.what.contains("callee #5")));
    }

    #[test]
    fn catches_bad_jump_target() {
        let mut p = tiny_program();
        p.methods[0].body[0] = Instr::Jmp { to: 99 };
        let errs = p.validate().unwrap_err();
        assert!(errs.iter().any(|e| e.what.contains("jump target 99")));
    }

    #[test]
    fn find_method_by_name() {
        let p = tiny_program();
        assert_eq!(p.find_method("C", "m"), Some(MethodId(0)));
        assert_eq!(p.find_method("C", "nope"), None);
        assert_eq!(p.find_method("D", "m"), None);
    }

    #[test]
    fn storecont_shape_checked() {
        let mut p = tiny_program();
        // StoreCont with idx targets an array field; without idx a scalar.
        p.methods[0].body[0] = Instr::StoreCont {
            field: FieldId(0),
            idx: Some(0.into()),
        };
        let errs = p.validate().unwrap_err();
        assert!(errs.iter().any(|e| e.what.contains("array")));
        p.methods[0].body[0] = Instr::StoreCont {
            field: FieldId(0),
            idx: None,
        };
        assert!(p.validate().is_ok());
    }
}
