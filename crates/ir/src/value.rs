//! Runtime values and the shared arithmetic semantics.
//!
//! Both interpreters (the stack-based sequential one and the heap-based
//! parallel one in `hem-core`) must compute identical results — that is the
//! central correctness property of the hybrid model. To make that true by
//! construction, all value semantics (coercion, arithmetic, comparison)
//! live here and are used by both.

use hem_machine::NodeId;

/// A location-independent object reference: `(node, index)` names object
/// `index` on `node`'s local heap. References are first-class values —
/// storing one does not move or copy the object (shared global name space).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjRef {
    /// Node owning the object.
    pub node: NodeId,
    /// Index into that node's object table.
    pub index: u32,
}

/// A materialized continuation: the right to determine the future stored at
/// `slot` of context `ctx` on `node`. The generation field guards against
/// stale continuations outliving a recycled context (a runtime invariant,
/// checked on every reply).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ContRef {
    /// Node owning the target context.
    pub node: NodeId,
    /// Context index on that node.
    pub ctx: u32,
    /// Context generation at materialization time.
    pub gen: u32,
    /// Future slot within the context.
    pub slot: u16,
}

/// A dynamically-typed value. Small and `Copy`; aggregate data lives in
/// object fields, never inside a `Value`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// The absent value (uninitialized fields, fire-and-forget replies).
    Nil,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// Object reference.
    Obj(ObjRef),
    /// First-class continuation.
    Cont(ContRef),
}

/// Type errors raised by value operations. The interpreters convert these
/// into traps carrying source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValueError {
    /// Operand had the wrong type for the operation.
    Type {
        /// Which operation failed.
        op: &'static str,
        /// The offending value's type name.
        got: &'static str,
    },
    /// Integer division or modulo by zero.
    DivByZero,
}

impl Value {
    /// Type name, for diagnostics.
    pub fn type_name(self) -> &'static str {
        match self {
            Value::Nil => "nil",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Bool(_) => "bool",
            Value::Obj(_) => "obj",
            Value::Cont(_) => "cont",
        }
    }

    /// Extract an integer.
    pub fn as_int(self) -> Result<i64, ValueError> {
        match self {
            Value::Int(i) => Ok(i),
            v => Err(ValueError::Type {
                op: "as_int",
                got: v.type_name(),
            }),
        }
    }

    /// Extract a float, coercing integers.
    pub fn as_float(self) -> Result<f64, ValueError> {
        match self {
            Value::Float(f) => Ok(f),
            Value::Int(i) => Ok(i as f64),
            v => Err(ValueError::Type {
                op: "as_float",
                got: v.type_name(),
            }),
        }
    }

    /// Extract a boolean.
    pub fn as_bool(self) -> Result<bool, ValueError> {
        match self {
            Value::Bool(b) => Ok(b),
            v => Err(ValueError::Type {
                op: "as_bool",
                got: v.type_name(),
            }),
        }
    }

    /// Extract an object reference.
    pub fn as_obj(self) -> Result<ObjRef, ValueError> {
        match self {
            Value::Obj(o) => Ok(o),
            v => Err(ValueError::Type {
                op: "as_obj",
                got: v.type_name(),
            }),
        }
    }

    /// Extract a continuation reference.
    pub fn as_cont(self) -> Result<ContRef, ValueError> {
        match self {
            Value::Cont(c) => Ok(c),
            v => Err(ValueError::Type {
                op: "as_cont",
                got: v.type_name(),
            }),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}
impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<ObjRef> for Value {
    fn from(o: ObjRef) -> Self {
        Value::Obj(o)
    }
}

/// Evaluate a binary operation with Int/Float numeric coercion.
///
/// `Int op Int → Int`; if either side is a float the operation is performed
/// in floats. Comparisons yield `Bool`. `Eq`/`Ne` compare any two values
/// structurally.
pub fn bin_op(op: crate::instr::BinOp, a: Value, b: Value) -> Result<Value, ValueError> {
    use crate::instr::BinOp::*;
    match op {
        Eq => return Ok(Value::Bool(a == b)),
        Ne => return Ok(Value::Bool(a != b)),
        And => return Ok(Value::Bool(a.as_bool()? && b.as_bool()?)),
        Or => return Ok(Value::Bool(a.as_bool()? || b.as_bool()?)),
        BitAnd => return Ok(Value::Int(a.as_int()? & b.as_int()?)),
        BitOr => return Ok(Value::Int(a.as_int()? | b.as_int()?)),
        BitXor => return Ok(Value::Int(a.as_int()? ^ b.as_int()?)),
        Shl => return Ok(Value::Int(a.as_int()?.wrapping_shl(b.as_int()? as u32))),
        Shr => {
            return Ok(Value::Int(
                ((a.as_int()? as u64) >> (b.as_int()? as u32 & 63)) as i64,
            ))
        }
        _ => {}
    }
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => Ok(match op {
            Add => Value::Int(x.wrapping_add(y)),
            Sub => Value::Int(x.wrapping_sub(y)),
            Mul => Value::Int(x.wrapping_mul(y)),
            Div => {
                if y == 0 {
                    return Err(ValueError::DivByZero);
                }
                Value::Int(x.wrapping_div(y))
            }
            Rem => {
                if y == 0 {
                    return Err(ValueError::DivByZero);
                }
                Value::Int(x.wrapping_rem(y))
            }
            Min => Value::Int(x.min(y)),
            Max => Value::Int(x.max(y)),
            Lt => Value::Bool(x < y),
            Le => Value::Bool(x <= y),
            Gt => Value::Bool(x > y),
            Ge => Value::Bool(x >= y),
            Eq | Ne | And | Or | BitAnd | BitOr | BitXor | Shl | Shr => unreachable!(),
        }),
        _ => {
            let x = a.as_float()?;
            let y = b.as_float()?;
            Ok(match op {
                Add => Value::Float(x + y),
                Sub => Value::Float(x - y),
                Mul => Value::Float(x * y),
                Div => Value::Float(x / y),
                Rem => Value::Float(x % y),
                Min => Value::Float(x.min(y)),
                Max => Value::Float(x.max(y)),
                Lt => Value::Bool(x < y),
                Le => Value::Bool(x <= y),
                Gt => Value::Bool(x > y),
                Ge => Value::Bool(x >= y),
                Eq | Ne | And | Or | BitAnd | BitOr | BitXor | Shl | Shr => unreachable!(),
            })
        }
    }
}

/// Evaluate a unary operation.
pub fn un_op(op: crate::instr::UnOp, a: Value) -> Result<Value, ValueError> {
    use crate::instr::UnOp::*;
    Ok(match op {
        Neg => match a {
            Value::Int(i) => Value::Int(i.wrapping_neg()),
            Value::Float(f) => Value::Float(-f),
            v => {
                return Err(ValueError::Type {
                    op: "neg",
                    got: v.type_name(),
                })
            }
        },
        Not => Value::Bool(!a.as_bool()?),
        IsNil => Value::Bool(matches!(a, Value::Nil)),
        ToFloat => Value::Float(a.as_float()?),
        ToInt => match a {
            Value::Int(i) => Value::Int(i),
            Value::Float(f) => Value::Int(f as i64),
            v => {
                return Err(ValueError::Type {
                    op: "to_int",
                    got: v.type_name(),
                })
            }
        },
        Sqrt => Value::Float(a.as_float()?.sqrt()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{BinOp, UnOp};

    #[test]
    fn int_arithmetic() {
        assert_eq!(bin_op(BinOp::Add, 2.into(), 3.into()), Ok(Value::Int(5)));
        assert_eq!(
            bin_op(BinOp::Mul, 4.into(), (-2).into()),
            Ok(Value::Int(-8))
        );
        assert_eq!(bin_op(BinOp::Div, 7.into(), 2.into()), Ok(Value::Int(3)));
        assert_eq!(bin_op(BinOp::Rem, 7.into(), 2.into()), Ok(Value::Int(1)));
        assert_eq!(
            bin_op(BinOp::Div, 1.into(), 0.into()),
            Err(ValueError::DivByZero)
        );
    }

    #[test]
    fn float_coercion() {
        assert_eq!(
            bin_op(BinOp::Add, Value::Int(1), Value::Float(0.5)),
            Ok(Value::Float(1.5))
        );
        assert_eq!(
            bin_op(BinOp::Lt, Value::Float(1.0), Value::Int(2)),
            Ok(Value::Bool(true))
        );
    }

    #[test]
    fn comparisons_and_logic() {
        assert_eq!(bin_op(BinOp::Le, 2.into(), 2.into()), Ok(Value::Bool(true)));
        assert_eq!(
            bin_op(BinOp::Eq, Value::Nil, Value::Nil),
            Ok(Value::Bool(true))
        );
        assert_eq!(
            bin_op(BinOp::Ne, Value::Bool(true), Value::Int(1)),
            Ok(Value::Bool(true))
        );
        assert_eq!(
            bin_op(BinOp::And, true.into(), false.into()),
            Ok(Value::Bool(false))
        );
        assert!(bin_op(BinOp::And, 1.into(), 2.into()).is_err());
    }

    #[test]
    fn min_max() {
        assert_eq!(bin_op(BinOp::Min, 2.into(), 3.into()), Ok(Value::Int(2)));
        assert_eq!(
            bin_op(BinOp::Max, Value::Float(2.0), Value::Int(3)),
            Ok(Value::Float(3.0))
        );
    }

    #[test]
    fn unary_ops() {
        assert_eq!(un_op(UnOp::Neg, 5.into()), Ok(Value::Int(-5)));
        assert_eq!(un_op(UnOp::Not, false.into()), Ok(Value::Bool(true)));
        assert_eq!(un_op(UnOp::IsNil, Value::Nil), Ok(Value::Bool(true)));
        assert_eq!(un_op(UnOp::IsNil, 0.into()), Ok(Value::Bool(false)));
        assert_eq!(un_op(UnOp::ToFloat, 2.into()), Ok(Value::Float(2.0)));
        assert_eq!(un_op(UnOp::ToInt, Value::Float(2.9)), Ok(Value::Int(2)));
        assert_eq!(un_op(UnOp::Sqrt, Value::Float(9.0)), Ok(Value::Float(3.0)));
    }

    #[test]
    fn accessors_report_types() {
        assert_eq!(Value::Nil.type_name(), "nil");
        assert!(Value::Int(1).as_bool().is_err());
        assert!(Value::Bool(true).as_int().is_err());
        let o = ObjRef {
            node: NodeId(1),
            index: 2,
        };
        assert_eq!(Value::Obj(o).as_obj(), Ok(o));
        let c = ContRef {
            node: NodeId(0),
            ctx: 1,
            gen: 0,
            slot: 2,
        };
        assert_eq!(Value::Cont(c).as_cont(), Ok(c));
    }
}
