//! Human-readable program listings.
//!
//! `Program::disassemble` renders a whole program (classes, fields,
//! methods, numbered instructions) in a stable textual form — the
//! debugging view for generated kernels, used by the examples and handy
//! in test failure output.

use crate::instr::{Instr, LocalityHint, Operand};
use crate::program::{Method, Program};
use crate::value::Value;
use std::fmt::Write;

impl Program {
    /// Render the whole program.
    pub fn disassemble(&self) -> String {
        let mut s = String::new();
        for (ci, c) in self.classes.iter().enumerate() {
            let _ = writeln!(
                s,
                "class #{ci} {}{} {{",
                c.name,
                if c.locked { " (locked)" } else { "" }
            );
            for (fi, f) in c.fields.iter().enumerate() {
                let _ = writeln!(
                    s,
                    "  field #{fi} {}{}",
                    f.name,
                    if f.array { "[]" } else { "" }
                );
            }
            for (mi, m) in self.methods.iter().enumerate() {
                if m.class.idx() == ci {
                    let _ = write!(s, "{}", self.disassemble_method(crate::MethodId(mi as u32)));
                }
            }
            let _ = writeln!(s, "}}");
        }
        s
    }

    /// Render one method.
    pub fn disassemble_method(&self, id: crate::MethodId) -> String {
        let m = self.method(id);
        let mut s = String::new();
        let _ = writeln!(
            s,
            "  method #{} {}({} args, {} locals, {} slots){}",
            id.0,
            m.name,
            m.params,
            m.locals,
            m.slots,
            if m.inlinable { " inline" } else { "" }
        );
        for (pc, ins) in m.body.iter().enumerate() {
            let _ = writeln!(s, "    {pc:>4}: {}", render_instr(self, m, ins));
        }
        s
    }
}

fn op(o: &Operand) -> String {
    match o {
        Operand::L(l) => format!("r{}", l.0),
        Operand::K(Value::Int(i)) => format!("{i}"),
        Operand::K(Value::Float(f)) => format!("{f:?}"),
        Operand::K(Value::Bool(b)) => format!("{b}"),
        Operand::K(Value::Nil) => "nil".to_string(),
        Operand::K(v) => format!("{v:?}"),
    }
}

fn ops(os: &[Operand]) -> String {
    os.iter().map(op).collect::<Vec<_>>().join(", ")
}

fn hint(h: LocalityHint) -> &'static str {
    match h {
        LocalityHint::Unknown => "",
        LocalityHint::AlwaysLocal => " !local",
    }
}

fn fname(p: &Program, m: &Method, f: crate::FieldId) -> String {
    p.classes[m.class.idx()]
        .fields
        .get(f.idx())
        .map(|d| d.name.clone())
        .unwrap_or_else(|| format!("#{}", f.0))
}

fn mname(p: &Program, id: crate::MethodId) -> String {
    p.methods
        .get(id.idx())
        .map(|m| m.name.clone())
        .unwrap_or_else(|| format!("#{}", id.0))
}

fn render_instr(p: &Program, m: &Method, ins: &Instr) -> String {
    match ins {
        Instr::Mov { dst, src } => format!("r{} = {}", dst.0, op(src)),
        Instr::Bin { dst, op: o, a, b } => format!("r{} = {} {o:?} {}", dst.0, op(a), op(b)),
        Instr::Un { dst, op: o, a } => format!("r{} = {o:?} {}", dst.0, op(a)),
        Instr::SelfRef { dst } => format!("r{} = self", dst.0),
        Instr::MyNode { dst } => format!("r{} = mynode", dst.0),
        Instr::NodeOf { dst, obj } => format!("r{} = nodeof {}", dst.0, op(obj)),
        Instr::NewLocal { dst, class } => {
            format!("r{} = new {}", dst.0, p.classes[class.idx()].name)
        }
        Instr::GetField { dst, field } => format!("r{} = self.{}", dst.0, fname(p, m, *field)),
        Instr::SetField { field, src } => format!("self.{} = {}", fname(p, m, *field), op(src)),
        Instr::GetElem { dst, field, idx } => {
            format!("r{} = self.{}[{}]", dst.0, fname(p, m, *field), op(idx))
        }
        Instr::SetElem { field, idx, src } => {
            format!("self.{}[{}] = {}", fname(p, m, *field), op(idx), op(src))
        }
        Instr::ArrNew { field, len } => {
            format!("self.{} = array[{}]", fname(p, m, *field), op(len))
        }
        Instr::ArrLen { dst, field } => format!("r{} = len self.{}", dst.0, fname(p, m, *field)),
        Instr::Invoke {
            slot,
            target,
            method,
            args,
            hint: h,
        } => {
            let dst = match slot {
                Some(s) => format!("f{} <- ", s.0),
                None => String::new(),
            };
            format!(
                "{dst}invoke {}.{}({}){}",
                op(target),
                mname(p, *method),
                ops(args),
                hint(*h)
            )
        }
        Instr::Touch { slots } => format!(
            "touch [{}]",
            slots
                .iter()
                .map(|s| format!("f{}", s.0))
                .collect::<Vec<_>>()
                .join(", ")
        ),
        Instr::GetSlot { dst, slot } => format!("r{} = f{}", dst.0, slot.0),
        Instr::JoinInit { slot, count } => format!("f{} = join({})", slot.0, op(count)),
        Instr::Multicast {
            slot,
            group,
            method,
            args,
        } => {
            let dst = match slot {
                Some(s) => format!("f{} <- ", s.0),
                None => String::new(),
            };
            format!(
                "{dst}multicast self.{}.{}({})",
                fname(p, m, *group),
                mname(p, *method),
                ops(args)
            )
        }
        Instr::Reduce {
            slot,
            group,
            method,
            args,
            op: o,
        } => format!(
            "f{} <- reduce[{o:?}] self.{}.{}({})",
            slot.0,
            fname(p, m, *group),
            mname(p, *method),
            ops(args)
        ),
        Instr::Barrier { slot, group } => {
            format!("f{} <- barrier self.{}", slot.0, fname(p, m, *group))
        }
        Instr::Reply { src } => format!("reply {}", op(src)),
        Instr::Forward {
            target,
            method,
            args,
            hint: h,
        } => {
            format!(
                "forward {}.{}({}){}",
                op(target),
                mname(p, *method),
                ops(args),
                hint(*h)
            )
        }
        Instr::Halt => "halt".to_string(),
        Instr::StoreCont { field, idx } => match idx {
            None => format!("self.{} = cont", fname(p, m, *field)),
            Some(i) => format!("self.{}[{}] = cont", fname(p, m, *field), op(i)),
        },
        Instr::SendToCont { cont, value } => format!("send {} -> {}", op(value), op(cont)),
        Instr::Jmp { to } => format!("jmp {to}"),
        Instr::Br { cond, t, f } => format!("br {} ? {t} : {f}", op(cond)),
    }
}

#[cfg(test)]
mod tests {
    use crate::{BinOp, ProgramBuilder};

    #[test]
    fn listing_contains_expected_shapes() {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("Math", false);
        let x = pb.field(c, "x");
        let fib = pb.declare(c, "fib", 1);
        pb.define(fib, |mb| {
            let n = mb.arg(0);
            let small = mb.binl(BinOp::Lt, n, 2);
            mb.if_else(
                small,
                |mb| mb.reply(n),
                |mb| {
                    let me = mb.self_ref();
                    mb.set_field(x, 1i64);
                    let s = mb.invoke_local(me, fib, &[n.into()]);
                    let v = mb.touch_get(s);
                    mb.reply(v);
                },
            );
        });
        let p = pb.finish();
        let d = p.disassemble();
        assert!(d.contains("class #0 Math"), "{d}");
        assert!(d.contains("field #0 x"), "{d}");
        assert!(d.contains("method #0 fib(1 args"), "{d}");
        assert!(d.contains("invoke r"), "{d}");
        assert!(d.contains(".fib(r0) !local"), "{d}");
        assert!(d.contains("touch [f0]"), "{d}");
        assert!(d.contains("self.x = 1"), "{d}");
        assert!(d.contains("reply r0"), "{d}");
        assert!(d.contains("br r"), "{d}");
    }

    #[test]
    fn every_instruction_kind_renders() {
        // Smoke-render the full kernel programs (covers the whole ISA).
        {
            let p = crate::Program::default();
            let _ = p.disassemble();
        }
    }
}
