//! Deterministic fault injection for the interconnect.
//!
//! A [`FaultPlan`] is a *pure function* from a message's identity — its
//! globally unique network sequence number plus `(src, dest)` — to a fault
//! decision: drop the message, duplicate it, add extra wire latency
//! ("jitter"), lose it to a link-partition window, or defer its delivery
//! past a node-stall window. Because the decision depends only on
//! `(seq, src, dest)` and the plan's seed, two runs of the same experiment
//! inject *identical* faults — the property the hybrid ≡ parallel-only
//! fault-matrix tests rely on — while a retransmitted copy of a lost
//! message (which is injected with a fresh sequence number) re-rolls its
//! fate independently, so lossy links make progress with probability 1.
//!
//! The plan is installed into a [`crate::net::Network`] and applied inside
//! `send`; the network stays purely mechanical and the runtime above it
//! provides reliability (acknowledgements and retransmission).

use crate::{Cycles, NodeId};

/// A half-open virtual-time window `[from, until)` during which a link is
/// partitioned: messages whose delivery would start inside the window are
/// lost. `None` endpoints are wildcards, so a single window can sever one
/// direction of one link, everything into a node, or everything out of it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkWindow {
    /// Source filter (`None` = any source).
    pub src: Option<NodeId>,
    /// Destination filter (`None` = any destination).
    pub dest: Option<NodeId>,
    /// Window start (inclusive), in virtual cycles.
    pub from: Cycles,
    /// Window end (exclusive), in virtual cycles.
    pub until: Cycles,
}

impl LinkWindow {
    fn covers(&self, src: NodeId, dest: NodeId, at: Cycles) -> bool {
        self.src.is_none_or(|s| s == src)
            && self.dest.is_none_or(|d| d == dest)
            && (self.from..self.until).contains(&at)
    }
}

/// A half-open virtual-time window `[from, until)` during which a node's
/// network interface is stalled: messages that would arrive inside the
/// window are deferred to the window's end (they are delayed, not lost).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeWindow {
    /// The stalled node.
    pub node: NodeId,
    /// Window start (inclusive), in virtual cycles.
    pub from: Cycles,
    /// Window end (exclusive); deferred messages are delivered here.
    pub until: Cycles,
}

/// What the plan decided for one injected message.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Decision {
    /// The message is lost (random loss or a partition window).
    pub drop: bool,
    /// The loss was caused by a partition window (implies `drop`).
    pub partitioned: bool,
    /// A second wire-level copy is delivered as well.
    pub duplicate: bool,
    /// Extra wire latency added to the primary copy.
    pub jitter: Cycles,
    /// Extra wire latency (beyond one cycle) added to the duplicate copy.
    pub dup_jitter: Cycles,
}

/// Seeded, deterministic fault schedule for the interconnect.
///
/// Probabilities are expressed in permille (0–1000) and evaluated against
/// a SplitMix64 hash of `(seed, seq, src, dest, salt)`; windows are
/// evaluated against the message's nominal delivery time. The default plan
/// injects nothing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed decorrelating this plan's decisions from any other plan's.
    pub seed: u64,
    /// Random-loss probability, in permille of injected messages.
    pub drop_permille: u16,
    /// Wire-duplication probability, in permille of delivered messages.
    pub dup_permille: u16,
    /// Maximum extra delivery latency; each delivered copy gets a uniform
    /// jitter in `0..=jitter_max` (0 disables jitter).
    pub jitter_max: Cycles,
    /// Link-partition windows (messages inside one are lost).
    pub partitions: Vec<LinkWindow>,
    /// Node-stall windows (arrivals inside one are deferred to its end).
    pub stalls: Vec<NodeWindow>,
}

// Distinct salts so the drop / dup / jitter rolls of one message are
// decorrelated from each other.
const SALT_DROP: u64 = 0x01;
const SALT_DUP: u64 = 0x02;
const SALT_JITTER: u64 = 0x03;
const SALT_DUP_JITTER: u64 = 0x04;

impl FaultPlan {
    /// A plan with the given seed and no faults; set fields from there.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..Default::default()
        }
    }

    /// SplitMix64-style hash of `(seed, seq, src, dest, salt)`. Pure:
    /// the same message identity always rolls the same value.
    fn roll(&self, seq: u64, src: NodeId, dest: NodeId, salt: u64) -> u64 {
        let link = ((src.0 as u64) << 32) | dest.0 as u64;
        let mut z = self
            .seed
            .wrapping_add(seq.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(link.wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add(salt.wrapping_mul(0x94D0_49BB_1331_11EB));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn chance(&self, permille: u16, seq: u64, src: NodeId, dest: NodeId, salt: u64) -> bool {
        permille > 0 && self.roll(seq, src, dest, salt) % 1000 < permille as u64
    }

    fn jitter_roll(&self, seq: u64, src: NodeId, dest: NodeId, salt: u64) -> Cycles {
        if self.jitter_max == 0 {
            0
        } else {
            self.roll(seq, src, dest, salt) % (self.jitter_max + 1)
        }
    }

    /// Is the `src → dest` link partitioned at virtual time `at`?
    pub fn partitioned(&self, src: NodeId, dest: NodeId, at: Cycles) -> bool {
        self.partitions.iter().any(|w| w.covers(src, dest, at))
    }

    /// If `node` is stalled at `at`, the latest stall-window end covering
    /// `at` (the time deferred arrivals are released), else `None`.
    pub fn stalled_until(&self, node: NodeId, at: Cycles) -> Option<Cycles> {
        self.stalls
            .iter()
            .filter(|w| w.node == node && (w.from..w.until).contains(&at))
            .map(|w| w.until)
            .max()
    }

    /// The virtual time at which an arrival nominally due at `at` actually
    /// clears every stall window on `node`: deferrals are iterated to a
    /// fixpoint, because a single deferral can release an arrival straight
    /// into another, overlapping window. Returns `at` unchanged when the
    /// node is not stalled. Terminates: every deferral strictly advances
    /// `at` toward the finite set of window ends.
    pub fn stall_release(&self, node: NodeId, mut at: Cycles) -> Cycles {
        while let Some(release) = self.stalled_until(node, at) {
            at = release;
        }
        at
    }

    /// Lower bound on the extra wire latency this plan adds to any
    /// *delivered* copy — a guarantee that a plan never makes a message
    /// arrive earlier than its nominal delivery time: jitter is drawn from
    /// `0..=jitter_max` (non-negative), stall windows only defer arrivals
    /// forward, and a duplicate's second copy is injected at least one
    /// cycle after the primary's nominal time. Conservative host-parallel
    /// executors query this so the cost model's minimum wire latency
    /// remains a valid lookahead window under any installed plan.
    pub fn min_extra_latency(&self) -> Cycles {
        0
    }

    /// The complete fault decision for a message injected with global
    /// sequence number `seq` over `src → dest`, nominally delivered at
    /// `deliver_at`.
    pub fn decide(&self, seq: u64, src: NodeId, dest: NodeId, deliver_at: Cycles) -> Decision {
        let partitioned = self.partitioned(src, dest, deliver_at);
        let drop = partitioned || self.chance(self.drop_permille, seq, src, dest, SALT_DROP);
        Decision {
            drop,
            partitioned,
            duplicate: !drop && self.chance(self.dup_permille, seq, src, dest, SALT_DUP),
            jitter: self.jitter_roll(seq, src, dest, SALT_JITTER),
            dup_jitter: self.jitter_roll(seq, src, dest, SALT_DUP_JITTER),
        }
    }
}

/// Cumulative fault-injection counters, kept by the network.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Messages lost to random loss.
    pub dropped: u64,
    /// Messages lost to a partition window.
    pub partition_drops: u64,
    /// Wire-level duplicate copies delivered.
    pub duplicated: u64,
    /// Arrivals deferred past a node-stall window.
    pub stall_defers: u64,
    /// Total extra latency injected as jitter, in cycles.
    pub jitter_cycles: u64,
}

impl FaultStats {
    /// Total messages lost (random loss + partitions).
    pub fn lost(&self) -> u64 {
        self.dropped + self.partition_drops
    }

    /// Field-wise sum of another counter set into this one (all fields are
    /// order-independent totals, so merging shard-local stats in any order
    /// yields the single-network value).
    pub fn absorb(&mut self, other: &FaultStats) {
        self.dropped += other.dropped;
        self.partition_drops += other.partition_drops;
        self.duplicated += other.duplicated;
        self.stall_defers += other.stall_defers;
        self.jitter_cycles += other.jitter_cycles;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_pure_functions_of_identity() {
        let plan = FaultPlan {
            seed: 42,
            drop_permille: 100,
            dup_permille: 100,
            jitter_max: 50,
            ..Default::default()
        };
        for seq in 0..200u64 {
            let a = plan.decide(seq, NodeId(1), NodeId(2), 1000);
            let b = plan.decide(seq, NodeId(1), NodeId(2), 1000);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn seeds_and_links_decorrelate() {
        let a = FaultPlan {
            seed: 1,
            drop_permille: 500,
            ..Default::default()
        };
        let b = FaultPlan {
            seed: 2,
            ..a.clone()
        };
        let fates_a: Vec<bool> = (0..64)
            .map(|s| a.decide(s, NodeId(0), NodeId(1), 0).drop)
            .collect();
        let fates_b: Vec<bool> = (0..64)
            .map(|s| b.decide(s, NodeId(0), NodeId(1), 0).drop)
            .collect();
        let fates_a2: Vec<bool> = (0..64)
            .map(|s| a.decide(s, NodeId(2), NodeId(1), 0).drop)
            .collect();
        assert_ne!(fates_a, fates_b, "seed must change the schedule");
        assert_ne!(fates_a, fates_a2, "link must change the schedule");
    }

    #[test]
    fn loss_rate_tracks_permille() {
        let plan = FaultPlan {
            seed: 7,
            drop_permille: 50, // 5%
            ..Default::default()
        };
        let lost = (0..10_000u64)
            .filter(|&s| plan.decide(s, NodeId(0), NodeId(1), 0).drop)
            .count();
        assert!((300..=700).contains(&lost), "5% of 10k ≈ 500, got {lost}");
    }

    #[test]
    fn partition_windows_cover_and_wildcard() {
        let plan = FaultPlan {
            partitions: vec![
                LinkWindow {
                    src: Some(NodeId(0)),
                    dest: Some(NodeId(1)),
                    from: 100,
                    until: 200,
                },
                LinkWindow {
                    src: None,
                    dest: Some(NodeId(3)),
                    from: 50,
                    until: 60,
                },
            ],
            ..Default::default()
        };
        assert!(plan.partitioned(NodeId(0), NodeId(1), 100));
        assert!(plan.partitioned(NodeId(0), NodeId(1), 199));
        assert!(!plan.partitioned(NodeId(0), NodeId(1), 200), "half-open");
        assert!(!plan.partitioned(NodeId(1), NodeId(0), 150), "directional");
        assert!(plan.partitioned(NodeId(7), NodeId(3), 55), "wildcard src");
        assert!(plan.decide(0, NodeId(0), NodeId(1), 150).drop);
        assert!(plan.decide(0, NodeId(0), NodeId(1), 150).partitioned);
    }

    #[test]
    fn stalls_defer_to_latest_covering_window() {
        let plan = FaultPlan {
            stalls: vec![
                NodeWindow {
                    node: NodeId(2),
                    from: 10,
                    until: 100,
                },
                NodeWindow {
                    node: NodeId(2),
                    from: 50,
                    until: 300,
                },
            ],
            ..Default::default()
        };
        assert_eq!(plan.stalled_until(NodeId(2), 20), Some(100));
        assert_eq!(plan.stalled_until(NodeId(2), 60), Some(300));
        assert_eq!(plan.stalled_until(NodeId(2), 300), None);
        assert_eq!(plan.stalled_until(NodeId(1), 60), None);
    }

    #[test]
    fn stall_release_chases_overlapping_windows() {
        let plan = FaultPlan {
            stalls: vec![
                NodeWindow {
                    node: NodeId(2),
                    from: 10,
                    until: 100,
                },
                NodeWindow {
                    node: NodeId(2),
                    from: 50,
                    until: 300,
                },
                NodeWindow {
                    node: NodeId(2),
                    from: 300,
                    until: 310,
                },
            ],
            ..Default::default()
        };
        // 20 → 100 (first window) → 300 (second covers 100) → 310 (third
        // starts exactly at the second's release).
        assert_eq!(plan.stall_release(NodeId(2), 20), 310);
        assert_eq!(plan.stall_release(NodeId(2), 310), 310, "fixpoint");
        assert_eq!(
            plan.stall_release(NodeId(1), 20),
            20,
            "other node untouched"
        );
        // The release time never sits inside any window.
        for at in [0u64, 10, 20, 99, 100, 250, 300, 309, 310, 1000] {
            let r = plan.stall_release(NodeId(2), at);
            assert!(plan.stalled_until(NodeId(2), r).is_none());
            assert!(r >= at, "stalls only defer forward");
        }
    }

    #[test]
    fn plans_never_accelerate_delivery() {
        // The lookahead bound the sharded executor relies on: no decision
        // can make a copy arrive before its nominal time.
        let plan = FaultPlan {
            seed: 11,
            drop_permille: 100,
            dup_permille: 300,
            jitter_max: 17,
            ..Default::default()
        };
        assert_eq!(plan.min_extra_latency(), 0);
        for seq in 0..500u64 {
            let d = plan.decide(seq, NodeId(0), NodeId(1), 1000);
            assert!(d.jitter >= plan.min_extra_latency());
        }
    }

    #[test]
    fn zero_plan_injects_nothing() {
        let plan = FaultPlan::seeded(99);
        for seq in 0..100 {
            assert_eq!(
                plan.decide(seq, NodeId(0), NodeId(1), seq),
                Decision::default()
            );
        }
    }
}
