//! Processor topologies and data-layout helpers.
//!
//! The paper's evaluation varies *data layout* while holding the machine
//! fixed: SOR uses block-cyclic distributions of a 2-D grid over an 8×8
//! processor grid (Table 4), MD-Force compares a random layout against
//! orthogonal recursive bisection (Table 5), and EM3D places graph nodes
//! with a tunable locality probability (Table 6). This module provides
//! those owner maps.

use crate::NodeId;

/// A rectangular grid of processors, `px × py` nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcGrid {
    /// Processors along x.
    pub px: u32,
    /// Processors along y.
    pub py: u32,
}

impl ProcGrid {
    /// A square grid holding exactly `n` processors; panics if `n` is not a
    /// perfect square (the paper uses 8×8 = 64).
    pub fn square(n: u32) -> Self {
        let side = (n as f64).sqrt().round() as u32;
        assert_eq!(side * side, n, "square grid requires a perfect square");
        ProcGrid { px: side, py: side }
    }

    /// Total processor count.
    pub fn len(&self) -> u32 {
        self.px * self.py
    }

    /// True when the grid is empty (zero processors along either axis).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Node id of grid position `(x, y)` (row-major).
    pub fn node(&self, x: u32, y: u32) -> NodeId {
        debug_assert!(x < self.px && y < self.py);
        NodeId(y * self.px + x)
    }
}

/// Block-cyclic owner map for a 2-D data grid.
///
/// The data grid is tiled into `block × block` blocks; block `(bx, by)` goes
/// to processor `(bx mod px, by mod py)`. `block = 1` is a fully cyclic
/// layout (worst locality); `block = data_side / px` is a pure block layout
/// (best locality). These are exactly Table 4's five layouts.
#[derive(Debug, Clone, Copy)]
pub struct BlockCyclic {
    /// Processor grid.
    pub procs: ProcGrid,
    /// Block edge length (data elements).
    pub block: u32,
}

impl BlockCyclic {
    /// Owner of data element `(i, j)` (row = i, column = j).
    pub fn owner(&self, i: u32, j: u32) -> NodeId {
        let bx = (j / self.block) % self.procs.px;
        let by = (i / self.block) % self.procs.py;
        self.procs.node(bx, by)
    }
}

/// Orthogonal recursive bisection over 3-D points.
///
/// Splits the point set along the widest axis at the median, recursively,
/// until every partition maps to one node. Used by MD-Force's "spatial"
/// layout (Table 5): spatially proximate atoms land on the same node, so
/// most cutoff pairs become node-local.
///
/// Returns one `NodeId` per input point. `n_nodes` must be a power of two.
pub fn orb_partition(points: &[[f64; 3]], n_nodes: u32) -> Vec<NodeId> {
    assert!(
        n_nodes.is_power_of_two(),
        "ORB requires a power-of-two node count"
    );
    let mut owner = vec![NodeId(0); points.len()];
    let mut idx: Vec<u32> = (0..points.len() as u32).collect();
    orb_rec(points, &mut idx, 0, n_nodes, &mut owner);
    owner
}

fn orb_rec(points: &[[f64; 3]], idx: &mut [u32], base: u32, n: u32, owner: &mut [NodeId]) {
    if n == 1 {
        for &i in idx.iter() {
            owner[i as usize] = NodeId(base);
        }
        return;
    }
    // Pick the widest axis.
    let mut lo = [f64::INFINITY; 3];
    let mut hi = [f64::NEG_INFINITY; 3];
    for &i in idx.iter() {
        let p = points[i as usize];
        for a in 0..3 {
            lo[a] = lo[a].min(p[a]);
            hi[a] = hi[a].max(p[a]);
        }
    }
    let axis = (0..3)
        .max_by(|&a, &b| (hi[a] - lo[a]).partial_cmp(&(hi[b] - lo[b])).unwrap())
        .unwrap();
    // Median split (stable, deterministic: ties broken by point index).
    idx.sort_by(|&a, &b| {
        points[a as usize][axis]
            .partial_cmp(&points[b as usize][axis])
            .unwrap()
            .then(a.cmp(&b))
    });
    let mid = idx.len() / 2;
    let (left, right) = idx.split_at_mut(mid);
    orb_rec(points, left, base, n / 2, owner);
    orb_rec(points, right, base + n / 2, n / 2, owner);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_grid() {
        let g = ProcGrid::square(64);
        assert_eq!(g.px, 8);
        assert_eq!(g.py, 8);
        assert_eq!(g.len(), 64);
        assert_eq!(g.node(0, 0), NodeId(0));
        assert_eq!(g.node(7, 7), NodeId(63));
        assert_eq!(g.node(3, 2), NodeId(19));
    }

    #[test]
    #[should_panic]
    fn square_grid_rejects_non_square() {
        ProcGrid::square(60);
    }

    #[test]
    fn cyclic_layout_spreads_neighbours() {
        // block=1 on a 2x2 grid: horizontal neighbours always differ.
        let bc = BlockCyclic {
            procs: ProcGrid::square(4),
            block: 1,
        };
        for i in 0..8u32 {
            for j in 0..8u32 {
                assert_ne!(bc.owner(i, j), bc.owner(i, j + 1));
                assert_ne!(bc.owner(i, j), bc.owner(i + 1, j));
            }
        }
    }

    #[test]
    fn block_layout_keeps_interior_local() {
        // 16x16 data over 2x2 procs, block=8: pure block layout.
        let bc = BlockCyclic {
            procs: ProcGrid { px: 2, py: 2 },
            block: 8,
        };
        // Interior of first block all on node 0.
        for i in 0..8 {
            for j in 0..8 {
                assert_eq!(bc.owner(i, j), NodeId(0));
            }
        }
        assert_eq!(bc.owner(0, 8), NodeId(1));
        assert_eq!(bc.owner(8, 0), NodeId(2));
        assert_eq!(bc.owner(8, 8), NodeId(3));
    }

    #[test]
    fn orb_balances_and_localizes() {
        // A 4-cluster point set on 4 nodes: each cluster one node.
        let mut pts = Vec::new();
        for c in 0..4 {
            let cx = (c % 2) as f64 * 100.0;
            let cy = (c / 2) as f64 * 100.0;
            for k in 0..25 {
                pts.push([cx + (k % 5) as f64, cy + (k / 5) as f64, 0.0]);
            }
        }
        let owner = orb_partition(&pts, 4);
        // Balanced: 25 points per node.
        let mut counts = [0u32; 4];
        for o in &owner {
            counts[o.idx()] += 1;
        }
        assert_eq!(counts, [25, 25, 25, 25]);
        // Localized: all points of one cluster share an owner.
        for c in 0..4 {
            let first = owner[c * 25];
            for k in 0..25 {
                assert_eq!(owner[c * 25 + k], first, "cluster {c} split");
            }
        }
    }

    #[test]
    fn orb_deterministic_under_ties() {
        let pts = vec![[1.0, 0.0, 0.0]; 16];
        let a = orb_partition(&pts, 4);
        let b = orb_partition(&pts, 4);
        assert_eq!(a, b);
        let mut counts = [0u32; 4];
        for o in &a {
            counts[o.idx()] += 1;
        }
        assert_eq!(counts, [4, 4, 4, 4]);
    }
}
