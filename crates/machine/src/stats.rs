//! Instrumentation counters.
//!
//! Every table and figure in the paper's evaluation is derived from these:
//! Table 2 from instruction deltas, Table 4–6 from per-mode cycle totals and
//! local/remote invocation ratios, Figure 9 from `ctx_alloc` counts.

use crate::Cycles;

/// Per-node event counters. All counts are cumulative over a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counters {
    /// Instructions (cost units) executed on this node.
    pub instructions: Cycles,
    /// Invocations that ran to completion on the stack, by schema.
    pub stack_nb: u64,
    /// May-block schema stack completions.
    pub stack_mb: u64,
    /// Continuation-passing schema stack completions.
    pub stack_cp: u64,
    /// Invocations speculatively inlined (local, unlocked, non-blocking).
    pub inlined: u64,
    /// Heap-based (parallel-version) invocations started.
    pub par_invokes: u64,
    /// Heap contexts allocated (Fig. 9 counts these).
    pub ctx_alloc: u64,
    /// Heap contexts freed.
    pub ctx_free: u64,
    /// Stack→heap fallbacks (lazy context creations caused by unwinding).
    pub fallbacks: u64,
    /// Context suspensions (touch misses, lock waits).
    pub suspends: u64,
    /// Context resumptions.
    pub resumes: u64,
    /// Request messages sent from this node.
    pub msgs_sent: u64,
    /// Reply messages sent from this node.
    pub replies_sent: u64,
    /// Payload words sent from this node in request messages.
    pub req_words_sent: u64,
    /// Payload words sent from this node in reply messages.
    pub reply_words_sent: u64,
    /// Messages handled on this node.
    pub msgs_handled: u64,
    /// Invocations whose target was local at the time of the check.
    pub local_invokes: u64,
    /// Invocations whose target was remote at the time of the check.
    pub remote_invokes: u64,
    /// Touch operations executed.
    pub touches: u64,
    /// Touches that found at least one unresolved future.
    pub touch_misses: u64,
    /// Lock acquisitions that found the lock held.
    pub lock_conflicts: u64,
    /// Continuations materialized lazily (CP schema, §3.2.3).
    pub conts_created: u64,
    /// Forwarded invocations executed entirely on the stack.
    pub stack_forwards: u64,
    /// Invocations executed directly from a message handler (wrappers).
    pub wrapper_runs: u64,
    /// Proxy continuations synthesized for handler-side CP execution.
    pub proxy_conts: u64,
    /// Data messages retransmitted after an ack timeout (reliable
    /// transport only).
    pub retransmits: u64,
    /// Transport acknowledgements sent from this node.
    pub acks_sent: u64,
    /// Transport acknowledgements handled on this node.
    pub acks_handled: u64,
    /// Received data messages discarded as duplicates (wire duplication or
    /// a retransmit racing its original).
    pub dups_suppressed: u64,
    /// Collectives (multicast/reduce/barrier) initiated on this node.
    pub coll_initiated: u64,
    /// Collective legs injected from this node (down-legs at the
    /// initiator, up-legs at members).
    pub coll_legs_sent: u64,
    /// Collective legs handled on this node.
    pub coll_legs_handled: u64,
    /// Reduction contributions folded on this node (own values and child
    /// up-legs).
    pub coll_contribs: u64,
    /// Payload words sent from this node in collective legs.
    pub coll_words_sent: u64,
}

impl Counters {
    /// Add another counter set into this one (for machine-wide totals).
    pub fn merge(&mut self, other: &Counters) {
        self.instructions += other.instructions;
        self.stack_nb += other.stack_nb;
        self.stack_mb += other.stack_mb;
        self.stack_cp += other.stack_cp;
        self.inlined += other.inlined;
        self.par_invokes += other.par_invokes;
        self.ctx_alloc += other.ctx_alloc;
        self.ctx_free += other.ctx_free;
        self.fallbacks += other.fallbacks;
        self.suspends += other.suspends;
        self.resumes += other.resumes;
        self.msgs_sent += other.msgs_sent;
        self.replies_sent += other.replies_sent;
        self.req_words_sent += other.req_words_sent;
        self.reply_words_sent += other.reply_words_sent;
        self.msgs_handled += other.msgs_handled;
        self.local_invokes += other.local_invokes;
        self.remote_invokes += other.remote_invokes;
        self.touches += other.touches;
        self.touch_misses += other.touch_misses;
        self.lock_conflicts += other.lock_conflicts;
        self.conts_created += other.conts_created;
        self.stack_forwards += other.stack_forwards;
        self.wrapper_runs += other.wrapper_runs;
        self.proxy_conts += other.proxy_conts;
        self.retransmits += other.retransmits;
        self.acks_sent += other.acks_sent;
        self.acks_handled += other.acks_handled;
        self.dups_suppressed += other.dups_suppressed;
        self.coll_initiated += other.coll_initiated;
        self.coll_legs_sent += other.coll_legs_sent;
        self.coll_legs_handled += other.coll_legs_handled;
        self.coll_contribs += other.coll_contribs;
        self.coll_words_sent += other.coll_words_sent;
    }

    /// Total method invocations observed (stack completions + heap starts +
    /// speculative inlines).
    pub fn total_invokes(&self) -> u64 {
        self.stack_nb + self.stack_mb + self.stack_cp + self.inlined + self.par_invokes
    }

    /// Ratio of local to remote invocations, the paper's data-locality
    /// metric (Tables 4 and 6). Returns `f64::INFINITY` when no remote
    /// invocations occurred.
    pub fn local_remote_ratio(&self) -> f64 {
        if self.remote_invokes == 0 {
            f64::INFINITY
        } else {
            self.local_invokes as f64 / self.remote_invokes as f64
        }
    }

    /// Fraction of invocations that were local: `local / (local + remote)`.
    pub fn local_fraction(&self) -> f64 {
        let total = self.local_invokes + self.remote_invokes;
        if total == 0 {
            1.0
        } else {
            self.local_invokes as f64 / total as f64
        }
    }
}

/// Machine-global scheduler counters for the event-index dispatch loop.
///
/// The runtime's `run_to_quiescence` selects the next actionable
/// `(time, kind, node)` event from a binary heap with lazy invalidation;
/// these counters expose how hard that index is working so the O(log P)
/// claim can be measured rather than asserted (see the `sched_throughput`
/// bench).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Events actually dispatched (messages handled + contexts/grants run).
    pub events_dispatched: u64,
    /// Candidate entries pushed onto the event index.
    pub heap_pushes: u64,
    /// Popped entries that were stale (superseded or consumed) and were
    /// discarded or re-keyed instead of dispatched.
    pub stale_pops: u64,
    /// High-water mark of the event index depth.
    pub max_heap_depth: u64,
    /// Trace records evicted from a bounded trace ring over the whole run
    /// (cumulative — unlike the ring's own drain-relative counter). A
    /// non-zero value means any report derived from the trace was computed
    /// from a *truncated* event stream.
    pub dropped_events: u64,
    /// Parallel virtual-time windows executed (sharded and speculative
    /// executors; 0 under the single-threaded dispatchers, like the heap
    /// diagnostics above).
    pub windows: u64,
    /// Events the window coordinator stepped serially (timers, or window
    /// bases no window could cover).
    pub serial_steps: u64,
    /// Events dispatched inside parallel windows (occupancy numerator:
    /// `window_events / windows` is the mean events per window).
    pub window_events: u64,
    /// Most events dispatched in any single parallel window.
    pub max_window_events: u64,
    /// Whole worker runtimes shipped through an OS channel to reach or
    /// leave a worker thread. The coordinator-free sharded executor pins
    /// worker state to its thread and never moves a runtime — this reads
    /// 0 there at every thread count — while the optimistic (Time-Warp)
    /// executor still rendezvouses through channels and counts honestly.
    pub runtime_moves: u64,
    /// Coordinator channel rendezvous (a job send paired with a result
    /// receive). 0 under the coordinator-free sharded executor, whose
    /// window edges advance by an atomic epoch publication instead.
    pub coord_roundtrips: u64,
    /// Times a later `run_until` chunk reused the persistent shard pool
    /// (worker threads, shard map, and pinned worker runtimes) instead of
    /// rebuilding it. Open-system serve mode calls `run_until` once per
    /// arrival, so this counts `chunks - 1` on the steady-state path.
    pub pool_reuses: u64,
}

/// Machine-global interconnect traffic and fault-injection counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages injected into the interconnect (including lost ones).
    pub sent: u64,
    /// Message copies delivered (duplicates count individually).
    pub delivered: u64,
    /// Payload words that actually crossed the wire.
    pub words: u64,
    /// Words carried by first-copy application payloads (requests and
    /// replies). `words == data_words + ack_words + retx_words`.
    pub data_words: u64,
    /// Words carried by transport acknowledgement frames.
    pub ack_words: u64,
    /// Words carried by retransmitted data-frame copies.
    pub retx_words: u64,
    /// Words carried by first-copy collective legs.
    /// `words == data_words + ack_words + retx_words + coll_words`.
    pub coll_words: u64,
    /// Multicasts planned.
    pub multicasts: u64,
    /// Reductions planned.
    pub reduces: u64,
    /// Barriers planned.
    pub barriers: u64,
    /// Collective down-legs planned.
    pub coll_legs: u64,
    /// Fault-injection counters (all zero with no fault plan installed).
    pub faults: crate::fault::FaultStats,
}

impl NetStats {
    /// Field-wise sum of another snapshot into this one. Every field is an
    /// order-independent total, so folding per-shard network stats together
    /// in any order reproduces the counters a single shared network would
    /// have accumulated.
    pub fn absorb(&mut self, other: &NetStats) {
        self.sent += other.sent;
        self.delivered += other.delivered;
        self.words += other.words;
        self.data_words += other.data_words;
        self.ack_words += other.ack_words;
        self.retx_words += other.retx_words;
        self.coll_words += other.coll_words;
        self.multicasts += other.multicasts;
        self.reduces += other.reduces;
        self.barriers += other.barriers;
        self.coll_legs += other.coll_legs;
        self.faults.absorb(&other.faults);
    }
}

/// Machine-wide view of a finished (or in-progress) run.
#[derive(Debug, Clone, Default)]
pub struct MachineStats {
    /// One counter set per node.
    pub per_node: Vec<Counters>,
    /// Per-node finishing times (cycles).
    pub node_time: Vec<Cycles>,
    /// Scheduler (event-index) counters, machine-global.
    pub sched: SchedStats,
    /// Interconnect traffic and fault counters, machine-global.
    pub net: NetStats,
}

impl MachineStats {
    /// Create stats for an `n`-node machine.
    pub fn new(n: usize) -> Self {
        MachineStats {
            per_node: vec![Counters::default(); n],
            node_time: vec![0; n],
            sched: SchedStats::default(),
            net: NetStats::default(),
        }
    }

    /// Aggregate counters over all nodes.
    pub fn totals(&self) -> Counters {
        let mut t = Counters::default();
        for c in &self.per_node {
            t.merge(c);
        }
        t
    }

    /// Makespan: the time at which the last node finished.
    pub fn makespan(&self) -> Cycles {
        self.node_time.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_fields() {
        let mut a = Counters {
            instructions: 10,
            ctx_alloc: 2,
            ..Default::default()
        };
        let b = Counters {
            instructions: 5,
            ctx_alloc: 1,
            fallbacks: 7,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.instructions, 15);
        assert_eq!(a.ctx_alloc, 3);
        assert_eq!(a.fallbacks, 7);
    }

    #[test]
    fn ratios() {
        let c = Counters {
            local_invokes: 90,
            remote_invokes: 10,
            ..Default::default()
        };
        assert!((c.local_remote_ratio() - 9.0).abs() < 1e-12);
        assert!((c.local_fraction() - 0.9).abs() < 1e-12);

        let none = Counters::default();
        assert!(none.local_remote_ratio().is_infinite());
        assert_eq!(none.local_fraction(), 1.0);
    }

    #[test]
    fn makespan_is_max() {
        let mut s = MachineStats::new(3);
        s.node_time = vec![5, 42, 7];
        assert_eq!(s.makespan(), 42);
        assert_eq!(s.totals(), Counters::default());
    }

    #[test]
    fn totals_sum_across_nodes() {
        // Machine-wide totals are the field-wise sum of the per-node sets:
        // no field is dropped, none is double-counted.
        let mut s = MachineStats::new(3);
        for (i, c) in s.per_node.iter_mut().enumerate() {
            let k = (i + 1) as u64;
            c.msgs_sent = k;
            c.replies_sent = 10 * k;
            c.req_words_sent = 100 * k;
            c.reply_words_sent = 1000 * k;
            c.stack_nb = k;
            c.par_invokes = 2 * k;
            c.inlined = 3 * k;
            c.ctx_alloc = 4 * k;
            c.ctx_free = 4 * k;
        }
        let t = s.totals();
        assert_eq!(t.msgs_sent, 1 + 2 + 3);
        assert_eq!(t.replies_sent, 60);
        assert_eq!(t.req_words_sent, 600);
        assert_eq!(t.reply_words_sent, 6000);
        assert_eq!(t.total_invokes(), (1 + 2 + 3) * 6);
        assert_eq!(t.ctx_alloc, t.ctx_free);
    }

    #[test]
    fn merge_is_associative_on_word_counters() {
        let mk = |a: u64, b: u64| Counters {
            req_words_sent: a,
            reply_words_sent: b,
            acks_sent: a + b,
            ..Default::default()
        };
        let (x, y, z) = (mk(1, 2), mk(3, 4), mk(5, 6));
        let mut left = x.clone();
        left.merge(&y);
        left.merge(&z);
        let mut yz = y.clone();
        yz.merge(&z);
        let mut right = x.clone();
        right.merge(&yz);
        assert_eq!(left, right);
    }

    #[test]
    fn total_invokes_counts_all_paths() {
        let c = Counters {
            stack_nb: 1,
            stack_mb: 2,
            stack_cp: 3,
            inlined: 4,
            par_invokes: 5,
            ..Default::default()
        };
        assert_eq!(c.total_invokes(), 15);
    }
}
