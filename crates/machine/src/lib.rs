//! # hem-machine — simulated distributed-memory multicomputer substrate
//!
//! The SC'95 hybrid-execution-model paper evaluates on a TMC CM-5 and a Cray
//! T3D. Neither machine exists anymore, so this crate provides the
//! substitution: a *deterministic* discrete-event model of a distributed
//! memory multicomputer. Each node has a local virtual clock measured in
//! *cost units* (abstract instructions, calibrated so a plain C call costs 5
//! units, matching the paper's SPARC accounting), and nodes exchange
//! messages through an interconnect with per-message overhead, latency and
//! per-word cost.
//!
//! The crate knows nothing about the execution model itself — it supplies:
//!
//! * [`cost::CostModel`] — the price list for every runtime micro-operation,
//!   with presets for the paper's two machines ([`cost::CostModel::cm5`],
//!   [`cost::CostModel::t3d`]) plus pure-counting and `seq-opt` variants,
//! * [`net::Network`] — an in-flight message queue with deterministic
//!   delivery order,
//! * [`fault::FaultPlan`] — seeded, deterministic fault injection (loss,
//!   duplication, jitter, partitions, stalls) applied inside the network,
//! * [`stats::MachineStats`] / [`stats::Counters`] — the instrumentation the
//!   paper's tables are derived from (heap contexts allocated, fallbacks,
//!   stack invocations, messages, …),
//! * [`topology`] — processor grids and the data-layout helpers used by the
//!   evaluation kernels (block-cyclic maps, orthogonal recursive bisection),
//! * [`arrival`] — seeded open-system arrival processes (Poisson / bursty /
//!   diurnal client streams, a pure function of `(seed, client, k)`), built
//!   on the host-independent float kernels in [`fmath`].
//!
//! Determinism is load-bearing: every experiment in the paper reproduction
//! is a pure function of (program, layout, cost model, seed), which is what
//! makes the property-based tests in `hem-core` possible.

#![warn(missing_docs)]

pub mod arrival;
pub mod cost;
pub mod fault;
pub mod fmath;
pub mod net;
pub mod stats;
pub mod topology;

/// Identifier of a node (processor) in the simulated machine.
///
/// Nodes are numbered densely from zero; `NodeId` is `Copy` and ordered so
/// that it can participate in deterministic tie-breaking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Convenience accessor returning the node index as a `usize`.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Virtual time, in cost units (abstract instructions ≈ cycles).
pub type Cycles = u64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_orders_and_displays() {
        assert!(NodeId(1) < NodeId(2));
        assert_eq!(NodeId(7).idx(), 7);
        assert_eq!(format!("{}", NodeId(3)), "n3");
    }
}
