//! Seeded open-system arrival processes.
//!
//! A closed-system run drives the machine with one root call and waits
//! for quiescence; an *open* system is driven continuously by external
//! clients. This module generates those client request streams as a pure
//! function of `(seed, client, k)`: the `k`-th arrival of a client is
//! fully determined by the seed, independent of anything the simulated
//! machine does — the offered load never bends to the service rate,
//! which is exactly what makes an open-system (capacity) experiment
//! different from a closed-system (batch) one.
//!
//! Three inter-arrival shapes are provided:
//!
//! * [`ArrivalDist::Poisson`] — memoryless gaps at a constant mean;
//! * [`ArrivalDist::Bursty`] — on/off modulation: `burst_len` closely
//!   spaced arrivals, then a long idle gap (same long-run mean);
//! * [`ArrivalDist::Diurnal`] — the mean gap swept by a triangle wave of
//!   the given period (a daily load curve, compressed).
//!
//! Exponential sampling uses [`crate::fmath::ln`] — a deterministic
//! polynomial `ln`, not the platform libm — so arrival times are
//! bit-identical across hosts. [`OpenLoop`] merges the per-client
//! streams into one deterministic `(time, client)`-ordered schedule.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::fmath;
use crate::Cycles;

/// SplitMix64-style hash of `(seed, client, k, salt)`; the sole source
/// of randomness for arrival gaps and per-request choices.
fn roll(seed: u64, client: u32, k: u64, salt: u64) -> u64 {
    let mut z = seed
        .wrapping_add((client as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(k.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(salt.wrapping_mul(0x94D0_49BB_1331_11EB));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

const SALT_GAP: u64 = 0x11;
const SALT_MIX: u64 = 0x12;

/// Uniform in `(0, 1]` from a hash (never 0, so `ln` is safe).
fn u01(r: u64) -> f64 {
    ((r >> 11) + 1) as f64 / (1u64 << 53) as f64
}

/// Exponential sample with the given mean, in whole cycles, at least 1
/// (arrivals must advance virtual time for the stream to terminate at
/// any horizon).
fn exp_gap(mean: f64, r: u64) -> Cycles {
    let g = -mean * fmath::ln(u01(r));
    (g as Cycles).max(1)
}

/// Inter-arrival shape of one client's request stream. All means are in
/// virtual cycles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalDist {
    /// Memoryless (Poisson) arrivals: gaps are iid exponential with mean
    /// `mean_gap` cycles, i.e. rate `1/mean_gap` requests per cycle.
    Poisson {
        /// Mean inter-arrival gap in cycles.
        mean_gap: f64,
    },
    /// On/off bursts: within a burst of `burst_len` requests, gaps are
    /// exponential with mean `mean_gap/4`; each burst is preceded by an
    /// exponential idle gap sized so the long-run mean gap stays
    /// `mean_gap`.
    Bursty {
        /// Long-run mean inter-arrival gap in cycles.
        mean_gap: f64,
        /// Requests per burst (min 1).
        burst_len: u32,
    },
    /// Diurnal load curve: the mean gap is swept between `mean_gap/2`
    /// (peak) and `3·mean_gap/2` (trough) by a triangle wave with the
    /// given period, evaluated at the previous arrival's time.
    Diurnal {
        /// Midpoint mean inter-arrival gap in cycles.
        mean_gap: f64,
        /// Triangle-wave period in cycles (min 1).
        period: Cycles,
    },
}

impl ArrivalDist {
    /// Parse a `hemprof serve --arrival` name against a mean gap.
    pub fn named(name: &str, mean_gap: f64) -> Option<ArrivalDist> {
        match name {
            "poisson" => Some(ArrivalDist::Poisson { mean_gap }),
            "bursty" => Some(ArrivalDist::Bursty {
                mean_gap,
                burst_len: 8,
            }),
            "diurnal" => Some(ArrivalDist::Diurnal {
                mean_gap,
                period: (mean_gap * 64.0) as Cycles + 1,
            }),
            _ => None,
        }
    }

    /// The gap between a client's `k-1`-th and `k`-th arrivals (`k = 0`
    /// gaps from time 0). Pure in `(seed, client, k, prev)`; `prev` (the
    /// previous arrival time) only matters to [`ArrivalDist::Diurnal`].
    fn gap(&self, seed: u64, client: u32, k: u64, prev: Cycles) -> Cycles {
        let r = roll(seed, client, k, SALT_GAP);
        match *self {
            ArrivalDist::Poisson { mean_gap } => exp_gap(mean_gap, r),
            ArrivalDist::Bursty {
                mean_gap,
                burst_len,
            } => {
                let b = burst_len.max(1) as u64;
                if k.is_multiple_of(b) {
                    // Idle gap: the burst's whole budget minus what the
                    // in-burst gaps spend on average.
                    let idle = mean_gap * (b as f64 - (b - 1) as f64 / 4.0);
                    exp_gap(idle, r)
                } else {
                    exp_gap(mean_gap / 4.0, r)
                }
            }
            ArrivalDist::Diurnal { mean_gap, period } => {
                let period = period.max(1);
                let phase = (prev % period) as f64 / period as f64;
                // Triangle in [0,1]: 0 at phase 0.5, 1 at phase 0/1.
                let tri = 2.0 * (phase - 0.5).abs();
                exp_gap(mean_gap * (0.5 + tri), r)
            }
        }
    }
}

/// One scheduled request arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Arrival time in virtual cycles.
    pub at: Cycles,
    /// Originating client.
    pub client: u32,
    /// Per-client request ordinal (0-based).
    pub k: u64,
    /// Request-local hash — a pure function of `(seed, client, k)` for
    /// downstream choices (target object, request kind) that must not
    /// depend on machine state.
    pub key: u64,
}

/// Deterministic merge of `clients` independent arrival streams into one
/// `(time, client)`-ordered schedule. The stream is infinite; callers
/// stop at their horizon.
pub struct OpenLoop {
    dist: ArrivalDist,
    seed: u64,
    /// Min-heap of each client's next arrival, keyed `(time, client)`.
    heads: BinaryHeap<Reverse<(Cycles, u32, u64)>>,
}

impl OpenLoop {
    /// Build the merged schedule for `clients` clients.
    pub fn new(dist: ArrivalDist, clients: u32, seed: u64) -> OpenLoop {
        let mut heads = BinaryHeap::with_capacity(clients as usize);
        for c in 0..clients {
            let t = dist.gap(seed, c, 0, 0);
            heads.push(Reverse((t, c, 0)));
        }
        OpenLoop { dist, seed, heads }
    }
}

impl Iterator for OpenLoop {
    type Item = Arrival;

    fn next(&mut self) -> Option<Arrival> {
        let Reverse((at, client, k)) = self.heads.pop()?;
        let next = at + self.dist.gap(self.seed, client, k + 1, at);
        self.heads.push(Reverse((next, client, k + 1)));
        Some(Arrival {
            at,
            client,
            k,
            key: roll(self.seed, client, k, SALT_MIX),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn take_until(dist: ArrivalDist, clients: u32, seed: u64, horizon: Cycles) -> Vec<Arrival> {
        OpenLoop::new(dist, clients, seed)
            .take_while(|a| a.at < horizon)
            .collect()
    }

    #[test]
    fn schedule_is_a_pure_function_of_the_seed() {
        let d = ArrivalDist::Poisson { mean_gap: 500.0 };
        let a = take_until(d, 4, 42, 100_000);
        let b = take_until(d, 4, 42, 100_000);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        let c = take_until(d, 4, 43, 100_000);
        assert_ne!(a, c, "different seed, different schedule");
    }

    #[test]
    fn merged_stream_is_time_ordered_and_strictly_monotone_per_client() {
        for dist in [
            ArrivalDist::Poisson { mean_gap: 300.0 },
            ArrivalDist::Bursty {
                mean_gap: 300.0,
                burst_len: 5,
            },
            ArrivalDist::Diurnal {
                mean_gap: 300.0,
                period: 10_000,
            },
        ] {
            let arr = take_until(dist, 3, 7, 200_000);
            assert!(arr.len() > 50, "{dist:?} produced {}", arr.len());
            for w in arr.windows(2) {
                assert!(
                    (w[0].at, w[0].client) <= (w[1].at, w[1].client),
                    "{dist:?}: merge order"
                );
            }
            for c in 0..3 {
                let mine: Vec<_> = arr.iter().filter(|a| a.client == c).collect();
                for w in mine.windows(2) {
                    assert!(w[0].at < w[1].at, "{dist:?}: client gaps >= 1");
                    assert_eq!(w[0].k + 1, w[1].k, "{dist:?}: ordinals dense");
                }
            }
        }
    }

    #[test]
    fn poisson_long_run_rate_is_near_nominal() {
        let mean = 400.0;
        let horizon = 4_000_000;
        let arr = take_until(ArrivalDist::Poisson { mean_gap: mean }, 1, 1, horizon);
        let got = horizon as f64 / arr.len() as f64;
        assert!(
            (got - mean).abs() < mean * 0.15,
            "empirical mean gap {got} vs nominal {mean}"
        );
    }

    #[test]
    fn bursty_keeps_the_long_run_mean() {
        let mean = 400.0;
        let horizon = 4_000_000;
        let arr = take_until(
            ArrivalDist::Bursty {
                mean_gap: mean,
                burst_len: 8,
            },
            1,
            1,
            horizon,
        );
        let got = horizon as f64 / arr.len() as f64;
        assert!(
            (got - mean).abs() < mean * 0.25,
            "empirical mean gap {got} vs nominal {mean}"
        );
    }

    #[test]
    fn named_parses_the_cli_shapes() {
        assert!(matches!(
            ArrivalDist::named("poisson", 100.0),
            Some(ArrivalDist::Poisson { .. })
        ));
        assert!(matches!(
            ArrivalDist::named("bursty", 100.0),
            Some(ArrivalDist::Bursty { .. })
        ));
        assert!(matches!(
            ArrivalDist::named("diurnal", 100.0),
            Some(ArrivalDist::Diurnal { .. })
        ));
        assert_eq!(ArrivalDist::named("uniform", 100.0), None);
    }
}
