//! Cost model: the price list for runtime micro-operations.
//!
//! The paper reasons about overheads in SPARC instruction counts (a C call
//! on the CM-5's SPARC costs 5 instructions; a heap-based parallel
//! invocation costs ~130; the sequential schemas add 6–8; fallback costs
//! range 8–140). We reproduce that accounting style: the runtime charges a
//! cost for every micro-operation it actually performs, and the Table 2 /
//! Table 3 harnesses *measure* the resulting dynamic counts rather than
//! hard-coding the paper's numbers.
//!
//! Latency fields (`msg_latency`, `reply_latency`) are wire time: they delay
//! message delivery but do not consume instructions on either node.

use crate::Cycles;

/// Prices (in cost units ≈ instructions) for every micro-operation the
/// hybrid runtime performs, plus machine parameters (clock rate, wire
/// latency).
///
/// Build one with a preset ([`CostModel::cm5`], [`CostModel::t3d`],
/// [`CostModel::unit`]) and tweak fields as needed; all fields are public.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Human-readable name of the preset ("cm5", "t3d", …).
    pub name: &'static str,

    // ---- basic execution ----
    /// Base cost of interpreting one IR instruction (the "useful work" ALU
    /// cost). The paper notes the T3D's compiler did worse on Concert's
    /// unstructured generated C, so its preset uses a higher value.
    pub op: Cycles,
    /// A plain C function call (5 on the CM-5's register-windowed SPARC;
    /// 10–15 on other processors, per the paper's footnote).
    pub plain_call: Cycles,

    // ---- sequential (stack) invocation schemas: extra instructions beyond
    //      a plain call (paper §4.1 reports 6–8) ----
    /// Extra cost of the Non-blocking schema (return value through memory).
    pub nb_call_extra: Cycles,
    /// Extra cost of the May-block schema (return-value pointer argument +
    /// NULL-check of the returned context).
    pub mb_call_extra: Cycles,
    /// Extra cost of the Continuation-passing schema (`caller_info` +
    /// `return_val_ptr` arguments and the post-return dispatch).
    pub cp_call_extra: Cycles,

    // ---- parallelization checks (present in *all* generated code;
    //      Table 3's "Seq-opt" column zeroes these) ----
    /// Name translation + locality check ("is the target object here?").
    pub locality_check: Cycles,
    /// Concurrency check ("is the target object unlocked?").
    pub concurrency_check: Cycles,
    /// Residual guard cost when an invocation is speculatively inlined
    /// (checks folded into one guard; no call at all).
    pub inline_guard: Cycles,

    // ---- heap contexts (parallel version) ----
    /// Allocating a heap activation frame (context).
    pub ctx_alloc: Cycles,
    /// Initializing / saving / restoring one word of a context (argument
    /// copy, live-state save on fallback, restore on resume).
    pub ctx_word: Cycles,
    /// Freeing a context.
    pub ctx_free: Cycles,
    /// Fixed bookkeeping for a heap-based invocation beyond its components
    /// (scheduling-queue maintenance, counter setup, …).
    pub par_invoke_fixed: Cycles,

    // ---- futures & continuations ----
    /// Creating a continuation (materializing the reply capability).
    pub cont_create: Cycles,
    /// Linking an existing continuation into a context (fallback linkage).
    pub cont_link: Cycles,
    /// Storing a value into a future slot.
    pub future_store: Cycles,
    /// Touching one future slot that is already full.
    pub future_touch: Cycles,
    /// Initializing a join counter (data-parallel synchronization).
    pub join_init: Cycles,
    /// Decrementing a join counter on completion of one member.
    pub join_dec: Cycles,

    // ---- scheduling ----
    /// Suspending a context (recording the awaited slot set).
    pub suspend: Cycles,
    /// Enqueueing a ready context.
    pub enqueue: Cycles,
    /// Dispatching a context from the ready queue (incl. state reload base).
    pub dispatch: Cycles,

    // ---- locks (implicit, per-object) ----
    /// Acquiring an uncontended object lock.
    pub lock_acquire: Cycles,
    /// Releasing an object lock.
    pub lock_release: Cycles,
    /// Queueing an invocation on a held lock.
    pub lock_enqueue: Cycles,

    // ---- messaging ----
    /// Sender-side cost of composing and injecting a request message.
    pub msg_send: Cycles,
    /// Sender-side cost per payload word.
    pub msg_word: Cycles,
    /// Wire latency of a request message (delivery delay, not instructions).
    pub msg_latency: Cycles,
    /// Receiver-side handler entry cost (polling, header decode).
    pub handler: Cycles,
    /// Sender-side cost of a reply message. The CM-5's replies are cheap
    /// (a single packet); the T3D's are not — this asymmetry is what makes
    /// EM3D-`forward` win on the T3D at low locality (paper §4.3.3).
    pub reply_send: Cycles,
    /// Sender-side cost per reply payload word.
    pub reply_word: Cycles,
    /// Wire latency of a reply.
    pub reply_latency: Cycles,
    /// Processor cycles stolen by composing *or* consuming a transport
    /// acknowledgement (reliable-transport mode only). Acks are
    /// single-word frames generated and matched largely on the network
    /// interface — the CM-5 NI's outgoing FIFO and the T3D's hardware
    /// messaging both do this without a full handler entry — so only a
    /// small residual charge lands on the node's clock.
    pub ack_overhead: Cycles,

    /// Clock rate used to convert cycles to seconds in reports.
    pub clock_hz: f64,
}

impl CostModel {
    /// TMC CM-5 flavour: 33 MHz SPARC (register windows ⇒ 5-instruction
    /// calls), active-message network with cheap single-packet replies.
    pub fn cm5() -> Self {
        CostModel {
            name: "cm5",
            op: 1,
            plain_call: 5,
            nb_call_extra: 6,
            mb_call_extra: 7,
            cp_call_extra: 8,
            locality_check: 3,
            concurrency_check: 2,
            inline_guard: 4,
            ctx_alloc: 50,
            ctx_word: 2,
            ctx_free: 16,
            par_invoke_fixed: 12,
            cont_create: 14,
            cont_link: 8,
            future_store: 4,
            future_touch: 1,
            join_init: 6,
            join_dec: 4,
            suspend: 10,
            enqueue: 10,
            dispatch: 12,
            lock_acquire: 3,
            lock_release: 2,
            lock_enqueue: 12,
            msg_send: 60,
            msg_word: 8,
            msg_latency: 90,
            handler: 40,
            reply_send: 20,
            reply_word: 4,
            reply_latency: 90,
            ack_overhead: 1,
            clock_hz: 33.0e6,
        }
    }

    /// Cray T3D flavour: 150 MHz Alpha (no register windows ⇒ ~12-instruction
    /// calls), higher per-message fixed costs, expensive replies, but lower
    /// wire latency and faster clock. The higher `op` reflects the paper's
    /// observation that the T3D compiler did worse on Concert's unstructured
    /// generated C, so messaging dominates compute less than on the CM-5.
    pub fn t3d() -> Self {
        CostModel {
            name: "t3d",
            op: 2,
            plain_call: 12,
            nb_call_extra: 7,
            mb_call_extra: 8,
            cp_call_extra: 10,
            locality_check: 4,
            concurrency_check: 3,
            inline_guard: 5,
            ctx_alloc: 60,
            ctx_word: 2,
            ctx_free: 20,
            par_invoke_fixed: 16,
            cont_create: 16,
            cont_link: 10,
            future_store: 4,
            future_touch: 1,
            join_init: 6,
            join_dec: 4,
            suspend: 12,
            enqueue: 12,
            dispatch: 14,
            lock_acquire: 4,
            lock_release: 3,
            lock_enqueue: 14,
            msg_send: 140,
            msg_word: 5,
            msg_latency: 40,
            handler: 90,
            reply_send: 120,
            reply_word: 5,
            reply_latency: 40,
            ack_overhead: 3,
            clock_hz: 150.0e6,
        }
    }

    /// Pure-counting model: every micro-operation costs 1, messages are
    /// instantaneous. Useful for unit tests that assert exact counter
    /// arithmetic without caring about calibration.
    pub fn unit() -> Self {
        CostModel {
            name: "unit",
            op: 1,
            plain_call: 1,
            nb_call_extra: 1,
            mb_call_extra: 1,
            cp_call_extra: 1,
            locality_check: 1,
            concurrency_check: 1,
            inline_guard: 1,
            ctx_alloc: 1,
            ctx_word: 1,
            ctx_free: 1,
            par_invoke_fixed: 1,
            cont_create: 1,
            cont_link: 1,
            future_store: 1,
            future_touch: 1,
            join_init: 1,
            join_dec: 1,
            suspend: 1,
            enqueue: 1,
            dispatch: 1,
            lock_acquire: 1,
            lock_release: 1,
            lock_enqueue: 1,
            msg_send: 1,
            msg_word: 1,
            msg_latency: 0,
            handler: 1,
            reply_send: 1,
            reply_word: 1,
            reply_latency: 0,
            ack_overhead: 1,
            clock_hz: 1.0e6,
        }
    }

    /// Table 3's "Seq-opt" variant: the same machine with the
    /// parallelization checks (name translation, locality and concurrency
    /// checks) compiled away.
    pub fn seq_opt(mut self) -> Self {
        self.name = "seq-opt";
        self.locality_check = 0;
        self.concurrency_check = 0;
        self.inline_guard = 0;
        self
    }

    /// Convert a cycle count to seconds under this machine's clock.
    pub fn seconds(&self, cycles: Cycles) -> f64 {
        cycles as f64 / self.clock_hz
    }

    /// Minimum wire latency of any message class: no send injected at
    /// virtual time `t` can be delivered before `t + min_wire_latency()`.
    /// This is the conservative lookahead the host-parallel sharded
    /// executor uses to size its safe windows — zero (as in
    /// [`CostModel::unit`]) means no lookahead exists and execution must
    /// fall back to the single-threaded index.
    pub fn min_wire_latency(&self) -> Cycles {
        self.msg_latency.min(self.reply_latency)
    }

    /// Cost charged by a *local heap-based (parallel) invocation*, i.e. the
    /// paper's ~130-instruction figure, for an invocation with `nargs`
    /// argument words. This is the sum of the components the runtime
    /// actually charges; exposed so tests can assert the calibration.
    pub fn par_local_invoke(&self, nargs: usize) -> Cycles {
        self.locality_check
            + self.concurrency_check
            + self.lock_acquire
            + self.ctx_alloc
            + self.ctx_word * nargs as Cycles
            + self.cont_create
            + self.par_invoke_fixed
            + self.enqueue
            + self.dispatch
            + self.future_store
            + self.lock_release
            + self.ctx_free
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::cm5()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cm5_parallel_invoke_is_about_130() {
        // Paper §4.1: heap-based invocation ≈ 130 SPARC instructions.
        let c = CostModel::cm5();
        let total = c.par_local_invoke(2);
        assert!(
            (120..=145).contains(&total),
            "parallel invoke calibration off: {total}"
        );
    }

    #[test]
    fn cm5_sequential_overheads_are_single_digit() {
        let c = CostModel::cm5();
        assert!(c.nb_call_extra >= 6 && c.cp_call_extra <= 8);
        assert!(c.nb_call_extra <= c.mb_call_extra);
        assert!(c.mb_call_extra <= c.cp_call_extra);
    }

    #[test]
    fn seq_opt_zeroes_checks_only() {
        let c = CostModel::cm5().seq_opt();
        assert_eq!(c.locality_check, 0);
        assert_eq!(c.concurrency_check, 0);
        assert_eq!(c.inline_guard, 0);
        assert_eq!(c.plain_call, CostModel::cm5().plain_call);
    }

    #[test]
    fn t3d_replies_are_expensive_relative_to_cm5() {
        // The EM3D push-vs-forward crossover depends on this asymmetry.
        let cm5 = CostModel::cm5();
        let t3d = CostModel::t3d();
        assert!(cm5.reply_send < cm5.msg_send);
        assert!(
            t3d.reply_send as f64 / t3d.msg_send as f64
                > cm5.reply_send as f64 / cm5.msg_send as f64
        );
    }

    #[test]
    fn seconds_uses_clock() {
        let c = CostModel::cm5();
        let s = c.seconds(33_000_000);
        assert!((s - 1.0).abs() < 1e-9);
    }
}
