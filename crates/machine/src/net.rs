//! Deterministic interconnect: in-flight messages ordered by delivery time.
//!
//! The network is generic over the payload type `M` (the runtime defines its
//! own message enum). Delivery order is a total order on
//! `(deliver_at, dest, sequence)`, so two runs of the same experiment
//! deliver messages identically — the foundation for reproducible results
//! and the hybrid ≡ parallel-only property tests.

use crate::fault::{FaultPlan, FaultStats};
use crate::{Cycles, NodeId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Wire-level class of an injected message, for traffic accounting.
///
/// The network itself treats every class identically (same ordering, same
/// fault plan); the class only routes the payload's words into the right
/// [`crate::stats::NetStats`] bucket so ack-protocol and retransmission
/// overhead can be attributed separately from first-copy application
/// traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireClass {
    /// First wire copy of an application payload (request or reply).
    #[default]
    Data,
    /// Transport acknowledgement frame.
    Ack,
    /// Retransmitted copy of a data frame.
    Retx,
}

/// A message in flight, carrying its destination and delivery time.
#[derive(Debug, Clone)]
pub struct InFlight<M> {
    /// Virtual time at which the message reaches `dest`'s network interface.
    pub deliver_at: Cycles,
    /// Destination node.
    pub dest: NodeId,
    /// Source node (for accounting and debugging).
    pub src: NodeId,
    /// Monotone sequence number assigned at send time (tie-breaker).
    pub seq: u64,
    /// Payload.
    pub msg: M,
}

// BinaryHeap is a max-heap; invert the ordering to pop the *earliest*.
impl<M> PartialEq for InFlight<M> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<M> Eq for InFlight<M> {}
impl<M> PartialOrd for InFlight<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for InFlight<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: smallest key = greatest heap element.
        other.key().cmp(&self.key())
    }
}

impl<M> InFlight<M> {
    #[inline]
    fn key(&self) -> (Cycles, u32, u64) {
        (self.deliver_at, self.dest.0, self.seq)
    }
}

/// The interconnect: a priority queue of in-flight messages.
///
/// The network does not charge instruction costs itself — the sender charges
/// `msg_send + words·msg_word` on its own clock and passes the resulting
/// injection time here; the wire latency is added by the caller too. This
/// keeps all pricing decisions in one place (the runtime) and the network
/// purely mechanical.
#[derive(Debug)]
pub struct Network<M> {
    heap: BinaryHeap<InFlight<M>>,
    next_seq: u64,
    /// Total messages ever sent (for stats cross-checks).
    pub sent: u64,
    /// Total messages ever delivered.
    pub delivered: u64,
    /// Total payload words ever sent.
    pub words: u64,
    /// Words that crossed the wire in first-copy application payloads.
    pub data_words: u64,
    /// Words that crossed the wire in acknowledgement frames.
    pub ack_words: u64,
    /// Words that crossed the wire in retransmitted copies.
    pub retx_words: u64,
    /// Installed fault schedule, if any (see [`FaultPlan`]).
    plan: Option<FaultPlan>,
    /// Cumulative fault-injection counters.
    pub faults: FaultStats,
}

impl<M> Default for Network<M> {
    fn default() -> Self {
        Network {
            heap: BinaryHeap::new(),
            next_seq: 0,
            sent: 0,
            delivered: 0,
            words: 0,
            data_words: 0,
            ack_words: 0,
            retx_words: 0,
            plan: None,
            faults: FaultStats::default(),
        }
    }
}

/// What happened to one injected message (the plan's decision as applied).
///
/// With no plan installed every fate is `{seq, dropped: false,
/// duplicated: false, extra_latency: 0}` and exactly one copy is enqueued
/// at the caller's `deliver_at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendFate {
    /// Globally unique sequence number assigned to the message.
    pub seq: u64,
    /// The message was lost (no copy enqueued).
    pub dropped: bool,
    /// The loss was a partition-window loss (implies `dropped`).
    pub partitioned: bool,
    /// A second wire-level copy was enqueued.
    pub duplicated: bool,
    /// Extra latency (jitter and/or stall deferral) added to the primary
    /// copy, beyond the caller's `deliver_at`.
    pub extra_latency: Cycles,
}

impl<M> Network<M> {
    /// Create an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install (or clear) the fault schedule applied to subsequent sends.
    pub fn set_plan(&mut self, plan: Option<FaultPlan>) {
        self.plan = plan;
    }

    /// The installed fault schedule, if any.
    pub fn plan(&self) -> Option<&FaultPlan> {
        self.plan.as_ref()
    }

    /// Inject a message. `deliver_at` must already include wire latency.
    /// Accounts the traffic as [`WireClass::Data`]; see
    /// [`Self::send_classed`].
    pub fn send(
        &mut self,
        src: NodeId,
        dest: NodeId,
        deliver_at: Cycles,
        words: u64,
        msg: M,
    ) -> SendFate
    where
        M: Clone,
    {
        self.send_classed(src, dest, deliver_at, words, WireClass::Data, msg)
    }

    /// Words that actually crossed the wire, bucketed by class.
    #[inline]
    fn account(&mut self, class: WireClass, words: u64) {
        self.words += words;
        match class {
            WireClass::Data => self.data_words += words,
            WireClass::Ack => self.ack_words += words,
            WireClass::Retx => self.retx_words += words,
        }
    }

    /// Inject a message with an explicit traffic class. `deliver_at` must
    /// already include wire latency.
    ///
    /// The installed [`FaultPlan`] (if any) is applied here: the message
    /// may be dropped, duplicated, jittered, or deferred past a stall
    /// window — decided purely by `(seq, src, dest)` and the plan's seed,
    /// so two runs with the same plan inject identical faults. Returns the
    /// assigned sequence number and the applied decision.
    pub fn send_classed(
        &mut self,
        src: NodeId,
        dest: NodeId,
        deliver_at: Cycles,
        words: u64,
        class: WireClass,
        msg: M,
    ) -> SendFate
    where
        M: Clone,
    {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.send_tagged(seq, src, dest, deliver_at, words, class, msg)
    }

    /// [`Self::send_classed`] with a caller-chosen sequence number instead
    /// of the network's own monotone counter.
    ///
    /// The sequence number is the fault plan's randomness key and the final
    /// delivery tie-breaker, so a caller that derives it from *per-node*
    /// state (rather than this network's global send order) gets fault
    /// fates and delivery order that are independent of the interleaving in
    /// which sends from different nodes reach the network — the property
    /// the host-parallel executor relies on. Callers own uniqueness; the
    /// auto-assigning entry points remain available and unaffected.
    #[allow(clippy::too_many_arguments)]
    pub fn send_tagged(
        &mut self,
        seq: u64,
        src: NodeId,
        dest: NodeId,
        deliver_at: Cycles,
        words: u64,
        class: WireClass,
        msg: M,
    ) -> SendFate
    where
        M: Clone,
    {
        self.sent += 1;
        let mut fate = SendFate {
            seq,
            dropped: false,
            partitioned: false,
            duplicated: false,
            extra_latency: 0,
        };
        let Some(plan) = &self.plan else {
            self.account(class, words);
            self.heap.push(InFlight {
                deliver_at,
                dest,
                src,
                seq,
                msg,
            });
            return fate;
        };
        let d = plan.decide(seq, src, dest, deliver_at);
        if d.drop {
            fate.dropped = true;
            fate.partitioned = d.partitioned;
            if d.partitioned {
                self.faults.partition_drops += 1;
            } else {
                self.faults.dropped += 1;
            }
            return fate;
        }
        // Primary copy: jitter, then stall deferral at the jittered time —
        // iterated to a fixpoint, since releasing from one window can land
        // inside another, overlapping one.
        let jittered = deliver_at + d.jitter;
        self.faults.jitter_cycles += d.jitter;
        let at = plan.stall_release(dest, jittered);
        if at != jittered {
            self.faults.stall_defers += 1;
        }
        fate.extra_latency = at - deliver_at;
        if d.duplicate {
            // Wire-level duplicate: same sequence number (it *is* the same
            // message — receiver-side dedup keys on transport state, and
            // identical payloads make any heap tie unobservable), at least
            // one cycle later. The copy takes the same stall-fixpoint path
            // as the primary: no copy may land inside a stall window.
            fate.duplicated = true;
            self.faults.duplicated += 1;
            let dup_jittered = deliver_at + 1 + d.dup_jitter;
            self.faults.jitter_cycles += d.dup_jitter;
            let at2 = plan.stall_release(dest, dup_jittered);
            if at2 != dup_jittered {
                self.faults.stall_defers += 1;
            }
            self.account(class, words);
            self.heap.push(InFlight {
                deliver_at: at2,
                dest,
                src,
                seq,
                msg: msg.clone(),
            });
        }
        self.account(class, words);
        self.heap.push(InFlight {
            deliver_at: at,
            dest,
            src,
            seq,
            msg,
        });
        fate
    }

    /// Time and destination of the earliest undelivered message, if any.
    pub fn peek(&self) -> Option<(Cycles, NodeId)> {
        self.heap.peek().map(|m| (m.deliver_at, m.dest))
    }

    /// Remove and return the earliest undelivered message.
    pub fn pop(&mut self) -> Option<InFlight<M>> {
        let m = self.heap.pop();
        if m.is_some() {
            self.delivered += 1;
        }
        m
    }

    /// Number of messages currently in flight.
    pub fn in_flight(&self) -> usize {
        self.heap.len()
    }

    /// Snapshot the traffic and fault counters.
    pub fn stats(&self) -> crate::stats::NetStats {
        crate::stats::NetStats {
            sent: self.sent,
            delivered: self.delivered,
            words: self.words,
            data_words: self.data_words,
            ack_words: self.ack_words,
            retx_words: self.retx_words,
            faults: self.faults,
        }
    }

    /// True when no messages are in flight.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Fold another network's traffic and fault counters into this one.
    /// Delivery state (the in-flight heap, the auto-sequence counter, the
    /// installed plan) is deliberately untouched: only counters travel, so
    /// per-shard networks can be merged back into the main one without
    /// disturbing its queue.
    pub fn absorb_counters<N>(&mut self, other: &Network<N>) {
        self.sent += other.sent;
        self.delivered += other.delivered;
        self.words += other.words;
        self.data_words += other.data_words;
        self.ack_words += other.ack_words;
        self.retx_words += other.retx_words;
        self.faults.absorb(&other.faults);
    }

    /// Reset the traffic and fault counters to a previously captured
    /// [`Self::stats`] snapshot — the anti-message half of the speculative
    /// executor's rollback: traffic a cancelled window accounted for is
    /// un-accounted wholesale, so a clean re-run re-draws identical
    /// numbers. Delivery state is untouched (callers drain the in-flight
    /// heap within each injection, so it is empty between events).
    pub fn restore_counters(&mut self, snap: &crate::stats::NetStats) {
        self.sent = snap.sent;
        self.delivered = snap.delivered;
        self.words = snap.words;
        self.data_words = snap.data_words;
        self.ack_words = snap.ack_words;
        self.retx_words = snap.retx_words;
        self.faults = snap.faults;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_time_order() {
        let mut net: Network<&'static str> = Network::new();
        net.send(NodeId(0), NodeId(1), 50, 1, "b");
        net.send(NodeId(0), NodeId(2), 10, 1, "a");
        net.send(NodeId(0), NodeId(1), 50, 1, "c"); // same time as b, later seq
        assert_eq!(net.in_flight(), 3);
        assert_eq!(net.pop().unwrap().msg, "a");
        assert_eq!(net.pop().unwrap().msg, "b");
        assert_eq!(net.pop().unwrap().msg, "c");
        assert!(net.pop().is_none());
        assert_eq!(net.sent, 3);
        assert_eq!(net.delivered, 3);
    }

    #[test]
    fn ties_break_by_destination_then_seq() {
        let mut net: Network<u32> = Network::new();
        net.send(NodeId(0), NodeId(5), 7, 0, 1);
        net.send(NodeId(0), NodeId(2), 7, 0, 2);
        // Same deliver_at: lower destination id first.
        assert_eq!(net.pop().unwrap().msg, 2);
        assert_eq!(net.pop().unwrap().msg, 1);
    }

    #[test]
    fn peek_matches_pop() {
        let mut net: Network<u8> = Network::new();
        net.send(NodeId(3), NodeId(4), 99, 2, 42);
        assert_eq!(net.peek(), Some((99, NodeId(4))));
        let m = net.pop().unwrap();
        assert_eq!(m.src, NodeId(3));
        assert_eq!(m.deliver_at, 99);
        assert!(net.is_empty());
    }

    #[test]
    fn words_are_accumulated() {
        let mut net: Network<u8> = Network::new();
        net.send(NodeId(0), NodeId(1), 1, 3, 0);
        net.send(NodeId(0), NodeId(1), 2, 4, 0);
        assert_eq!(net.words, 7);
    }

    #[test]
    fn send_tagged_preserves_caller_seq_and_order() {
        let mut net: Network<&'static str> = Network::new();
        // Caller-chosen seqs break the deliver-time tie, independent of
        // injection order.
        net.send_tagged(7, NodeId(0), NodeId(1), 10, 1, WireClass::Data, "late");
        net.send_tagged(3, NodeId(2), NodeId(1), 10, 1, WireClass::Data, "early");
        let a = net.pop().unwrap();
        let b = net.pop().unwrap();
        assert_eq!((a.seq, a.msg), (3, "early"));
        assert_eq!((b.seq, b.msg), (7, "late"));
        // Tagged sends don't consume the auto counter.
        let fate = net.send(NodeId(0), NodeId(1), 5, 1, "auto");
        assert_eq!(fate.seq, 0);
        assert_eq!(net.sent, 3);
    }

    #[test]
    fn stall_release_is_a_fixpoint_for_both_copies() {
        use crate::fault::{FaultPlan, NodeWindow};
        // Overlapping stall windows: releasing from the first lands inside
        // the second, which must defer again — for the primary *and* the
        // duplicate copy.
        let windows = vec![
            NodeWindow {
                node: NodeId(1),
                from: 10,
                until: 100,
            },
            NodeWindow {
                node: NodeId(1),
                from: 50,
                until: 300,
            },
        ];
        let plan = FaultPlan {
            stalls: windows.clone(),
            ..Default::default()
        };
        let mut net: Network<u8> = Network::new();
        net.set_plan(Some(plan));
        let fate = net.send(NodeId(0), NodeId(1), 20, 1, 9);
        assert!(!fate.dropped);
        let m = net.pop().unwrap();
        assert_eq!(
            m.deliver_at, 300,
            "single pass would release at 100, inside [50,300)"
        );
        assert_eq!(fate.extra_latency, 280);
        assert_eq!(
            net.faults.stall_defers, 1,
            "one deferral per copy, not per hop"
        );

        // Duplicate copy: force dup_permille=1000 so both copies exist,
        // then check neither lands inside any window.
        let plan = FaultPlan {
            dup_permille: 1000,
            stalls: windows,
            ..Default::default()
        };
        let mut net: Network<u8> = Network::new();
        net.set_plan(Some(plan.clone()));
        let fate = net.send(NodeId(0), NodeId(1), 20, 1, 9);
        assert!(fate.duplicated);
        while let Some(m) = net.pop() {
            assert!(
                plan.stalled_until(m.dest, m.deliver_at).is_none(),
                "copy delivered at {} inside a stall window",
                m.deliver_at
            );
            assert_eq!(m.deliver_at, 300);
        }
        assert_eq!(net.faults.stall_defers, 2);
    }

    #[test]
    fn absorb_counters_sums_traffic() {
        let mut a: Network<u8> = Network::new();
        a.send_classed(NodeId(0), NodeId(1), 1, 5, WireClass::Data, 0);
        let mut b: Network<u8> = Network::new();
        b.send_classed(NodeId(1), NodeId(0), 2, 1, WireClass::Ack, 0);
        b.pop();
        a.absorb_counters(&b);
        let s = a.stats();
        assert_eq!(s.sent, 2);
        assert_eq!(s.delivered, 1);
        assert_eq!(s.data_words, 5);
        assert_eq!(s.ack_words, 1);
        assert_eq!(a.in_flight(), 1, "absorb must not move in-flight messages");
    }

    #[test]
    fn wire_classes_bucket_words() {
        let mut net: Network<u8> = Network::new();
        net.send_classed(NodeId(0), NodeId(1), 1, 5, WireClass::Data, 0);
        net.send_classed(NodeId(1), NodeId(0), 2, 1, WireClass::Ack, 0);
        net.send_classed(NodeId(0), NodeId(1), 3, 5, WireClass::Retx, 0);
        net.send(NodeId(0), NodeId(1), 4, 2, 0); // plain send = Data
        let s = net.stats();
        assert_eq!(s.data_words, 7);
        assert_eq!(s.ack_words, 1);
        assert_eq!(s.retx_words, 5);
        assert_eq!(s.words, s.data_words + s.ack_words + s.retx_words);
    }
}
