//! Deterministic interconnect: in-flight messages ordered by delivery time.
//!
//! The network is generic over the payload type `M` (the runtime defines its
//! own message enum). Delivery order is a total order on
//! `(deliver_at, dest, sequence)`, so two runs of the same experiment
//! deliver messages identically — the foundation for reproducible results
//! and the hybrid ≡ parallel-only property tests.

use crate::fault::{FaultPlan, FaultStats};
use crate::{Cycles, NodeId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Wire-level class of an injected message, for traffic accounting.
///
/// The network itself treats every class identically (same ordering, same
/// fault plan); the class only routes the payload's words into the right
/// [`crate::stats::NetStats`] bucket so ack-protocol and retransmission
/// overhead can be attributed separately from first-copy application
/// traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireClass {
    /// First wire copy of an application payload (request or reply).
    #[default]
    Data,
    /// Transport acknowledgement frame.
    Ack,
    /// Retransmitted copy of a data frame.
    Retx,
    /// First wire copy of a collective leg (multicast/reduce/barrier
    /// down- or up-leg). Retransmitted legs fall back to [`WireClass::Retx`]
    /// like any other data frame.
    Coll,
}

/// One leg of a planned collective: where it goes and where it sits in the
/// virtual distribution tree.
///
/// Collectives are modeled over a binary-heap-shaped tree laid over the
/// participants: the initiator occupies position 0, member rank `r`
/// occupies position `r + 1`, and the parent of position `p` is
/// `(p - 1) / 2`. A leg to a member at tree depth `d` costs `d` hops of
/// wire latency instead of one — the fan-out is pipelined down the tree,
/// not `P` independent sends — and the member's reduction contribution
/// travels one hop back up to its tree parent rather than all the way to
/// the initiator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollLeg {
    /// Member rank in the group (index into the caller's member list).
    pub rank: u32,
    /// Tree position (`rank + 1`; position 0 is the initiator).
    pub pos: u32,
    /// Node the member lives on.
    pub dest: NodeId,
    /// Tree depth of `pos` — the number of hops the down-leg is charged.
    pub depth: u32,
    /// Tree position of the parent (`0` = the initiator itself).
    pub parent_pos: u32,
    /// Node the parent lives on (the up-leg's destination).
    pub parent: NodeId,
    /// Number of tree children whose contributions this member must fold
    /// before sending its own up-leg.
    pub children: u8,
    /// This member's contribution index at its parent (1 = left child,
    /// 2 = right child; index 0 is the parent's own contribution), fixing
    /// the fold order independent of arrival order.
    pub child_ix: u8,
}

/// A planned collective: the legs plus the cost parameters the runtime
/// charges when it executes them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollPlan {
    /// One leg per member, in rank order.
    pub legs: Vec<CollLeg>,
    /// Payload words each down-leg carries (0 for barriers).
    pub words: u64,
    /// Per-contribution fold cost charged where the fold happens
    /// (reductions only).
    pub op_cost: Cycles,
    /// Depth of the deepest leg — the number of pipelined hops the
    /// slowest member waits for.
    pub depth: u32,
}

/// Tree depth of a collective position: `floor(log2(pos + 1))`.
/// Position 0 (the initiator) is at depth 0, positions 1–2 at depth 1,
/// 3–6 at depth 2, and so on.
pub fn coll_depth(pos: u32) -> u32 {
    (pos + 1).ilog2()
}

/// Parent position of a non-root collective position.
pub fn coll_parent(pos: u32) -> u32 {
    debug_assert!(pos > 0, "the root has no parent");
    (pos - 1) / 2
}

/// Lay the virtual tree over `src` + `members` and emit one leg per
/// member. Pure shape — no counters, no costs.
fn plan_legs(src: NodeId, members: &[NodeId]) -> Vec<CollLeg> {
    let n = members.len() as u32;
    (0..n)
        .map(|rank| {
            let pos = rank + 1;
            let parent_pos = coll_parent(pos);
            let parent = if parent_pos == 0 {
                src
            } else {
                members[(parent_pos - 1) as usize]
            };
            let children = [2 * pos + 1, 2 * pos + 2]
                .iter()
                .filter(|&&c| c <= n)
                .count() as u8;
            CollLeg {
                rank,
                pos,
                dest: members[rank as usize],
                depth: coll_depth(pos),
                parent_pos,
                parent,
                children,
                child_ix: if pos % 2 == 1 { 1 } else { 2 },
            }
        })
        .collect()
}

/// A message in flight, carrying its destination and delivery time.
#[derive(Debug, Clone)]
pub struct InFlight<M> {
    /// Virtual time at which the message reaches `dest`'s network interface.
    pub deliver_at: Cycles,
    /// Destination node.
    pub dest: NodeId,
    /// Source node (for accounting and debugging).
    pub src: NodeId,
    /// Monotone sequence number assigned at send time (tie-breaker).
    pub seq: u64,
    /// Payload.
    pub msg: M,
}

// BinaryHeap is a max-heap; invert the ordering to pop the *earliest*.
impl<M> PartialEq for InFlight<M> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<M> Eq for InFlight<M> {}
impl<M> PartialOrd for InFlight<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for InFlight<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: smallest key = greatest heap element.
        other.key().cmp(&self.key())
    }
}

impl<M> InFlight<M> {
    #[inline]
    fn key(&self) -> (Cycles, u32, u64) {
        (self.deliver_at, self.dest.0, self.seq)
    }
}

/// The interconnect: a priority queue of in-flight messages.
///
/// The network does not charge instruction costs itself — the sender charges
/// `msg_send + words·msg_word` on its own clock and passes the resulting
/// injection time here; the wire latency is added by the caller too. This
/// keeps all pricing decisions in one place (the runtime) and the network
/// purely mechanical.
#[derive(Debug)]
pub struct Network<M> {
    heap: BinaryHeap<InFlight<M>>,
    next_seq: u64,
    /// Total messages ever sent (for stats cross-checks).
    pub sent: u64,
    /// Total messages ever delivered.
    pub delivered: u64,
    /// Total payload words ever sent.
    pub words: u64,
    /// Words that crossed the wire in first-copy application payloads.
    pub data_words: u64,
    /// Words that crossed the wire in acknowledgement frames.
    pub ack_words: u64,
    /// Words that crossed the wire in retransmitted copies.
    pub retx_words: u64,
    /// Words that crossed the wire in first-copy collective legs.
    pub coll_words: u64,
    /// Multicasts planned through this network.
    pub multicasts: u64,
    /// Reductions planned through this network.
    pub reduces: u64,
    /// Barriers planned through this network.
    pub barriers: u64,
    /// Collective legs planned (down-legs; up-legs mirror them 1:1 for
    /// reductions and barriers).
    pub coll_legs: u64,
    /// Installed fault schedule, if any (see [`FaultPlan`]).
    plan: Option<FaultPlan>,
    /// Cumulative fault-injection counters.
    pub faults: FaultStats,
}

impl<M> Default for Network<M> {
    fn default() -> Self {
        Network {
            heap: BinaryHeap::new(),
            next_seq: 0,
            sent: 0,
            delivered: 0,
            words: 0,
            data_words: 0,
            ack_words: 0,
            retx_words: 0,
            coll_words: 0,
            multicasts: 0,
            reduces: 0,
            barriers: 0,
            coll_legs: 0,
            plan: None,
            faults: FaultStats::default(),
        }
    }
}

/// What happened to one injected message (the plan's decision as applied).
///
/// With no plan installed every fate is `{seq, dropped: false,
/// duplicated: false, extra_latency: 0}` and exactly one copy is enqueued
/// at the caller's `deliver_at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendFate {
    /// Globally unique sequence number assigned to the message.
    pub seq: u64,
    /// The message was lost (no copy enqueued).
    pub dropped: bool,
    /// The loss was a partition-window loss (implies `dropped`).
    pub partitioned: bool,
    /// A second wire-level copy was enqueued.
    pub duplicated: bool,
    /// Extra latency (jitter and/or stall deferral) added to the primary
    /// copy, beyond the caller's `deliver_at`.
    pub extra_latency: Cycles,
}

impl<M> Network<M> {
    /// Create an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install (or clear) the fault schedule applied to subsequent sends.
    pub fn set_plan(&mut self, plan: Option<FaultPlan>) {
        self.plan = plan;
    }

    /// The installed fault schedule, if any.
    pub fn plan(&self) -> Option<&FaultPlan> {
        self.plan.as_ref()
    }

    /// Inject a message. `deliver_at` must already include wire latency.
    /// Accounts the traffic as [`WireClass::Data`]; see
    /// [`Self::send_classed`].
    pub fn send(
        &mut self,
        src: NodeId,
        dest: NodeId,
        deliver_at: Cycles,
        words: u64,
        msg: M,
    ) -> SendFate
    where
        M: Clone,
    {
        self.send_classed(src, dest, deliver_at, words, WireClass::Data, msg)
    }

    /// Words that actually crossed the wire, bucketed by class.
    #[inline]
    fn account(&mut self, class: WireClass, words: u64) {
        self.words += words;
        match class {
            WireClass::Data => self.data_words += words,
            WireClass::Ack => self.ack_words += words,
            WireClass::Retx => self.retx_words += words,
            WireClass::Coll => self.coll_words += words,
        }
    }

    /// Plan a modeled multicast from `src` to `dests`: one leg per member,
    /// each charged `depth(member) × hop latency` by the caller instead of
    /// `P` independent full-latency sends. `words` is the payload each leg
    /// carries. Only plans and counts — the caller injects the legs (so
    /// transport framing, fault fates, and wire-seq tagging apply
    /// unchanged).
    pub fn multicast(&mut self, src: NodeId, dests: &[NodeId], words: u64) -> CollPlan {
        self.multicasts += 1;
        self.coll_legs += dests.len() as u64;
        let legs = plan_legs(src, dests);
        let depth = legs.iter().map(|l| l.depth).max().unwrap_or(0);
        CollPlan {
            legs,
            words,
            op_cost: 0,
            depth,
        }
    }

    /// Plan a modeled reduction over `group` toward `root`: the same tree
    /// as [`Self::multicast`], but each member folds its tree children's
    /// contributions (at `op_cost` per contribution) before sending one
    /// up-leg to its parent.
    pub fn reduce(
        &mut self,
        group: &[NodeId],
        root: NodeId,
        words: u64,
        op_cost: Cycles,
    ) -> CollPlan {
        self.reduces += 1;
        self.coll_legs += group.len() as u64;
        let legs = plan_legs(root, group);
        let depth = legs.iter().map(|l| l.depth).max().unwrap_or(0);
        CollPlan {
            legs,
            words,
            op_cost,
            depth,
        }
    }

    /// Plan a modeled barrier rooted at `root` over `group`: a zero-payload
    /// tree down-sweep followed by the up-sweep of arrivals.
    pub fn barrier(&mut self, root: NodeId, group: &[NodeId]) -> CollPlan {
        self.barriers += 1;
        self.coll_legs += group.len() as u64;
        let legs = plan_legs(root, group);
        let depth = legs.iter().map(|l| l.depth).max().unwrap_or(0);
        CollPlan {
            legs,
            words: 0,
            op_cost: 0,
            depth,
        }
    }

    /// Inject a message with an explicit traffic class. `deliver_at` must
    /// already include wire latency.
    ///
    /// The installed [`FaultPlan`] (if any) is applied here: the message
    /// may be dropped, duplicated, jittered, or deferred past a stall
    /// window — decided purely by `(seq, src, dest)` and the plan's seed,
    /// so two runs with the same plan inject identical faults. Returns the
    /// assigned sequence number and the applied decision.
    pub fn send_classed(
        &mut self,
        src: NodeId,
        dest: NodeId,
        deliver_at: Cycles,
        words: u64,
        class: WireClass,
        msg: M,
    ) -> SendFate
    where
        M: Clone,
    {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.send_tagged(seq, src, dest, deliver_at, words, class, msg)
    }

    /// [`Self::send_classed`] with a caller-chosen sequence number instead
    /// of the network's own monotone counter.
    ///
    /// The sequence number is the fault plan's randomness key and the final
    /// delivery tie-breaker, so a caller that derives it from *per-node*
    /// state (rather than this network's global send order) gets fault
    /// fates and delivery order that are independent of the interleaving in
    /// which sends from different nodes reach the network — the property
    /// the host-parallel executor relies on. Callers own uniqueness; the
    /// auto-assigning entry points remain available and unaffected.
    #[allow(clippy::too_many_arguments)]
    pub fn send_tagged(
        &mut self,
        seq: u64,
        src: NodeId,
        dest: NodeId,
        deliver_at: Cycles,
        words: u64,
        class: WireClass,
        msg: M,
    ) -> SendFate
    where
        M: Clone,
    {
        self.sent += 1;
        let mut fate = SendFate {
            seq,
            dropped: false,
            partitioned: false,
            duplicated: false,
            extra_latency: 0,
        };
        let Some(plan) = &self.plan else {
            self.account(class, words);
            self.heap.push(InFlight {
                deliver_at,
                dest,
                src,
                seq,
                msg,
            });
            return fate;
        };
        let d = plan.decide(seq, src, dest, deliver_at);
        if d.drop {
            fate.dropped = true;
            fate.partitioned = d.partitioned;
            if d.partitioned {
                self.faults.partition_drops += 1;
            } else {
                self.faults.dropped += 1;
            }
            return fate;
        }
        // Primary copy: jitter, then stall deferral at the jittered time —
        // iterated to a fixpoint, since releasing from one window can land
        // inside another, overlapping one.
        let jittered = deliver_at + d.jitter;
        self.faults.jitter_cycles += d.jitter;
        let at = plan.stall_release(dest, jittered);
        if at != jittered {
            self.faults.stall_defers += 1;
        }
        fate.extra_latency = at - deliver_at;
        if d.duplicate {
            // Wire-level duplicate: same sequence number (it *is* the same
            // message — receiver-side dedup keys on transport state, and
            // identical payloads make any heap tie unobservable), at least
            // one cycle later. The copy takes the same stall-fixpoint path
            // as the primary: no copy may land inside a stall window.
            fate.duplicated = true;
            self.faults.duplicated += 1;
            let dup_jittered = deliver_at + 1 + d.dup_jitter;
            self.faults.jitter_cycles += d.dup_jitter;
            let at2 = plan.stall_release(dest, dup_jittered);
            if at2 != dup_jittered {
                self.faults.stall_defers += 1;
            }
            self.account(class, words);
            self.heap.push(InFlight {
                deliver_at: at2,
                dest,
                src,
                seq,
                msg: msg.clone(),
            });
        }
        self.account(class, words);
        self.heap.push(InFlight {
            deliver_at: at,
            dest,
            src,
            seq,
            msg,
        });
        fate
    }

    /// Time and destination of the earliest undelivered message, if any.
    pub fn peek(&self) -> Option<(Cycles, NodeId)> {
        self.heap.peek().map(|m| (m.deliver_at, m.dest))
    }

    /// Remove and return the earliest undelivered message.
    pub fn pop(&mut self) -> Option<InFlight<M>> {
        let m = self.heap.pop();
        if m.is_some() {
            self.delivered += 1;
        }
        m
    }

    /// Number of messages currently in flight.
    pub fn in_flight(&self) -> usize {
        self.heap.len()
    }

    /// Snapshot the traffic and fault counters.
    pub fn stats(&self) -> crate::stats::NetStats {
        crate::stats::NetStats {
            sent: self.sent,
            delivered: self.delivered,
            words: self.words,
            data_words: self.data_words,
            ack_words: self.ack_words,
            retx_words: self.retx_words,
            coll_words: self.coll_words,
            multicasts: self.multicasts,
            reduces: self.reduces,
            barriers: self.barriers,
            coll_legs: self.coll_legs,
            faults: self.faults,
        }
    }

    /// True when no messages are in flight.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Fold another network's traffic and fault counters into this one.
    /// Delivery state (the in-flight heap, the auto-sequence counter, the
    /// installed plan) is deliberately untouched: only counters travel, so
    /// per-shard networks can be merged back into the main one without
    /// disturbing its queue.
    pub fn absorb_counters<N>(&mut self, other: &Network<N>) {
        self.sent += other.sent;
        self.delivered += other.delivered;
        self.words += other.words;
        self.data_words += other.data_words;
        self.ack_words += other.ack_words;
        self.retx_words += other.retx_words;
        self.coll_words += other.coll_words;
        self.multicasts += other.multicasts;
        self.reduces += other.reduces;
        self.barriers += other.barriers;
        self.coll_legs += other.coll_legs;
        self.faults.absorb(&other.faults);
    }

    /// Reset the traffic and fault counters to a previously captured
    /// [`Self::stats`] snapshot — the anti-message half of the speculative
    /// executor's rollback: traffic a cancelled window accounted for is
    /// un-accounted wholesale, so a clean re-run re-draws identical
    /// numbers. Delivery state is untouched (callers drain the in-flight
    /// heap within each injection, so it is empty between events).
    pub fn restore_counters(&mut self, snap: &crate::stats::NetStats) {
        self.sent = snap.sent;
        self.delivered = snap.delivered;
        self.words = snap.words;
        self.data_words = snap.data_words;
        self.ack_words = snap.ack_words;
        self.retx_words = snap.retx_words;
        self.coll_words = snap.coll_words;
        self.multicasts = snap.multicasts;
        self.reduces = snap.reduces;
        self.barriers = snap.barriers;
        self.coll_legs = snap.coll_legs;
        self.faults = snap.faults;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_time_order() {
        let mut net: Network<&'static str> = Network::new();
        net.send(NodeId(0), NodeId(1), 50, 1, "b");
        net.send(NodeId(0), NodeId(2), 10, 1, "a");
        net.send(NodeId(0), NodeId(1), 50, 1, "c"); // same time as b, later seq
        assert_eq!(net.in_flight(), 3);
        assert_eq!(net.pop().unwrap().msg, "a");
        assert_eq!(net.pop().unwrap().msg, "b");
        assert_eq!(net.pop().unwrap().msg, "c");
        assert!(net.pop().is_none());
        assert_eq!(net.sent, 3);
        assert_eq!(net.delivered, 3);
    }

    #[test]
    fn ties_break_by_destination_then_seq() {
        let mut net: Network<u32> = Network::new();
        net.send(NodeId(0), NodeId(5), 7, 0, 1);
        net.send(NodeId(0), NodeId(2), 7, 0, 2);
        // Same deliver_at: lower destination id first.
        assert_eq!(net.pop().unwrap().msg, 2);
        assert_eq!(net.pop().unwrap().msg, 1);
    }

    #[test]
    fn peek_matches_pop() {
        let mut net: Network<u8> = Network::new();
        net.send(NodeId(3), NodeId(4), 99, 2, 42);
        assert_eq!(net.peek(), Some((99, NodeId(4))));
        let m = net.pop().unwrap();
        assert_eq!(m.src, NodeId(3));
        assert_eq!(m.deliver_at, 99);
        assert!(net.is_empty());
    }

    #[test]
    fn words_are_accumulated() {
        let mut net: Network<u8> = Network::new();
        net.send(NodeId(0), NodeId(1), 1, 3, 0);
        net.send(NodeId(0), NodeId(1), 2, 4, 0);
        assert_eq!(net.words, 7);
    }

    #[test]
    fn send_tagged_preserves_caller_seq_and_order() {
        let mut net: Network<&'static str> = Network::new();
        // Caller-chosen seqs break the deliver-time tie, independent of
        // injection order.
        net.send_tagged(7, NodeId(0), NodeId(1), 10, 1, WireClass::Data, "late");
        net.send_tagged(3, NodeId(2), NodeId(1), 10, 1, WireClass::Data, "early");
        let a = net.pop().unwrap();
        let b = net.pop().unwrap();
        assert_eq!((a.seq, a.msg), (3, "early"));
        assert_eq!((b.seq, b.msg), (7, "late"));
        // Tagged sends don't consume the auto counter.
        let fate = net.send(NodeId(0), NodeId(1), 5, 1, "auto");
        assert_eq!(fate.seq, 0);
        assert_eq!(net.sent, 3);
    }

    #[test]
    fn stall_release_is_a_fixpoint_for_both_copies() {
        use crate::fault::{FaultPlan, NodeWindow};
        // Overlapping stall windows: releasing from the first lands inside
        // the second, which must defer again — for the primary *and* the
        // duplicate copy.
        let windows = vec![
            NodeWindow {
                node: NodeId(1),
                from: 10,
                until: 100,
            },
            NodeWindow {
                node: NodeId(1),
                from: 50,
                until: 300,
            },
        ];
        let plan = FaultPlan {
            stalls: windows.clone(),
            ..Default::default()
        };
        let mut net: Network<u8> = Network::new();
        net.set_plan(Some(plan));
        let fate = net.send(NodeId(0), NodeId(1), 20, 1, 9);
        assert!(!fate.dropped);
        let m = net.pop().unwrap();
        assert_eq!(
            m.deliver_at, 300,
            "single pass would release at 100, inside [50,300)"
        );
        assert_eq!(fate.extra_latency, 280);
        assert_eq!(
            net.faults.stall_defers, 1,
            "one deferral per copy, not per hop"
        );

        // Duplicate copy: force dup_permille=1000 so both copies exist,
        // then check neither lands inside any window.
        let plan = FaultPlan {
            dup_permille: 1000,
            stalls: windows,
            ..Default::default()
        };
        let mut net: Network<u8> = Network::new();
        net.set_plan(Some(plan.clone()));
        let fate = net.send(NodeId(0), NodeId(1), 20, 1, 9);
        assert!(fate.duplicated);
        while let Some(m) = net.pop() {
            assert!(
                plan.stalled_until(m.dest, m.deliver_at).is_none(),
                "copy delivered at {} inside a stall window",
                m.deliver_at
            );
            assert_eq!(m.deliver_at, 300);
        }
        assert_eq!(net.faults.stall_defers, 2);
    }

    #[test]
    fn absorb_counters_sums_traffic() {
        let mut a: Network<u8> = Network::new();
        a.send_classed(NodeId(0), NodeId(1), 1, 5, WireClass::Data, 0);
        let mut b: Network<u8> = Network::new();
        b.send_classed(NodeId(1), NodeId(0), 2, 1, WireClass::Ack, 0);
        b.pop();
        a.absorb_counters(&b);
        let s = a.stats();
        assert_eq!(s.sent, 2);
        assert_eq!(s.delivered, 1);
        assert_eq!(s.data_words, 5);
        assert_eq!(s.ack_words, 1);
        assert_eq!(a.in_flight(), 1, "absorb must not move in-flight messages");
    }

    #[test]
    fn wire_classes_bucket_words() {
        let mut net: Network<u8> = Network::new();
        net.send_classed(NodeId(0), NodeId(1), 1, 5, WireClass::Data, 0);
        net.send_classed(NodeId(1), NodeId(0), 2, 1, WireClass::Ack, 0);
        net.send_classed(NodeId(0), NodeId(1), 3, 5, WireClass::Retx, 0);
        net.send_classed(NodeId(0), NodeId(2), 3, 4, WireClass::Coll, 0);
        net.send(NodeId(0), NodeId(1), 4, 2, 0); // plain send = Data
        let s = net.stats();
        assert_eq!(s.data_words, 7);
        assert_eq!(s.ack_words, 1);
        assert_eq!(s.retx_words, 5);
        assert_eq!(s.coll_words, 4);
        assert_eq!(
            s.words,
            s.data_words + s.ack_words + s.retx_words + s.coll_words
        );
    }

    #[test]
    fn coll_tree_shape_is_a_binary_heap() {
        // Depths: pos 0 → 0, 1–2 → 1, 3–6 → 2, 7–14 → 3.
        assert_eq!(coll_depth(0), 0);
        assert_eq!(coll_depth(1), 1);
        assert_eq!(coll_depth(2), 1);
        assert_eq!(coll_depth(3), 2);
        assert_eq!(coll_depth(6), 2);
        assert_eq!(coll_depth(7), 3);
        assert_eq!(coll_parent(1), 0);
        assert_eq!(coll_parent(2), 0);
        assert_eq!(coll_parent(5), 2);
        assert_eq!(coll_parent(6), 2);

        let mut net: Network<u8> = Network::new();
        let dests: Vec<NodeId> = (1..8).map(NodeId).collect();
        let plan = net.multicast(NodeId(0), &dests, 3);
        assert_eq!(plan.legs.len(), 7);
        assert_eq!(plan.words, 3);
        assert_eq!(plan.depth, 3, "7 members + root = 8 positions, depth 3");
        // Rank 0 (pos 1) is a direct child of the initiator.
        assert_eq!(plan.legs[0].parent, NodeId(0));
        assert_eq!(plan.legs[0].parent_pos, 0);
        assert_eq!(plan.legs[0].depth, 1);
        assert_eq!(plan.legs[0].child_ix, 1);
        // Rank 2 (pos 3) hangs under pos 1 = rank 0 = NodeId(1).
        assert_eq!(plan.legs[2].parent, NodeId(1));
        assert_eq!(plan.legs[2].parent_pos, 1);
        assert_eq!(plan.legs[2].depth, 2);
        assert_eq!(plan.legs[2].child_ix, 1);
        // Rank 3 (pos 4) is pos 1's right child.
        assert_eq!(plan.legs[3].parent_pos, 1);
        assert_eq!(plan.legs[3].child_ix, 2);
        // Interior nodes know how many children to await: pos 1 has
        // children at positions 3 and 4 (both ≤ 7).
        assert_eq!(plan.legs[0].children, 2);
        // Pos 7 is a leaf (children at 15, 16 > 7).
        assert_eq!(plan.legs[6].children, 0);
        // Every child_ix is consistent with its parity.
        for l in &plan.legs {
            assert_eq!(l.child_ix, if l.pos % 2 == 1 { 1 } else { 2 });
        }
        assert_eq!(net.multicasts, 1);
        assert_eq!(net.coll_legs, 7);
    }

    #[test]
    fn coll_plans_cover_degenerate_groups() {
        let mut net: Network<u8> = Network::new();
        // Empty group: no legs, depth 0.
        let p = net.barrier(NodeId(0), &[]);
        assert!(p.legs.is_empty());
        assert_eq!(p.depth, 0);
        // Size-1 group: one depth-1 leg, a leaf, parented on the root.
        let p = net.reduce(&[NodeId(5)], NodeId(0), 2, 9);
        assert_eq!(p.legs.len(), 1);
        assert_eq!(p.op_cost, 9);
        let l = p.legs[0];
        assert_eq!((l.depth, l.children, l.parent), (1, 0, NodeId(0)));
        // Root inside its own group (root == src) still plans cleanly:
        // the self-leg is an ordinary member leg.
        let p = net.multicast(NodeId(0), &[NodeId(0), NodeId(1)], 1);
        assert_eq!(p.legs[0].dest, NodeId(0));
        assert_eq!(p.legs[0].parent, NodeId(0));
        assert_eq!(net.barriers, 1);
        assert_eq!(net.reduces, 1);
        assert_eq!(net.multicasts, 1);
        assert_eq!(net.coll_legs, 3);
    }

    #[test]
    fn coll_counters_absorb_and_restore() {
        let mut a: Network<u8> = Network::new();
        a.multicast(NodeId(0), &[NodeId(1), NodeId(2)], 1);
        a.send_classed(NodeId(0), NodeId(1), 1, 4, WireClass::Coll, 0);
        let snap = a.stats();
        let mut b: Network<u8> = Network::new();
        b.reduce(&[NodeId(0)], NodeId(1), 2, 3);
        b.barrier(NodeId(0), &[NodeId(1)]);
        a.absorb_counters(&b);
        let s = a.stats();
        assert_eq!(
            (s.multicasts, s.reduces, s.barriers, s.coll_legs),
            (1, 1, 1, 4)
        );
        assert_eq!(s.coll_words, 4);
        a.restore_counters(&snap);
        assert_eq!(a.stats(), snap);
    }
}
