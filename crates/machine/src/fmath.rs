//! Deterministic floating-point kernels.
//!
//! The platform `libm` transcendentals (`f64::ln`, `f64::exp2`, …) are
//! *not* pinned by IEEE 754 — different libms round the last bit
//! differently, which would make any simulation quantity derived from
//! them host-dependent. The basic operations `+ - * /`, comparisons,
//! `floor`, and bit-level conversions *are* exactly specified, so these
//! kernels build `ln`/`log2`/`exp2` from fixed-length polynomial series
//! over basic operations only: the same bits on every host.
//!
//! Accuracy is ~1 ulp over the ranges the simulator uses (mantissas in
//! `[1,2)` for `ln`, exponents within `±1100` for `exp2`) — far beyond
//! what arrival-gap sampling and histogram interpolation need. What
//! matters here is *bit-stability*, not last-bit correctness.

/// ln 2 (the std constant is an exact compile-time literal — using it
/// keeps every host on the same bits).
pub use std::f64::consts::LN_2;

/// `2^n` for integer `n`, by exponent-field construction (exact).
fn pow2i(n: i32) -> f64 {
    if n >= 1024 {
        f64::INFINITY
    } else if n >= -1022 {
        f64::from_bits(((n + 1023) as u64) << 52)
    } else if n >= -1074 {
        // Subnormal range: one mantissa bit set.
        f64::from_bits(1u64 << (n + 1074))
    } else {
        0.0
    }
}

/// Natural logarithm of a finite positive `x`, deterministic across hosts.
///
/// Decomposes `x = m · 2^e` with `m ∈ [√2/2, √2)` by bit manipulation,
/// then evaluates the atanh series `ln m = 2·Σ t^(2k+1)/(2k+1)` with
/// `t = (m−1)/(m+1)` (so `|t| < 0.1716`) over a fixed 13 terms.
pub fn ln(x: f64) -> f64 {
    assert!(x > 0.0 && x.is_finite(), "ln domain: {x}");
    let bits = x.to_bits();
    let e = ((bits >> 52) & 0x7ff) as i64 - 1023;
    if e == -1023 {
        // Subnormal: rescale exactly and recurse once.
        return ln(x * pow2i(64)) - 64.0 * LN_2;
    }
    let mut m = f64::from_bits((bits & 0x000f_ffff_ffff_ffff) | (1023u64 << 52));
    let mut e = e as f64;
    if m > std::f64::consts::SQRT_2 {
        m *= 0.5;
        e += 1.0;
    }
    let t = (m - 1.0) / (m + 1.0);
    let t2 = t * t;
    let mut term = t;
    let mut sum = 0.0;
    for k in 0..13u32 {
        sum += term / (2 * k + 1) as f64;
        term *= t2;
    }
    2.0 * sum + e * LN_2
}

/// Base-2 logarithm of a finite positive `x`, deterministic across hosts.
pub fn log2(x: f64) -> f64 {
    ln(x) / LN_2
}

/// `2^y` for finite `y`, deterministic across hosts: split `y` into an
/// integer part (exact exponent construction) and a fraction `f ∈ [0,1)`
/// evaluated as `e^(f·ln2)` by a fixed 20-term Taylor series.
pub fn exp2(y: f64) -> f64 {
    assert!(y.is_finite(), "exp2 domain: {y}");
    if y >= 1025.0 {
        return f64::INFINITY;
    }
    if y < -1075.0 {
        return 0.0;
    }
    let n = y.floor();
    let z = (y - n) * LN_2; // [0, ln 2)
    let mut term = 1.0;
    let mut sum = 1.0;
    for k in 1..=20u32 {
        term *= z / k as f64;
        sum += term;
    }
    sum * pow2i(n as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_matches_libm_closely() {
        for x in [
            1e-9,
            0.1,
            0.5,
            0.999,
            1.0,
            1.5,
            2.0,
            std::f64::consts::E,
            10.0,
            1e6,
            1e18,
        ] {
            let got = ln(x);
            let want = x.ln();
            assert!(
                (got - want).abs() <= 4.0 * f64::EPSILON * want.abs().max(1.0),
                "ln({x}) = {got}, libm {want}"
            );
        }
        assert_eq!(ln(1.0), 0.0);
    }

    #[test]
    fn exp2_matches_libm_closely() {
        for y in [-60.25, -1.5, -0.1, 0.0, 0.5, 1.0, 3.75, 52.9, 63.01] {
            let got = exp2(y);
            let want = y.exp2();
            assert!(
                (got - want).abs() <= 8.0 * f64::EPSILON * want.abs(),
                "exp2({y}) = {got}, libm {want}"
            );
        }
        assert_eq!(exp2(0.0), 1.0);
        assert_eq!(exp2(10.0), 1024.0);
    }

    #[test]
    fn log2_roundtrips_powers() {
        for b in 0..64u32 {
            let x = (1u64 << b) as f64;
            assert!((log2(x) - b as f64).abs() < 1e-12, "log2(2^{b})");
            assert_eq!(exp2(b as f64), x);
        }
    }

    #[test]
    fn integer_pow2_is_exact() {
        assert_eq!(pow2i(0), 1.0);
        assert_eq!(pow2i(-1), 0.5);
        assert_eq!(pow2i(63), (1u64 << 63) as f64);
        assert_eq!(pow2i(1024), f64::INFINITY);
        assert_eq!(pow2i(-1080), 0.0);
    }
}
