//! Total-order guarantees of the interconnect.
//!
//! The runtime's determinism rests on the network delivering in a total
//! order on `(deliver_at, dest, seq)` — these tests pin the tie-breaking,
//! peek/pop agreement, in-flight accounting, and the fault plan's
//! interaction with all three (drops never enter the heap, duplicates
//! enter it twice under one sequence number).

use hem_machine::fault::{FaultPlan, LinkWindow};
use hem_machine::net::Network;
use hem_machine::NodeId;

/// Sends at mixed times, destinations, and injection orders pop in
/// `(deliver_at, dest, seq)` order — never injection order.
#[test]
fn pops_follow_time_dest_seq_order() {
    let mut net: Network<u32> = Network::new();
    // (deliver, dest, payload) injected deliberately out of order.
    let sends = [
        (30, 2, 0),
        (10, 9, 1),
        (30, 1, 2),
        (10, 0, 3),
        (20, 5, 4),
        (10, 9, 5), // same (time, dest) as payload 1: seq breaks the tie
        (30, 1, 6), // same (time, dest) as payload 2
    ];
    for &(t, d, p) in &sends {
        net.send(NodeId(7), NodeId(d), t, 1, p);
    }
    let order: Vec<u32> = std::iter::from_fn(|| net.pop().map(|m| m.msg)).collect();
    assert_eq!(order, vec![3, 1, 5, 4, 2, 6, 0]);
}

/// Equal-time, equal-dest messages keep their send (sequence) order — the
/// FIFO-per-link property handlers rely on.
#[test]
fn same_slot_messages_are_fifo() {
    let mut net: Network<u32> = Network::new();
    for p in 0..50 {
        net.send(NodeId(0), NodeId(1), 100, 0, p);
    }
    let order: Vec<u32> = std::iter::from_fn(|| net.pop().map(|m| m.msg)).collect();
    assert_eq!(order, (0..50).collect::<Vec<_>>());
}

/// `peek` always reports exactly the `(time, dest)` the next `pop`
/// returns, through an arbitrary interleaving of sends and pops.
#[test]
fn peek_agrees_with_pop_throughout() {
    let mut net: Network<u64> = Network::new();
    let mut popped = 0;
    for round in 0..40u64 {
        // Pseudo-arbitrary but deterministic schedule of sends and pops;
        // the round number doubles as the payload.
        let t = (round * 37) % 19;
        let d = (round * 13) % 5;
        net.send(NodeId(9), NodeId(d as u32), t, 1, round);
        if round % 3 == 0 {
            let want = net.peek().expect("non-empty network peeks");
            let got = net.pop().expect("non-empty network pops");
            assert_eq!(want, (got.deliver_at, got.dest), "round {round}");
            popped += 1;
        }
    }
    while let Some((t, d)) = net.peek() {
        let m = net.pop().unwrap();
        assert_eq!((t, d), (m.deliver_at, m.dest));
        popped += 1;
    }
    assert_eq!(popped, 40);
    assert!(net.peek().is_none());
}

/// `in_flight`, `sent`, and `delivered` account exactly for the heap's
/// contents, with and without faults.
#[test]
fn in_flight_accounting() {
    let mut net: Network<u8> = Network::new();
    for i in 0..10 {
        net.send(NodeId(0), NodeId(1), i, 2, 0);
    }
    assert_eq!(net.in_flight(), 10);
    assert_eq!(net.sent, 10);
    assert_eq!(net.delivered, 0);
    for drained in 1..=10 {
        net.pop().unwrap();
        assert_eq!(net.in_flight(), 10 - drained);
        assert_eq!(net.delivered, drained as u64);
    }
    assert!(net.is_empty());
    assert_eq!(net.stats().words, 20);
}

/// A dropped message counts as sent but never enters the heap and carries
/// no words; a duplicated one enters twice under a single sequence number.
#[test]
fn faults_respect_accounting_and_ordering() {
    let mut plan = FaultPlan::seeded(42);
    plan.drop_permille = 1000; // drop everything
    let mut net: Network<u8> = Network::new();
    net.set_plan(Some(plan));
    let fate = net.send(NodeId(0), NodeId(1), 5, 3, 7);
    assert!(fate.dropped && !fate.partitioned);
    assert_eq!(net.sent, 1);
    assert_eq!(net.in_flight(), 0);
    assert_eq!(net.stats().words, 0);
    assert_eq!(net.faults.dropped, 1);
    assert!(net.pop().is_none());

    let mut plan = FaultPlan::seeded(42);
    plan.dup_permille = 1000; // duplicate everything
    let mut net: Network<u8> = Network::new();
    net.set_plan(Some(plan));
    let fate = net.send(NodeId(0), NodeId(1), 5, 3, 7);
    assert!(fate.duplicated && !fate.dropped);
    assert_eq!(net.in_flight(), 2);
    // Both copies share the global seq; the duplicate is at least one
    // cycle later, so the primary pops first.
    let a = net.pop().unwrap();
    let b = net.pop().unwrap();
    assert_eq!(a.seq, b.seq);
    assert_eq!(a.deliver_at, 5);
    assert!(b.deliver_at >= 6);
    assert_eq!(net.stats().words, 6, "each wire copy carries its words");
}

/// Partition drops are decided by delivery time against the window, keyed
/// by direction, and counted separately from random loss.
#[test]
fn partition_windows_are_directional_in_delivery_time() {
    let mut plan = FaultPlan::seeded(1);
    plan.partitions = vec![LinkWindow {
        src: Some(NodeId(0)),
        dest: Some(NodeId(1)),
        from: 100,
        until: 200,
    }];
    let mut net: Network<u8> = Network::new();
    net.set_plan(Some(plan));
    assert!(!net.send(NodeId(0), NodeId(1), 99, 1, 0).dropped);
    let f = net.send(NodeId(0), NodeId(1), 100, 1, 0);
    assert!(f.dropped && f.partitioned);
    assert!(
        !net.send(NodeId(0), NodeId(1), 200, 1, 0).dropped,
        "half-open"
    );
    assert!(
        !net.send(NodeId(1), NodeId(0), 150, 1, 0).dropped,
        "reverse direction open"
    );
    assert_eq!(net.faults.partition_drops, 1);
    assert_eq!(net.faults.dropped, 0);
    assert_eq!(net.stats().faults.lost(), 1);
}

/// The same plan replayed over the same send sequence injects identical
/// faults — fate is a pure function of `(seed, seq, src, dest)`.
#[test]
fn fault_fates_replay_bit_identically() {
    let run = || {
        let mut plan = FaultPlan::seeded(0xFEED);
        plan.drop_permille = 300;
        plan.dup_permille = 200;
        plan.jitter_max = 17;
        let mut net: Network<u16> = Network::new();
        net.set_plan(Some(plan));
        let mut fates = Vec::new();
        for i in 0..200u16 {
            let dest = NodeId(u32::from(i) % 7);
            fates.push(net.send(NodeId(3), dest, u64::from(i) * 11, 1, i));
        }
        let drained: Vec<_> = std::iter::from_fn(|| net.pop())
            .map(|m| (m.deliver_at, m.dest, m.seq, m.msg))
            .collect();
        (fates, drained, net.faults)
    };
    let (fa, da, sa) = run();
    let (fb, db, sb) = run();
    assert_eq!(fa, fb);
    assert_eq!(da, db);
    assert_eq!(sa, sb);
}
