//! Property tests for the machine substrate: network delivery order,
//! layout coverage and balance.

use hem_machine::net::Network;
use hem_machine::topology::{orb_partition, BlockCyclic, ProcGrid};
use hem_machine::NodeId;
use proptest::prelude::*;

proptest! {
    /// Messages come out of the network sorted by (deliver_at, dest, seq),
    /// and every message sent is delivered exactly once.
    #[test]
    fn network_is_a_stable_priority_queue(
        msgs in proptest::collection::vec((0u64..1000, 0u32..8), 0..64)
    ) {
        let mut net: Network<usize> = Network::new();
        for (i, (t, d)) in msgs.iter().enumerate() {
            net.send(NodeId(0), NodeId(*d), *t, 1, i);
        }
        let mut out = Vec::new();
        while let Some(m) = net.pop() {
            out.push((m.deliver_at, m.dest.0, m.seq, m.msg));
        }
        prop_assert_eq!(out.len(), msgs.len());
        // Sorted by the delivery key.
        for w in out.windows(2) {
            prop_assert!((w[0].0, w[0].1, w[0].2) < (w[1].0, w[1].1, w[1].2));
        }
        // Exactly-once: payloads are a permutation of the inputs.
        let mut ids: Vec<usize> = out.iter().map(|o| o.3).collect();
        ids.sort_unstable();
        prop_assert_eq!(ids, (0..msgs.len()).collect::<Vec<_>>());
        prop_assert_eq!(net.sent, msgs.len() as u64);
        prop_assert_eq!(net.delivered, msgs.len() as u64);
    }

    /// Block-cyclic owners are always valid nodes, and a full sweep of a
    /// data grid touches every processor when the grid is large enough.
    #[test]
    fn block_cyclic_covers_all_nodes(
        block in 1u32..9,
        side in 1u32..5, // processor grid side
    ) {
        let procs = ProcGrid { px: side, py: side };
        let bc = BlockCyclic { procs, block };
        let data = block * side * 2; // at least two block rows per proc
        let mut seen = vec![false; procs.len() as usize];
        for i in 0..data {
            for j in 0..data {
                let o = bc.owner(i, j);
                prop_assert!(o.0 < procs.len());
                seen[o.idx()] = true;
            }
        }
        prop_assert!(seen.iter().all(|s| *s), "some processor owns nothing");
    }

    /// ORB always balances within one point and assigns valid owners.
    #[test]
    fn orb_balances(
        n_pow in 3u32..8, // 8..128 points
        nodes_pow in 0u32..4, // 1..8 nodes
        seed in 0u64..1000,
    ) {
        let n = 1usize << n_pow;
        let nodes = 1u32 << nodes_pow;
        // Deterministic pseudo-random points from the seed.
        let mut x = seed.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        let mut next = || {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            (x >> 11) as f64 / (1u64 << 53) as f64
        };
        let pts: Vec<[f64; 3]> = (0..n).map(|_| [next(), next(), next()]).collect();
        let owner = orb_partition(&pts, nodes);
        prop_assert_eq!(owner.len(), n);
        let mut counts = vec![0usize; nodes as usize];
        for o in &owner {
            prop_assert!(o.0 < nodes);
            counts[o.idx()] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        prop_assert!(max - min <= nodes as usize,
            "ORB imbalance {counts:?} (powers of two split at medians)");
    }
}
