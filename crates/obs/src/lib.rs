//! # hem-obs — observability for the hybrid execution model
//!
//! Everything in this crate consumes the runtime's [`TraceRecord`] stream
//! (offline, from a drained buffer) or observes it online through the
//! zero-virtual-time [`hem_core::Observer`] hook, and turns it into the
//! artifacts a performance investigation needs:
//!
//! | module | artifact |
//! |---|---|
//! | [`rollup`] | per-method × per-node × per-schema aggregates, per-link traffic, residency/touch-latency histograms |
//! | [`blame`] | per-request sojourn decomposition (queue/exec/wire/lock/retx), exact tiling, p99-tail view |
//! | [`series`] | windowed virtual-time series: offered/completed rate, in-flight, queue depth, per-node occupancy |
//! | [`fanout`] | an observer tee so one run can stream several of the above |
//! | [`model`]  | a [`model::Timeline`]: scheduler steps, context spans, matched message flows |
//! | [`perfetto`] | Chrome/Perfetto `trace_event` JSON of the timeline (plus series counter tracks) |
//! | [`critpath`] | the longest virtual-time path through the happens-before DAG, plus per-node time breakdowns |
//! | [`report`] | paper-Table-style text / JSON summaries built from a rollup |
//! | [`json`] | a dependency-free JSON DOM + parser used to validate exports |
//!
//! None of it charges virtual time: attaching a [`rollup::Rollup`] as an
//! observer leaves traces, clocks and makespan bit-identical to an
//! unobserved run (the `sched_throughput` bench guards this), and offline
//! analysis happens after `take_trace()`.

#![warn(missing_docs)]

pub mod blame;
pub mod critpath;
pub mod fanout;
pub mod hist;
pub mod json;
pub mod model;
pub mod perfetto;
pub mod report;
pub mod rollup;
pub mod series;

pub use blame::{Blame, BlameCat, BlameSummary, RequestBlame};
pub use critpath::{
    critical_path, critical_path_until, node_breakdowns, CriticalPath, NodeBreakdown, SegClass,
};
pub use fanout::Fanout;
pub use hist::Log2Hist;
pub use model::Timeline;
pub use report::{Report, SchedSummary, ServiceSummary, SpecSummary};
pub use rollup::Rollup;
pub use series::{Series, SeriesBucket, SeriesSummary};

use hem_core::TraceEvent;

/// The node a record is charged to: the node whose clock stamped it (the
/// acting node — sender for sends, receiver for handles).
pub fn event_node(e: &TraceEvent) -> u32 {
    match *e {
        TraceEvent::StackComplete { node, .. }
        | TraceEvent::Inlined { node, .. }
        | TraceEvent::Fallback { node, .. }
        | TraceEvent::ParInvoke { node, .. }
        | TraceEvent::ShellAdopted { node, .. }
        | TraceEvent::ContMaterialized { node }
        | TraceEvent::MsgHandled { node, .. }
        | TraceEvent::Suspend { node, .. }
        | TraceEvent::Resume { node, .. }
        | TraceEvent::LockDeferred { node, .. }
        | TraceEvent::Retransmit { node, .. }
        | TraceEvent::DupSuppressed { node, .. }
        | TraceEvent::CtxFreed { node, .. }
        | TraceEvent::EventStart { node, .. }
        | TraceEvent::EventEnd { node }
        | TraceEvent::RequestArrived { node, .. }
        | TraceEvent::RequestDone { node, .. }
        | TraceEvent::RequestShed { node, .. } => node.0,
        TraceEvent::MsgSent { from, .. }
        | TraceEvent::MsgDropped { from, .. }
        | TraceEvent::MsgDuplicated { from, .. } => from.0,
    }
}

/// Render a blame tag (`request id + 1`; 0 = untagged) as a description
/// suffix.
fn req_suffix(req: u64) -> String {
    if req == 0 {
        String::new()
    } else {
        format!(" <req {}>", req - 1)
    }
}

/// One-line human description of an event, with method names resolved
/// against the program. The `trace_adaptation` example and `hemprof`'s
/// `--events` dump print these.
pub fn describe(e: &TraceEvent, program: &hem_ir::Program) -> String {
    let m = |id: hem_ir::MethodId| program.method(id).name.clone();
    match *e {
        TraceEvent::StackComplete {
            node,
            method,
            schema,
        } => format!("n{} stack-complete {} [{}]", node.0, m(method), schema),
        TraceEvent::Inlined { node, method } => {
            format!("n{} inlined {}", node.0, m(method))
        }
        TraceEvent::Fallback { node, method, ctx } => {
            format!("n{} FALLBACK {} -> ctx{}", node.0, m(method), ctx)
        }
        TraceEvent::ParInvoke { node, method, ctx } => {
            format!("n{} par-invoke {} ctx{}", node.0, m(method), ctx)
        }
        TraceEvent::ShellAdopted { node, method, ctx } => {
            format!("n{} shell-adopted {} ctx{}", node.0, m(method), ctx)
        }
        TraceEvent::ContMaterialized { node } => {
            format!("n{} continuation materialized", node.0)
        }
        TraceEvent::MsgSent {
            from,
            to,
            words,
            cause,
            req,
        } => format!(
            "n{} -> n{} {} ({} words){}",
            from.0,
            to.0,
            cause,
            words,
            req_suffix(req)
        ),
        TraceEvent::MsgHandled {
            node,
            from,
            words,
            cause,
            req,
            retx,
            ..
        } => format!(
            "n{} handled {} from n{} ({} words){}{}",
            node.0,
            cause,
            from.0,
            words,
            if retx { " [retx copy]" } else { "" },
            req_suffix(req)
        ),
        TraceEvent::Suspend { node, ctx } => format!("n{} suspend ctx{}", node.0, ctx),
        TraceEvent::Resume { node, ctx } => format!("n{} resume ctx{}", node.0, ctx),
        TraceEvent::LockDeferred { node, obj, req } => {
            format!("n{} lock-deferred obj{}{}", node.0, obj, req_suffix(req))
        }
        TraceEvent::MsgDropped {
            from,
            to,
            partitioned,
        } => format!(
            "n{} -> n{} DROPPED{}",
            from.0,
            to.0,
            if partitioned { " (partition)" } else { "" }
        ),
        TraceEvent::MsgDuplicated { from, to } => {
            format!("n{} -> n{} duplicated on the wire", from.0, to.0)
        }
        TraceEvent::Retransmit { node, to, attempt } => {
            format!("n{} retransmit -> n{} (attempt {})", node.0, to.0, attempt)
        }
        TraceEvent::DupSuppressed { node, from } => {
            format!("n{} suppressed duplicate from n{}", node.0, from.0)
        }
        TraceEvent::CtxFreed { node, ctx } => format!("n{} freed ctx{}", node.0, ctx),
        TraceEvent::EventStart { node, kind, req } => {
            let k = match kind {
                0 => "handle-message",
                1 => "local-work",
                _ => "retx-timers",
            };
            format!("n{} step start [{}]{}", node.0, k, req_suffix(req))
        }
        TraceEvent::EventEnd { node } => format!("n{} step end", node.0),
        TraceEvent::RequestArrived { node, req } => {
            format!("n{} request {req} arrived", node.0)
        }
        TraceEvent::RequestDone { node, req } => {
            format!("n{} request {req} done", node.0)
        }
        TraceEvent::RequestShed { node, req } => {
            format!("n{} request {req} SHED", node.0)
        }
    }
}
