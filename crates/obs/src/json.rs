//! A dependency-free JSON DOM with a parser and escaper.
//!
//! The build environment has no route to crates.io, so the Perfetto
//! exporter hand-rolls its serialization; this module is the other half —
//! enough of a parser to let tests and CI *validate* what was written
//! (well-formedness, required keys, span counts) without serde.

/// A parsed JSON value. Object keys keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage is an error).
    pub fn parse(s: &str) -> Result<Json, String> {
        let mut p = Parser {
            b: s.as_bytes(),
            i: 0,
        };
        p.ws();
        let v = p.value()?;
        p.ws();
        if p.i != p.b.len() {
            return Err(format!("trailing garbage at byte {}", p.i));
        }
        Ok(v)
    }

    /// Member of an object, by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.i < self.b.len() && self.b[self.i] == c {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, self.i))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.b.get(self.i) {
            None => Err("unexpected end of input".into()),
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(_) => self.number(),
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut m = Vec::new();
        self.ws();
        if self.b.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Ok(Json::Obj(m));
        }
        loop {
            self.ws();
            let k = self.string()?;
            self.ws();
            self.expect(b':')?;
            self.ws();
            let v = self.value()?;
            m.push((k, v));
            self.ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(m));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.i)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut v = Vec::new();
        self.ws();
        if self.b.get(self.i) == Some(&b']') {
            self.i += 1;
            return Ok(Json::Arr(v));
        }
        loop {
            self.ws();
            v.push(self.value()?);
            self.ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(v));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.i)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.b.get(self.i) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    let e = *self
                        .b
                        .get(self.i)
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .b
                                .get(self.i..self.i + 4)
                                .ok_or_else(|| "short \\u escape".to_string())?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            self.i += 4;
                            // Surrogates are passed through as the
                            // replacement char — the exporter never emits
                            // them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.i - 1)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.b[self.i..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid utf-8".to_string())?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        while self
            .b
            .get(self.i)
            .map(|c| c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E'))
            .unwrap_or(false)
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
}

/// Escape a string for embedding in a JSON document (without the quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_document() {
        let doc = r#"{"a": [1, 2.5, -3], "b": {"c": "x\ny", "d": true}, "e": null}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_num(),
            Some(-3.0)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Json::Bool(true)));
        assert_eq!(v.get("e"), Some(&Json::Null));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{} {}").is_err());
        assert!(Json::parse(r#"{"a" 1}"#).is_err());
        assert!(Json::parse("tru").is_err());
    }

    #[test]
    fn escape_and_parse_are_inverses() {
        let nasty = "a\"b\\c\nd\te\u{1}f";
        let doc = format!("\"{}\"", escape(nasty));
        assert_eq!(Json::parse(&doc).unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(
            Json::parse(r#""\u0041\u00e9""#).unwrap().as_str(),
            Some("Aé")
        );
        assert_eq!(Json::parse(r#""é☃""#).unwrap().as_str(), Some("é☃"));
    }
}
