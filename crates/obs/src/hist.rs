//! Power-of-two bucketed histograms over virtual-cycle durations.

/// A log₂-bucket histogram: bucket `b` counts samples `v` with
/// `2^(b-1) <= v < 2^b` (bucket 0 counts the zeros). 65 buckets cover the
/// whole `u64` range, so insertion never saturates or clamps.
#[derive(Debug, Clone)]
pub struct Log2Hist {
    buckets: [u64; 65],
    count: u64,
    sum: u128,
    max: u64,
}

impl Default for Log2Hist {
    fn default() -> Self {
        Log2Hist {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Log2Hist {
    /// Bucket index for a value: `0` for zero, else `floor(log2(v)) + 1`.
    #[inline]
    pub fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Inclusive-exclusive value range `[lo, hi)` of a bucket (bucket 0 is
    /// `[0, 1)`). The top bucket's `hi` saturates at `u64::MAX`, which makes
    /// its range *inclusive* of `u64::MAX` — `bucket_of(u64::MAX)` counts
    /// the sample into bucket 64, so rendering it as exclusive would lie;
    /// use [`Log2Hist::bucket_label`] for display.
    pub fn bucket_range(b: usize) -> (u64, u64) {
        if b == 0 {
            (0, 1)
        } else {
            (
                1u64 << (b - 1),
                1u64.checked_shl(b as u32).unwrap_or(u64::MAX),
            )
        }
    }

    /// Human/JSON label for a bucket's value range: half-open `[lo,hi)` for
    /// every bucket except the top one, which is the closed interval
    /// `[2^63,u64::MAX]` because `u64::MAX` itself lands in it.
    pub fn bucket_label(b: usize) -> String {
        let (lo, hi) = Self::bucket_range(b);
        if b == 64 {
            format!("[{lo},{hi}]")
        } else {
            format!("[{lo},{hi})")
        }
    }

    /// Record one sample.
    pub fn add(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.max = self.max.max(v);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Non-empty buckets, lowest first: `(bucket_index, count)`.
    pub fn nonzero(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(b, &c)| (b, c))
    }

    /// Render as a compact one-per-bucket listing, e.g.
    /// `[16,32):5 [32,64):2`.
    pub fn summary(&self) -> String {
        if self.count == 0 {
            return "(empty)".into();
        }
        let mut parts = Vec::new();
        for (b, c) in self.nonzero() {
            parts.push(format!("{}:{c}", Self::bucket_label(b)));
        }
        parts.join(" ")
    }

    /// Fold another histogram into this one. Bucket counts, the sample
    /// count, and the sum are plain sums and `max` is a max, so merging is
    /// associative and commutative — per-shard histograms folded in any
    /// order equal the histogram a single stream would have built.
    pub fn merge(&mut self, other: &Log2Hist) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(Log2Hist::bucket_of(0), 0);
        assert_eq!(Log2Hist::bucket_of(1), 1);
        assert_eq!(Log2Hist::bucket_of(2), 2);
        assert_eq!(Log2Hist::bucket_of(3), 2);
        assert_eq!(Log2Hist::bucket_of(4), 3);
        assert_eq!(Log2Hist::bucket_of(1023), 10);
        assert_eq!(Log2Hist::bucket_of(1024), 11);
        assert_eq!(Log2Hist::bucket_of(u64::MAX), 64);
    }

    #[test]
    fn ranges_partition_the_u64_line() {
        let mut expect_lo = 0u64;
        for b in 0..=64 {
            let (lo, hi) = Log2Hist::bucket_range(b);
            assert_eq!(lo, expect_lo, "bucket {b} starts at the previous end");
            assert!(hi > lo);
            expect_lo = hi;
        }
        assert_eq!(expect_lo, u64::MAX, "top bucket saturates");
    }

    #[test]
    fn every_value_lands_in_its_range() {
        for v in [0u64, 1, 2, 3, 7, 8, 100, 1 << 40, u64::MAX] {
            let b = Log2Hist::bucket_of(v);
            let (lo, hi) = Log2Hist::bucket_range(b);
            assert!(v >= lo, "{v} >= {lo}");
            assert!(v < hi || hi == u64::MAX, "{v} < {hi}");
        }
    }

    #[test]
    fn top_bucket_is_inclusive_of_u64_max() {
        // Boundary triple around the top bucket: 2^63 − 1 is the last value
        // of bucket 63; 2^63 and u64::MAX both land in bucket 64, whose
        // printed range must therefore be *closed* at u64::MAX.
        assert_eq!(Log2Hist::bucket_of((1 << 63) - 1), 63);
        assert_eq!(Log2Hist::bucket_of(1 << 63), 64);
        assert_eq!(Log2Hist::bucket_of(u64::MAX), 64);

        let (lo, hi) = Log2Hist::bucket_range(64);
        assert_eq!(lo, 1 << 63);
        assert_eq!(hi, u64::MAX);
        assert_eq!(
            Log2Hist::bucket_label(64),
            format!("[{},{}]", 1u64 << 63, u64::MAX),
            "top bucket renders closed"
        );
        assert_eq!(
            Log2Hist::bucket_label(63),
            format!("[{},{})", 1u64 << 62, 1u64 << 63)
        );

        let mut h = Log2Hist::default();
        h.add(u64::MAX);
        h.add(1 << 63);
        h.add((1 << 63) - 1);
        let s = h.summary();
        assert!(
            s.contains(&format!("[{},{}]:2", 1u64 << 63, u64::MAX)),
            "summary must place both top-bucket samples inside a closed range: {s}"
        );
        assert!(
            !s.contains(&format!("{})", u64::MAX)),
            "no exclusive u64::MAX bound: {s}"
        );
    }

    #[test]
    fn merge_equals_single_stream() {
        let samples = [0u64, 1, 1, 5, 16, 1 << 40, u64::MAX];
        let mut whole = Log2Hist::default();
        for &v in &samples {
            whole.add(v);
        }
        let mut a = Log2Hist::default();
        let mut b = Log2Hist::default();
        for (i, &v) in samples.iter().enumerate() {
            if i % 2 == 0 {
                a.add(v)
            } else {
                b.add(v)
            }
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        for m in [&ab, &ba] {
            assert_eq!(m.count(), whole.count());
            assert_eq!(m.max(), whole.max());
            assert_eq!(m.summary(), whole.summary());
            assert!((m.mean() - whole.mean()).abs() < 1e-12);
        }
    }

    #[test]
    fn stats_accumulate() {
        let mut h = Log2Hist::default();
        for v in [0, 1, 1, 5, 16] {
            h.add(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), 16);
        assert!((h.mean() - 23.0 / 5.0).abs() < 1e-12);
        let nz: Vec<_> = h.nonzero().collect();
        assert_eq!(nz, vec![(0, 1), (1, 2), (3, 1), (5, 1)]);
        assert!(h.summary().contains("[4,8):1"));
    }
}
