//! Power-of-two bucketed histograms over virtual-cycle durations.

use hem_machine::fmath;

/// A log₂-bucket histogram: bucket `b` counts samples `v` with
/// `2^(b-1) <= v < 2^b` (bucket 0 counts the zeros). 65 buckets cover the
/// whole `u64` range, so insertion never saturates or clamps.
#[derive(Debug, Clone)]
pub struct Log2Hist {
    buckets: [u64; 65],
    count: u64,
    sum: u128,
    max: u64,
}

impl Default for Log2Hist {
    fn default() -> Self {
        Log2Hist {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Log2Hist {
    /// Bucket index for a value: `0` for zero, else `floor(log2(v)) + 1`.
    #[inline]
    pub fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Inclusive-exclusive value range `[lo, hi)` of a bucket (bucket 0 is
    /// `[0, 1)`). The top bucket's `hi` saturates at `u64::MAX`, which makes
    /// its range *inclusive* of `u64::MAX` — `bucket_of(u64::MAX)` counts
    /// the sample into bucket 64, so rendering it as exclusive would lie;
    /// use [`Log2Hist::bucket_label`] for display.
    pub fn bucket_range(b: usize) -> (u64, u64) {
        if b == 0 {
            (0, 1)
        } else {
            (
                1u64 << (b - 1),
                1u64.checked_shl(b as u32).unwrap_or(u64::MAX),
            )
        }
    }

    /// Human/JSON label for a bucket's value range: half-open `[lo,hi)` for
    /// every bucket except the top one, which is the closed interval
    /// `[2^63,u64::MAX]` because `u64::MAX` itself lands in it.
    pub fn bucket_label(b: usize) -> String {
        let (lo, hi) = Self::bucket_range(b);
        if b == 64 {
            format!("[{lo},{hi}]")
        } else {
            format!("[{lo},{hi})")
        }
    }

    /// Record one sample.
    pub fn add(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.max = self.max.max(v);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `p`-quantile (`p ∈ [0,1]`, clamped) under the nearest-rank
    /// rule, with geometric-midpoint interpolation inside a bucket.
    ///
    /// The histogram only knows each sample's bucket, so within bucket
    /// `b` the `j`-th of `c` samples is placed at the geometric position
    /// `lo · (hi/lo)^((2j−1)/2c)` — the log₂-space analogue of the usual
    /// midpoint placement, matching the bucketing's own geometry. `hi`
    /// is the bucket's last representable value, clamped by the observed
    /// maximum; for the closed top bucket `[2^63, u64::MAX]` that makes
    /// the interpolation exact-ranged rather than overflowing.
    ///
    /// Exact (interpolation-free) answers:
    /// * empty histogram → 0;
    /// * single sample → that sample (its value is `sum`);
    /// * rank `count` (so any `p` high enough, including `p = 1.0`) →
    ///   [`Log2Hist::max`];
    /// * rank inside bucket 0 → 0 (zeros are exactly representable).
    ///
    /// The interpolation uses the host-independent [`hem_machine::fmath`]
    /// kernels, so quantiles are bit-identical across platforms.
    pub fn quantile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        self.try_quantile(p).expect("count > 0")
    }

    /// [`Log2Hist::quantile`], but honest about emptiness: `None` when
    /// the histogram holds no samples. Reports must use this (an empty
    /// histogram has no quantiles — printing the `quantile` fallback of
    /// 0 fabricates a perfect latency out of zero completions).
    pub fn try_quantile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        if self.count == 1 {
            return Some(self.sum as u64);
        }
        let p = p.clamp(0.0, 1.0);
        // Nearest rank: the smallest r (1-based) with r ≥ p·count.
        let r = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        if r == self.count {
            return Some(self.max);
        }
        let mut seen = 0u64;
        for (b, c) in self.nonzero() {
            if seen + c >= r {
                return Some(Self::interpolate(b, r - seen, c, self.max));
            }
            seen += c;
        }
        Some(self.max)
    }

    /// Geometric placement of the `j`-th (1-based) of `c` samples inside
    /// bucket `b`, clamped to the bucket ∩ `[0, max]`.
    fn interpolate(b: usize, j: u64, c: u64, max: u64) -> u64 {
        if b == 0 {
            return 0;
        }
        let lo = 1u64 << (b - 1);
        let hi = if b == 64 { max } else { (1u64 << b) - 1 }.min(max);
        if hi <= lo {
            return lo;
        }
        let f = (2 * j - 1) as f64 / (2 * c) as f64;
        let v = lo as f64 * fmath::exp2(f * fmath::log2(hi as f64 / lo as f64));
        (v as u64).clamp(lo, hi)
    }

    /// Non-empty buckets, lowest first: `(bucket_index, count)`.
    pub fn nonzero(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(b, &c)| (b, c))
    }

    /// Render as a compact one-per-bucket listing, e.g.
    /// `[16,32):5 [32,64):2`.
    pub fn summary(&self) -> String {
        if self.count == 0 {
            return "(empty)".into();
        }
        let mut parts = Vec::new();
        for (b, c) in self.nonzero() {
            parts.push(format!("{}:{c}", Self::bucket_label(b)));
        }
        parts.join(" ")
    }

    /// Fold another histogram into this one. Bucket counts, the sample
    /// count, and the sum are plain sums and `max` is a max, so merging is
    /// associative and commutative — per-shard histograms folded in any
    /// order equal the histogram a single stream would have built.
    pub fn merge(&mut self, other: &Log2Hist) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(Log2Hist::bucket_of(0), 0);
        assert_eq!(Log2Hist::bucket_of(1), 1);
        assert_eq!(Log2Hist::bucket_of(2), 2);
        assert_eq!(Log2Hist::bucket_of(3), 2);
        assert_eq!(Log2Hist::bucket_of(4), 3);
        assert_eq!(Log2Hist::bucket_of(1023), 10);
        assert_eq!(Log2Hist::bucket_of(1024), 11);
        assert_eq!(Log2Hist::bucket_of(u64::MAX), 64);
    }

    #[test]
    fn ranges_partition_the_u64_line() {
        let mut expect_lo = 0u64;
        for b in 0..=64 {
            let (lo, hi) = Log2Hist::bucket_range(b);
            assert_eq!(lo, expect_lo, "bucket {b} starts at the previous end");
            assert!(hi > lo);
            expect_lo = hi;
        }
        assert_eq!(expect_lo, u64::MAX, "top bucket saturates");
    }

    #[test]
    fn every_value_lands_in_its_range() {
        for v in [0u64, 1, 2, 3, 7, 8, 100, 1 << 40, u64::MAX] {
            let b = Log2Hist::bucket_of(v);
            let (lo, hi) = Log2Hist::bucket_range(b);
            assert!(v >= lo, "{v} >= {lo}");
            assert!(v < hi || hi == u64::MAX, "{v} < {hi}");
        }
    }

    #[test]
    fn top_bucket_is_inclusive_of_u64_max() {
        // Boundary triple around the top bucket: 2^63 − 1 is the last value
        // of bucket 63; 2^63 and u64::MAX both land in bucket 64, whose
        // printed range must therefore be *closed* at u64::MAX.
        assert_eq!(Log2Hist::bucket_of((1 << 63) - 1), 63);
        assert_eq!(Log2Hist::bucket_of(1 << 63), 64);
        assert_eq!(Log2Hist::bucket_of(u64::MAX), 64);

        let (lo, hi) = Log2Hist::bucket_range(64);
        assert_eq!(lo, 1 << 63);
        assert_eq!(hi, u64::MAX);
        assert_eq!(
            Log2Hist::bucket_label(64),
            format!("[{},{}]", 1u64 << 63, u64::MAX),
            "top bucket renders closed"
        );
        assert_eq!(
            Log2Hist::bucket_label(63),
            format!("[{},{})", 1u64 << 62, 1u64 << 63)
        );

        let mut h = Log2Hist::default();
        h.add(u64::MAX);
        h.add(1 << 63);
        h.add((1 << 63) - 1);
        let s = h.summary();
        assert!(
            s.contains(&format!("[{},{}]:2", 1u64 << 63, u64::MAX)),
            "summary must place both top-bucket samples inside a closed range: {s}"
        );
        assert!(
            !s.contains(&format!("{})", u64::MAX)),
            "no exclusive u64::MAX bound: {s}"
        );
    }

    #[test]
    fn merge_equals_single_stream() {
        let samples = [0u64, 1, 1, 5, 16, 1 << 40, u64::MAX];
        let mut whole = Log2Hist::default();
        for &v in &samples {
            whole.add(v);
        }
        let mut a = Log2Hist::default();
        let mut b = Log2Hist::default();
        for (i, &v) in samples.iter().enumerate() {
            if i % 2 == 0 {
                a.add(v)
            } else {
                b.add(v)
            }
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        for m in [&ab, &ba] {
            assert_eq!(m.count(), whole.count());
            assert_eq!(m.max(), whole.max());
            assert_eq!(m.summary(), whole.summary());
            assert!((m.mean() - whole.mean()).abs() < 1e-12);
        }
    }

    /// Brute-force nearest-rank quantile over the raw samples.
    fn brute_quantile(samples: &[u64], p: f64) -> u64 {
        let mut s = samples.to_vec();
        s.sort_unstable();
        let r = ((p.clamp(0.0, 1.0) * s.len() as f64).ceil() as usize).clamp(1, s.len());
        s[r - 1]
    }

    #[test]
    fn quantile_exact_cases() {
        let h = Log2Hist::default();
        assert_eq!(h.quantile(0.5), 0, "empty histogram");

        let mut h = Log2Hist::default();
        h.add(37);
        for p in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(p), 37, "single sample is exact at p={p}");
        }

        let mut h = Log2Hist::default();
        for v in [0, 0, 0, 900] {
            h.add(v);
        }
        assert_eq!(h.quantile(0.5), 0, "zeros bucket is exact");
        assert_eq!(h.quantile(1.0), 900, "p=1 returns the exact max");
    }

    #[test]
    fn quantile_is_exact_ranged_at_the_closed_top_bucket() {
        let mut h = Log2Hist::default();
        h.add(1 << 63);
        h.add(u64::MAX - 5);
        h.add(u64::MAX);
        // All three land in the closed top bucket; every quantile must
        // stay at or above 2^63 (no overflow, no clamp to 0).
        for p in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let q = h.quantile(p);
            assert!(q >= 1 << 63, "p={p}: {q}");
        }
        assert_eq!(h.quantile(1.0), u64::MAX);
    }

    #[test]
    fn quantile_is_monotone_and_bucket_consistent_with_brute_force() {
        // A spread of magnitudes with repeats — enough shape to make an
        // interpolation bug visible.
        let mut samples = Vec::new();
        for i in 0u64..200 {
            samples.push((i * i * 37 + 3) % 50_000);
        }
        samples.push(0);
        samples.push(1 << 40);
        let mut h = Log2Hist::default();
        for &v in &samples {
            h.add(v);
        }
        let mut prev = 0u64;
        for i in 0..=100 {
            let p = i as f64 / 100.0;
            let q = h.quantile(p);
            assert!(q >= prev, "monotone at p={p}: {q} < {prev}");
            prev = q;
            // The histogram only knows buckets, so the contract is: the
            // interpolated quantile lands in the same log₂ bucket as the
            // brute-force sorted-sample nearest-rank quantile.
            let want = brute_quantile(&samples, p);
            assert_eq!(
                Log2Hist::bucket_of(q),
                Log2Hist::bucket_of(want),
                "p={p}: quantile {q} vs brute {want}"
            );
        }
    }

    #[test]
    fn quantile_interpolates_geometrically_within_a_bucket() {
        // 3 samples in bucket [1024, 2048): interpolated positions must
        // spread geometrically, strictly inside the bucket.
        let mut h = Log2Hist::default();
        for v in [1100, 1500, 1900] {
            h.add(v);
        }
        let q1 = h.quantile(1.0 / 3.0);
        let q2 = h.quantile(2.0 / 3.0);
        let q3 = h.quantile(1.0);
        assert!((1024..2048).contains(&q1));
        assert!((1024..2048).contains(&q2));
        assert!(q1 < q2, "distinct in-bucket ranks interpolate apart");
        assert_eq!(q3, 1900, "top rank is the exact max");
    }

    #[test]
    fn stats_accumulate() {
        let mut h = Log2Hist::default();
        for v in [0, 1, 1, 5, 16] {
            h.add(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), 16);
        assert!((h.mean() - 23.0 / 5.0).abs() < 1e-12);
        let nz: Vec<_> = h.nonzero().collect();
        assert_eq!(nz, vec![(0, 1), (1, 2), (3, 1), (5, 1)]);
        assert!(h.summary().contains("[4,8):1"));
    }
}
