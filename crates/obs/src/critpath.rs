//! Critical-path extraction and per-node time breakdowns.
//!
//! The critical path is found by walking the happens-before DAG
//! *backwards in time* from the node that finished last. At every point
//! the walk stands at a `(node, time)` pair and asks "what was this node
//! doing just before?":
//!
//! * inside a scheduler step → a **work** segment back to the step start;
//! * at the start of a message-handling step whose arrival was the
//!   binding constraint → a **network** segment that hops to the sender
//!   at its send time;
//! * in a gap between steps → a **blocked** segment (the node had a
//!   suspended context) or an **idle** one, back to the previous step's
//!   end;
//! * before the first step → **idle** back to time zero.
//!
//! Segments are contiguous in time by construction, so they tile
//! `[0, makespan]` exactly and the path's total duration *equals* the
//! makespan — an invariant the integration tests assert, because any
//! step-accounting bug breaks it.

use hem_machine::Cycles;

use crate::model::{Step, Timeline, KIND_MSG, KIND_TIMERS};

/// What a critical-path segment (or a slice of a node's time) was spent
/// on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegClass {
    /// Running application work (local-work steps, root spans).
    Compute,
    /// Handling a delivered message (dispatch + handler work).
    Dispatch,
    /// A message in flight: send time on the source to handle time on the
    /// destination.
    Network,
    /// Waiting with at least one suspended context (a dependency stall).
    Blocked,
    /// No runnable work and nothing suspended.
    Idle,
}

impl std::fmt::Display for SegClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SegClass::Compute => "compute",
            SegClass::Dispatch => "dispatch",
            SegClass::Network => "network",
            SegClass::Blocked => "blocked",
            SegClass::Idle => "idle",
        };
        write!(f, "{s}")
    }
}

/// One segment of the critical path. For `Network` segments, `node` is
/// the *receiver* and `from_node` the sender; the time interval spans the
/// sender's send time to the receiver's handle time.
#[derive(Debug, Clone, Copy)]
pub struct Segment {
    /// Node the segment is charged to.
    pub node: u32,
    /// Sender, for network segments.
    pub from_node: Option<u32>,
    /// Segment start (virtual time).
    pub start: Cycles,
    /// Segment end.
    pub end: Cycles,
    /// Classification.
    pub class: SegClass,
}

impl Segment {
    /// Duration in cycles.
    pub fn dur(&self) -> Cycles {
        self.end - self.start
    }
}

/// The extracted path, earliest segment first.
#[derive(Debug, Clone, Default)]
pub struct CriticalPath {
    /// Segments, contiguous in time from 0 to the makespan.
    pub segments: Vec<Segment>,
    /// Sum of segment durations — equals the timeline's makespan.
    pub total: Cycles,
}

impl CriticalPath {
    /// Total time in segments of a class.
    pub fn time_in(&self, class: SegClass) -> Cycles {
        self.segments
            .iter()
            .filter(|s| s.class == class)
            .map(|s| s.dur())
            .sum()
    }
}

fn work_class(kind: u8) -> SegClass {
    match kind {
        KIND_MSG => SegClass::Dispatch,
        KIND_TIMERS => SegClass::Network,
        _ => SegClass::Compute,
    }
}

/// Did node `n` have any context suspended during `[a, b]`?
fn any_suspended(tl: &Timeline, n: u32, a: Cycles, b: Cycles) -> bool {
    tl.suspends[n as usize]
        .iter()
        .any(|s| s.start < b && s.end.map(|e| e > a).unwrap_or(true))
}

/// Extract the critical path of a timeline. Returns an empty path for an
/// empty timeline.
pub fn critical_path(tl: &Timeline) -> CriticalPath {
    critical_path_until(tl, tl.makespan)
}

/// Extract the critical path of the prefix `[0, horizon]` of a timeline —
/// the right call for horizon-bounded (`run_until`) traces, where steps
/// may straddle the horizon. Segments are clamped at the horizon, so the
/// tiling invariant becomes `total == min(makespan, horizon)`.
pub fn critical_path_until(tl: &Timeline, horizon: Cycles) -> CriticalPath {
    let end = tl.makespan.min(horizon);
    let mut segments: Vec<Segment> = Vec::new();
    if end == 0 || tl.n_nodes == 0 {
        return CriticalPath::default();
    }
    // Start from the node last *active* within the horizon — judged from
    // its steps, not its (possibly horizon-straddling) clock, so a node
    // whose only activity lies past the horizon can't win. Ties pick the
    // lowest index, matching the unbounded rule.
    let mut node = 0u32;
    let mut best: Cycles = 0;
    for (i, steps) in tl.steps.iter().enumerate() {
        let act = steps
            .iter()
            .rev()
            .find(|s| s.start < end)
            .map(|s| s.end.min(end))
            .unwrap_or(0);
        if act > best {
            best = act;
            node = i as u32;
        }
    }
    let mut time = end;

    // Every iteration emits at least one segment ending at `time` and
    // strictly decreases `time`, so the walk terminates; the cap is pure
    // defence against an accounting bug.
    let cap = 16 + 2 * tl.steps.iter().map(|s| s.len()).sum::<usize>() + tl.flows.len();
    for _ in 0..cap {
        if time == 0 {
            break;
        }
        let steps = &tl.steps[node as usize];
        // Last step beginning strictly before `time`: the activity
        // occupying the instant just before it.
        let si = steps.partition_point(|s| s.start < time);
        if si == 0 {
            // Nothing earlier on this node.
            segments.push(gap_segment(tl, node, 0, time));
            break;
        }
        let s = &steps[si - 1];
        if s.end >= time {
            // Inside the step (`start < time <= end`): charge its work,
            // then decide what bound the step's start — a matched message
            // arrival hops the walk to the sender at its send time.
            segments.push(Segment {
                node,
                from_node: None,
                start: s.start,
                end: time,
                class: work_class(s.kind),
            });
            time = s.start;
            if time == 0 {
                break;
            }
            // The arrival was binding only if the node was not already
            // busy right up to the step's start (back-to-back steps mean
            // the node itself was the constraint).
            let had_gap = si == 1 || steps[si - 2].end < s.start;
            if s.kind == KIND_MSG && had_gap {
                if let Some((sender, sent_at)) = binding_arrival(s) {
                    if sent_at < time {
                        segments.push(Segment {
                            node,
                            from_node: Some(sender),
                            start: sent_at,
                            end: time,
                            class: SegClass::Network,
                        });
                        node = sender;
                        time = sent_at;
                    }
                }
            }
        } else {
            // In the gap after `s` (`s.end < time`).
            segments.push(gap_segment(tl, node, s.end, time));
            time = s.end;
        }
    }

    segments.retain(|s| s.dur() > 0);
    segments.reverse();
    let total = segments.iter().map(|s| s.dur()).sum();
    CriticalPath { segments, total }
}

/// The message whose arrival bound the step's start time: the step's
/// *dispatched* message is the first one handled in it (later entries are
/// opportunistic nested deliveries during sends).
fn binding_arrival(s: &Step) -> Option<(u32, Cycles)> {
    s.msgs.iter().find_map(|m| m.sent_at.map(|at| (m.from, at)))
}

fn gap_segment(tl: &Timeline, node: u32, a: Cycles, b: Cycles) -> Segment {
    let class = if any_suspended(tl, node, a, b) {
        SegClass::Blocked
    } else {
        SegClass::Idle
    };
    Segment {
        node,
        from_node: None,
        start: a,
        end: b,
        class,
    }
}

/// Where one node's `[0, makespan]` went, plus its slack.
#[derive(Debug, Clone, Copy, Default)]
pub struct NodeBreakdown {
    /// The node.
    pub node: u32,
    /// Time in local-work / root steps.
    pub compute: Cycles,
    /// Time in message-handling steps.
    pub dispatch: Cycles,
    /// Time in retransmission-timer steps.
    pub network: Cycles,
    /// Gap time overlapping a suspended context.
    pub blocked: Cycles,
    /// Remaining gap time.
    pub idle: Cycles,
    /// `makespan - busy`: how much the node's own work could slip without
    /// extending the run (its scheduling slack).
    pub slack: Cycles,
}

impl NodeBreakdown {
    /// Sum of all five classes — equals the makespan by construction.
    pub fn total(&self) -> Cycles {
        self.compute + self.dispatch + self.network + self.blocked + self.idle
    }
}

/// Overlap of `[a, b]` with a node's suspend intervals (clamped to the
/// makespan), counting time where ≥1 context was suspended.
fn suspended_overlap(tl: &Timeline, n: u32, a: Cycles, b: Cycles) -> Cycles {
    // Merge intervals on the fly: they're sorted by start.
    let mut covered = 0;
    let mut cursor = a;
    for s in &tl.suspends[n as usize] {
        let lo = s.start.max(cursor);
        let hi = s.end.unwrap_or(tl.makespan).min(b);
        if lo < hi {
            covered += hi - lo;
            cursor = hi;
        }
        if cursor >= b {
            break;
        }
    }
    covered
}

/// Classify every node's `[0, makespan]` into the five classes.
pub fn node_breakdowns(tl: &Timeline) -> Vec<NodeBreakdown> {
    let makespan = tl.makespan;
    (0..tl.n_nodes)
        .map(|ni| {
            let mut b = NodeBreakdown {
                node: ni as u32,
                ..Default::default()
            };
            let mut cursor: Cycles = 0;
            for s in &tl.steps[ni] {
                if s.start > cursor {
                    let blk = suspended_overlap(tl, ni as u32, cursor, s.start);
                    b.blocked += blk;
                    b.idle += (s.start - cursor) - blk;
                }
                let dur = s.end - s.start;
                match work_class(s.kind) {
                    SegClass::Dispatch => b.dispatch += dur,
                    SegClass::Network => b.network += dur,
                    _ => b.compute += dur,
                }
                cursor = cursor.max(s.end);
            }
            if makespan > cursor {
                let blk = suspended_overlap(tl, ni as u32, cursor, makespan);
                b.blocked += blk;
                b.idle += (makespan - cursor) - blk;
            }
            b.slack = makespan - (b.compute + b.dispatch + b.network);
            b
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{KIND_LOCAL, KIND_ROOT};
    use hem_core::{MsgCause, TraceEvent, TraceRecord};
    use hem_machine::NodeId;

    fn rec(at: Cycles, event: TraceEvent) -> TraceRecord {
        TraceRecord { at, event }
    }

    /// Two nodes: n0 computes 0..10, sends at 7, n1 handles 15..20.
    fn two_node_tl() -> Timeline {
        let a = NodeId(0);
        let b = NodeId(1);
        let recs = vec![
            rec(
                0,
                TraceEvent::EventStart {
                    node: a,
                    kind: KIND_LOCAL,
                    req: 0,
                },
            ),
            rec(
                7,
                TraceEvent::MsgSent {
                    from: a,
                    to: b,
                    words: 2,
                    cause: MsgCause::Request,
                    req: 0,
                },
            ),
            rec(10, TraceEvent::EventEnd { node: a }),
            rec(
                15,
                TraceEvent::EventStart {
                    node: b,
                    kind: KIND_MSG,
                    req: 0,
                },
            ),
            rec(
                15,
                TraceEvent::MsgHandled {
                    node: b,
                    from: a,
                    words: 2,
                    cause: MsgCause::Request,
                    req: 0,
                    deliver: 0,
                    retx: false,
                },
            ),
            rec(20, TraceEvent::EventEnd { node: b }),
        ];
        Timeline::build(&recs, 2)
    }

    #[test]
    fn path_tiles_the_makespan_and_follows_the_message() {
        let tl = two_node_tl();
        let cp = critical_path(&tl);
        assert_eq!(cp.total, tl.makespan, "segments tile [0, makespan]");
        // Forward order: n0 compute [0,7], network [7,15], n1 dispatch
        // [15,20].
        let classes: Vec<SegClass> = cp.segments.iter().map(|s| s.class).collect();
        assert_eq!(
            classes,
            vec![SegClass::Compute, SegClass::Network, SegClass::Dispatch]
        );
        assert_eq!(cp.segments[1].from_node, Some(0));
        assert_eq!(cp.segments[1].start, 7);
        assert_eq!(cp.segments[1].end, 15);
        // Contiguity.
        assert_eq!(cp.segments[0].start, 0);
        for w in cp.segments.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn breakdowns_tile_per_node() {
        let tl = two_node_tl();
        for b in node_breakdowns(&tl) {
            assert_eq!(b.total(), tl.makespan, "node {} tiles", b.node);
        }
        let bs = node_breakdowns(&tl);
        assert_eq!(bs[0].compute, 10);
        assert_eq!(bs[0].idle, 10);
        assert_eq!(bs[1].dispatch, 5);
        assert_eq!(bs[1].slack, 15);
    }

    #[test]
    fn unmatched_start_falls_back_to_gap_classification() {
        // A handle with no recorded send (truncated ring): the walk can't
        // hop, so the pre-step gap is charged to the handling node.
        let b = NodeId(0);
        let recs = vec![
            rec(
                15,
                TraceEvent::EventStart {
                    node: b,
                    kind: KIND_MSG,
                    req: 0,
                },
            ),
            rec(
                15,
                TraceEvent::MsgHandled {
                    node: b,
                    from: NodeId(9),
                    words: 1,
                    cause: MsgCause::Request,
                    req: 0,
                    deliver: 0,
                    retx: false,
                },
            ),
            rec(20, TraceEvent::EventEnd { node: b }),
        ];
        let tl = Timeline::build(&recs, 1);
        let cp = critical_path(&tl);
        assert_eq!(cp.total, tl.makespan);
        assert_eq!(cp.segments[0].class, SegClass::Idle);
        assert_eq!((cp.segments[0].start, cp.segments[0].end), (0, 15));
    }

    #[test]
    fn blocked_gaps_are_recognized() {
        let n = NodeId(0);
        let recs = vec![
            rec(
                0,
                TraceEvent::EventStart {
                    node: n,
                    kind: KIND_LOCAL,
                    req: 0,
                },
            ),
            rec(4, TraceEvent::Suspend { node: n, ctx: 0 }),
            rec(5, TraceEvent::EventEnd { node: n }),
            rec(
                30,
                TraceEvent::EventStart {
                    node: n,
                    kind: KIND_LOCAL,
                    req: 0,
                },
            ),
            rec(30, TraceEvent::Resume { node: n, ctx: 0 }),
            rec(42, TraceEvent::EventEnd { node: n }),
        ];
        let tl = Timeline::build(&recs, 1);
        let cp = critical_path(&tl);
        assert_eq!(cp.total, 42);
        assert!(cp
            .segments
            .iter()
            .any(|s| s.class == SegClass::Blocked && s.start == 5 && s.end == 30));
        let b = &node_breakdowns(&tl)[0];
        assert_eq!(b.blocked, 25);
        assert_eq!(b.compute, 17);
        assert_eq!(b.total(), 42);
    }

    #[test]
    fn horizon_clamps_segments_and_keeps_the_tiling_invariant() {
        let tl = two_node_tl();
        // Horizon inside n1's dispatch step [15, 20]: the straddling step
        // is clamped, and the path tiles [0, 17] exactly.
        let cp = critical_path_until(&tl, 17);
        assert_eq!(cp.total, 17, "total == min(makespan, horizon)");
        assert_eq!(cp.segments[0].start, 0);
        for w in cp.segments.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
        let last = cp.segments.last().unwrap();
        assert_eq!((last.class, last.end), (SegClass::Dispatch, 17));

        // Horizon in the network gap: the walk starts from the last node
        // active before it (n0, whose step ended at 10).
        let cp = critical_path_until(&tl, 12);
        assert_eq!(cp.total, 12);
        assert_eq!(cp.segments.last().unwrap().node, 0);

        // Horizon past the makespan degenerates to the full path.
        let cp = critical_path_until(&tl, 10_000);
        assert_eq!(cp.total, tl.makespan);

        // Zero horizon: empty path.
        assert_eq!(critical_path_until(&tl, 0).total, 0);
    }

    #[test]
    fn root_steps_count_as_compute() {
        let recs = vec![rec(
            3,
            TraceEvent::Inlined {
                node: NodeId(0),
                method: hem_ir::MethodId(0),
            },
        )];
        let tl = Timeline::build(&recs, 1);
        assert_eq!(tl.steps[0][0].kind, KIND_ROOT);
        let cp = critical_path(&tl);
        assert_eq!(cp.total, tl.makespan);
    }
}
