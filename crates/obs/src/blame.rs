//! Per-request blame decomposition.
//!
//! A streaming [`Observer`] that follows each external request's blame
//! tag (`req + 1` on [`TraceEvent`] fields; see `hem_core::trace`)
//! through the causal chain and splits the request's sojourn —
//! `done.at − arrived.at` — into *tiling* segments:
//!
//! | category | meaning |
//! |---|---|
//! | [`BlameCat::Queue`]  | admission / inbox / scheduler wait |
//! | [`BlameCat::Exec`]   | on-node execution charged to the request |
//! | [`BlameCat::Wire`]   | first-copy wire transit |
//! | [`BlameCat::Lock`]   | deferred on a held object lock |
//! | [`BlameCat::Retx`]   | recovery via a retransmitted copy |
//!
//! The decomposition is a *frontier cursor*: each request keeps a single
//! virtual-time cursor starting at its arrival; every tagged event that
//! lands past the cursor pushes it forward and charges the gap to one
//! category. Concurrent branches (fan-out requests) therefore never
//! double-count — overlapped work hides behind the frontier — and the
//! segments sum to the sojourn *exactly*, by construction (the finalize
//! step pads a trailing `Exec` remainder or trims overshoot from the
//! tail). That hard invariant is what the property tests pin.
//!
//! Like every observer, the blame tracker is zero-virtual-time: traces,
//! clocks and makespan are bit-identical with it attached or not, and
//! because it is a pure function of the (executor-invariant) record
//! stream, its output is bit-identical across all four executors and
//! every thread count.

use std::collections::HashMap;
use std::fmt::Write as _;

use hem_core::{Observer, TraceEvent, TraceRecord};

use crate::hist::Log2Hist;
use crate::json::escape;

/// Where a slice of a request's sojourn went.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlameCat {
    /// Waiting: admission-to-dispatch, inbox, or scheduler queue.
    Queue,
    /// Executing on a node (handler + charged work).
    Exec,
    /// First-copy wire transit.
    Wire,
    /// Deferred on a held object lock.
    Lock,
    /// Recovered via a retransmitted copy (lost/slow first copy).
    Retx,
}

impl BlameCat {
    /// All categories, report order.
    pub const ALL: [BlameCat; 5] = [
        BlameCat::Queue,
        BlameCat::Exec,
        BlameCat::Wire,
        BlameCat::Lock,
        BlameCat::Retx,
    ];

    /// Stable lowercase name (JSON keys, table rows).
    pub fn name(self) -> &'static str {
        match self {
            BlameCat::Queue => "queue",
            BlameCat::Exec => "exec",
            BlameCat::Wire => "wire",
            BlameCat::Lock => "lock",
            BlameCat::Retx => "retx",
        }
    }

    fn index(self) -> usize {
        match self {
            BlameCat::Queue => 0,
            BlameCat::Exec => 1,
            BlameCat::Wire => 2,
            BlameCat::Lock => 3,
            BlameCat::Retx => 4,
        }
    }
}

impl std::fmt::Display for BlameCat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A request still in flight.
#[derive(Debug)]
struct LiveReq {
    arrived: u64,
    node: u32,
    cursor: u64,
    /// What the gap up to the next local-work dispatch is: `Queue`
    /// normally, `Lock` after a lock deferral.
    pending: BlameCat,
    segs: Vec<(BlameCat, u64)>,
}

impl LiveReq {
    fn advance(&mut self, cat: BlameCat, to: u64) {
        if to > self.cursor {
            self.segs.push((cat, to - self.cursor));
            self.cursor = to;
        }
    }
}

/// One completed request's blame record.
#[derive(Debug, Clone)]
pub struct RequestBlame {
    /// External request id.
    pub req: u64,
    /// Arrival (target) node.
    pub node: u32,
    /// Arrival time.
    pub arrived: u64,
    /// Reply-delivery time.
    pub done: u64,
    /// Tiling segments, causal order, adjacent categories merged.
    /// Invariant: the durations sum to exactly `done − arrived`.
    pub segs: Vec<(BlameCat, u64)>,
}

impl RequestBlame {
    /// The request's sojourn in cycles.
    pub fn sojourn(&self) -> u64 {
        self.done - self.arrived
    }

    /// Total cycles blamed on one category.
    pub fn total(&self, cat: BlameCat) -> u64 {
        self.segs.iter().filter(|s| s.0 == cat).map(|s| s.1).sum()
    }
}

/// The streaming blame tracker. Attach with
/// `rt.attach_observer(Box::new(Blame::new()))` (or inside a
/// [`crate::Fanout`] next to a rollup), or replay a drained trace with
/// [`Blame::from_records`] — both see the same stream, so both produce
/// identical output.
#[derive(Debug, Default)]
pub struct Blame {
    live: HashMap<u64, LiveReq>,
    finished: Vec<RequestBlame>,
    shed: u64,
    arrived: u64,
}

impl Blame {
    /// An empty tracker.
    pub fn new() -> Blame {
        Blame::default()
    }

    /// Replay a drained trace.
    pub fn from_records(records: &[TraceRecord]) -> Blame {
        let mut b = Blame::new();
        for r in records {
            b.feed(r);
        }
        b
    }

    /// Feed one record (the observer hook calls this).
    pub fn feed(&mut self, rec: &TraceRecord) {
        match rec.event {
            TraceEvent::RequestArrived { node, req } => {
                self.arrived += 1;
                self.live.insert(
                    req,
                    LiveReq {
                        arrived: rec.at,
                        node: node.0,
                        cursor: rec.at,
                        pending: BlameCat::Queue,
                        segs: Vec::new(),
                    },
                );
            }
            TraceEvent::RequestShed { .. } => self.shed += 1,
            // kind 1 = local work (a lock grant or a resumed context):
            // the gap since the frontier is whatever the request was last
            // waiting on. kind 0 steps are decomposed by their MsgHandled
            // (same timestamp, which carries the delivery time); kind 2
            // timer steps are never tagged.
            TraceEvent::EventStart { kind: 1, req, .. } if req != 0 => {
                if let Some(l) = self.live.get_mut(&(req - 1)) {
                    l.advance(l.pending, rec.at);
                    l.pending = BlameCat::Queue;
                }
            }
            TraceEvent::MsgHandled {
                req, deliver, retx, ..
            } if req != 0 => {
                if let Some(l) = self.live.get_mut(&(req - 1)) {
                    let wire = if retx { BlameCat::Retx } else { BlameCat::Wire };
                    l.advance(wire, deliver);
                    l.advance(BlameCat::Queue, rec.at);
                }
            }
            // Sends mark execution progress — except transport frames:
            // an ack is stamped at the moment of delivery (before the
            // delivery's own MsgHandled record), so charging it to Exec
            // would swallow the wire/retx split that record carries; and
            // the gap up to a retransmit send is timeout wait, part of
            // the retransmit penalty, not execution.
            TraceEvent::MsgSent { req, cause, .. } if req != 0 => {
                if let Some(l) = self.live.get_mut(&(req - 1)) {
                    match cause {
                        hem_core::MsgCause::Ack => {}
                        hem_core::MsgCause::Retransmit => l.advance(BlameCat::Retx, rec.at),
                        _ => l.advance(BlameCat::Exec, rec.at),
                    }
                }
            }
            TraceEvent::LockDeferred { req, .. } if req != 0 => {
                if let Some(l) = self.live.get_mut(&(req - 1)) {
                    l.advance(BlameCat::Exec, rec.at);
                    l.pending = BlameCat::Lock;
                }
            }
            TraceEvent::RequestDone { req, .. } => self.finalize(req, rec.at),
            _ => {}
        }
    }

    /// Close a request: make the segments tile `[arrived, done]` exactly,
    /// merge adjacent categories, move it to the finished list.
    fn finalize(&mut self, req: u64, done: u64) {
        let Some(mut l) = self.live.remove(&req) else {
            return; // arrival fell outside the observed stream
        };
        let target = done.saturating_sub(l.arrived);
        let sum: u64 = l.segs.iter().map(|s| s.1).sum();
        if sum < target {
            // The frontier trails the reply delivery: the remainder is
            // the final on-node stretch that produced the reply.
            l.segs.push((BlameCat::Exec, target - sum));
        } else if sum > target {
            // A concurrent branch (fan-out) pushed the frontier past the
            // reply; trim the overshoot off the tail.
            let mut over = sum - target;
            while over > 0 {
                let last = l.segs.last_mut().expect("overshoot implies segments");
                if last.1 > over {
                    last.1 -= over;
                    over = 0;
                } else {
                    over -= last.1;
                    l.segs.pop();
                }
            }
        }
        let mut segs: Vec<(BlameCat, u64)> = Vec::with_capacity(l.segs.len());
        for (cat, d) in l.segs {
            if d == 0 {
                continue;
            }
            match segs.last_mut() {
                Some(last) if last.0 == cat => last.1 += d,
                _ => segs.push((cat, d)),
            }
        }
        self.finished.push(RequestBlame {
            req,
            node: l.node,
            arrived: l.arrived,
            done,
            segs,
        });
    }

    /// Completed requests, in completion (stream) order.
    pub fn finished(&self) -> &[RequestBlame] {
        &self.finished
    }

    /// Requests that arrived but had not completed when the stream ended.
    pub fn incomplete(&self) -> u64 {
        self.live.len() as u64
    }

    /// Aggregate into a report section. `tail_q` is the sojourn quantile
    /// (e.g. `0.99`) above which requests are folded into the tail view;
    /// `top` bounds the per-request rows kept (slowest first, ties by
    /// request id).
    pub fn summary(&self, tail_q: f64, top: usize) -> BlameSummary {
        let mut s = BlameSummary {
            arrived: self.arrived,
            completed: self.finished.len() as u64,
            shed: self.shed,
            incomplete: self.incomplete(),
            tail_quantile: tail_q,
            ..BlameSummary::default()
        };
        for r in &self.finished {
            s.sojourn.add(r.sojourn());
            for &(cat, d) in &r.segs {
                s.totals[cat.index()] += d;
            }
        }
        s.tail_threshold = s.sojourn.quantile(tail_q);
        for r in &self.finished {
            if r.sojourn() >= s.tail_threshold {
                s.tail_count += 1;
                for &(cat, d) in &r.segs {
                    s.tail_totals[cat.index()] += d;
                }
            }
        }
        let mut slow: Vec<&RequestBlame> = self.finished.iter().collect();
        slow.sort_by(|a, b| b.sojourn().cmp(&a.sojourn()).then(a.req.cmp(&b.req)));
        s.slowest = slow.into_iter().take(top).cloned().collect();
        s
    }
}

impl Observer for Blame {
    fn on_record(&mut self, rec: &TraceRecord) {
        self.feed(rec);
    }
}

/// The aggregate blame view a report carries.
#[derive(Debug, Clone, Default)]
pub struct BlameSummary {
    /// Requests that entered the machine.
    pub arrived: u64,
    /// Requests whose reply was delivered inside the stream.
    pub completed: u64,
    /// Requests the admission controller refused.
    pub shed: u64,
    /// Requests still in flight when the stream ended.
    pub incomplete: u64,
    /// Cycles blamed per category over all completions
    /// ([`BlameCat::ALL`] order); sums to the total of all sojourns.
    pub totals: [u64; 5],
    /// Sojourn distribution over completions.
    pub sojourn: Log2Hist,
    /// The quantile defining the tail view.
    pub tail_quantile: f64,
    /// Sojourn at that quantile; tail = completions at or above it.
    pub tail_threshold: u64,
    /// Completions in the tail.
    pub tail_count: u64,
    /// Cycles blamed per category over tail completions only.
    pub tail_totals: [u64; 5],
    /// Slowest completions (sojourn-descending, ties by id), bounded.
    pub slowest: Vec<RequestBlame>,
}

impl BlameSummary {
    fn share_line(totals: &[u64; 5]) -> String {
        let sum: u64 = totals.iter().sum();
        let mut o = String::new();
        for (i, cat) in BlameCat::ALL.iter().enumerate() {
            let _ = write!(
                o,
                "{}{} {} ({:.1}%)",
                if i == 0 { "" } else { "  " },
                cat,
                totals[i],
                100.0 * totals[i] as f64 / sum.max(1) as f64
            );
        }
        o
    }

    /// Render the text section.
    pub fn text(&self) -> String {
        let mut o = String::new();
        let _ = writeln!(
            o,
            "blame (per-request sojourn decomposition; segments tile arrival -> reply exactly):"
        );
        let _ = writeln!(
            o,
            "  completed {}  incomplete-at-end {}  shed {}",
            self.completed, self.incomplete, self.shed
        );
        let _ = writeln!(
            o,
            "  sojourn (cycles, mean {:.1}): p50 {}  p95 {}  p99 {}  max {}",
            self.sojourn.mean(),
            self.sojourn.quantile(0.50),
            self.sojourn.quantile(0.95),
            self.sojourn.quantile(0.99),
            self.sojourn.max()
        );
        let _ = writeln!(o, "  all completions: {}", Self::share_line(&self.totals));
        let _ = writeln!(
            o,
            "  tail (p{:.0}+, {} reqs, sojourn >= {}): {}",
            100.0 * self.tail_quantile,
            self.tail_count,
            self.tail_threshold,
            Self::share_line(&self.tail_totals)
        );
        if !self.slowest.is_empty() {
            let _ = writeln!(o, "  slowest requests:");
            for r in &self.slowest {
                let mut segs = String::new();
                for (i, (cat, d)) in r.segs.iter().enumerate() {
                    let _ = write!(segs, "{}{cat}:{d}", if i == 0 { "" } else { " " });
                }
                let _ = writeln!(
                    o,
                    "    req {:>6} n{:<3} [{:>8}..{:>8}] sojourn {:>8}  {}",
                    r.req,
                    r.node,
                    r.arrived,
                    r.done,
                    r.sojourn(),
                    segs
                );
            }
        }
        o
    }

    fn totals_json(totals: &[u64; 5]) -> String {
        let mut o = String::from("{");
        for (i, cat) in BlameCat::ALL.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            let _ = write!(o, "\"{}\":{}", cat, totals[i]);
        }
        o.push('}');
        o
    }

    /// Render the JSON section (the value of the report's `"blame"` key).
    pub fn json(&self) -> String {
        let mut o = String::new();
        let _ = write!(
            o,
            "{{\"arrived\":{},\"completed\":{},\"shed\":{},\"incomplete\":{},\
             \"totals\":{},\"sojourn\":{{\"samples\":{},\"mean\":{:.6},\"max\":{},\
             \"p50\":{},\"p95\":{},\"p99\":{}}},\
             \"tail\":{{\"quantile\":{:.6},\"threshold\":{},\"count\":{},\"totals\":{}}},\
             \"slowest\":[",
            self.arrived,
            self.completed,
            self.shed,
            self.incomplete,
            Self::totals_json(&self.totals),
            self.sojourn.count(),
            self.sojourn.mean(),
            self.sojourn.max(),
            self.sojourn.quantile(0.50),
            self.sojourn.quantile(0.95),
            self.sojourn.quantile(0.99),
            self.tail_quantile,
            self.tail_threshold,
            self.tail_count,
            Self::totals_json(&self.tail_totals),
        );
        for (i, r) in self.slowest.iter().enumerate() {
            if i > 0 {
                o.push(',');
            }
            let _ = write!(
                o,
                "{{\"req\":{},\"node\":{},\"arrived\":{},\"done\":{},\"sojourn\":{},\"segs\":[",
                r.req,
                r.node,
                r.arrived,
                r.done,
                r.sojourn()
            );
            for (j, (cat, d)) in r.segs.iter().enumerate() {
                if j > 0 {
                    o.push(',');
                }
                let _ = write!(o, "{{\"cat\":\"{}\",\"cycles\":{}}}", escape(cat.name()), d);
            }
            o.push_str("]}");
        }
        o.push_str("]}");
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hem_core::{MsgCause, TraceEvent, TraceRecord};
    use hem_machine::NodeId;

    fn rec(at: u64, event: TraceEvent) -> TraceRecord {
        TraceRecord { at, event }
    }

    fn arrived(at: u64, node: u32, req: u64) -> TraceRecord {
        rec(
            at,
            TraceEvent::RequestArrived {
                node: NodeId(node),
                req,
            },
        )
    }

    fn done(at: u64, node: u32, req: u64) -> TraceRecord {
        rec(
            at,
            TraceEvent::RequestDone {
                node: NodeId(node),
                req,
            },
        )
    }

    fn handled(at: u64, node: u32, req: u64, deliver: u64, retx: bool) -> TraceRecord {
        rec(
            at,
            TraceEvent::MsgHandled {
                node: NodeId(node),
                from: NodeId(0),
                words: 3,
                cause: MsgCause::Request,
                req: req + 1,
                deliver,
                retx,
            },
        )
    }

    fn sent(at: u64, from: u32, req: u64) -> TraceRecord {
        rec(
            at,
            TraceEvent::MsgSent {
                from: NodeId(from),
                to: NodeId(1),
                words: 7,
                cause: MsgCause::Request,
                req: req + 1,
            },
        )
    }

    #[test]
    fn simple_rpc_decomposes_into_queue_exec_wire() {
        // Arrive at 100; dispatched (handled) at 120 after delivery at
        // 110; sends at 130; reply delivered at 150 and handled at 160;
        // done at 170.
        let recs = vec![
            arrived(100, 0, 0),
            handled(120, 0, 0, 110, false),
            sent(130, 0, 0),
            handled(160, 0, 0, 150, false),
            done(170, 0, 0),
        ];
        let b = Blame::from_records(&recs);
        assert_eq!(b.finished().len(), 1);
        let r = &b.finished()[0];
        assert_eq!(r.sojourn(), 70);
        assert_eq!(r.segs.iter().map(|s| s.1).sum::<u64>(), 70, "exact tiling");
        // 100..110 wire, 110..120 queue, 120..130 exec, 130..150 wire,
        // 150..160 queue, 160..170 exec.
        assert_eq!(r.total(BlameCat::Wire), 30);
        assert_eq!(r.total(BlameCat::Queue), 20);
        assert_eq!(r.total(BlameCat::Exec), 20);
        assert_eq!(r.total(BlameCat::Lock), 0);
        assert_eq!(r.total(BlameCat::Retx), 0);
    }

    #[test]
    fn retransmitted_copy_blames_retx_not_wire() {
        let recs = vec![
            arrived(0, 0, 0),
            handled(500, 0, 0, 480, true),
            done(520, 0, 0),
        ];
        let b = Blame::from_records(&recs);
        let r = &b.finished()[0];
        assert_eq!(r.sojourn(), 520);
        assert_eq!(r.total(BlameCat::Retx), 480);
        assert_eq!(r.total(BlameCat::Wire), 0);
        assert_eq!(r.total(BlameCat::Queue), 20);
        assert_eq!(r.total(BlameCat::Exec), 20);
    }

    #[test]
    fn lock_deferral_blames_the_wait_on_lock() {
        let recs = vec![
            arrived(0, 0, 0),
            handled(10, 0, 0, 5, false),
            rec(
                20,
                TraceEvent::LockDeferred {
                    node: NodeId(0),
                    obj: 3,
                    req: 1,
                },
            ),
            // Lock granted: local-work dispatch at 90.
            rec(
                90,
                TraceEvent::EventStart {
                    node: NodeId(0),
                    kind: 1,
                    req: 1,
                },
            ),
            done(100, 0, 0),
        ];
        let b = Blame::from_records(&recs);
        let r = &b.finished()[0];
        assert_eq!(r.sojourn(), 100);
        assert_eq!(r.total(BlameCat::Lock), 70, "deferral 20 -> grant 90");
        assert_eq!(r.total(BlameCat::Exec), 20 - 10 + 10);
        assert_eq!(
            r.segs.iter().map(|s| s.1).sum::<u64>(),
            r.sojourn(),
            "exact tiling"
        );
    }

    #[test]
    fn fork_overshoot_is_trimmed_to_the_sojourn() {
        // A side branch pushes the frontier to 300, but the reply landed
        // at 250: the trailing segments must be trimmed so the tiling
        // still holds.
        let recs = vec![
            arrived(0, 0, 0),
            handled(10, 0, 0, 5, false),
            sent(300, 0, 0), // concurrent branch, far frontier
            done(250, 0, 0),
        ];
        let b = Blame::from_records(&recs);
        let r = &b.finished()[0];
        assert_eq!(r.sojourn(), 250);
        assert_eq!(r.segs.iter().map(|s| s.1).sum::<u64>(), 250);
    }

    #[test]
    fn untagged_and_unknown_events_are_ignored() {
        let recs = vec![
            arrived(0, 0, 7),
            // Untagged traffic from a closed-system phase.
            rec(
                5,
                TraceEvent::MsgSent {
                    from: NodeId(0),
                    to: NodeId(1),
                    words: 7,
                    cause: MsgCause::Request,
                    req: 0,
                },
            ),
            // A done for a request whose arrival we never saw.
            done(50, 0, 99),
            done(60, 0, 7),
        ];
        let b = Blame::from_records(&recs);
        assert_eq!(b.finished().len(), 1);
        assert_eq!(b.finished()[0].req, 7);
        assert_eq!(b.finished()[0].sojourn(), 60);
    }

    #[test]
    fn summary_aggregates_and_json_parses() {
        let recs = vec![
            arrived(0, 0, 0),
            handled(10, 0, 0, 5, false),
            done(20, 0, 0),
            arrived(0, 1, 1),
            handled(400, 1, 1, 395, false),
            done(420, 1, 1),
            rec(
                0,
                TraceEvent::RequestShed {
                    node: NodeId(0),
                    req: 2,
                },
            ),
            arrived(500, 0, 3), // never completes
        ];
        let b = Blame::from_records(&recs);
        let s = b.summary(0.99, 10);
        assert_eq!(s.completed, 2);
        assert_eq!(s.shed, 1);
        assert_eq!(s.incomplete, 1);
        assert_eq!(s.totals.iter().sum::<u64>(), 20 + 420, "sojourns tile");
        assert_eq!(s.slowest.len(), 2);
        assert_eq!(s.slowest[0].req, 1, "slowest first");
        assert!(s.tail_count >= 1);
        let doc = crate::json::Json::parse(&s.json()).expect("valid json");
        assert_eq!(doc.get("completed").unwrap().as_num(), Some(2.0));
        let totals = doc.get("totals").unwrap();
        let mut sum = 0.0;
        for cat in BlameCat::ALL {
            sum += totals.get(cat.name()).unwrap().as_num().unwrap();
        }
        assert_eq!(sum as u64, 440);
        let slow = doc.get("slowest").unwrap().as_arr().unwrap();
        assert_eq!(slow.len(), 2);
        let segs = slow[0].get("segs").unwrap().as_arr().unwrap();
        let seg_sum: f64 = segs
            .iter()
            .map(|s| s.get("cycles").unwrap().as_num().unwrap())
            .sum();
        assert_eq!(
            seg_sum as u64,
            slow[0].get("sojourn").unwrap().as_num().unwrap() as u64
        );
        let text = s.text();
        assert!(text.contains("completed 2"));
        assert!(text.contains("slowest requests:"));
    }

    #[test]
    fn observer_and_replay_agree() {
        let recs = vec![
            arrived(0, 0, 0),
            handled(10, 0, 0, 5, false),
            sent(15, 0, 0),
            handled(40, 0, 0, 30, false),
            done(45, 0, 0),
        ];
        let mut obs = Blame::new();
        for r in &recs {
            obs.on_record(r);
        }
        obs.on_flush();
        let replay = Blame::from_records(&recs);
        assert_eq!(obs.summary(0.99, 4).json(), replay.summary(0.99, 4).json());
    }
}
